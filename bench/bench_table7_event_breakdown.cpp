// Table 7: event-type breakdown of the real dataset and the difference of
// each synthesized dataset from it, per generator and device type.
#include <cstdio>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;
    const auto& vocab = cellular::vocabulary(cellular::Generation::kLte4G);

    std::puts("=== Table 7: event-type breakdown (real) and per-generator difference ===");
    std::puts("(paper real, phones: ATCH .12 DTCH .11 SRV_REQ 47.06 S1_CONN_REL 48.25 HO 2.88");
    std::puts(" TAU 1.59; diffs within ~1% for phones, up to ~6% for cars with SMM)");

    for (std::size_t d = 0; d < trace::kNumDeviceTypes; ++d) {
        const auto device = static_cast<trace::DeviceType>(d);
        const auto train = bench::train_world(device, kHour, env);
        const auto real = bench::test_world(device, kHour, env);
        const auto real_p = real.event_type_breakdown();

        std::vector<std::vector<double>> diffs;  // per generator
        std::vector<std::string> names;

        auto add = [&](const std::string& name, const trace::Dataset& synth) {
            const auto p = synth.event_type_breakdown();
            std::vector<double> diff(p.size());
            for (std::size_t e = 0; e < p.size(); ++e) diff[e] = p[e] - real_p[e];
            diffs.push_back(std::move(diff));
            names.push_back(name);
        };

        {
            const auto model = smm::fit_smm1(train);
            util::Rng rng(501 + d);
            add("SMM-1", model.generate(env.gen_streams, rng));
        }
        {
            util::Rng krng(31 + d);
            const auto ensemble = smm::SmmEnsemble::fit(train, env.smm_clusters, krng);
            util::Rng rng(502 + d);
            add("SMM-20k", ensemble.generate(env.gen_streams, rng));
        }
        {
            const auto ns = bench::get_netshare(device, kHour, env);
            util::Rng rng(503 + d);
            add("NetShare", ns.generator->generate(env.gen_streams, rng, device));
        }
        {
            const auto gpt = bench::get_cptgpt(device, kHour, env);
            add("CPT-GPT", bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 504 + d));
        }

        std::printf("\n--- %s ---\n", bench::device_name(device));
        std::vector<std::string> header{"event", "real"};
        for (const auto& n : names) header.push_back(n + " diff");
        util::TextTable t(std::move(header));
        for (std::size_t e = 0; e < real_p.size(); ++e) {
            std::vector<std::string> row{vocab.name(static_cast<cellular::EventId>(e)),
                                         util::fmt_pct(real_p[e], 2)};
            for (const auto& diff : diffs) row.push_back(util::fmt_pct(diff[e], 2));
            t.add_row(std::move(row));
        }
        std::fputs(t.render().c_str(), stdout);
    }
    std::puts("\nShape to reproduce: CPT-GPT diffs comparable to or smaller than SMM's,");
    std::puts("especially on ATCH/DTCH; all generators within a few percent.");
    return 0;
}
