#include "common.hpp"

#include <cstdio>
#include <filesystem>

#include "nn/serialize.hpp"

namespace cpt::bench {

using trace::DeviceType;

const char* device_name(DeviceType d) {
    switch (d) {
        case DeviceType::kPhone: return "phone";
        case DeviceType::kConnectedCar: return "connected_car";
        case DeviceType::kTablet: return "tablet";
    }
    return "?";
}

BenchEnv BenchEnv::from_options(const util::Options& opt) {
    BenchEnv env;
    env.full = opt.get_flag("full");
    if (env.full) {
        // Approximates paper scale; expect hours of CPU time.
        env.train_ues = 8000;
        env.gen_streams = 1000;
        env.epochs = 60;
        env.gan_epochs = 120;
        env.window = 256;
        env.smm_clusters = 64;
    }
    env.train_ues = static_cast<std::size_t>(opt.get_int("ues", static_cast<long long>(env.train_ues)));
    env.gen_streams =
        static_cast<std::size_t>(opt.get_int("gen", static_cast<long long>(env.gen_streams)));
    env.epochs = static_cast<int>(opt.get_int("epochs", env.epochs));
    env.gan_epochs = static_cast<int>(opt.get_int("gan-epochs", env.gan_epochs));
    env.window = static_cast<std::size_t>(opt.get_int("window", static_cast<long long>(env.window)));
    env.smm_clusters = static_cast<std::size_t>(
        opt.get_int("clusters", static_cast<long long>(env.smm_clusters)));
    env.artifact_dir = opt.get("artifacts", env.artifact_dir);
    return env;
}

core::CptGptConfig bench_model_config(const BenchEnv& env) {
    core::CptGptConfig cfg;
    cfg.d_model = env.full ? 128 : 64;
    cfg.heads = 4;
    cfg.mlp_hidden = env.full ? 1024 : 256;
    cfg.blocks = 2;
    cfg.max_seq_len = std::max<std::size_t>(env.window, 128);
    cfg.head_hidden = env.full ? 128 : 64;
    return cfg;
}

gan::NetShareConfig bench_gan_config(const BenchEnv& env) {
    gan::NetShareConfig cfg;
    // 64 is the probe-validated CPU-scale setting: longer windows inflate
    // padding and intra-step ambiguity faster than they help flow length.
    cfg.max_seq_len = env.full ? 256 : 64;
    cfg.batch_generation = 4;
    cfg.lstm_hidden = env.full ? 96 : 48;
    cfg.disc_hidden = env.full ? 256 : 128;
    return cfg;
}

namespace {

trace::Dataset world_slice(DeviceType d, int hour, std::size_t ues, std::uint64_t seed) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {0, 0, 0};
    cfg.population[static_cast<std::size_t>(d)] = ues;
    cfg.hour_of_day = hour;
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

core::TrainConfig bench_train_config(const BenchEnv& env) {
    core::TrainConfig cfg;
    cfg.max_epochs = env.epochs;
    cfg.patience = std::max(4, env.epochs / 4);
    cfg.window = env.window;
    cfg.w_event = 3.0f;  // sharpens transitions on a CPU budget; Table 8
                         // shows fidelity is insensitive to this weighting
    cfg.seed = 1;
    return cfg;
}

std::string cache_key(const char* kind, DeviceType d, int hour, const BenchEnv& env) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s/%s_%s_h%d_u%zu_e%d_w%zu%s.ckpt", env.artifact_dir.c_str(),
                  kind, device_name(d), hour, env.train_ues, env.epochs, env.window,
                  env.full ? "_full" : "");
    return buf;
}

}  // namespace

trace::Dataset train_world(DeviceType d, int hour, const BenchEnv& env) {
    return world_slice(d, hour, env.train_ues, 1000 + static_cast<std::uint64_t>(hour));
}

trace::Dataset test_world(DeviceType d, int hour, const BenchEnv& env) {
    // Different seed stream = "August" test data; sized like the eval set.
    const std::size_t n = std::max<std::size_t>(env.gen_streams, env.train_ues / 2);
    return world_slice(d, hour, n, 900000 + static_cast<std::uint64_t>(hour));
}

TrainedCptGpt get_cptgpt(DeviceType d, int hour, const BenchEnv& env) {
    std::filesystem::create_directories(env.artifact_dir);
    const std::string path = cache_key("cptgpt", d, hour, env);
    const auto cfg = bench_model_config(env);

    if (std::filesystem::exists(path)) {
        auto pkg = core::CptGpt::load_package(path, cellular::Generation::kLte4G, cfg);
        return {std::move(pkg.model), pkg.tokenizer, std::move(pkg.initial_event_dist), 0.0, true};
    }

    // Paper §5.1: train from scratch on phones; transfer-learn to the other
    // device types from the phone model of the same hour.
    const trace::Dataset data = train_world(d, hour, env);
    const core::Tokenizer tokenizer = core::Tokenizer::fit(data);
    util::Rng init_rng(17);
    auto model = std::make_unique<core::CptGpt>(tokenizer, cfg, init_rng);
    double seconds = 0.0;

    if (d == DeviceType::kPhone) {
        core::Trainer trainer(*model, tokenizer, bench_train_config(env));
        seconds = trainer.train(data).seconds;
    } else {
        const TrainedCptGpt base = get_cptgpt(DeviceType::kPhone, hour, env);
        // Warm start from the phone weights, then fine-tune.
        auto base_params = base.model->named_parameters("m.");
        auto params = model->named_parameters("m.");
        for (std::size_t i = 0; i < params.size(); ++i) {
            auto src = base_params[i].param->value.data();
            auto dst = params[i].param->value.data();
            std::copy(src.begin(), src.end(), dst.begin());
        }
        core::Trainer trainer(*model, tokenizer, bench_train_config(env));
        seconds = trainer.fine_tune(data).seconds;
    }
    const auto dist = data.initial_event_distribution();
    model->save_package(path, tokenizer, dist);
    return {std::move(model), tokenizer, dist, seconds, false};
}

TrainedNetShare get_netshare(DeviceType d, int hour, const BenchEnv& env) {
    std::filesystem::create_directories(env.artifact_dir);
    const std::string path = cache_key("netshare", d, hour, env);
    const trace::Dataset data = train_world(d, hour, env);
    const core::Tokenizer tokenizer = core::Tokenizer::fit(data);
    util::Rng rng(23);
    auto gen = std::make_unique<gan::NetShareGenerator>(tokenizer, bench_gan_config(env), rng);

    if (std::filesystem::exists(path)) {
        nn::load_parameters(path, gen->named_parameters("ns."));
        return {std::move(gen), tokenizer, 0.0, true};
    }

    gan::GanTrainConfig tcfg;
    // Long adversarial runs collapse the interarrival head at CPU scale and
    // the checkpoint proxy cannot always recover it; a third of the nominal
    // budget is the validated sweet spot (the supervised pretraining budget
    // stays at its default).
    tcfg.max_epochs = std::max(6, env.gan_epochs / 3);
    tcfg.eval_every = std::max(3, tcfg.max_epochs / 3);
    tcfg.seed = 5;
    double seconds = 0.0;
    if (d == DeviceType::kPhone) {
        seconds = gen->train(data, tcfg).seconds;
    } else {
        // Transfer learning: warm start from the phone GAN.
        const TrainedNetShare base = get_netshare(DeviceType::kPhone, hour, env);
        auto base_params = base.generator->named_parameters("ns.");
        auto params = gen->named_parameters("ns.");
        for (std::size_t i = 0; i < params.size(); ++i) {
            auto src = base_params[i].param->value.data();
            auto dst = params[i].param->value.data();
            std::copy(src.begin(), src.end(), dst.begin());
        }
        tcfg.max_epochs = std::max(1, tcfg.max_epochs / 2);
        tcfg.pretrain_epochs = tcfg.pretrain_epochs / 2;
        seconds = gen->train(data, tcfg).seconds;
    }
    nn::save_parameters(path, gen->named_parameters("ns."));
    return {std::move(gen), tokenizer, seconds, false};
}

trace::Dataset sample_cptgpt(const TrainedCptGpt& m, DeviceType d, int hour, std::size_t n,
                             std::uint64_t seed, double top_p) {
    core::SamplerConfig cfg;
    cfg.device = d;
    cfg.hour_of_day = hour;
    cfg.top_p = top_p;
    const core::Sampler sampler(*m.model, m.tokenizer, m.initial_dist, cfg);
    util::Rng rng(seed);
    return sampler.generate(n, rng);
}

}  // namespace cpt::bench
