// Continuous batching vs drain-then-refill over the SlotBatch scheduler core
// (the decode loop cpt-serve's engines run). Same mixed-length workload, same
// per-stream RNGs — the generated streams are identical in every mode (the
// SlotBatch determinism contract), only the slot scheduling differs:
//
//   * drain_then_refill: classic static batching. A round of requests is
//     admitted as a unit and the batch stays B-wide until the round's slowest
//     stream finishes — slots whose stream ended early keep decoding padding
//     that is thrown away (the cost profile of a naive batch-generate server,
//     which pads every sequence to the longest in the batch). Only then is
//     the next round admitted.
//   * drain_compacted: static rounds, but finished rows are compacted out
//     mid-round (what a server built directly on Sampler::generate_batch
//     would cost). Reported alongside for transparency: on a single core
//     with row-proportional kernels, compaction alone recovers most of the
//     padding waste — the remaining gap to continuous is tile granularity
//     and per-step overhead, not wasted rows.
//   * continuous: finished slots are refilled at the next step boundary
//     (first pending stream whose length cap still fits the shared context),
//     so the batch stays full of real work and no round barrier exists.
//
// The workload is bimodal (many short streams, a few near-context-length
// ones) — the shape that most punishes drain-style batching. The untrained
// model's stop head is biased hard toward "continue" so stream lengths are
// exactly the per-stream caps, making the comparison deterministic. Stream
// completion latency is measured from bench start (all requests are pending
// at t0), so round barriers show up in the percentiles.
//
// On top of the scheduler comparison, two TCP-level sections (DESIGN.md §15):
//
//   * transport ladder: the same Server behind the thread-per-connection
//     listener and behind the epoll event loop, at 16/64/256 concurrent
//     connections under a fixed open-loop offered load — thread-per-conn is
//     capped by its thread budget, the epoll loop carries the whole ladder
//     on two event threads;
//   * open-loop sweep: offered rates at fractions of the measured
//     closed-loop capacity, reporting p50/p95/p99 from the scheduled arrival
//     and the max rate that still meets the SLO.
//
// A speculative-decode sweep (DESIGN.md §16) runs spec_k through the same
// continuous scheduler at full capacity and at capacity 2, showing where the
// draft/verify trade pays under a serving schedule.
//
// Emits BENCH_serve.json next to the binary.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "core/model_hub.hpp"
#include "core/sampler.hpp"
#include "core/spec_drafter.hpp"
#include "core/tokenizer.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cpt;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSlotCapacity = 32;
constexpr std::size_t kStreams = 256;
constexpr std::size_t kShortLen = 4;
constexpr std::size_t kLongLen = 120;
constexpr std::size_t kLongEvery = 11;  // ~1 in 11 streams is long (24 of 256)
// Padding rows (static batching's discarded compute) carry tickets above this
// bit so the accounting can tell them from real streams.
constexpr std::uint64_t kPadTicket = std::uint64_t{1} << 63;

struct Job {
    util::Rng rng{1};
    std::size_t max_len = 0;
    std::size_t idx = 0;
};

std::deque<Job> make_workload() {
    std::deque<Job> jobs;
    util::Rng root(42);
    for (std::size_t i = 0; i < kStreams; ++i) {
        jobs.push_back({root.fork(i), i % kLongEvery == 0 ? kLongLen : kShortLen, i});
    }
    return jobs;
}

void admit_job(core::Sampler::SlotBatch& batch, const Job& job) {
    core::Sampler::SlotBatch::AdmitParams params;
    params.max_len = job.max_len;
    char id[32];
    std::snprintf(id, sizeof(id), "bench-%06zu", job.idx);
    batch.admit(job.rng, id, job.idx, params);
}

struct RunResult {
    std::size_t streams = 0;
    std::size_t tokens = 0;
    std::size_t steps = 0;
    std::size_t row_steps = 0;  // decoded rows summed over steps, padding included
    double seconds = 0.0;
    double streams_per_sec = 0.0;
    double tokens_per_sec = 0.0;
    util::LatencyHistogram latency;  // per-stream completion time since t0
};

// Folds the newly finished entries of `fin` (from `*seen` on) into the
// latency histogram and the real-stream counters.
void absorb_finished(RunResult& r, const std::vector<core::Sampler::SlotBatch::Finished>& fin,
                     std::size_t* seen, Clock::time_point t0) {
    const double now = std::chrono::duration<double>(Clock::now() - t0).count();
    for (; *seen < fin.size(); ++*seen) {
        const auto& f = fin[*seen];
        if (f.ticket >= kPadTicket) continue;  // discarded padding row
        ++r.streams;
        r.tokens += f.stream.events.size();
        r.latency.record(now);
    }
}

RunResult finalize(RunResult r, Clock::time_point t0) {
    r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    r.streams_per_sec = static_cast<double>(r.streams) / r.seconds;
    r.tokens_per_sec = static_cast<double>(r.tokens) / r.seconds;
    return r;
}

// Continuous batching: at every step boundary, fill free slots with the first
// pending job whose length cap fits the remaining shared context. `times`
// (when given) receives the batch's stage counters, which the spec sweep
// needs for accept-rate and tokens-per-forward.
RunResult run_continuous(const core::Sampler& sampler, std::size_t capacity = kSlotCapacity,
                         core::Sampler::StageTimes* times = nullptr) {
    auto jobs = make_workload();
    auto batch = sampler.make_slot_batch(capacity);
    std::vector<core::Sampler::SlotBatch::Finished> fin;
    std::size_t seen = 0;
    RunResult r;
    const auto t0 = Clock::now();
    while (!jobs.empty() || batch.live() > 0) {
        bool admitted = true;
        while (batch.free_slots() > 0 && admitted) {
            admitted = false;
            for (auto it = jobs.begin(); it != jobs.end(); ++it) {
                if (it->max_len <= batch.admissible_len()) {
                    admit_job(batch, *it);
                    jobs.erase(it);
                    admitted = true;
                    break;
                }
            }
        }
        if (batch.live() == 0) continue;  // empty batch rewinds the context; re-admit
        r.row_steps += batch.live();
        batch.step(fin);
        ++r.steps;
        absorb_finished(r, fin, &seen, t0);
    }
    if (times != nullptr) *times = batch.stage_times();
    return finalize(r, t0);
}

// Static batching (the drain-then-refill baseline): admit a round, keep the
// batch B-wide until the round's slowest stream finishes — freed slots are
// immediately re-occupied by padding rows whose output is discarded, exactly
// the wasted compute a padded batch-generate pays — then admit the next round.
RunResult run_drain_refill(const core::Sampler& sampler) {
    auto jobs = make_workload();
    auto batch = sampler.make_slot_batch(kSlotCapacity);
    std::vector<core::Sampler::SlotBatch::Finished> fin;
    std::size_t seen = 0;
    util::Rng pad_root(7777);
    std::uint64_t pad_serial = 0;
    RunResult r;
    const auto t0 = Clock::now();
    while (!jobs.empty()) {
        std::size_t round_len = 0;
        while (batch.free_slots() > 0 && !jobs.empty()) {
            round_len = std::max(round_len, jobs.front().max_len);
            admit_job(batch, jobs.front());
            jobs.pop_front();
        }
        for (std::size_t s = 0; s < round_len; ++s) {
            // Refill slots freed mid-round with padding that dies exactly at
            // the round boundary, keeping the forward B-wide throughout
            // (streams need >= 2 tokens, so the round's last step cannot be
            // padded — one step of partial width out of round_len).
            while (round_len - s >= 2 && batch.free_slots() > 0) {
                core::Sampler::SlotBatch::AdmitParams params;
                params.max_len = round_len - s;
                batch.admit(pad_root.fork(pad_serial), "pad", kPadTicket + pad_serial, params);
                ++pad_serial;
            }
            r.row_steps += batch.live();
            batch.step(fin);
            ++r.steps;
            absorb_finished(r, fin, &seen, t0);
        }
    }
    return finalize(r, t0);
}

// Static rounds with mid-round compaction: finished rows are dropped (no
// padding), but the next round still waits for the slowest stream.
RunResult run_drain_compacted(const core::Sampler& sampler) {
    auto jobs = make_workload();
    auto batch = sampler.make_slot_batch(kSlotCapacity);
    std::vector<core::Sampler::SlotBatch::Finished> fin;
    std::size_t seen = 0;
    RunResult r;
    const auto t0 = Clock::now();
    while (!jobs.empty()) {
        while (batch.free_slots() > 0 && !jobs.empty()) {
            admit_job(batch, jobs.front());
            jobs.pop_front();
        }
        while (batch.live() > 0) {
            r.row_steps += batch.live();
            batch.step(fin);
            ++r.steps;
            absorb_finished(r, fin, &seen, t0);
        }
    }
    return finalize(r, t0);
}

// One point of the speculative-decode sweep: the continuous schedule run at a
// given slot capacity and spec_k, with the accept-rate / tokens-per-forward
// decomposition from the batch's stage counters.
struct SpecServeRow {
    std::size_t capacity = 0;
    std::size_t k = 0;
    RunResult r;
    double speedup = 0.0;
    double accept_rate = 0.0;
    double tokens_per_forward = 0.0;
};

void print_row(const char* name, const RunResult& r) {
    const auto pct = r.latency.percentiles();
    std::printf("%-18s %zu streams (%zu tokens) in %.3f s over %4zu steps (%6zu row-steps) "
                "-> %8.1f streams/s  %9.1f tokens/s  latency p50 %.3fs p95 %.3fs p99 %.3fs\n",
                name, r.streams, r.tokens, r.seconds, r.steps, r.row_steps, r.streams_per_sec,
                r.tokens_per_sec, pct.p50, pct.p95, pct.p99);
}

void json_row(std::FILE* f, const char* name, const RunResult& r, bool last) {
    const auto pct = r.latency.percentiles();
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"streams\": %zu, \"tokens\": %zu, "
                 "\"steps\": %zu, \"row_steps\": %zu, \"seconds\": %.4f, "
                 "\"streams_per_sec\": %.1f, \"tokens_per_sec\": %.1f, "
                 "\"latency_seconds\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, "
                 "\"mean\": %.4f}}%s\n",
                 name, r.streams, r.tokens, r.steps, r.row_steps, r.seconds, r.streams_per_sec,
                 r.tokens_per_sec, pct.p50, pct.p95, pct.p99, r.latency.mean(), last ? "" : ",");
}

// ---- TCP transport ladder + open-loop sweep (DESIGN.md §15) ----------------
//
// Both listeners front the same Server instance and see the same open-loop
// offered load, so only the transport differs. A point is "sustained" when
// every request succeeded and p99 latency — measured from the scheduled
// arrival, so queueing the server caused is charged to it — met the SLO.

constexpr double kSloP99Seconds = 0.25;    // serving SLO for "sustained"
constexpr double kLadderRps = 200.0;       // fixed offered load for the ladder
constexpr std::size_t kThreadBudget = 64;  // threaded listener's connection cap
constexpr std::size_t kLadder[] = {16, 64, 256};

struct TransportPoint {
    std::size_t connections = 0;
    serve::LoadgenResult r;
};

struct OpenPoint {
    double fraction = 0.0;     // of closed-loop capacity
    double offered_rps = 0.0;  // fraction * capacity
    serve::LoadgenResult r;
};

serve::LoadgenResult run_load(std::uint16_t port, std::size_t conns, std::size_t requests,
                              double rate, std::uint64_t seed) {
    serve::LoadgenConfig lcfg;
    lcfg.port = port;
    lcfg.connections = conns;
    lcfg.requests = requests;
    lcfg.rate = rate;
    lcfg.seed = seed;
    lcfg.hour_of_day = 9;
    lcfg.count = 1;  // one short stream per request: transport cost dominates
    lcfg.max_stream_len = 8;
    lcfg.ue_prefix = "bench";
    return serve::run_loadtest(lcfg);
}

std::vector<TransportPoint> run_ladder(std::uint16_t port, std::uint64_t seed) {
    std::vector<TransportPoint> pts;
    for (const std::size_t conns : kLadder) {
        TransportPoint p;
        p.connections = conns;
        p.r = run_load(port, conns, std::max<std::size_t>(128, conns * 2), kLadderRps, seed++);
        pts.push_back(std::move(p));
    }
    return pts;
}

std::size_t sustained_connections(const std::vector<TransportPoint>& pts) {
    std::size_t best = 0;
    for (const auto& p : pts) {
        if (p.r.failed == 0 && p.r.latency.percentiles().p99 <= kSloP99Seconds) {
            best = std::max(best, p.connections);
        }
    }
    return best;
}

void print_transport_row(const char* transport, const TransportPoint& p) {
    const auto pct = p.r.latency.percentiles();
    std::printf("  %-8s %4zu conns: %4zu ok %4zu failed   p50 %.4fs  p99 %.4fs\n", transport,
                p.connections, p.r.ok, p.r.failed, pct.p50, pct.p99);
}

void json_transport_row(std::FILE* f, const char* transport, const TransportPoint& p, bool last) {
    const auto pct = p.r.latency.percentiles();
    std::fprintf(f,
                 "      {\"transport\": \"%s\", \"connections\": %zu, \"ok\": %zu, "
                 "\"failed\": %zu, \"p50\": %.4f, \"p99\": %.4f}%s\n",
                 transport, p.connections, p.r.ok, p.r.failed, pct.p50, pct.p99, last ? "" : ",");
}

void json_open_row(std::FILE* f, const OpenPoint& p, bool last) {
    const auto pct = p.r.latency.percentiles();
    std::fprintf(f,
                 "      {\"fraction\": %.2f, \"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
                 "\"ok\": %zu, \"failed\": %zu, \"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}%s\n",
                 p.fraction, p.offered_rps, p.r.achieved_rps, p.r.ok, p.r.failed, pct.p50,
                 pct.p95, pct.p99, last ? "" : ",");
}

}  // namespace

int main() {
    trace::SyntheticWorldConfig wcfg;
    wcfg.population = {60, 0, 0};
    wcfg.seed = 7;
    const auto world = trace::SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);

    // Flagship decode shape (matches bench_e2e_generate) so the schedule and
    // precision comparisons run at the cost profile a serving engine pays.
    util::Rng init(11);
    core::CptGptConfig cfg;
    cfg.d_model = 128;
    cfg.heads = 4;
    cfg.mlp_hidden = 1024;
    cfg.blocks = 2;
    cfg.max_seq_len = 128;
    cfg.head_hidden = 128;
    core::CptGpt model(tok, cfg, init);

    // Bias the stop head hard toward "continue" so every stream runs to its
    // per-job cap: lengths are then exact, and all three schedules process
    // the same real token count.
    for (const auto& np : model.named_parameters("cptgpt.")) {
        if (np.name == "cptgpt.stop_head.fc2.bias") {
            auto bias = np.param->value.data();
            bias[0] = 8.0f;   // continue
            bias[1] = -8.0f;  // stop
        }
    }
    // Quantize after the bias edit so the int8 sampler sees the same stop
    // behaviour (QuantMlp snapshots weights and biases at quantize time).
    model.quantize_weights();

    core::SamplerConfig scfg;
    scfg.batch = kSlotCapacity;
    const core::Sampler sampler(model, tok, world.initial_event_distribution(), scfg);
    core::SamplerConfig qcfg = scfg;
    qcfg.precision = nn::Precision::kInt8W8A32;
    const core::Sampler sampler_int8(model, tok, world.initial_event_distribution(), qcfg);

    std::printf("bench_serve: %zu streams (%zu short len=%zu, %zu long len=%zu), "
                "slot capacity %zu, threads %zu\n",
                kStreams, kStreams - (kStreams + kLongEvery - 1) / kLongEvery, kShortLen,
                (kStreams + kLongEvery - 1) / kLongEvery, kLongLen, kSlotCapacity,
                util::configured_threads());

    run_continuous(sampler);  // warm-up
    const RunResult cont = run_continuous(sampler);
    const RunResult drain = run_drain_refill(sampler);
    const RunResult compacted = run_drain_compacted(sampler);
    const double speedup = cont.streams_per_sec / drain.streams_per_sec;
    const double speedup_vs_compacted = cont.streams_per_sec / compacted.streams_per_sec;

    // Same continuous schedule through the int8 weight-quantized decode path
    // with fp16 KV (DESIGN.md §12). The forced stop bias caps every stream's
    // length exactly, so both precisions decode the same token count — only
    // the kernel path differs.
    run_continuous(sampler_int8);  // warm-up
    const RunResult cont_int8 = run_continuous(sampler_int8);
    const double int8_speedup = cont_int8.streams_per_sec / cont.streams_per_sec;
    const std::size_t weights_int8_bytes = model.quantized_weights().weight_bytes();
    const std::size_t kv_fp32_bytes = model.make_decoder(kSlotCapacity).kv_bytes();
    const std::size_t kv_fp16_bytes =
        model.make_decoder(kSlotCapacity, nn::Precision::kInt8W8A32).kv_bytes();
    std::size_t weights_fp32_bytes = 0;
    for (const auto& np : model.named_parameters("cptgpt.")) {
        const auto& shape = np.param->value.shape();
        if (shape.size() == 2 && np.name.size() > 7 &&
            np.name.compare(np.name.size() - 7, 7, ".weight") == 0) {
            weights_fp32_bytes += nn::shape_numel(shape) * sizeof(float);
        }
    }

    print_row("continuous", cont);
    print_row("drain_then_refill", drain);
    print_row("drain_compacted", compacted);
    print_row("continuous_int8", cont_int8);
    std::printf("speedup (continuous / drain_then_refill): %.2fx\n", speedup);
    std::printf("speedup (continuous / drain_compacted):   %.2fx\n", speedup_vs_compacted);
    std::printf("speedup (continuous int8 / fp32):         %.2fx\n", int8_speedup);
    std::printf("memory: weights fp32 %zu B -> int8 %zu B; kv fp32 %zu B -> fp16 %zu B "
                "(capacity %zu)\n",
                weights_fp32_bytes, weights_int8_bytes, kv_fp32_bytes, kv_fp16_bytes,
                kSlotCapacity);
    if (cont.streams != kStreams || drain.streams != kStreams || compacted.streams != kStreams ||
        cont_int8.streams != kStreams || cont_int8.tokens != cont.tokens ||
        cont.tokens != drain.tokens || cont.tokens != compacted.tokens) {
        std::fprintf(stderr,
                     "bench_serve: schedules disagree on the workload "
                     "(continuous %zu/%zu, drain %zu/%zu, compacted %zu/%zu)\n",
                     cont.streams, cont.tokens, drain.streams, drain.tokens, compacted.streams,
                     compacted.tokens);
        return 1;
    }

    // ---- Speculative decode under the serving schedule ---------------------
    // The n-gram drafter is bootstrapped from the serving model's own plain
    // output, then spec_k is swept through the same continuous scheduler at
    // two occupancy points: full slot capacity (the throughput regime, where
    // the wide batch already amortizes the weight stream and the verify
    // window mostly adds rows) and capacity 2 (the latency-bound regime
    // speculation exists for). Spec rows stay out of the workload-equality
    // check above: rejection sampling consumes per-stream randomness
    // differently, so token counts match only in distribution. Table-6
    // fidelity deltas live in bench_e2e_generate's spec sweep — this model
    // is untrained and stop-biased, so distribution metrics mean nothing
    // here, and the same untrained weights give the n-gram drafter little to
    // predict (acceptance ~0.1), so these rows measure the draft/verify
    // machinery's overhead under the scheduler, not the trained-model win
    // (that headline is bench_e2e_generate's sweep).
    std::vector<SpecServeRow> spec_rows;
    {
        util::Rng boot_rng(123);
        const auto boot_ds = sampler.generate(64, boot_rng, "boot");
        const auto drafter = core::SpecDrafter::fit(boot_ds, tok);
        for (const std::size_t capacity : {kSlotCapacity, std::size_t{2}}) {
            double base_tps = 0.0;
            for (const std::size_t k :
                 {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{6}}) {
                core::SamplerConfig sp = scfg;
                sp.spec_k = k;
                sp.drafter = k > 1 ? &drafter : nullptr;
                const core::Sampler spec_sampler(model, tok, world.initial_event_distribution(),
                                                 sp);
                run_continuous(spec_sampler, capacity);  // warm-up
                core::Sampler::StageTimes times;
                SpecServeRow row;
                row.capacity = capacity;
                row.k = k;
                row.r = run_continuous(spec_sampler, capacity, &times);
                if (k == 1) base_tps = row.r.tokens_per_sec;
                row.speedup = row.r.tokens_per_sec / base_tps;
                row.accept_rate = times.spec_proposed > 0
                                      ? static_cast<double>(times.spec_accepted) /
                                            static_cast<double>(times.spec_proposed)
                                      : 0.0;
                const double forwards =
                    static_cast<double>(times.steps + times.verify_steps);
                row.tokens_per_forward =
                    forwards > 0.0 ? static_cast<double>(row.r.tokens) / forwards : 0.0;
                spec_rows.push_back(row);
                std::printf("spec capacity %2zu k=%zu: %zu streams (%zu tokens) in %.3f s -> "
                            "%9.1f tokens/s (%.3fx)  acc %.3f  tok/fwd %.2f\n",
                            row.capacity, row.k, row.r.streams, row.r.tokens, row.r.seconds,
                            row.r.tokens_per_sec, row.speedup, row.accept_rate,
                            row.tokens_per_forward);
            }
        }
    }

    // ---- TCP transport ladder + open-loop sweep ----------------------------
    // The 256-connection points need client + server fds past the usual 1024
    // soft cap; raise it to the hard cap.
    struct rlimit nofile;
    if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 && nofile.rlim_cur < nofile.rlim_max) {
        nofile.rlim_cur = nofile.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &nofile);
    }

    // Publish the (stop-biased) model into a scratch hub so the real Server —
    // hub load, admission queue, engine threads — is what both listeners front.
    const std::string hub_dir = (std::filesystem::temp_directory_path() /
                                 ("cpt_bench_serve_hub_" + std::to_string(::getpid())))
                                    .string();
    std::filesystem::remove_all(hub_dir);
    core::ModelHub(hub_dir).publish(model, tok, world.initial_event_distribution(),
                                    trace::DeviceType::kPhone, 9);
    serve::ServeConfig serve_cfg;
    serve_cfg.hub_dir = hub_dir;
    serve_cfg.model = cfg;
    serve_cfg.slot_capacity = kSlotCapacity;
    serve_cfg.queue_capacity = 1024;  // 256 concurrent conns must not trip kQueueFull
    serve::Server server(serve_cfg);

    std::vector<TransportPoint> threaded_pts;
    {
        serve::ThreadedTcpServer srv(server, "127.0.0.1", 0, kThreadBudget);
        std::thread acceptor([&srv] { srv.serve_forever(); });
        threaded_pts = run_ladder(srv.port(), 1000);
        srv.stop();
        acceptor.join();
    }

    std::vector<TransportPoint> epoll_pts;
    serve::LoadgenResult closed_cap;
    std::vector<OpenPoint> open_pts;
    {
        serve::TcpServer srv(server, "127.0.0.1", 0);
        std::thread acceptor([&srv] { srv.serve_forever(); });
        epoll_pts = run_ladder(srv.port(), 2000);

        // Closed-loop capacity: 16 connections each keeping one request
        // outstanding. achieved_rps is the operating point the open-loop
        // sweep scales against.
        closed_cap = run_load(srv.port(), 16, 256, 0.0, 3000);
        std::uint64_t seed = 4000;
        for (const double fraction : {0.5, 0.7, 0.85, 1.0}) {
            OpenPoint p;
            p.fraction = fraction;
            p.offered_rps = closed_cap.achieved_rps * fraction;
            const auto n = std::clamp<std::size_t>(static_cast<std::size_t>(p.offered_rps),
                                                   std::size_t{128}, std::size_t{600});
            p.r = run_load(srv.port(), 32, n, p.offered_rps, seed++);
            open_pts.push_back(std::move(p));
        }
        srv.stop();
        acceptor.join();
    }
    server.drain();
    std::filesystem::remove_all(hub_dir);

    const std::size_t threaded_sustained = sustained_connections(threaded_pts);
    const std::size_t epoll_sustained = sustained_connections(epoll_pts);
    const double conn_ratio =
        threaded_sustained > 0
            ? static_cast<double>(epoll_sustained) / static_cast<double>(threaded_sustained)
            : 0.0;
    double max_sustainable_rps = 0.0;
    for (const auto& p : open_pts) {
        if (p.r.failed == 0 && p.r.latency.percentiles().p99 <= kSloP99Seconds) {
            max_sustainable_rps = std::max(max_sustainable_rps, p.offered_rps);
        }
    }

    std::printf("transport ladder (open loop, %.0f req/s offered, SLO p99 <= %.0f ms, "
                "thread budget %zu):\n",
                kLadderRps, kSloP99Seconds * 1e3, kThreadBudget);
    for (const auto& p : threaded_pts) print_transport_row("threaded", p);
    for (const auto& p : epoll_pts) print_transport_row("epoll", p);
    std::printf("sustained connections: threaded %zu, epoll %zu (%.1fx)\n", threaded_sustained,
                epoll_sustained, conn_ratio);
    std::printf("open-loop sweep (closed-loop capacity %.1f req/s over 16 conns):\n",
                closed_cap.achieved_rps);
    for (const auto& p : open_pts) {
        const auto pct = p.r.latency.percentiles();
        std::printf("  %.2fx -> %7.1f req/s offered: %4zu ok %3zu failed   p50 %.4fs  "
                    "p99 %.4fs\n",
                    p.fraction, p.offered_rps, p.r.ok, p.r.failed, pct.p50, pct.p99);
    }
    std::printf("max sustainable rate at SLO: %.1f req/s\n", max_sustainable_rps);

    const char* path = "BENCH_serve.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_serve: cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serve\",\n"
                 "  \"model\": {\"d_model\": %zu, \"mlp_hidden\": %zu, \"blocks\": %zu, "
                 "\"max_seq_len\": %zu},\n"
                 "  \"workload\": {\"streams\": %zu, \"short_len\": %zu, \"long_len\": %zu, "
                 "\"slot_capacity\": %zu},\n  \"rows\": [\n",
                 cfg.d_model, cfg.mlp_hidden, cfg.blocks, cfg.max_seq_len, kStreams, kShortLen,
                 kLongLen, kSlotCapacity);
    json_row(f, "continuous", cont, false);
    json_row(f, "drain_then_refill", drain, false);
    json_row(f, "drain_compacted", compacted, false);
    json_row(f, "continuous_int8", cont_int8, true);
    std::fprintf(f,
                 "  ],\n  \"memory\": {\"weights_fp32_bytes\": %zu, \"weights_int8_bytes\": %zu, "
                 "\"kv_fp32_bytes\": %zu, \"kv_fp16_bytes\": %zu, \"kv_capacity\": %zu},\n"
                 "  \"speedup\": %.3f,\n  \"speedup_vs_compacted\": %.3f,\n"
                 "  \"int8_speedup\": %.3f,\n",
                 weights_fp32_bytes, weights_int8_bytes, kv_fp32_bytes, kv_fp16_bytes,
                 kSlotCapacity, speedup, speedup_vs_compacted, int8_speedup);
    std::fprintf(f, "  \"spec_sweep\": {\n    \"rows\": [\n");
    for (std::size_t i = 0; i < spec_rows.size(); ++i) {
        const auto& s = spec_rows[i];
        std::fprintf(f,
                     "      {\"capacity\": %zu, \"k\": %zu, \"streams\": %zu, \"tokens\": %zu, "
                     "\"seconds\": %.4f, \"tokens_per_sec\": %.1f, \"speedup\": %.3f, "
                     "\"accept_rate\": %.4f, \"tokens_per_forward\": %.3f}%s\n",
                     s.capacity, s.k, s.r.streams, s.r.tokens, s.r.seconds, s.r.tokens_per_sec,
                     s.speedup, s.accept_rate, s.tokens_per_forward,
                     i + 1 < spec_rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");
    std::fprintf(f,
                 "  \"transport\": {\n"
                 "    \"offered_rps\": %.1f, \"slo_p99_seconds\": %.3f, \"thread_budget\": %zu,\n"
                 "    \"rows\": [\n",
                 kLadderRps, kSloP99Seconds, kThreadBudget);
    for (const auto& p : threaded_pts) json_transport_row(f, "threaded", p, false);
    for (std::size_t i = 0; i < epoll_pts.size(); ++i) {
        json_transport_row(f, "epoll", epoll_pts[i], i + 1 == epoll_pts.size());
    }
    std::fprintf(f,
                 "    ],\n"
                 "    \"sustained_connections\": {\"threaded\": %zu, \"epoll\": %zu},\n"
                 "    \"connection_ratio\": %.2f\n  },\n",
                 threaded_sustained, epoll_sustained, conn_ratio);
    std::fprintf(f,
                 "  \"open_loop\": {\n"
                 "    \"closed_loop_capacity_rps\": %.1f, \"slo_p99_seconds\": %.3f,\n"
                 "    \"rows\": [\n",
                 closed_cap.achieved_rps, kSloP99Seconds);
    for (std::size_t i = 0; i < open_pts.size(); ++i) {
        json_open_row(f, open_pts[i], i + 1 == open_pts.size());
    }
    std::fprintf(f, "    ],\n    \"max_sustainable_rps\": %.1f\n  }\n}\n", max_sustainable_rps);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
