// Figure 6: scalability of generation — fidelity metrics of synthesized
// datasets of increasing size, each compared against an equally-sized random
// subset of the held-out real dataset. The paper's shape: fidelity is flat in
// the population size (10k..160k UEs there; a scaled sweep here).
#include <cstdio>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Figure 6: fidelity vs synthesized population size (phones) ===");
    const auto gpt = bench::get_cptgpt(device, kHour, env);

    // Large reference pool to subsample from (the paper uses the 380k-UE test
    // set; we scale down proportionally).
    trace::SyntheticWorldConfig ref_cfg;
    const std::size_t pool = env.full ? 20000 : 2000;
    ref_cfg.population = {pool, 0, 0};
    ref_cfg.hour_of_day = kHour;
    ref_cfg.seed = 990002;
    const auto reference = trace::SyntheticWorldGenerator(ref_cfg).generate();

    std::vector<std::size_t> sizes;
    for (std::size_t s = env.full ? 1000 : 100; s <= pool / 2; s *= 2) sizes.push_back(s);

    util::TextTable t({"UEs", "ev viol", "stream viol", "sojourn CONN", "sojourn IDLE",
                       "flow len", "breakdown max diff"});
    util::Rng sub_rng(55);
    for (const std::size_t n : sizes) {
        const auto synth = bench::sample_cptgpt(gpt, device, kHour, n, 1100 + n);
        // Equally sized random subset of the reference.
        trace::Dataset subset;
        subset.generation = reference.generation;
        std::vector<std::size_t> idx(reference.streams.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        sub_rng.shuffle(idx);
        for (std::size_t i = 0; i < n && i < idx.size(); ++i) {
            subset.streams.push_back(reference.streams[idx[i]]);
        }
        const auto r = metrics::evaluate_fidelity(synth, subset);
        t.add_row({std::to_string(n), util::fmt_pct(r.event_violation_fraction, 3),
                   util::fmt_pct(r.stream_violation_fraction, 1),
                   util::fmt_pct(r.maxy_sojourn_connected, 1),
                   util::fmt_pct(r.maxy_sojourn_idle, 1),
                   util::fmt_pct(r.maxy_flow_length_all, 1),
                   util::fmt_pct(r.max_breakdown_diff(), 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape to reproduce: every column stays flat as the synthesized population");
    std::puts("grows -> CPT-GPT generates arbitrarily large datasets at constant fidelity.");
    return 0;
}
