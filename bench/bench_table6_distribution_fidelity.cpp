// Table 6: maximum y-distance between the CDFs of the real and synthesized
// datasets — sojourn time (CONNECTED, IDLE) and flow length (all events,
// SRV_REQ, S1_CONN_REL) for SMM-1, SMM-20k, NetShare and CPT-GPT across the
// three device types.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

namespace {

// Paper Table 6 values, [metric][generator][device] as percentages.
struct PaperRow {
    const char* metric;
    double values[4][3];  // SMM-1, SMM-20k, NetShare, CPT-GPT x phone/car/tablet
};
constexpr PaperRow kPaper[] = {
    {"sojourn CONNECTED", {{40.1, 45.1, 44.0}, {14.8, 16.8, 17.6}, {27.9, 61.7, 53.6}, {6.4, 26.4, 11.3}}},
    {"sojourn IDLE", {{37.6, 46.8, 35.5}, {9.6, 14.8, 15.4}, {12.0, 16.2, 25.7}, {12.0, 33.3, 11.5}}},
    {"flow length all", {{44.2, 54.7, 60.2}, {1.9, 9.6, 18.7}, {1.6, 1.4, 3.8}, {3.8, 4.5, 3.6}}},
    {"flow length SRV_REQ", {{41.9, 55.4, 56.5}, {3.7, 9.7, 13.1}, {2.4, 4.0, 4.4}, {4.3, 5.9, 5.0}}},
    {"flow length S1_CONN_REL", {{43.5, 56.0, 60.0}, {1.7, 7.1, 18.3}, {1.5, 3.5, 3.4}, {4.0, 5.0, 3.5}}},
};
constexpr const char* kGenerators[] = {"SMM-1", "SMM-20k", "NetShare", "CPT-GPT"};

double metric_of(const cpt::metrics::FidelityReport& r, int m) {
    switch (m) {
        case 0: return r.maxy_sojourn_connected;
        case 1: return r.maxy_sojourn_idle;
        case 2: return r.maxy_flow_length_all;
        case 3: return r.maxy_flow_length_srv_req;
        default: return r.maxy_flow_length_s1_rel;
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;

    std::puts("=== Table 6: max CDF y-distance vs real dataset (lower is better) ===");
    // reports[generator][device]
    metrics::FidelityReport reports[4][3];
    for (std::size_t d = 0; d < trace::kNumDeviceTypes; ++d) {
        const auto device = static_cast<trace::DeviceType>(d);
        const auto train = bench::train_world(device, kHour, env);
        const auto real = bench::test_world(device, kHour, env);

        {  // SMM-1
            const auto model = smm::fit_smm1(train);
            util::Rng rng(401 + d);
            reports[0][d] = metrics::evaluate_fidelity(model.generate(env.gen_streams, rng), real);
        }
        {  // SMM-20k (cluster ensemble)
            util::Rng krng(11 + d);
            const auto ensemble = smm::SmmEnsemble::fit(train, env.smm_clusters, krng);
            util::Rng rng(402 + d);
            reports[1][d] =
                metrics::evaluate_fidelity(ensemble.generate(env.gen_streams, rng), real);
        }
        {  // NetShare
            const auto ns = bench::get_netshare(device, kHour, env);
            util::Rng rng(403 + d);
            reports[2][d] =
                metrics::evaluate_fidelity(ns.generator->generate(env.gen_streams, rng, device),
                                           real);
        }
        {  // CPT-GPT
            const auto gpt = bench::get_cptgpt(device, kHour, env);
            reports[3][d] = metrics::evaluate_fidelity(
                bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 404 + d), real);
        }
    }

    for (int m = 0; m < 5; ++m) {
        std::printf("\n--- %s ---\n", kPaper[m].metric);
        util::TextTable t({"generator", "phone paper", "phone ours", "car paper", "car ours",
                           "tablet paper", "tablet ours"});
        for (int g = 0; g < 4; ++g) {
            std::vector<std::string> row{kGenerators[g]};
            for (int d = 0; d < 3; ++d) {
                row.push_back(util::fmt(kPaper[m].values[g][d], 1) + "%");
                row.push_back(util::fmt_pct(metric_of(reports[g][d], m), 1));
            }
            t.add_row(std::move(row));
        }
        std::fputs(t.render().c_str(), stdout);
    }
    std::puts("\nShape to reproduce: SMM-1 far worst everywhere; CPT-GPT/SMM-20k best on");
    std::puts("sojourn times; CPT-GPT and NetShare comparable (both good) on flow length.");
    return 0;
}
