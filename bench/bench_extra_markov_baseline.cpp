// Extra ablation (not in the paper): how far do pure sequence statistics get
// without attention? An order-k Markov chain needs no domain knowledge (like
// CPT-GPT) but has k-bounded memory. Sweeping k quantifies how much of
// CPT-GPT's semantic correctness comes from long-range context: low orders
// violate the state machine measurably; no order recovers the per-UE
// flow-length diversity that attention-over-the-whole-stream captures.
#include <cstdio>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "smm/markov.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Extra ablation: order-k Markov baseline vs SMM-1 vs CPT-GPT (phones) ===");
    const auto train = bench::train_world(device, kHour, env);
    const auto real = bench::test_world(device, kHour, env);

    util::TextTable t({"generator", "event viol", "stream viol", "sojourn CONN", "sojourn IDLE",
                       "flow length", "max breakdown diff"});
    auto add = [&](const std::string& name, const trace::Dataset& synth) {
        const auto r = metrics::evaluate_fidelity(synth, real);
        t.add_row({name, util::fmt_pct(r.event_violation_fraction, 2),
                   util::fmt_pct(r.stream_violation_fraction, 1),
                   util::fmt_pct(r.maxy_sojourn_connected, 1),
                   util::fmt_pct(r.maxy_sojourn_idle, 1),
                   util::fmt_pct(r.maxy_flow_length_all, 1),
                   util::fmt_pct(r.max_breakdown_diff(), 2)});
    };

    for (const std::size_t order : {1, 2, 3}) {
        smm::MarkovGenerator::Config cfg;
        cfg.order = order;
        const auto model = smm::MarkovGenerator::fit(train, cfg);
        util::Rng rng(1200 + order);
        add("Markov-" + std::to_string(order), model.generate(env.gen_streams, rng));
    }
    {
        const auto model = smm::fit_smm1(train);
        util::Rng rng(1210);
        add("SMM-1", model.generate(env.gen_streams, rng));
    }
    {
        const auto gpt = bench::get_cptgpt(device, kHour, env);
        add("CPT-GPT", bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 1211));
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nReading: the order-1 chain violates the state machine (one event does not");
    std::puts("determine the UE state); order >= 2 is near-clean on this machine because two");
    std::puts("events almost always pin the state down. But NO Markov order recovers the");
    std::puts("per-UE diversity (flow-length column) that attention over the whole stream");
    std::puts("captures — bounded memory pools all UEs, like SMM-1.");
    return 0;
}
