// Microbenchmarks for the nn substrate (google-benchmark): the kernels that
// dominate CPT-GPT training and inference time.
#include <benchmark/benchmark.h>

#include "core/model.hpp"
#include "core/tokenizer.hpp"
#include "nn/modules.hpp"

namespace {

using namespace cpt;

void BM_MatmulForward(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(1);
    nn::Var a = nn::make_var(nn::Tensor::randn(rng, {n, n}));
    nn::Var b = nn::make_var(nn::Tensor::randn(rng, {n, n}));
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::matmul(a, b)->value.data().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatmulForward)->Arg(64)->Arg(128)->Arg(256);

void BM_AttentionForwardBackward(benchmark::State& state) {
    const auto t = static_cast<std::size_t>(state.range(0));
    util::Rng rng(2);
    nn::MultiHeadSelfAttention attn(64, 4, rng);
    for (auto _ : state) {
        nn::Var x = nn::make_param(nn::Tensor::randn(rng, {4, t, 64}, 0.5f));
        nn::Var loss = nn::mean_all(attn.forward(x));
        nn::backward(loss);
        benchmark::DoNotOptimize(x->grad.data().data());
    }
}
BENCHMARK(BM_AttentionForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerTrainStep(benchmark::State& state) {
    util::Rng rng(3);
    nn::TransformerConfig cfg;
    cfg.d_token = 9;
    cfg.d_model = 64;
    cfg.heads = 4;
    cfg.mlp_hidden = 256;
    cfg.blocks = 2;
    cfg.max_seq_len = 128;
    nn::Transformer model(cfg, rng);
    auto params = model.parameters();
    for (auto _ : state) {
        nn::Var x = nn::make_var(nn::Tensor::randn(rng, {8, 64, 9}, 0.5f));
        nn::Var loss = nn::mean_all(model.forward(x));
        nn::zero_grad(params);
        nn::backward(loss);
        benchmark::DoNotOptimize(params.front()->grad.data().data());
    }
}
BENCHMARK(BM_TransformerTrainStep);

void BM_LstmStep(benchmark::State& state) {
    util::Rng rng(4);
    nn::LstmStack lstm(18, 48, 1, rng);
    auto st = lstm.zero_state(32);
    nn::Var x = nn::make_var(nn::Tensor::randn(rng, {32, 18}, 0.5f));
    for (auto _ : state) {
        auto [h, next] = lstm.step(x, st);
        benchmark::DoNotOptimize(h->value.data().data());
    }
}
BENCHMARK(BM_LstmStep);

void BM_CptGptSampleToken(benchmark::State& state) {
    // Cost of one autoregressive forward at context length T.
    const auto t = static_cast<std::size_t>(state.range(0));
    util::Rng rng(5);
    const core::Tokenizer tok(cellular::Generation::kLte4G, 0.0, 8.0);
    core::CptGptConfig cfg;
    cfg.max_seq_len = 256;
    const core::CptGpt model(tok, cfg, rng);
    nn::Var x = nn::make_var(nn::Tensor::randn(rng, {1, t, tok.d_token()}, 0.5f));
    for (auto _ : state) {
        const auto out = model.forward(x);
        benchmark::DoNotOptimize(out.event_logits->value.data().data());
    }
}
BENCHMARK(BM_CptGptSampleToken)->Arg(16)->Arg(64)->Arg(192);

}  // namespace

BENCHMARK_MAIN();
