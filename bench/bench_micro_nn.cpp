// Microbenchmarks for the nn substrate: a GEMM GFLOP/s suite comparing the
// seed's naive kernels against the blocked/threaded kernels (emitted both as
// a table and as machine-readable BENCH_micro_nn.json), followed by the
// google-benchmark micro suite for the composite kernels.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/tokenizer.hpp"
#include "nn/gemm.hpp"
#include "nn/modules.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cpt;

// ---- GEMM GFLOP/s suite ------------------------------------------------------

// The seed's GEMM kernels, verbatim (axpy-style inner loops with branchy
// zero-skips), kept here as the perf baseline the blocked kernels are
// measured against.
namespace seed {

void gemm_nn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        const float* arow = a + m * k_dim;
        float* crow = c + m * n_dim;
        for (std::size_t k = 0; k < k_dim; ++k) {
            const float av = arow[k];
            if (av == 0.0f) continue;
            const float* brow = b + k * n_dim;
            for (std::size_t n = 0; n < n_dim; ++n) crow[n] += av * brow[n];
        }
    }
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        const float* arow = a + m * k_dim;
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            const float* brow = b + n * k_dim;
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
            crow[n] += acc;
        }
    }
}

void gemm_tn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim) {
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* arow = a + k * m_dim;
        const float* brow = b + k * n_dim;
        for (std::size_t m = 0; m < m_dim; ++m) {
            const float av = arow[m];
            if (av == 0.0f) continue;
            float* crow = c + m * n_dim;
            for (std::size_t n = 0; n < n_dim; ++n) crow[n] += av * brow[n];
        }
    }
}

}  // namespace seed

struct GemmShape {
    std::size_t m, k, n;
    const char* note;
};

// d_model-scale and MLP-scale shapes from the default (64/256) and flagship
// (128/1024) model configs, plus the M = 1 decode case.
constexpr GemmShape kShapes[] = {
    {1, 64, 256, "decode fc1 (d_model=64)"},
    {1, 256, 64, "decode fc2 (d_model=64)"},
    {1, 128, 1024, "decode fc1 (flagship mlp=1024)"},
    {128, 64, 256, "fc1 fwd (seq=128, d_model=64)"},
    {128, 256, 64, "fc2 fwd (seq=128, d_model=64)"},
    {512, 64, 64, "qkv proj (batched seq)"},
    {512, 128, 128, "proj fwd (flagship d_model=128)"},
    {512, 128, 1024, "fc1 fwd (flagship mlp=1024)"},
};

double time_gflops(const std::function<void(float*)>& run, std::size_t m, std::size_t k,
                   std::size_t n, std::vector<float>& c) {
    const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                         static_cast<double>(n);
    using clock = std::chrono::steady_clock;
    // Calibrate the iteration count to ~100 ms of work, then take the best of
    // three timed blocks (best-of filters scheduler noise on shared boxes).
    std::size_t iters = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < iters; ++i) run(c.data());
        const double sec = std::chrono::duration<double>(clock::now() - t0).count();
        if (sec > 0.02 || iters > (1u << 24)) break;
        iters *= 4;
    }
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < iters; ++i) run(c.data());
        const double sec = std::chrono::duration<double>(clock::now() - t0).count();
        best = std::max(best, flops * static_cast<double>(iters) / sec / 1e9);
    }
    benchmark::DoNotOptimize(c.data());
    return best;
}

std::vector<util::SimdTier> available_tiers() {
    std::vector<util::SimdTier> tiers{util::SimdTier::kScalar};
    if (util::simd_tier_available(util::SimdTier::kSse2)) tiers.push_back(util::SimdTier::kSse2);
    if (util::simd_tier_available(util::SimdTier::kAvx2)) tiers.push_back(util::SimdTier::kAvx2);
    return tiers;
}

struct GemmRow {
    const char* op;
    GemmShape shape;
    double gflops_seed = 0.0;
    // Single-thread GFLOP/s per SIMD tier, indexed by SimdTier; 0 when the
    // tier is unavailable on this host/build.
    double gflops_tier_t1[3] = {0.0, 0.0, 0.0};
    // Thread scaling at the best available tier.
    double gflops_best_t2 = 0.0;
    double gflops_best_tn = 0.0;
};

std::vector<GemmRow> run_gemm_suite(std::size_t n_threads) {
    using SeedFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t,
                            std::size_t);
    using BlockedFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t,
                               std::size_t, util::ThreadPool*);
    struct Op {
        const char* name;
        SeedFn seed;
        BlockedFn blocked;
    };
    const Op ops[] = {
        {"nn", seed::gemm_nn, nn::gemm_nn},
        {"nt", seed::gemm_nt, nn::gemm_nt},
        {"tn", seed::gemm_tn, nn::gemm_tn},
    };
    const auto tiers = available_tiers();
    const util::SimdTier best = tiers.back();

    util::ThreadPool pool1(1);
    util::ThreadPool pool2(2);
    util::ThreadPool pooln(n_threads);
    std::mt19937 gen(42);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);

    std::vector<GemmRow> rows;
    for (const auto& op : ops) {
        for (const auto& s : kShapes) {
            std::vector<float> a(s.m * s.k), b(s.k * s.n), c(s.m * s.n, 0.0f);
            for (float& x : a) x = dist(gen);
            for (float& x : b) x = dist(gen);

            GemmRow row{op.name, s};
            row.gflops_seed = time_gflops(
                [&](float* pc) { op.seed(a.data(), b.data(), pc, s.m, s.k, s.n); }, s.m, s.k,
                s.n, c);
            for (util::SimdTier tier : tiers) {
                const util::SimdTier prev = util::set_simd_tier(tier);
                row.gflops_tier_t1[static_cast<int>(tier)] = time_gflops(
                    [&](float* pc) { op.blocked(a.data(), b.data(), pc, s.m, s.k, s.n, &pool1); },
                    s.m, s.k, s.n, c);
                if (tier == best) {
                    row.gflops_best_t2 = time_gflops(
                        [&](float* pc) {
                            op.blocked(a.data(), b.data(), pc, s.m, s.k, s.n, &pool2);
                        },
                        s.m, s.k, s.n, c);
                    row.gflops_best_tn = time_gflops(
                        [&](float* pc) {
                            op.blocked(a.data(), b.data(), pc, s.m, s.k, s.n, &pooln);
                        },
                        s.m, s.k, s.n, c);
                }
                util::set_simd_tier(prev);
            }
            rows.push_back(row);

            std::printf("gemm_%s %4zux%4zux%4zu  seed %7.2f  scalar %7.2f  sse2 %7.2f  "
                        "avx2 %7.2f  %s(t2) %7.2f  t%zu %7.2f GFLOP/s  (best x%.2f seed)  %s\n",
                        op.name, s.m, s.k, s.n, row.gflops_seed, row.gflops_tier_t1[0],
                        row.gflops_tier_t1[1], row.gflops_tier_t1[2], util::simd_tier_name(best),
                        row.gflops_best_t2, n_threads, row.gflops_best_tn,
                        row.gflops_tier_t1[static_cast<int>(best)] / row.gflops_seed, s.note);
            std::fflush(stdout);
        }
    }
    return rows;
}

void write_json(const std::vector<GemmRow>& rows, std::size_t n_threads, const char* path) {
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_micro_nn: cannot write %s\n", path);
        return;
    }
    const auto tiers = available_tiers();
    const int best = static_cast<int>(tiers.back());
    std::fprintf(f, "{\n  \"bench\": \"micro_nn_gemm\",\n  \"threads_configured\": %zu,\n",
                 n_threads);
    std::fprintf(f, "  \"simd_tiers\": [");
    for (std::size_t i = 0; i < tiers.size(); ++i) {
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", util::simd_tier_name(tiers[i]));
    }
    std::fprintf(f, "],\n  \"best_tier\": \"%s\",\n  \"rows\": [\n",
                 util::simd_tier_name(tiers.back()));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(
            f,
            "    {\"op\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, \"note\": \"%s\", "
            "\"gflops_seed\": %.3f, "
            "\"gflops_scalar_t1\": %.3f, \"gflops_sse2_t1\": %.3f, \"gflops_avx2_t1\": %.3f, "
            "\"gflops_best_t2\": %.3f, \"gflops_best_tn\": %.3f, "
            "\"speedup_scalar_vs_seed\": %.3f, \"speedup_sse2_vs_seed\": %.3f, "
            "\"speedup_avx2_vs_seed\": %.3f, \"speedup_best_vs_seed\": %.3f}%s\n",
            r.op, r.shape.m, r.shape.k, r.shape.n, r.shape.note, r.gflops_seed,
            r.gflops_tier_t1[0], r.gflops_tier_t1[1], r.gflops_tier_t1[2], r.gflops_best_t2,
            r.gflops_best_tn, r.gflops_tier_t1[0] / r.gflops_seed,
            r.gflops_tier_t1[1] / r.gflops_seed, r.gflops_tier_t1[2] / r.gflops_seed,
            r.gflops_tier_t1[best] / r.gflops_seed, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

// ---- google-benchmark micro suite --------------------------------------------

void BM_MatmulForward(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(1);
    nn::Var a = nn::make_var(nn::Tensor::randn(rng, {n, n}));
    nn::Var b = nn::make_var(nn::Tensor::randn(rng, {n, n}));
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::matmul(a, b)->value.data().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatmulForward)->Arg(64)->Arg(128)->Arg(256);

void BM_AttentionForwardBackward(benchmark::State& state) {
    const auto t = static_cast<std::size_t>(state.range(0));
    util::Rng rng(2);
    nn::MultiHeadSelfAttention attn(64, 4, rng);
    for (auto _ : state) {
        nn::Var x = nn::make_param(nn::Tensor::randn(rng, {4, t, 64}, 0.5f));
        nn::Var loss = nn::mean_all(attn.forward(x));
        nn::backward(loss);
        benchmark::DoNotOptimize(x->grad.data().data());
    }
}
BENCHMARK(BM_AttentionForwardBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerTrainStep(benchmark::State& state) {
    util::Rng rng(3);
    nn::TransformerConfig cfg;
    cfg.d_token = 9;
    cfg.d_model = 64;
    cfg.heads = 4;
    cfg.mlp_hidden = 256;
    cfg.blocks = 2;
    cfg.max_seq_len = 128;
    nn::Transformer model(cfg, rng);
    auto params = model.parameters();
    for (auto _ : state) {
        nn::Var x = nn::make_var(nn::Tensor::randn(rng, {8, 64, 9}, 0.5f));
        nn::Var loss = nn::mean_all(model.forward(x));
        nn::zero_grad(params);
        nn::backward(loss);
        benchmark::DoNotOptimize(params.front()->grad.data().data());
    }
}
BENCHMARK(BM_TransformerTrainStep);

void BM_LstmStep(benchmark::State& state) {
    util::Rng rng(4);
    nn::LstmStack lstm(18, 48, 1, rng);
    auto st = lstm.zero_state(32);
    nn::Var x = nn::make_var(nn::Tensor::randn(rng, {32, 18}, 0.5f));
    for (auto _ : state) {
        auto [h, next] = lstm.step(x, st);
        benchmark::DoNotOptimize(h->value.data().data());
    }
}
BENCHMARK(BM_LstmStep);

void BM_CptGptSampleToken(benchmark::State& state) {
    // Cost of one autoregressive forward at context length T.
    const auto t = static_cast<std::size_t>(state.range(0));
    util::Rng rng(5);
    const core::Tokenizer tok(cellular::Generation::kLte4G, 0.0, 8.0);
    core::CptGptConfig cfg;
    cfg.max_seq_len = 256;
    const core::CptGpt model(tok, cfg, rng);
    nn::Var x = nn::make_var(nn::Tensor::randn(rng, {1, t, tok.d_token()}, 0.5f));
    for (auto _ : state) {
        const auto out = model.forward(x);
        benchmark::DoNotOptimize(out.event_logits->value.data().data());
    }
}
BENCHMARK(BM_CptGptSampleToken)->Arg(16)->Arg(64)->Arg(192);

}  // namespace

int main(int argc, char** argv) {
    const std::size_t n_threads = std::max<std::size_t>(cpt::util::configured_threads(), 2);
    std::printf("== GEMM GFLOP/s (seed naive kernels vs blocked, threads 1/2/%zu) ==\n",
                n_threads);
    const auto rows = run_gemm_suite(n_threads);
    write_json(rows, n_threads, "BENCH_micro_nn.json");

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
