// Shared harness for the evaluation benches (one binary per paper table /
// figure). Provides:
//   * BenchEnv — size knobs, overridable via --flags or CPT_* env vars, with
//     a FULL mode (--full / CPT_FULL=1) approximating paper scale;
//   * deterministic train/test world slices per device type & hour;
//   * trained-model caching: CPT-GPT and NetShare checkpoints are stored in
//     an artifact directory keyed by their configuration, so the bench suite
//     trains each model once and every binary after that loads it.
//
// All benches print the corresponding paper values next to measured ones.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "gan/netshare.hpp"
#include "smm/ensemble.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

namespace cpt::bench {

struct BenchEnv {
    std::size_t train_ues = 600;    // training population per device type
    std::size_t gen_streams = 250;  // synthesized streams per fidelity eval
    int epochs = 20;                // CPT-GPT max epochs
    int gan_epochs = 36;            // NetShare max epochs
    std::size_t window = 128;       // CPT-GPT training window
    std::size_t smm_clusters = 24;  // SMM-20k clusters per device type
    bool full = false;
    std::string artifact_dir = "bench_artifacts";

    static BenchEnv from_options(const util::Options& opt);
};

// Model configuration used by every bench (CPU-sized; FULL mode widens it).
core::CptGptConfig bench_model_config(const BenchEnv& env);
gan::NetShareConfig bench_gan_config(const BenchEnv& env);

// Deterministic world slices. Train and test use disjoint seeds (the paper
// trains on June data and tests on August data, §5.1).
trace::Dataset train_world(trace::DeviceType d, int hour, const BenchEnv& env);
trace::Dataset test_world(trace::DeviceType d, int hour, const BenchEnv& env);

struct TrainedCptGpt {
    std::unique_ptr<core::CptGpt> model;
    core::Tokenizer tokenizer;
    std::vector<double> initial_dist;
    double train_seconds = 0.0;  // 0 when loaded from cache
    bool from_cache = false;
};

// Returns the per-device CPT-GPT, training (and caching) on first use. As in
// the paper (§5.1), the phone model is trained from scratch and the car and
// tablet models are derived from it via transfer learning.
TrainedCptGpt get_cptgpt(trace::DeviceType d, int hour, const BenchEnv& env);

struct TrainedNetShare {
    std::unique_ptr<gan::NetShareGenerator> generator;
    core::Tokenizer tokenizer;
    double train_seconds = 0.0;
    bool from_cache = false;
};

TrainedNetShare get_netshare(trace::DeviceType d, int hour, const BenchEnv& env);

// Generates a fidelity-eval dataset from a trained CPT-GPT. `top_p` = 1.0 is
// the paper-faithful raw sampling; < 1 applies nucleus truncation.
trace::Dataset sample_cptgpt(const TrainedCptGpt& m, trace::DeviceType d, int hour,
                             std::size_t n, std::uint64_t seed, double top_p = 1.0);

const char* device_name(trace::DeviceType d);

}  // namespace cpt::bench
