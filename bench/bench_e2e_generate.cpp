// End-to-end generation throughput: Sampler::generate driven through the
// KV-cached decoder and the SIMD kernel layer, reported as streams/sec and
// tokens/sec per available SIMD tier and per decode precision — fp32 vs the
// int8 weight-quantized path with fp16 KV storage (DESIGN.md §12). A raw
// decode-engine row holds the batch full for a fixed number of steps,
// isolating the kernel path from stop-sampling variance; the memory section
// reports the resident bytes of decoder weights and KV cache in each mode.
// Emits BENCH_e2e_generate.json next to the binary.
//
// The model is untrained — generation throughput depends on shapes, not on
// weight values — so the bench needs no checkpoint and runs in seconds.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/tokenizer.hpp"
#include "trace/synthetic.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cpt;

std::vector<util::SimdTier> available_tiers() {
    std::vector<util::SimdTier> tiers{util::SimdTier::kScalar};
    if (util::simd_tier_available(util::SimdTier::kSse2)) tiers.push_back(util::SimdTier::kSse2);
    if (util::simd_tier_available(util::SimdTier::kAvx2)) tiers.push_back(util::SimdTier::kAvx2);
    return tiers;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct E2eRow {
    const char* tier;
    const char* precision;
    std::size_t streams = 0;
    std::size_t tokens = 0;
    double seconds = 0.0;
    double streams_per_sec = 0.0;
    double tokens_per_sec = 0.0;
};

struct DecodeRow {
    const char* tier;
    const char* precision;
    std::size_t batch = 0;
    std::size_t steps = 0;
    double seconds = 0.0;
    double tokens_per_sec = 0.0;
};

// Per-stage attribution of the generate workload (Sampler::StageTimes),
// accumulated over the same stream count as the e2e rows.
struct StageRow {
    const char* tier;
    const char* precision;
    cpt::core::Sampler::StageTimes times;
};

}  // namespace

int main() {
    // Flagship-ish model on a synthetic-world tokenizer; untrained weights.
    trace::SyntheticWorldConfig wcfg;
    wcfg.population = {60, 0, 0};
    wcfg.seed = 7;
    const auto world = trace::SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng init(11);
    core::CptGptConfig cfg;
    cfg.d_model = 128;
    cfg.heads = 4;
    cfg.mlp_hidden = 1024;
    cfg.blocks = 2;
    cfg.max_seq_len = 128;
    cfg.head_hidden = 128;
    core::CptGpt model(tok, cfg, init);
    model.quantize_weights();

    core::SamplerConfig scfg;
    scfg.batch = 32;
    const core::Sampler sampler_fp32(model, tok, world.initial_event_distribution(), scfg);
    core::SamplerConfig qcfg = scfg;
    qcfg.precision = nn::Precision::kInt8W8A32;
    const core::Sampler sampler_int8(model, tok, world.initial_event_distribution(), qcfg);

    const std::size_t n_streams = 256;
    const std::size_t decode_batch = 32;
    const std::size_t decode_steps = 96;
    const std::size_t threads = util::configured_threads();

    // Resident decode-path memory per mode: weight matrices (the tensors the
    // decode GEMVs read) and the KV cache at `decode_batch` rows.
    std::size_t weights_fp32_bytes = 0;
    for (const auto& np : model.named_parameters("cptgpt.")) {
        const auto& shape = np.param->value.shape();
        if (shape.size() == 2 && np.name.size() > 7 &&
            np.name.compare(np.name.size() - 7, 7, ".weight") == 0) {
            weights_fp32_bytes += nn::shape_numel(shape) * sizeof(float);
        }
    }
    const std::size_t weights_int8_bytes = model.quantized_weights().weight_bytes();
    const std::size_t kv_fp32_bytes = model.make_decoder(decode_batch).kv_bytes();
    const std::size_t kv_fp16_bytes =
        model.make_decoder(decode_batch, nn::Precision::kInt8W8A32).kv_bytes();

    struct Mode {
        const char* name;
        nn::Precision precision;
        const core::Sampler* sampler;
    };
    const Mode modes[] = {
        {"fp32", nn::Precision::kFp32, &sampler_fp32},
        {"int8_w8a32", nn::Precision::kInt8W8A32, &sampler_int8},
    };

    std::vector<E2eRow> e2e_rows;
    std::vector<StageRow> stage_rows;
    std::vector<DecodeRow> decode_rows;
    for (util::SimdTier tier : available_tiers()) {
        const util::SimdTier prev = util::set_simd_tier(tier);
        for (const Mode& mode : modes) {
            const core::Sampler& sampler = *mode.sampler;

            // Full pipeline: bootstrap + decode + sampling + compaction.
            {
                util::Rng rng(42);
                sampler.generate(8, rng);  // warm-up
                util::Rng rng2(42);
                const auto t0 = std::chrono::steady_clock::now();
                const auto ds = sampler.generate(n_streams, rng2);
                E2eRow row{util::simd_tier_name(tier), mode.name};
                row.seconds = seconds_since(t0);
                row.streams = ds.streams.size();
                for (const auto& s : ds.streams) row.tokens += s.events.size();
                row.streams_per_sec = static_cast<double>(row.streams) / row.seconds;
                row.tokens_per_sec = static_cast<double>(row.tokens) / row.seconds;
                e2e_rows.push_back(row);
                std::printf("e2e_generate  tier %-6s %-10s  %zu streams (%zu tokens) in %.3f s  "
                            "-> %8.1f streams/s  %9.1f tokens/s\n",
                            row.tier, row.precision, row.streams, row.tokens, row.seconds,
                            row.streams_per_sec, row.tokens_per_sec);
            }

            // Stage attribution: the same workload as the e2e row, driven
            // through generate_batch with a StageTimes accumulator so
            // tier-to-tier and precision-to-precision differences can be
            // pinned to a stage. The e2e workload's batches shrink as streams
            // stop (mean stream length is ~3 tokens here), so its decode
            // stage runs mostly tiny shapes — unlike the held-full
            // decode_engine row below.
            {
                util::Rng root(42);
                std::vector<util::Rng> rngs;
                rngs.reserve(n_streams);
                for (std::size_t i = 0; i < n_streams; ++i) rngs.push_back(root.fork(i));
                StageRow row{util::simd_tier_name(tier), mode.name, {}};
                for (std::size_t b0 = 0; b0 < n_streams; b0 += scfg.batch) {
                    const std::size_t b1 = std::min(b0 + scfg.batch, n_streams);
                    sampler.generate_batch(std::span(rngs).subspan(b0, b1 - b0), "stage", b0,
                                           &row.times);
                }
                stage_rows.push_back(row);
                const auto& t = row.times;
                std::printf("stage_times   tier %-6s %-10s  %zu steps: bootstrap %.4f s  "
                            "decode %.4f s  sample %.4f s  compact %.4f s\n",
                            row.tier, row.precision, t.steps, t.bootstrap, t.decode, t.sample,
                            t.compact);
            }

            // Decode engine only: full batch held for a fixed step count.
            {
                auto decoder = model.make_decoder(decode_batch, mode.precision);
                auto scratch = model.make_decode_scratch(decode_batch, mode.precision);
                nn::Tensor x = nn::Tensor::zeros({decode_batch, tok.d_token()});
                const auto t0 = std::chrono::steady_clock::now();
                for (std::size_t t = 0; t < decode_steps; ++t) {
                    model.decode_step(decoder, x, scratch);
                }
                DecodeRow row{util::simd_tier_name(tier), mode.name, decode_batch, decode_steps};
                row.seconds = seconds_since(t0);
                row.tokens_per_sec =
                    static_cast<double>(decode_batch * decode_steps) / row.seconds;
                decode_rows.push_back(row);
                std::printf("decode_engine tier %-6s %-10s  batch %zu x %zu steps in %.3f s  "
                            "-> %9.1f tokens/s\n",
                            row.tier, row.precision, row.batch, row.steps, row.seconds,
                            row.tokens_per_sec);
            }
        }
        util::set_simd_tier(prev);
    }

    // int8 gain on the host's best tier (the last tier in available_tiers()).
    // The e2e number is the served workload shape — batches shrink as streams
    // stop, so decode runs mostly GEMV-shaped rows where int8 wins most; the
    // engine number is the held-full batch-32 GEMM shape where fp32 AVX2 is
    // already near peak and the gain is attention/overhead-diluted.
    double e2e_speedup_int8 = 0.0;
    double decode_engine_speedup_int8 = 0.0;
    if (e2e_rows.size() >= 2 && decode_rows.size() >= 2) {
        const auto& gen_fp32 = e2e_rows[e2e_rows.size() - 2];
        const auto& gen_int8 = e2e_rows[e2e_rows.size() - 1];
        e2e_speedup_int8 = gen_int8.tokens_per_sec / gen_fp32.tokens_per_sec;
        const auto& eng_fp32 = decode_rows[decode_rows.size() - 2];
        const auto& eng_int8 = decode_rows[decode_rows.size() - 1];
        decode_engine_speedup_int8 = eng_int8.tokens_per_sec / eng_fp32.tokens_per_sec;
        std::printf("int8 / fp32 speedup (tier %s): e2e tokens/s %.2fx, held-full engine %.2fx\n",
                    gen_int8.tier, e2e_speedup_int8, decode_engine_speedup_int8);
    }
    std::printf("memory: weights fp32 %zu B -> int8 %zu B; kv fp32 %zu B -> fp16 %zu B "
                "(batch %zu)\n",
                weights_fp32_bytes, weights_int8_bytes, kv_fp32_bytes, kv_fp16_bytes,
                decode_batch);

    const char* path = "BENCH_e2e_generate.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_e2e_generate: cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"e2e_generate\",\n  \"threads_configured\": %zu,\n"
                 "  \"model\": {\"d_model\": %zu, \"mlp_hidden\": %zu, \"blocks\": %zu, "
                 "\"max_seq_len\": %zu},\n"
                 "  \"memory\": {\"weights_fp32_bytes\": %zu, \"weights_int8_bytes\": %zu, "
                 "\"kv_fp32_bytes\": %zu, \"kv_fp16_bytes\": %zu, \"kv_batch\": %zu},\n"
                 "  \"generate_rows\": [\n",
                 threads, cfg.d_model, cfg.mlp_hidden, cfg.blocks, cfg.max_seq_len,
                 weights_fp32_bytes, weights_int8_bytes, kv_fp32_bytes, kv_fp16_bytes,
                 decode_batch);
    for (std::size_t i = 0; i < e2e_rows.size(); ++i) {
        const auto& r = e2e_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"precision\": \"%s\", \"streams\": %zu, "
                     "\"tokens\": %zu, \"seconds\": %.4f, \"streams_per_sec\": %.1f, "
                     "\"tokens_per_sec\": %.1f}%s\n",
                     r.tier, r.precision, r.streams, r.tokens, r.seconds, r.streams_per_sec,
                     r.tokens_per_sec, i + 1 < e2e_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"stage_rows\": [\n");
    for (std::size_t i = 0; i < stage_rows.size(); ++i) {
        const auto& r = stage_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"precision\": \"%s\", \"steps\": %zu, "
                     "\"bootstrap_sec\": %.4f, \"decode_sec\": %.4f, \"sample_sec\": %.4f, "
                     "\"compact_sec\": %.4f}%s\n",
                     r.tier, r.precision, r.times.steps, r.times.bootstrap, r.times.decode,
                     r.times.sample, r.times.compact, i + 1 < stage_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"decode_rows\": [\n");
    for (std::size_t i = 0; i < decode_rows.size(); ++i) {
        const auto& r = decode_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"precision\": \"%s\", \"batch\": %zu, "
                     "\"steps\": %zu, \"seconds\": %.4f, \"tokens_per_sec\": %.1f}%s\n",
                     r.tier, r.precision, r.batch, r.steps, r.seconds, r.tokens_per_sec,
                     i + 1 < decode_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"e2e_speedup_int8\": %.3f,\n  \"decode_engine_speedup_int8\": %.3f\n}\n",
                 e2e_speedup_int8, decode_engine_speedup_int8);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
