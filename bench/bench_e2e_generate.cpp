// End-to-end generation throughput: Sampler::generate driven through the
// KV-cached decoder and the SIMD kernel layer, reported as streams/sec and
// tokens/sec per available SIMD tier and per decode precision — fp32 vs the
// int8 weight-quantized path with fp16 KV storage (DESIGN.md §12). A raw
// decode-engine row holds the batch full for a fixed number of steps,
// isolating the kernel path from stop-sampling variance; the memory section
// reports the resident bytes of decoder weights and KV cache in each mode.
// Emits BENCH_e2e_generate.json next to the binary.
//
// The tier/precision rows use an untrained model — generation throughput
// depends on shapes, not on weight values — so they need no checkpoint and
// run in seconds. The speculative-decode k-sweep at the end is the exception:
// draft acceptance (and therefore the speedup) is a property of the learned
// token distribution, so that section trains a serve-scale model in-process
// (~1 min) before sweeping spec_k, and additionally reports Table-6 fidelity
// deltas per k to show speculation leaves the output distribution inside the
// ε band. Set CPT_BENCH_SPEC=0 to skip the sweep and keep the quick rows.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/spec_drafter.hpp"
#include "core/tokenizer.hpp"
#include "core/trainer.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cpt;

std::vector<util::SimdTier> available_tiers() {
    std::vector<util::SimdTier> tiers{util::SimdTier::kScalar};
    if (util::simd_tier_available(util::SimdTier::kSse2)) tiers.push_back(util::SimdTier::kSse2);
    if (util::simd_tier_available(util::SimdTier::kAvx2)) tiers.push_back(util::SimdTier::kAvx2);
    return tiers;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct E2eRow {
    const char* tier;
    const char* precision;
    std::size_t streams = 0;
    std::size_t tokens = 0;
    double seconds = 0.0;
    double streams_per_sec = 0.0;
    double tokens_per_sec = 0.0;
};

struct DecodeRow {
    const char* tier;
    const char* precision;
    std::size_t batch = 0;
    std::size_t steps = 0;
    double seconds = 0.0;
    double tokens_per_sec = 0.0;
};

// Per-stage attribution of the generate workload (Sampler::StageTimes),
// accumulated over the same stream count as the e2e rows.
struct StageRow {
    const char* tier;
    const char* precision;
    cpt::core::Sampler::StageTimes times;
};

// One spec_k point of the speculative-decode sweep (DESIGN.md §16): raw
// throughput plus the accept-rate/tokens-per-forward decomposition and the
// five Table-6 maxy fidelity metrics with their delta against the k=1 row.
struct SpecRow {
    std::size_t k = 0;
    std::size_t tokens = 0;
    double seconds = 0.0;
    double tokens_per_sec = 0.0;
    double speedup = 0.0;
    double accept_rate = 0.0;
    double tokens_per_forward = 0.0;
    std::size_t steps = 0;
    std::size_t verify_steps = 0;
    metrics::FidelityReport fid;
    double dfid[5] = {0, 0, 0, 0, 0};
    double max_abs_dfid = 0.0;
};

}  // namespace

int main() {
    // Flagship-ish model on a synthetic-world tokenizer; untrained weights.
    trace::SyntheticWorldConfig wcfg;
    wcfg.population = {60, 0, 0};
    wcfg.seed = 7;
    const auto world = trace::SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng init(11);
    core::CptGptConfig cfg;
    cfg.d_model = 128;
    cfg.heads = 4;
    cfg.mlp_hidden = 1024;
    cfg.blocks = 2;
    cfg.max_seq_len = 128;
    cfg.head_hidden = 128;
    core::CptGpt model(tok, cfg, init);
    model.quantize_weights();

    core::SamplerConfig scfg;
    scfg.batch = 32;
    const core::Sampler sampler_fp32(model, tok, world.initial_event_distribution(), scfg);
    core::SamplerConfig qcfg = scfg;
    qcfg.precision = nn::Precision::kInt8W8A32;
    const core::Sampler sampler_int8(model, tok, world.initial_event_distribution(), qcfg);

    const std::size_t n_streams = 256;
    const std::size_t decode_batch = 32;
    const std::size_t decode_steps = 96;
    const std::size_t threads = util::configured_threads();

    // Resident decode-path memory per mode: weight matrices (the tensors the
    // decode GEMVs read) and the KV cache at `decode_batch` rows.
    std::size_t weights_fp32_bytes = 0;
    for (const auto& np : model.named_parameters("cptgpt.")) {
        const auto& shape = np.param->value.shape();
        if (shape.size() == 2 && np.name.size() > 7 &&
            np.name.compare(np.name.size() - 7, 7, ".weight") == 0) {
            weights_fp32_bytes += nn::shape_numel(shape) * sizeof(float);
        }
    }
    const std::size_t weights_int8_bytes = model.quantized_weights().weight_bytes();
    const std::size_t kv_fp32_bytes = model.make_decoder(decode_batch).kv_bytes();
    const std::size_t kv_fp16_bytes =
        model.make_decoder(decode_batch, nn::Precision::kInt8W8A32).kv_bytes();

    struct Mode {
        const char* name;
        nn::Precision precision;
        const core::Sampler* sampler;
    };
    const Mode modes[] = {
        {"fp32", nn::Precision::kFp32, &sampler_fp32},
        {"int8_w8a32", nn::Precision::kInt8W8A32, &sampler_int8},
    };

    std::vector<E2eRow> e2e_rows;
    std::vector<StageRow> stage_rows;
    std::vector<DecodeRow> decode_rows;
    for (util::SimdTier tier : available_tiers()) {
        const util::SimdTier prev = util::set_simd_tier(tier);
        for (const Mode& mode : modes) {
            const core::Sampler& sampler = *mode.sampler;

            // Full pipeline: bootstrap + decode + sampling + compaction.
            {
                util::Rng rng(42);
                sampler.generate(8, rng);  // warm-up
                util::Rng rng2(42);
                const auto t0 = std::chrono::steady_clock::now();
                const auto ds = sampler.generate(n_streams, rng2);
                E2eRow row{util::simd_tier_name(tier), mode.name};
                row.seconds = seconds_since(t0);
                row.streams = ds.streams.size();
                for (const auto& s : ds.streams) row.tokens += s.events.size();
                row.streams_per_sec = static_cast<double>(row.streams) / row.seconds;
                row.tokens_per_sec = static_cast<double>(row.tokens) / row.seconds;
                e2e_rows.push_back(row);
                std::printf("e2e_generate  tier %-6s %-10s  %zu streams (%zu tokens) in %.3f s  "
                            "-> %8.1f streams/s  %9.1f tokens/s\n",
                            row.tier, row.precision, row.streams, row.tokens, row.seconds,
                            row.streams_per_sec, row.tokens_per_sec);
            }

            // Stage attribution: the same workload as the e2e row, driven
            // through generate_batch with a StageTimes accumulator so
            // tier-to-tier and precision-to-precision differences can be
            // pinned to a stage. The e2e workload's batches shrink as streams
            // stop (mean stream length is ~3 tokens here), so its decode
            // stage runs mostly tiny shapes — unlike the held-full
            // decode_engine row below.
            {
                util::Rng root(42);
                std::vector<util::Rng> rngs;
                rngs.reserve(n_streams);
                for (std::size_t i = 0; i < n_streams; ++i) rngs.push_back(root.fork(i));
                StageRow row{util::simd_tier_name(tier), mode.name, {}};
                for (std::size_t b0 = 0; b0 < n_streams; b0 += scfg.batch) {
                    const std::size_t b1 = std::min(b0 + scfg.batch, n_streams);
                    sampler.generate_batch(std::span(rngs).subspan(b0, b1 - b0), "stage", b0,
                                           &row.times);
                }
                stage_rows.push_back(row);
                const auto& t = row.times;
                std::printf("stage_times   tier %-6s %-10s  %zu steps: bootstrap %.4f s  "
                            "decode %.4f s  sample %.4f s  compact %.4f s\n",
                            row.tier, row.precision, t.steps, t.bootstrap, t.decode, t.sample,
                            t.compact);
            }

            // Decode engine only: full batch held for a fixed step count.
            {
                auto decoder = model.make_decoder(decode_batch, mode.precision);
                auto scratch = model.make_decode_scratch(decode_batch, mode.precision);
                nn::Tensor x = nn::Tensor::zeros({decode_batch, tok.d_token()});
                const auto t0 = std::chrono::steady_clock::now();
                for (std::size_t t = 0; t < decode_steps; ++t) {
                    model.decode_step(decoder, x, scratch);
                }
                DecodeRow row{util::simd_tier_name(tier), mode.name, decode_batch, decode_steps};
                row.seconds = seconds_since(t0);
                row.tokens_per_sec =
                    static_cast<double>(decode_batch * decode_steps) / row.seconds;
                decode_rows.push_back(row);
                std::printf("decode_engine tier %-6s %-10s  batch %zu x %zu steps in %.3f s  "
                            "-> %9.1f tokens/s\n",
                            row.tier, row.precision, row.batch, row.steps, row.seconds,
                            row.tokens_per_sec);
            }
        }
        util::set_simd_tier(prev);
    }

    // int8 gain on the host's best tier (the last tier in available_tiers()).
    // The e2e number is the served workload shape — batches shrink as streams
    // stop, so decode runs mostly GEMV-shaped rows where int8 wins most; the
    // engine number is the held-full batch-32 GEMM shape where fp32 AVX2 is
    // already near peak and the gain is attention/overhead-diluted.
    double e2e_speedup_int8 = 0.0;
    double decode_engine_speedup_int8 = 0.0;
    if (e2e_rows.size() >= 2 && decode_rows.size() >= 2) {
        const auto& gen_fp32 = e2e_rows[e2e_rows.size() - 2];
        const auto& gen_int8 = e2e_rows[e2e_rows.size() - 1];
        e2e_speedup_int8 = gen_int8.tokens_per_sec / gen_fp32.tokens_per_sec;
        const auto& eng_fp32 = decode_rows[decode_rows.size() - 2];
        const auto& eng_int8 = decode_rows[decode_rows.size() - 1];
        decode_engine_speedup_int8 = eng_int8.tokens_per_sec / eng_fp32.tokens_per_sec;
        std::printf("int8 / fp32 speedup (tier %s): e2e tokens/s %.2fx, held-full engine %.2fx\n",
                    gen_int8.tier, e2e_speedup_int8, decode_engine_speedup_int8);
    }
    std::printf("memory: weights fp32 %zu B -> int8 %zu B; kv fp32 %zu B -> fp16 %zu B "
                "(batch %zu)\n",
                weights_fp32_bytes, weights_int8_bytes, kv_fp32_bytes, kv_fp16_bytes,
                decode_batch);

    // ---- Speculative multi-token decode k-sweep (DESIGN.md §16) ----
    // Draft acceptance is a property of the learned token distribution, so
    // this section trains the serve-scale flagship on the bench world and
    // bootstraps the n-gram drafter from the model's own plain-decode output.
    // The sweep runs single-stream decode (batch 1) — the latency-bound shape
    // speculation exists for — on the host's best tier, and reports per k:
    // tokens/s, accepted-draft rate, tokens per forward pass, and the five
    // Table-6 maxy fidelity metrics as deltas against the k=1 row. Rejection
    // sampling makes each accepted token distributed exactly as the plain
    // path's, so the deltas must sit inside the metrics_test ε band (0.12);
    // `fidelity_within_epsilon` in the JSON asserts that.
    core::CptGptConfig spec_cfg;
    spec_cfg.d_model = 256;
    spec_cfg.heads = 4;
    spec_cfg.mlp_hidden = 2048;
    spec_cfg.blocks = 3;
    spec_cfg.max_seq_len = 128;
    spec_cfg.head_hidden = 128;
    const std::size_t spec_boot_streams = 512;
    const std::size_t spec_streams = 192;
    const double spec_epsilon = 0.12;
    std::size_t spec_train_epochs = 0;
    std::vector<SpecRow> spec_rows;
    const char* spec_env = std::getenv("CPT_BENCH_SPEC");
    const bool run_spec = spec_env == nullptr || std::strcmp(spec_env, "0") != 0;
    if (run_spec) {
        util::Rng sinit(11);
        core::CptGpt smodel(tok, spec_cfg, sinit);
        core::TrainConfig tcfg;
        tcfg.max_epochs = 16;
        tcfg.window = 32;
        tcfg.patience = 100;
        auto t0 = std::chrono::steady_clock::now();
        core::Trainer trainer(smodel, tok, tcfg);
        spec_train_epochs = static_cast<std::size_t>(trainer.train(world).epochs_run);
        std::printf("spec_sweep    trained d=%zu model %zu epochs in %.1f s\n", spec_cfg.d_model,
                    spec_train_epochs, seconds_since(t0));

        core::SamplerConfig boot_cfg;
        boot_cfg.batch = 32;
        const core::Sampler boot(smodel, tok, world.initial_event_distribution(), boot_cfg);
        util::Rng boot_rng(123);
        t0 = std::chrono::steady_clock::now();
        const auto boot_ds = boot.generate(spec_boot_streams, boot_rng, "boot");
        std::printf("spec_sweep    bootstrapped drafter from %zu streams in %.1f s\n",
                    spec_boot_streams, seconds_since(t0));
        const auto drafter = core::SpecDrafter::fit(boot_ds, tok);

        metrics::FidelityReport base_fid;
        double base_tps = 0.0;
        for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{5},
                              std::size_t{6}, std::size_t{8}}) {
            core::SamplerConfig sc;
            sc.batch = 1;
            sc.spec_k = k;
            sc.drafter = k > 1 ? &drafter : nullptr;
            const core::Sampler sampler(smodel, tok, world.initial_event_distribution(), sc);
            util::Rng root(42);
            std::vector<util::Rng> rngs;
            rngs.reserve(spec_streams);
            for (std::size_t i = 0; i < spec_streams; ++i) rngs.push_back(root.fork(i));
            core::Sampler::StageTimes times;
            trace::Dataset ds;
            ds.generation = world.generation;
            SpecRow row;
            row.k = k;
            t0 = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < spec_streams; ++i) {
                auto streams = sampler.generate_batch(std::span(rngs).subspan(i, 1), "spec", i,
                                                      &times);
                for (auto& s : streams) {
                    row.tokens += s.events.size();
                    ds.streams.push_back(std::move(s));
                }
            }
            row.seconds = seconds_since(t0);
            row.tokens_per_sec = static_cast<double>(row.tokens) / row.seconds;
            if (k == 1) base_tps = row.tokens_per_sec;
            row.speedup = row.tokens_per_sec / base_tps;
            row.accept_rate = times.spec_proposed > 0
                                  ? static_cast<double>(times.spec_accepted) /
                                        static_cast<double>(times.spec_proposed)
                                  : 0.0;
            row.steps = times.steps;
            row.verify_steps = times.verify_steps;
            const double forwards = static_cast<double>(times.steps + times.verify_steps);
            row.tokens_per_forward = forwards > 0.0 ? row.tokens / forwards : 0.0;
            row.fid = metrics::evaluate_fidelity(ds, world);
            if (k == 1) base_fid = row.fid;
            row.dfid[0] = row.fid.maxy_sojourn_connected - base_fid.maxy_sojourn_connected;
            row.dfid[1] = row.fid.maxy_sojourn_idle - base_fid.maxy_sojourn_idle;
            row.dfid[2] = row.fid.maxy_flow_length_all - base_fid.maxy_flow_length_all;
            row.dfid[3] = row.fid.maxy_flow_length_srv_req - base_fid.maxy_flow_length_srv_req;
            row.dfid[4] = row.fid.maxy_flow_length_s1_rel - base_fid.maxy_flow_length_s1_rel;
            for (double d : row.dfid) {
                if (std::abs(d) > row.max_abs_dfid) row.max_abs_dfid = std::abs(d);
            }
            spec_rows.push_back(row);
            std::printf("spec_sweep    k=%zu  %6zu tokens in %.2f s -> %7.1f tokens/s (%.3fx)  "
                        "acc %.3f  tok/fwd %.2f  max|dfid| %.4f\n",
                        row.k, row.tokens, row.seconds, row.tokens_per_sec, row.speedup,
                        row.accept_rate, row.tokens_per_forward, row.max_abs_dfid);
        }
    }
    std::size_t spec_best_k = 1;
    double spec_best_speedup = 1.0;
    bool spec_within_eps = true;
    for (const auto& r : spec_rows) {
        if (r.speedup > spec_best_speedup) {
            spec_best_speedup = r.speedup;
            spec_best_k = r.k;
        }
        if (r.max_abs_dfid >= spec_epsilon) spec_within_eps = false;
    }
    if (!spec_rows.empty()) {
        std::printf("spec_sweep    best k=%zu -> %.3fx  fidelity within eps %.2f: %s\n",
                    spec_best_k, spec_best_speedup, spec_epsilon,
                    spec_within_eps ? "yes" : "NO");
    }

    const char* path = "BENCH_e2e_generate.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_e2e_generate: cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"e2e_generate\",\n  \"threads_configured\": %zu,\n"
                 "  \"model\": {\"d_model\": %zu, \"mlp_hidden\": %zu, \"blocks\": %zu, "
                 "\"max_seq_len\": %zu},\n"
                 "  \"memory\": {\"weights_fp32_bytes\": %zu, \"weights_int8_bytes\": %zu, "
                 "\"kv_fp32_bytes\": %zu, \"kv_fp16_bytes\": %zu, \"kv_batch\": %zu},\n"
                 "  \"generate_rows\": [\n",
                 threads, cfg.d_model, cfg.mlp_hidden, cfg.blocks, cfg.max_seq_len,
                 weights_fp32_bytes, weights_int8_bytes, kv_fp32_bytes, kv_fp16_bytes,
                 decode_batch);
    for (std::size_t i = 0; i < e2e_rows.size(); ++i) {
        const auto& r = e2e_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"precision\": \"%s\", \"streams\": %zu, "
                     "\"tokens\": %zu, \"seconds\": %.4f, \"streams_per_sec\": %.1f, "
                     "\"tokens_per_sec\": %.1f}%s\n",
                     r.tier, r.precision, r.streams, r.tokens, r.seconds, r.streams_per_sec,
                     r.tokens_per_sec, i + 1 < e2e_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"stage_rows\": [\n");
    for (std::size_t i = 0; i < stage_rows.size(); ++i) {
        const auto& r = stage_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"precision\": \"%s\", \"steps\": %zu, "
                     "\"bootstrap_sec\": %.4f, \"decode_sec\": %.4f, \"sample_sec\": %.4f, "
                     "\"compact_sec\": %.4f}%s\n",
                     r.tier, r.precision, r.times.steps, r.times.bootstrap, r.times.decode,
                     r.times.sample, r.times.compact, i + 1 < stage_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"decode_rows\": [\n");
    for (std::size_t i = 0; i < decode_rows.size(); ++i) {
        const auto& r = decode_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"precision\": \"%s\", \"batch\": %zu, "
                     "\"steps\": %zu, \"seconds\": %.4f, \"tokens_per_sec\": %.1f}%s\n",
                     r.tier, r.precision, r.batch, r.steps, r.seconds, r.tokens_per_sec,
                     i + 1 < decode_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"e2e_speedup_int8\": %.3f,\n  \"decode_engine_speedup_int8\": %.3f,\n",
                 e2e_speedup_int8, decode_engine_speedup_int8);
    std::fprintf(f,
                 "  \"spec_sweep\": {\n"
                 "    \"enabled\": %s,\n"
                 "    \"tier\": \"%s\",\n"
                 "    \"model\": {\"d_model\": %zu, \"mlp_hidden\": %zu, \"blocks\": %zu},\n"
                 "    \"train_epochs\": %zu,\n"
                 "    \"bootstrap_streams\": %zu,\n"
                 "    \"streams\": %zu,\n"
                 "    \"fidelity_epsilon\": %.2f,\n"
                 "    \"rows\": [\n",
                 run_spec ? "true" : "false", util::simd_tier_name(util::active_simd_tier()),
                 spec_cfg.d_model, spec_cfg.mlp_hidden, spec_cfg.blocks, spec_train_epochs,
                 spec_boot_streams, spec_streams, spec_epsilon);
    for (std::size_t i = 0; i < spec_rows.size(); ++i) {
        const auto& r = spec_rows[i];
        std::fprintf(f,
                     "      {\"k\": %zu, \"tokens\": %zu, \"seconds\": %.4f, "
                     "\"tokens_per_sec\": %.1f, \"speedup\": %.3f, \"accept_rate\": %.4f, "
                     "\"tokens_per_forward\": %.3f, \"steps\": %zu, \"verify_steps\": %zu,\n"
                     "       \"fidelity\": {\"maxy_sojourn_connected\": %.4f, "
                     "\"maxy_sojourn_idle\": %.4f, \"maxy_flow_length_all\": %.4f, "
                     "\"maxy_flow_length_srv_req\": %.4f, \"maxy_flow_length_s1_rel\": %.4f},\n"
                     "       \"fidelity_delta_vs_k1\": {\"maxy_sojourn_connected\": %.4f, "
                     "\"maxy_sojourn_idle\": %.4f, \"maxy_flow_length_all\": %.4f, "
                     "\"maxy_flow_length_srv_req\": %.4f, \"maxy_flow_length_s1_rel\": %.4f, "
                     "\"max_abs\": %.4f}}%s\n",
                     r.k, r.tokens, r.seconds, r.tokens_per_sec, r.speedup, r.accept_rate,
                     r.tokens_per_forward, r.steps, r.verify_steps, r.fid.maxy_sojourn_connected,
                     r.fid.maxy_sojourn_idle, r.fid.maxy_flow_length_all,
                     r.fid.maxy_flow_length_srv_req, r.fid.maxy_flow_length_s1_rel, r.dfid[0],
                     r.dfid[1], r.dfid[2], r.dfid[3], r.dfid[4], r.max_abs_dfid,
                     i + 1 < spec_rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ],\n    \"best_k\": %zu,\n    \"best_speedup\": %.3f,\n"
                 "    \"fidelity_within_epsilon\": %s\n  }\n}\n",
                 spec_best_k, spec_best_speedup, spec_within_eps ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
