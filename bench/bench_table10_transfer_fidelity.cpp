// Table 10: fidelity of the 4th-hour trace synthesized by models trained with
// and without transfer learning, for NetShare and CPT-GPT. The paper's
// takeaway: transfer learning does not systematically hurt (or help) either
// framework's fidelity — the savings of Table 9 come for free.
#include <cstdio>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    auto env = bench::BenchEnv::from_options(opt);
    const auto hourly_ues = std::max<std::size_t>(60, env.train_ues / 3);
    if (!opt.has("epochs")) env.epochs = std::max(8, env.epochs / 2);
    if (!opt.has("gan-epochs")) env.gan_epochs = std::max(10, env.gan_epochs / 2);
    constexpr int kStartHour = 8;
    constexpr int kTargetHour = 3;  // the 4th hour (0-based index 3)
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Table 10: fidelity w/ and w/o transfer learning (4th hour, phones) ===");

    auto slice = [&](int h, std::uint64_t seed) {
        trace::SyntheticWorldConfig cfg;
        cfg.population = {hourly_ues, 0, 0};
        cfg.hour_of_day = kStartHour + h;
        cfg.seed = seed;
        return trace::SyntheticWorldGenerator(cfg).generate();
    };
    std::vector<trace::Dataset> hours;
    for (int h = 0; h <= kTargetHour; ++h) hours.push_back(slice(h, 8000 + h));
    const trace::Dataset real = slice(kTargetHour, 990001);  // held-out same hour

    metrics::FidelityReport reports[2][2];  // [framework][scratch|transfer]

    // ---- CPT-GPT ----
    {
        const auto cfg = bench::bench_model_config(env);
        core::TrainConfig tcfg;
        tcfg.max_epochs = env.epochs;
        tcfg.patience = std::max(3, env.epochs / 5);
        tcfg.window = env.window;
        tcfg.w_event = 3.0f;
        const auto tok = core::Tokenizer::fit(hours[kTargetHour]);

        auto sample = [&](core::CptGpt& model) {
            core::SamplerConfig scfg;
            scfg.device = device;
            scfg.hour_of_day = kStartHour + kTargetHour;
            const core::Sampler sampler(model, tok,
                                        hours[kTargetHour].initial_event_distribution(), scfg);
            util::Rng rng(811);
            return sampler.generate(env.gen_streams, rng);
        };
        {  // from scratch on the target hour
            util::Rng rng(81);
            core::CptGpt model(tok, cfg, rng);
            core::Trainer(model, tok, tcfg).train(hours[kTargetHour]);
            reports[1][0] = metrics::evaluate_fidelity(sample(model), real);
        }
        {  // recursive transfer from hour 0
            util::Rng rng(82);
            core::CptGpt model(tok, cfg, rng);
            core::Trainer trainer(model, tok, tcfg);
            trainer.train(hours[0]);
            for (int h = 1; h <= kTargetHour; ++h) trainer.fine_tune(hours[h]);
            reports[1][1] = metrics::evaluate_fidelity(sample(model), real);
        }
    }

    // ---- NetShare ----
    {
        gan::GanTrainConfig tcfg;
        tcfg.max_epochs = env.gan_epochs;
        tcfg.eval_every = std::max(5, env.gan_epochs / 6);
        const auto tok = core::Tokenizer::fit(hours[kTargetHour]);

        auto sample = [&](gan::NetShareGenerator& gen) {
            util::Rng rng(812);
            return gen.generate(env.gen_streams, rng, device);
        };
        {
            util::Rng rng(83);
            gan::NetShareGenerator gen(tok, bench::bench_gan_config(env), rng);
            gen.train(hours[kTargetHour], tcfg);
            reports[0][0] = metrics::evaluate_fidelity(sample(gen), real);
        }
        {
            util::Rng rng(84);
            gan::NetShareGenerator gen(tok, bench::bench_gan_config(env), rng);
            gen.train(hours[0], tcfg);
            gan::GanTrainConfig ft = tcfg;
            ft.max_epochs = std::max(1, env.gan_epochs / 2);
            for (int h = 1; h <= kTargetHour; ++h) gen.train(hours[h], ft);
            reports[0][1] = metrics::evaluate_fidelity(sample(gen), real);
        }
    }

    // Paper values: rows {event viol, stream viol, sojourn CONN, sojourn IDLE,
    // flow length}; columns {NetShare w/o, CPT-GPT w/o, NetShare w/, CPT-GPT w/}.
    const char* paper[5][4] = {
        {"2.78%", "0.07%", "3.39%", "0.05%"},
        {"34.58%", "0.40%", "37.57%", "1.00%"},
        {"36.28%", "9.39%", "13.21%", "12.48%"},
        {"21.16%", "13.40%", "28.43%", "8.98%"},
        {"3.30%", "7.32%", "2.24%", "3.08%"},
    };
    auto pick = [&](int fw, int mode, int m) -> double {
        const auto& r = reports[fw][mode];
        switch (m) {
            case 0: return r.event_violation_fraction;
            case 1: return r.stream_violation_fraction;
            case 2: return r.maxy_sojourn_connected;
            case 3: return r.maxy_sojourn_idle;
            default: return r.maxy_flow_length_all;
        }
    };
    const char* metric_names[5] = {"event violations", "stream violations", "sojourn CONN",
                                   "sojourn IDLE", "flow length"};
    util::TextTable t({"metric", "NS w/o (paper/ours)", "GPT w/o (paper/ours)",
                       "NS w/ (paper/ours)", "GPT w/ (paper/ours)"});
    for (int m = 0; m < 5; ++m) {
        t.add_row({metric_names[m],
                   std::string(paper[m][0]) + " / " + util::fmt_pct(pick(0, 0, m), 2),
                   std::string(paper[m][1]) + " / " + util::fmt_pct(pick(1, 0, m), 2),
                   std::string(paper[m][2]) + " / " + util::fmt_pct(pick(0, 1, m), 2),
                   std::string(paper[m][3]) + " / " + util::fmt_pct(pick(1, 1, m), 2)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape to reproduce: transfer learning leaves fidelity roughly unchanged for");
    std::puts("both frameworks; CPT-GPT stays far below NetShare on violations either way.");
    return 0;
}
