// Extra experiment (the paper's §2.2 motivation made concrete): drive the
// toy MCN with the real trace and with each generator's synthetic trace of
// the same population size, and compare the load profiles the MCN observes.
// If the synthesized traffic is high fidelity, an MCN designer reaches the
// same conclusions (latency percentiles, utilization, peak session state)
// from synthetic traffic as from the real trace — which is the entire point
// of a control-plane traffic generator.
#include <cstdio>

#include "common.hpp"
#include "mcn/simulator.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Extra: MCN load profile under real vs synthesized traffic (phones) ===");
    const auto real = bench::test_world(device, kHour, env);
    const auto train = bench::train_world(device, kHour, env);
    const std::size_t population = real.streams.size();

    mcn::McnConfig cfg;
    cfg.workers = 2;
    // Message-count-derived procedure costs, inflated so the toy pool is
    // meaningfully loaded by a population this small.
    cfg.costs = mcn::NfCostModel::from_messages(cellular::Generation::kLte4G, 4000.0);
    cfg.stochastic_service = true;
    cfg.seed = 17;

    util::TextTable t({"traffic source", "events", "p50 ms", "p95 ms", "p99 ms", "util",
                       "peak CONNECTED UEs"});
    auto add = [&](const std::string& name, const trace::Dataset& ds) {
        const auto r = mcn::simulate(ds, cfg);
        t.add_row({name, std::to_string(r.events_processed), util::fmt(r.latency_p50_ms, 2),
                   util::fmt(r.latency_p95_ms, 2), util::fmt(r.latency_p99_ms, 2),
                   util::fmt_pct(r.mean_utilization, 1),
                   std::to_string(r.peak_connected_ues)});
    };

    add("real trace", real);
    {
        const auto gpt = bench::get_cptgpt(device, kHour, env);
        add("CPT-GPT", bench::sample_cptgpt(gpt, device, kHour, population, 1301));
    }
    {
        const auto model = smm::fit_smm1(train);
        util::Rng rng(1302);
        add("SMM-1", model.generate(population, rng));
    }
    {
        const auto ns = bench::get_netshare(device, kHour, env);
        util::Rng rng(1303);
        add("NetShare", ns.generator->generate(population, rng, device));
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nReading: the closer a generator's row is to the real-trace row, the safer it");
    std::puts("is to use its traffic for MCN design studies. Peak CONNECTED UEs is driven by");
    std::puts("sojourn fidelity (C3), event volume by flow-length fidelity (C4).");
    return 0;
}
