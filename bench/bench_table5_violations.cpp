// Table 5: percentage of events and streams violating the 3GPP stateful
// semantics for NetShare vs CPT-GPT across the three device types. (SMM rows
// are omitted as in the paper — the state machine is built in, so it cannot
// violate; the SMM benches assert that property in tests.)
#include <cstdio>

#include "common.hpp"
#include "lint/trace_lint.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;

    std::puts("=== Table 5: stateful-semantics violations, NetShare vs CPT-GPT ===");
    // Paper reference values.
    const char* paper_events[2][3] = {{"2.614%", "3.915%", "3.572%"},
                                      {"0.004%", "0.034%", "0.079%"}};
    const char* paper_streams[2][3] = {{"22.1%", "11.5%", "16.9%"}, {"0.2%", "0.4%", "1.5%"}};

    util::TextTable t({"device", "generator", "event viol. (paper)", "event viol. (ours)",
                       "stream viol. (paper)", "stream viol. (ours)"});
    for (std::size_t d = 0; d < trace::kNumDeviceTypes; ++d) {
        const auto device = static_cast<trace::DeviceType>(d);
        const auto lint_of = [](const trace::Dataset& ds) {
            return lint::TraceLinter(ds.generation).lint(ds);
        };
        // NetShare
        {
            const auto ns = bench::get_netshare(device, kHour, env);
            util::Rng rng(201 + d);
            const auto synth = ns.generator->generate(env.gen_streams, rng, device);
            const auto v = lint_of(synth);
            t.add_row({bench::device_name(device), "NetShare", paper_events[0][d],
                       util::fmt_pct(v.event_fraction(), 3), paper_streams[0][d],
                       util::fmt_pct(v.stream_fraction(), 1)});
        }
        // CPT-GPT: raw sampling (the paper's inference), plus the nucleus
        // (top-p) variant that trades the rare-event tail for fewer
        // violations — the knob CPU-scale training leans on.
        {
            const auto gpt = bench::get_cptgpt(device, kHour, env);
            const auto raw = lint_of(
                bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 301 + d, 1.0));
            t.add_row({bench::device_name(device), "CPT-GPT", paper_events[1][d],
                       util::fmt_pct(raw.event_fraction(), 3), paper_streams[1][d],
                       util::fmt_pct(raw.stream_fraction(), 1)});
            const auto nucleus = lint_of(
                bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 351 + d, 0.99));
            t.add_row({bench::device_name(device), "CPT-GPT (top-p .99)", "-",
                       util::fmt_pct(nucleus.event_fraction(), 3), "-",
                       util::fmt_pct(nucleus.stream_fraction(), 1)});
        }
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape to reproduce: CPT-GPT's violation rates sit orders of magnitude below");
    std::puts("NetShare's for every device type (paper: two orders of magnitude).");
    return 0;
}
