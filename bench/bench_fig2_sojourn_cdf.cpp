// Figure 2: CDFs of the per-UE average CONNECTED-state sojourn time for the
// real dataset and each generator (phone UEs), rendered as an ASCII plot plus
// quantile rows and max-y distances.
#include <cstdio>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Figure 2: per-UE mean CONNECTED sojourn CDF (phones) ===");
    const auto train = bench::train_world(device, kHour, env);
    const auto real = bench::test_world(device, kHour, env);

    std::vector<std::pair<std::string, util::Ecdf>> curves;
    auto add_curve = [&](const std::string& name, const trace::Dataset& ds) {
        const auto s = metrics::collect_sojourns(ds);
        curves.emplace_back(name, util::Ecdf(s.per_ue_mean_connected));
    };
    add_curve("real", real);
    {
        const auto model = smm::fit_smm1(train);
        util::Rng rng(921);
        add_curve("SMM-1", model.generate(env.gen_streams, rng));
    }
    {
        util::Rng krng(91);
        const auto ensemble = smm::SmmEnsemble::fit(train, env.smm_clusters, krng);
        util::Rng rng(922);
        add_curve("SMM-20k", ensemble.generate(env.gen_streams, rng));
    }
    {
        const auto ns = bench::get_netshare(device, kHour, env);
        util::Rng rng(923);
        add_curve("NetShare", ns.generator->generate(env.gen_streams, rng, device));
    }
    {
        const auto gpt = bench::get_cptgpt(device, kHour, env);
        add_curve("CPT-GPT", bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 924));
    }

    std::fputs(util::render_cdf_plot(curves, 76, 18, true).c_str(), stdout);

    std::puts("\nquantiles of per-UE mean CONNECTED sojourn (seconds):");
    util::TextTable t({"generator", "p10", "p25", "p50", "p75", "p90", "max-y vs real"});
    for (const auto& [name, cdf] : curves) {
        if (cdf.empty()) continue;
        t.add_row({name, util::fmt(cdf.quantile(0.10), 1), util::fmt(cdf.quantile(0.25), 1),
                   util::fmt(cdf.quantile(0.50), 1), util::fmt(cdf.quantile(0.75), 1),
                   util::fmt(cdf.quantile(0.90), 1),
                   util::fmt_pct(util::max_cdf_y_distance(curves[0].second, cdf), 1)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nPaper: real phone mass concentrated in 5-50 s; NetShare spreads 2-100 s");
    std::puts("(max-y 27.9%), CPT-GPT tracks the real CDF closely (max-y 6.4%).");
    return 0;
}
