// Table 11: data memorization — the percentage of n-grams in the CPT-GPT
// generated dataset that repeat from the training dataset, for n in {5,10,20}
// and interarrival tolerance eps in {10%, 20%} (phones).
#include <cstdio>

#include "common.hpp"
#include "trace/ngram.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Table 11: n-gram repetition from the training set (phones) ===");
    const auto train = bench::train_world(device, kHour, env);
    const auto gpt = bench::get_cptgpt(device, kHour, env);
    const auto generated = bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 901);
    std::printf("training: %zu streams; generated: %zu streams\n\n", train.streams.size(),
                generated.streams.size());

    const char* paper[3][2] = {{"57.879%", "80.305%"}, {"0.003%", "0.287%"}, {"0.000%", "0.000%"}};
    const std::size_t ns[3] = {5, 10, 20};

    util::TextTable t({"n", "eps=10% (paper/ours)", "eps=20% (paper/ours)"});
    for (int i = 0; i < 3; ++i) {
        const trace::NgramIndex index(train, ns[i]);
        const double r10 = trace::repeated_ngram_fraction(generated, index, 0.10);
        const double r20 = trace::repeated_ngram_fraction(generated, index, 0.20);
        t.add_row({"n=" + std::to_string(ns[i]),
                   std::string(paper[i][0]) + " / " + util::fmt_pct(r10, 3),
                   std::string(paper[i][1]) + " / " + util::fmt_pct(r20, 3)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape to reproduce: short n-grams repeat heavily (protocol-constrained");
    std::puts("patterns like SRV_REQ/S1_CONN_REL alternation), but long sub-sequences");
    std::puts("(n >= 20) essentially never repeat -> the model generalizes, not memorizes.");
    return 0;
}
