// Table 8: sensitivity / ablation study on phone UEs —
//   * varying the loss weights (event : interarrival : stop_flag) between
//     1:1:1, 3:1:1, 1:3:1 and 1:1:3 (fidelity should barely move);
//   * disabling the prediction of distribution parameters ("No dist. pred."):
//     the interarrival head outputs a scalar instead of (mu, sigma), which
//     collapses generation stochasticity and wrecks sojourn/flow-length
//     fidelity (the paper reports a 15x blowup of the flow-length max-y).
#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

namespace {

struct Variant {
    const char* name;
    float w_event, w_ia, w_stop;
    bool distribution_head;
    // Paper values: event viol (permille), stream viol %, sojourn CONN %,
    // sojourn IDLE %, flow length %.
    const char* paper[5];
};

constexpr Variant kVariants[] = {
    {"1:1:1 (ours)", 1, 1, 1, true, {"0.04", "0.2%", "6.4%", "12.0%", "3.8%"}},
    {"3:1:1", 3, 1, 1, true, {"0.04", "0.2%", "8.4%", "11.8%", "5.0%"}},
    {"1:3:1", 1, 3, 1, true, {"0.20", "0.8%", "9.1%", "9.3%", "2.4%"}},
    {"1:1:3", 1, 1, 3, true, {"0.48", "0.4%", "6.7%", "10.3%", "3.5%"}},
    {"no dist. pred.", 1, 1, 1, false, {"0.10", "0.5%", "60.8%", "75.4%", "69.9%"}},
};

}  // namespace

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    auto env = bench::BenchEnv::from_options(opt);
    // Five full trainings run in this bench; scale each below the shared
    // flagship size unless explicitly overridden.
    if (!opt.has("epochs")) env.epochs = std::max(10, env.epochs / 2);
    if (!opt.has("ues")) env.train_ues = std::max<std::size_t>(150, env.train_ues / 2);
    constexpr int kHour = 10;
    const auto device = trace::DeviceType::kPhone;

    std::puts("=== Table 8: loss-weight sensitivity and distribution-head ablation ===");
    const auto train = bench::train_world(device, kHour, env);
    const auto real = bench::test_world(device, kHour, env);
    const auto tokenizer = core::Tokenizer::fit(train);
    std::filesystem::create_directories(env.artifact_dir);

    util::TextTable t({"variant", "ev viol permille (paper/ours)", "stream viol (paper/ours)",
                       "sojourn CONN (paper/ours)", "sojourn IDLE (paper/ours)",
                       "flow len (paper/ours)"});
    for (const auto& v : kVariants) {
        auto cfg = bench::bench_model_config(env);
        cfg.distribution_head = v.distribution_head;

        char path[512];
        std::snprintf(path, sizeof(path), "%s/ablation_%g_%g_%g_%d_u%zu_e%d.ckpt",
                      env.artifact_dir.c_str(), v.w_event, v.w_ia, v.w_stop,
                      v.distribution_head ? 1 : 0, env.train_ues, env.epochs);

        util::Rng rng(61);
        core::CptGpt model(tokenizer, cfg, rng);
        if (std::filesystem::exists(path)) {
            const auto pkg =
                core::CptGpt::load_package(path, cellular::Generation::kLte4G, cfg);
            auto src = pkg.model->named_parameters("m.");
            auto dst = model.named_parameters("m.");
            for (std::size_t i = 0; i < dst.size(); ++i) {
                auto a = src[i].param->value.data();
                auto b = dst[i].param->value.data();
                std::copy(a.begin(), a.end(), b.begin());
            }
        } else {
            core::TrainConfig tcfg;
            tcfg.max_epochs = env.epochs;
            tcfg.patience = std::max(4, env.epochs / 4);
            tcfg.window = env.window;
            tcfg.w_event = v.w_event;
            tcfg.w_interarrival = v.w_ia;
            tcfg.w_stop = v.w_stop;
            core::Trainer(model, tokenizer, tcfg).train(train);
            model.save_package(path, tokenizer, train.initial_event_distribution());
        }

        core::SamplerConfig scfg;
        scfg.device = device;
        scfg.hour_of_day = kHour;
        const core::Sampler sampler(model, tokenizer, train.initial_event_distribution(), scfg);
        util::Rng grng(601);
        const auto synth = sampler.generate(env.gen_streams, grng);
        const auto r = metrics::evaluate_fidelity(synth, real);

        t.add_row({v.name,
                   std::string(v.paper[0]) + " / " + util::fmt(r.event_violation_fraction * 1000, 2),
                   std::string(v.paper[1]) + " / " + util::fmt_pct(r.stream_violation_fraction, 1),
                   std::string(v.paper[2]) + " / " + util::fmt_pct(r.maxy_sojourn_connected, 1),
                   std::string(v.paper[3]) + " / " + util::fmt_pct(r.maxy_sojourn_idle, 1),
                   std::string(v.paper[4]) + " / " + util::fmt_pct(r.maxy_flow_length_all, 1)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape to reproduce: the four weightings land close together; the no-dist-pred");
    std::puts("ablation blows up the sojourn and flow-length distances by an order of magnitude.");
    return 0;
}
