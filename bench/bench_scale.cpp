// Million-UE streaming-substrate scale sweep (DESIGN.md §14): generates
// synthetic worlds of growing population straight to the columnar trace
// format via SyntheticWorldGenerator::generate_to, replays them through the
// streaming trace linter, and evaluates streaming fidelity against a fixed
// in-RAM reference world — all in O(chunk + sketches) memory, so peak RSS
// stays flat while the population grows 100x. Reports events/s generated,
// events/s replayed, file bytes, and peak RSS per row; emits BENCH_scale.json
// next to the binary (collected by scripts/bench.sh).
//
// Options (CLI --key=value or env CPT_KEY):
//   --pops=10000,50000,200000   comma-separated populations, swept ascending
//   --chunk-ues=8192            generation chunk (UEs in flight per chunk)
//   --chunk-streams=4096        columnar writer chunk (streams per block)
//   --ref-ues=2000              in-RAM reference world for the fidelity leg
//   --assert-rss-mb=0           if > 0, exit nonzero when peak RSS exceeds
//                               this bound (scripts/check.sh scale smoke)
//   --keep-files                keep the .cpt trace files instead of deleting
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "lint/trace_lint.hpp"
#include "metrics/fidelity.hpp"
#include "trace/columnar.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cpt;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Peak resident set size (VmHWM) in MiB from /proc/self/status; 0.0 when the
// file is unavailable (non-Linux). Monotone over the process lifetime, which
// is why the sweep runs ascending: the per-row snapshot is dominated by the
// row itself, and the final value bounds the whole sweep.
double peak_rss_mb() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return 0.0;
    char line[256];
    double mb = 0.0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            long kb = 0;
            if (std::sscanf(line + 6, "%ld", &kb) == 1) mb = static_cast<double>(kb) / 1024.0;
            break;
        }
    }
    std::fclose(f);
    return mb;
}

std::vector<std::size_t> parse_pops(const std::string& s) {
    std::vector<std::size_t> pops;
    std::size_t start = 0;
    while (start < s.size()) {
        std::size_t end = s.find(',', start);
        if (end == std::string::npos) end = s.size();
        if (end > start) pops.push_back(static_cast<std::size_t>(std::stoull(s.substr(start, end - start))));
        start = end + 1;
    }
    return pops;
}

struct ScaleRow {
    std::size_t population = 0;
    std::size_t streams = 0;
    std::size_t events = 0;
    double gen_seconds = 0.0;
    double gen_events_per_sec = 0.0;
    double replay_seconds = 0.0;
    double replay_events_per_sec = 0.0;
    double fidelity_seconds = 0.0;
    double mean_sojourn_maxy = 0.0;
    std::size_t file_bytes = 0;
    double bytes_per_event = 0.0;
    double peak_rss_mb = 0.0;
};

trace::SyntheticWorldConfig world_config(std::size_t population) {
    trace::SyntheticWorldConfig cfg;
    // Keep the paper's device ratio (phones : cars : tablets ~ 700:280:100).
    cfg.population[0] = population * 700 / 1080;
    cfg.population[1] = population * 280 / 1080;
    cfg.population[2] = population - cfg.population[0] - cfg.population[1];
    cfg.seed = 42;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Options opt(argc, argv);
    const auto pops = parse_pops(opt.get("pops", "10000,50000,200000"));
    const auto chunk_ues = static_cast<std::size_t>(opt.get_int("chunk-ues", 8192));
    const auto chunk_streams = static_cast<std::size_t>(opt.get_int("chunk-streams", 4096));
    const auto ref_ues = static_cast<std::size_t>(opt.get_int("ref-ues", 2000));
    const double assert_rss_mb = opt.get_double("assert-rss-mb", 0.0);
    const bool keep_files = opt.get_flag("keep-files");
    const std::size_t threads = util::global_pool().threads();

    // Fixed in-RAM reference world for the fidelity leg: its accumulator is
    // built once and reused for every row.
    const trace::SyntheticWorldGenerator ref_gen(world_config(ref_ues));
    metrics::FidelityAccumulator ref_acc(cellular::Generation::kLte4G);
    ref_acc.add(ref_gen.generate());

    std::printf("bench_scale: threads=%zu chunk_ues=%zu chunk_streams=%zu ref_ues=%zu\n", threads,
                chunk_ues, chunk_streams, ref_ues);
    std::printf("%10s %10s %12s %12s %14s %12s %10s %10s\n", "population", "streams", "events",
                "gen_ev/s", "replay_ev/s", "fidelity_s", "MiB/file", "rss_MiB");

    std::vector<ScaleRow> rows;
    for (std::size_t pop : pops) {
        ScaleRow row;
        row.population = pop;
        const std::string path = "bench_scale_" + std::to_string(pop) + ".cpt";
        const trace::SyntheticWorldGenerator gen(world_config(pop));

        auto t0 = std::chrono::steady_clock::now();
        trace::ColumnarStats stats;
        {
            trace::ColumnarWriter writer(path, cellular::Generation::kLte4G, chunk_streams);
            gen.generate_to(writer, chunk_ues);
            stats = writer.finish();
        }
        row.gen_seconds = seconds_since(t0);
        row.streams = stats.streams;
        row.events = stats.events;
        row.file_bytes = stats.bytes;
        row.bytes_per_event =
            stats.events ? static_cast<double>(stats.bytes) / static_cast<double>(stats.events)
                         : 0.0;
        row.gen_events_per_sec =
            row.gen_seconds > 0.0 ? static_cast<double>(stats.events) / row.gen_seconds : 0.0;

        trace::ColumnarReader reader(path);
        t0 = std::chrono::steady_clock::now();
        const auto report = lint::TraceLinter(reader.generation()).lint(reader);
        row.replay_seconds = seconds_since(t0);
        row.replay_events_per_sec =
            row.replay_seconds > 0.0
                ? static_cast<double>(report.total_events) / row.replay_seconds
                : 0.0;
        if (report.violating_events != 0) {
            std::fprintf(stderr, "bench_scale: generator produced %zu violations at pop %zu\n",
                         report.violating_events, pop);
            return 1;
        }

        t0 = std::chrono::steady_clock::now();
        const auto acc = metrics::accumulate_fidelity(reader);
        const auto fr = metrics::evaluate_fidelity(acc, ref_acc);
        row.fidelity_seconds = seconds_since(t0);
        row.mean_sojourn_maxy = fr.mean_sojourn_maxy();

        row.peak_rss_mb = peak_rss_mb();
        if (!keep_files) std::remove(path.c_str());

        std::printf("%10zu %10zu %12zu %12.0f %14.0f %12.2f %10.1f %10.1f\n", row.population,
                    row.streams, row.events, row.gen_events_per_sec, row.replay_events_per_sec,
                    row.fidelity_seconds, static_cast<double>(row.file_bytes) / (1024.0 * 1024.0),
                    row.peak_rss_mb);
        rows.push_back(row);
    }

    const char* path = "BENCH_scale.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_scale: cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"scale\",\n  \"threads_configured\": %zu,\n"
                 "  \"chunk_ues\": %zu,\n  \"chunk_streams\": %zu,\n  \"ref_ues\": %zu,\n"
                 "  \"rows\": [\n",
                 threads, chunk_ues, chunk_streams, ref_ues);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        std::fprintf(f,
                     "    {\"population\": %zu, \"streams\": %zu, \"events\": %zu, "
                     "\"gen_seconds\": %.3f, \"gen_events_per_sec\": %.0f, "
                     "\"replay_seconds\": %.3f, \"replay_events_per_sec\": %.0f, "
                     "\"fidelity_seconds\": %.3f, \"mean_sojourn_maxy\": %.4f, "
                     "\"file_bytes\": %zu, \"bytes_per_event\": %.2f, \"peak_rss_mb\": %.1f}%s\n",
                     r.population, r.streams, r.events, r.gen_seconds, r.gen_events_per_sec,
                     r.replay_seconds, r.replay_events_per_sec, r.fidelity_seconds,
                     r.mean_sojourn_maxy, r.file_bytes, r.bytes_per_event, r.peak_rss_mb,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"peak_rss_mb\": %.1f\n}\n", peak_rss_mb());
    std::fclose(f);
    std::printf("wrote %s\n", path);

    if (assert_rss_mb > 0.0) {
        const double rss = peak_rss_mb();
        if (rss > assert_rss_mb) {
            std::fprintf(stderr,
                         "bench_scale: peak RSS %.1f MiB exceeds the asserted bound %.1f MiB\n",
                         rss, assert_rss_mb);
            return 1;
        }
        std::printf("peak RSS %.1f MiB within asserted bound %.1f MiB\n", rss, assert_rss_mb);
    }
    return 0;
}
