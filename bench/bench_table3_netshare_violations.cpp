// Table 3: semantic violations in control-plane traffic synthesized by the
// NetShare baseline (phone UEs) — % violating events, % violating streams,
// and the top-3 (state, event) violation categories.
#include <cstdio>

#include "common.hpp"
#include "lint/trace_lint.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);

    std::puts("=== Table 3: semantic violations in NetShare-synthesized traffic (phones) ===");
    const auto netshare = bench::get_netshare(trace::DeviceType::kPhone, 10, env);
    std::printf("NetShare model %s (train %.1f s)\n",
                netshare.from_cache ? "loaded from cache" : "trained", netshare.train_seconds);

    util::Rng rng(101);
    const auto synthesized =
        netshare.generator->generate(env.gen_streams, rng, trace::DeviceType::kPhone);
    const auto report = lint::TraceLinter(synthesized.generation).lint(synthesized);
    const auto& vocab = cellular::vocabulary(synthesized.generation);

    util::TextTable t({"metric", "paper (NetShare)", "measured"});
    t.add_row({"perc. event violations", "2.61%", util::fmt_pct(report.event_fraction(), 2)});
    t.add_row({"perc. streams w/ violating event", "22.10%",
               util::fmt_pct(report.stream_fraction(), 2)});
    std::fputs(t.render().c_str(), stdout);

    std::puts("\nTop violation categories (paper: S1_REL_S/S1_CONN_REL 1.16%, S1_REL_S/HO 0.76%,");
    std::puts("                           CONNECTED/SRV_REQ 0.41%)");
    util::TextTable cats({"state", "event", "share of events"});
    for (const auto& c : report.top_categories(3)) {
        cats.add_row({std::string(to_string(c.state)), vocab.name(c.event),
                      util::fmt_pct(c.event_fraction, 2)});
    }
    std::fputs(cats.render().c_str(), stdout);
    return 0;
}
