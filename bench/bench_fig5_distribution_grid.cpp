// Figure 5: the 5x3 grid of fidelity-metric distributions — sojourn time
// (CONNECTED, IDLE) and flow length (all / SRV_REQ / S1_CONN_REL) for each
// device type, comparing real vs all four generators. Rendered as quantile
// tables per cell (the terminal equivalent of the paper's CDF grid).
#include <cstdio>

#include "common.hpp"
#include "metrics/fidelity.hpp"
#include "util/ascii.hpp"

namespace {

using cpt::util::Ecdf;

std::vector<double> metric_samples(const cpt::trace::Dataset& ds, int metric) {
    using namespace cpt;
    switch (metric) {
        case 0: return metrics::collect_sojourns(ds).per_ue_mean_connected;
        case 1: return metrics::collect_sojourns(ds).per_ue_mean_idle;
        case 2: return ds.flow_lengths();
        case 3: return ds.flow_lengths(cellular::lte::kSrvReq);
        default: return ds.flow_lengths(cellular::lte::kS1ConnRel);
    }
}

constexpr const char* kMetricNames[] = {"sojourn CONNECTED (s)", "sojourn IDLE (s)",
                                        "flow length (all events)", "flow length (SRV_REQ)",
                                        "flow length (S1_CONN_REL)"};

}  // namespace

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    constexpr int kHour = 10;

    std::puts("=== Figure 5: distribution grid (quantiles per generator) ===");
    for (std::size_t d = 0; d < trace::kNumDeviceTypes; ++d) {
        const auto device = static_cast<trace::DeviceType>(d);
        const auto train = bench::train_world(device, kHour, env);
        const auto real = bench::test_world(device, kHour, env);

        std::vector<std::pair<std::string, trace::Dataset>> gens;
        gens.emplace_back("real", real);
        {
            const auto model = smm::fit_smm1(train);
            util::Rng rng(1001 + d);
            gens.emplace_back("SMM-1", model.generate(env.gen_streams, rng));
        }
        {
            util::Rng krng(101 + d);
            const auto ensemble = smm::SmmEnsemble::fit(train, env.smm_clusters, krng);
            util::Rng rng(1002 + d);
            gens.emplace_back("SMM-20k", ensemble.generate(env.gen_streams, rng));
        }
        {
            const auto ns = bench::get_netshare(device, kHour, env);
            util::Rng rng(1003 + d);
            gens.emplace_back("NetShare", ns.generator->generate(env.gen_streams, rng, device));
        }
        {
            const auto gpt = bench::get_cptgpt(device, kHour, env);
            gens.emplace_back("CPT-GPT",
                              bench::sample_cptgpt(gpt, device, kHour, env.gen_streams, 1004 + d));
        }

        std::printf("\n########## %s ##########\n", bench::device_name(device));
        for (int m = 0; m < 5; ++m) {
            std::printf("\n--- %s ---\n", kMetricNames[m]);
            Ecdf real_cdf(metric_samples(real, m));
            util::TextTable t({"generator", "p10", "p25", "p50", "p75", "p90", "p99",
                               "max-y vs real"});
            for (const auto& [name, ds] : gens) {
                const Ecdf cdf(metric_samples(ds, m));
                if (cdf.empty()) {
                    t.add_row({name, "-", "-", "-", "-", "-", "-", "-"});
                    continue;
                }
                t.add_row({name, util::fmt(cdf.quantile(0.10), 1), util::fmt(cdf.quantile(0.25), 1),
                           util::fmt(cdf.quantile(0.50), 1), util::fmt(cdf.quantile(0.75), 1),
                           util::fmt(cdf.quantile(0.90), 1), util::fmt(cdf.quantile(0.99), 1),
                           util::fmt_pct(util::max_cdf_y_distance(real_cdf, cdf), 1)});
            }
            std::fputs(t.render().c_str(), stdout);
        }
    }
    std::puts("\nShape to reproduce (paper Fig. 5): CPT-GPT and SMM-20k track the real");
    std::puts("distributions most closely; SMM-1 collapses flow-length diversity; NetShare");
    std::puts("is good on flow length but misses CONNECTED sojourns.");
    return 0;
}
