// Tables 4 & 9: training time with and without transfer learning, for
// NetShare and CPT-GPT, on six consecutive hourly phone traces.
//
//   * "no transfer learning": one model trained from scratch on the
//     concatenated 6-hour trace;
//   * "transfer learning": hour-0 model from scratch, then recursively
//     fine-tuned to each subsequent hour (5 fine-tunes).
//
// The paper's shape: NetShare gains nothing from transfer learning (GAN
// fine-tuning converges slowly: 195 min total vs 108 min from scratch) while
// CPT-GPT's supervised fine-tuning cuts the ensemble cost by ~3.4x
// (67 min vs 104 min).
#include <cstdio>

#include "common.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    auto env = bench::BenchEnv::from_options(opt);
    // This bench measures eight trainings across the two frameworks: scale
    // each hourly slice down so the total stays tractable on one core.
    const auto hourly_ues = std::max<std::size_t>(60, env.train_ues / 4);
    if (!opt.has("epochs")) env.epochs = std::max(8, env.epochs / 2);
    if (!opt.has("gan-epochs")) env.gan_epochs = std::max(10, env.gan_epochs / 2);
    const int kHours = 6;
    constexpr int kStartHour = 8;

    std::puts("=== Tables 4 & 9: training time w/ and w/o transfer learning (phones) ===");
    std::printf("hourly slices: %d x %zu UEs\n\n", kHours, hourly_ues);

    // Build the six hourly slices plus their union.
    std::vector<trace::Dataset> hours;
    trace::Dataset all;
    all.generation = cellular::Generation::kLte4G;
    for (int h = 0; h < kHours; ++h) {
        trace::SyntheticWorldConfig cfg;
        cfg.population = {hourly_ues, 0, 0};
        cfg.hour_of_day = kStartHour + h;
        cfg.seed = 7000 + static_cast<std::uint64_t>(h);
        hours.push_back(trace::SyntheticWorldGenerator(cfg).generate());
        for (const auto& s : hours.back().streams) all.streams.push_back(s);
    }

    // ---- CPT-GPT ----
    double gpt_scratch = 0.0;
    double gpt_first = 0.0;
    double gpt_finetune_total = 0.0;
    {
        const auto cfg = bench::bench_model_config(env);
        core::TrainConfig tcfg;
        tcfg.max_epochs = env.epochs;
        tcfg.patience = std::max(3, env.epochs / 5);
        tcfg.window = env.window;
        tcfg.w_event = 3.0f;

        {  // single 6-hour model from scratch
            const auto tok = core::Tokenizer::fit(all);
            util::Rng rng(71);
            core::CptGpt model(tok, cfg, rng);
            gpt_scratch = core::Trainer(model, tok, tcfg).train(all).seconds;
        }
        {  // hour-0 from scratch, recursive fine-tune to hours 1..5
            const auto tok = core::Tokenizer::fit(hours[0]);
            util::Rng rng(72);
            core::CptGpt model(tok, cfg, rng);
            core::Trainer trainer(model, tok, tcfg);
            gpt_first = trainer.train(hours[0]).seconds;
            for (int h = 1; h < kHours; ++h) {
                gpt_finetune_total += trainer.fine_tune(hours[h]).seconds;
            }
        }
    }

    // ---- NetShare ----
    double gan_scratch = 0.0;
    double gan_first = 0.0;
    double gan_finetune_total = 0.0;
    {
        gan::GanTrainConfig tcfg;
        tcfg.max_epochs = env.gan_epochs;
        tcfg.eval_every = std::max(5, env.gan_epochs / 6);

        {  // 6-hour model from scratch
            const auto tok = core::Tokenizer::fit(all);
            util::Rng rng(73);
            gan::NetShareGenerator gen(tok, bench::bench_gan_config(env), rng);
            gan_scratch = gen.train(all, tcfg).seconds;
        }
        {  // hour-0 from scratch, recursive fine-tune
            const auto tok = core::Tokenizer::fit(hours[0]);
            util::Rng rng(74);
            gan::NetShareGenerator gen(tok, bench::bench_gan_config(env), rng);
            gan_first = gen.train(hours[0], tcfg).seconds;
            // GAN fine-tuning converges slowly (paper L3): the checkpoint
            // heuristic keeps training near the full budget per hour.
            for (int h = 1; h < kHours; ++h) {
                gan_finetune_total += gen.train(hours[h], tcfg).seconds;
            }
        }
    }

    const double gpt_total = gpt_first + gpt_finetune_total;
    const double gan_total = gan_first + gan_finetune_total;
    util::TextTable t({"setup", "NetShare paper", "NetShare ours", "CPT-GPT paper",
                       "CPT-GPT ours"});
    t.add_row({"6-hour model from scratch", "108.36 min", util::fmt(gan_scratch, 1) + " s",
               "104.40 min", util::fmt(gpt_scratch, 1) + " s"});
    t.add_row({"first hour from scratch", "43.08 min", util::fmt(gan_first, 1) + " s",
               "21.81 min", util::fmt(gpt_first, 1) + " s"});
    t.add_row({"finetune per subsequent hour (avg)", "30.41 min",
               util::fmt(gan_finetune_total / 5.0, 1) + " s", "9.06 min",
               util::fmt(gpt_finetune_total / 5.0, 1) + " s"});
    t.add_row({"6 hourly models total (transfer)", "195.12 min", util::fmt(gan_total, 1) + " s",
               "67.12 min", util::fmt(gpt_total, 1) + " s"});
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nspeedup of transfer vs from-scratch ensemble: NetShare %.2fx, CPT-GPT %.2fx\n",
                gan_scratch / gan_total, gpt_scratch / gpt_total);
    std::puts("Shape to reproduce: CPT-GPT's hourly ensemble via transfer learning is cheaper");
    std::puts("than its 6-hour from-scratch model, while NetShare's is more expensive");
    std::puts("(paper: 0.56x for NetShare vs 1.56x for CPT-GPT).");
    return 0;
}
