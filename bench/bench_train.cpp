// Training-path throughput: Trainer::train driven through the arena-backed
// tape, SIMD backward kernels, and fused optimizer, reported as optimizer
// steps/sec and window-tokens/sec per available SIMD tier (speedup vs the
// scalar baseline), plus thread-scaling rows and the Design-3 parallel
// per-slice fine-tune cost through HubTrainer. Emits BENCH_train.json next to
// the binary.
//
// The model is untrained and the data synthetic — training throughput depends
// on shapes, not weight values — so the bench needs no checkpoint and runs in
// well under a minute.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/hub_trainer.hpp"
#include "core/model.hpp"
#include "core/model_hub.hpp"
#include "core/trainer.hpp"
#include "trace/synthetic.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cpt;

std::vector<util::SimdTier> available_tiers() {
    std::vector<util::SimdTier> tiers{util::SimdTier::kScalar};
    if (util::simd_tier_available(util::SimdTier::kSse2)) tiers.push_back(util::SimdTier::kSse2);
    if (util::simd_tier_available(util::SimdTier::kAvx2)) tiers.push_back(util::SimdTier::kAvx2);
    return tiers;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

trace::Dataset phone_world(std::size_t n, std::uint64_t seed) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

core::CptGptConfig bench_model() {
    core::CptGptConfig cfg;
    cfg.d_model = 128;
    cfg.heads = 4;
    cfg.mlp_hidden = 1024;
    cfg.blocks = 2;
    cfg.max_seq_len = 128;
    cfg.head_hidden = 128;
    return cfg;
}

core::TrainConfig bench_train_config() {
    core::TrainConfig cfg;
    cfg.batch_size = 16;
    cfg.window = 32;
    cfg.max_epochs = 2;
    cfg.patience = 100;  // fixed-epoch run: never early-stop
    cfg.lr_decay = false;
    cfg.verbose = false;
    return cfg;
}

struct TrainRow {
    const char* tier;
    std::size_t threads = 1;
    std::size_t steps = 0;
    std::size_t tokens = 0;
    int epochs = 0;
    double seconds = 0.0;
    double steps_per_sec = 0.0;
    double tokens_per_sec = 0.0;
    double epoch_seconds = 0.0;
    double speedup = 0.0;  // vs the section's baseline row
};

TrainRow run_train(const trace::Dataset& world, util::SimdTier tier, std::size_t threads) {
    const auto tok = core::Tokenizer::fit(world);
    util::Rng init(17);
    core::CptGpt model(tok, bench_model(), init);
    core::Trainer trainer(model, tok, bench_train_config());
    TrainRow row{util::simd_tier_name(tier), threads};
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = trainer.train(world);
    row.seconds = seconds_since(t0);
    row.steps = r.steps;
    row.tokens = r.tokens;
    row.epochs = r.epochs_run;
    row.steps_per_sec = static_cast<double>(r.steps) / row.seconds;
    row.tokens_per_sec = static_cast<double>(r.tokens) / row.seconds;
    row.epoch_seconds = row.seconds / r.epochs_run;
    return row;
}

}  // namespace

int main() {
    const auto world = phone_world(150, 13);
    const std::size_t configured = util::configured_threads();

    // Per-tier rows at one thread: speedup is pure kernel tier.
    util::set_global_threads(1);
    std::vector<TrainRow> tier_rows;
    for (util::SimdTier tier : available_tiers()) {
        const util::SimdTier prev = util::set_simd_tier(tier);
        tier_rows.push_back(run_train(world, tier, 1));
        util::set_simd_tier(prev);
    }
    for (auto& r : tier_rows) r.speedup = r.steps_per_sec / tier_rows.front().steps_per_sec;
    for (const auto& r : tier_rows) {
        std::printf("train tier %-6s  %zu steps (%zu tokens) in %.2f s  -> %6.1f steps/s  "
                    "%8.1f tokens/s  (%.2fx vs scalar)\n",
                    r.tier, r.steps, r.tokens, r.seconds, r.steps_per_sec, r.tokens_per_sec,
                    r.speedup);
    }

    // Thread-scaling rows at the active (best available) tier. Loss
    // trajectories are bit-identical across these rows (see
    // tests/train_determinism_test.cpp); only wall-clock may move.
    const char* active = util::simd_tier_name(util::active_simd_tier());
    std::vector<TrainRow> thread_rows;
    std::vector<std::size_t> thread_counts{1};
    if (configured > 1) thread_counts.push_back(configured);
    if (configured != 2) thread_counts.push_back(2);
    for (std::size_t t : thread_counts) {
        util::set_global_threads(t);
        TrainRow row = run_train(world, util::active_simd_tier(), t);
        thread_rows.push_back(row);
    }
    for (auto& r : thread_rows) r.speedup = r.steps_per_sec / thread_rows.front().steps_per_sec;
    for (const auto& r : thread_rows) {
        std::printf("train tier %-6s  threads %zu  %.2f s  -> %6.1f steps/s  (%.2fx vs 1 thread)\n",
                    r.tier, r.threads, r.seconds, r.steps_per_sec, r.speedup);
    }

    // Design-3 hub fine-tune: pretrain one model, fine-tune one copy per
    // hour slice through HubTrainer (worker-parallel across slices).
    util::set_global_threads(configured);
    const auto tok = core::Tokenizer::fit(world);
    core::HubTrainOptions options;
    options.model = bench_model();
    options.train = bench_train_config();
    options.publish = false;
    util::Rng init(17);
    core::CptGpt pretrained(tok, options.model, init);
    {
        core::Trainer trainer(pretrained, tok, options.train);
        trainer.train(world);
    }
    const std::vector<trace::Dataset> slice_worlds = {
        phone_world(60, 21), phone_world(60, 22), phone_world(60, 23)};
    std::vector<core::HubSlice> slices;
    for (std::size_t i = 0; i < slice_worlds.size(); ++i) {
        slices.push_back({trace::DeviceType::kPhone, static_cast<int>(8 * i), &slice_worlds[i]});
    }
    core::ModelHub hub("bench_train_hub");
    core::HubTrainer hub_trainer(hub, options);
    const auto t0 = std::chrono::steady_clock::now();
    const auto slice_results = hub_trainer.fine_tune_all(pretrained, tok, slices);
    const double hub_seconds = seconds_since(t0);
    double slice_sum = 0.0;
    for (const auto& s : slice_results) slice_sum += s.result.seconds;
    std::printf("hub fine_tune  %zu slices in %.2f s wall (sum of per-slice %.2f s, "
                "threads %zu)\n",
                slice_results.size(), hub_seconds, slice_sum, configured);

    const char* path = "BENCH_train.json";
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_train: cannot write %s\n", path);
        return 1;
    }
    const auto mdl = bench_model();
    const auto tcfg = bench_train_config();
    std::fprintf(f,
                 "{\n  \"bench\": \"train\",\n  \"threads_configured\": %zu,\n"
                 "  \"model\": {\"d_model\": %zu, \"mlp_hidden\": %zu, \"blocks\": %zu},\n"
                 "  \"train\": {\"batch_size\": %zu, \"window\": %zu, \"epochs\": %d},\n"
                 "  \"tier_rows\": [\n",
                 configured, mdl.d_model, mdl.mlp_hidden, mdl.blocks, tcfg.batch_size,
                 tcfg.window, tcfg.max_epochs);
    for (std::size_t i = 0; i < tier_rows.size(); ++i) {
        const auto& r = tier_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"threads\": %zu, \"steps\": %zu, \"tokens\": %zu, "
                     "\"seconds\": %.4f, \"steps_per_sec\": %.2f, \"tokens_per_sec\": %.1f, "
                     "\"epoch_seconds\": %.4f, \"speedup_vs_scalar\": %.3f}%s\n",
                     r.tier, r.threads, r.steps, r.tokens, r.seconds, r.steps_per_sec,
                     r.tokens_per_sec, r.epoch_seconds, r.speedup,
                     i + 1 < tier_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"thread_rows\": [\n");
    for (std::size_t i = 0; i < thread_rows.size(); ++i) {
        const auto& r = thread_rows[i];
        std::fprintf(f,
                     "    {\"tier\": \"%s\", \"threads\": %zu, \"seconds\": %.4f, "
                     "\"steps_per_sec\": %.2f, \"speedup_vs_1_thread\": %.3f}%s\n",
                     active, r.threads, r.seconds, r.steps_per_sec, r.speedup,
                     i + 1 < thread_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"hub_fine_tune\": {\"slices\": %zu, \"wall_seconds\": %.4f, "
                 "\"slice_seconds_sum\": %.4f, \"threads\": %zu, \"per_slice\": [\n",
                 slice_results.size(), hub_seconds, slice_sum, configured);
    for (std::size_t i = 0; i < slice_results.size(); ++i) {
        const auto& s = slice_results[i];
        std::fprintf(f,
                     "    {\"hour\": %d, \"epochs\": %d, \"steps\": %zu, \"seconds\": %.4f}%s\n",
                     s.hour_of_day, s.result.epochs_run, s.result.steps, s.result.seconds,
                     i + 1 < slice_results.size() ? "," : "");
    }
    std::fprintf(f, "  ]}\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
