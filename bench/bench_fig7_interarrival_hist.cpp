// Figure 7 (Appendix B): interarrival-time distribution for phone UEs, raw
// (long-tailed) and after the log transform CPT-GPT applies during
// tokenization (approximately uniformized) — the justification for Design 1's
// log scaling.
#include <cstdio>

#include "common.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto env = bench::BenchEnv::from_options(opt);
    const auto real = bench::train_world(trace::DeviceType::kPhone, 10, env);
    const auto ia = real.all_interarrivals();

    std::puts("=== Figure 7: interarrival time distribution (phones) ===");
    const auto s = util::summarize(ia);
    std::printf("samples %zu  mean %.1fs  stddev %.1fs  min %.2fs  max %.1fs  p50 %.1fs  p99 %.1fs\n\n",
                s.count, s.mean, s.stddev, s.min, s.max, util::quantile(ia, 0.5),
                util::quantile(ia, 0.99));

    std::puts("--- raw interarrival t (seconds): long-tailed ---");
    std::fputs(util::render_histogram(util::make_histogram(ia, 16, false)).c_str(), stdout);

    std::puts("\n--- log10(t + 1): flattened by the tokenizer's log scaling ---");
    std::fputs(util::render_histogram(util::make_histogram(ia, 16, true)).c_str(), stdout);

    std::puts("\nShape to reproduce: the raw histogram concentrates in the smallest bins with");
    std::puts("a tail to hundreds of seconds; the log-scaled view spreads mass across bins.");
    return 0;
}
