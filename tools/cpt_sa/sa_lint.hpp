// cpt_sa — project-invariant source linter (DESIGN.md §13).
//
// Enforces repository contracts the compiler cannot express:
//
//   sync-types      only src/util/sync.hpp may name std::mutex /
//                   std::condition_variable / std::lock_guard /
//                   std::unique_lock (or include their headers); everything
//                   else must use the capability-annotated util::Mutex /
//                   util::CondVar / util::LockGuard so no lock escapes the
//                   clang thread-safety analysis.
//   avx2-isolation  only *_avx2.cpp translation units (and *_avx2* headers
//                   included from them) may include <immintrin.h> or an
//                   _avx2 header — pins the "runtime dispatcher alone decides
//                   the tier" contract.
//   avx2-flags      in CMake files, -mavx2 / -mfma / -mf16c may only appear
//                   in compiler-capability probes (check_cxx_compiler_flag),
//                   AVX2-named option variables, or
//                   set_source_files_properties calls whose sources are all
//                   *_avx2.cpp — no target- or directory-wide AVX2 flags.
//   determinism     deterministic paths (src/nn/**, src/core/sampler.*,
//                   src/trace/columnar.*, src/util/sketch.*) must
//                   not call rand()/srand()/time()/clock() or iterate
//                   std::unordered_{map,set} (hash order is not a function
//                   of the seed, so iteration breaks byte-identical
//                   generation). Declaring/looking up unordered containers
//                   is fine; only iteration order is nondeterministic.
//   raw-stderr      no fprintf(stderr, ...) / std::cerr outside
//                   src/util/log.cpp — diagnostics go through util::warn /
//                   util::warnf / util::info so concurrent lines never shear
//                   and the "[cpt]" prefix stays greppable.
//
// Suppression: append `// cpt-sa-allow(<rule>)` (or `# cpt-sa-allow(<rule>)`
// in CMake) on the offending line or the line above it; `cpt-sa-allow(*)`
// suppresses every rule on that line. Each suppression is a reviewed,
// greppable exception.
//
// The analysis is token-level over comment- and literal-stripped text — a
// deliberate "AST-lite" design so the tool builds with no compiler
// dependencies and runs in milliseconds in the `sa` stage of
// scripts/check.sh.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cpt::sa {

struct Violation {
    std::string file;  // project-relative path (forward slashes)
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

struct LintResult {
    std::vector<Violation> violations;
    std::size_t files_scanned = 0;
};

// Lints one file given its project-relative path (forward slashes; rule
// scoping keys off this) and contents. Appends violations to `out`.
void lint_text(const std::string& rel_path, const std::string& text,
               std::vector<Violation>& out);

// Walks `paths` (files or directories, absolute or relative to `root`),
// lints every C++ source/header and CMake file found, and returns all
// violations sorted by (file, line). On I/O failure returns a result and
// sets *error. Rule scoping uses paths relative to `root`.
LintResult lint_paths(const std::string& root, const std::vector<std::string>& paths,
                      std::string* error);

// "file:line: [rule] message (suppress: cpt-sa-allow(rule))"
std::string format(const Violation& v);

}  // namespace cpt::sa
