#include "sa_lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cpt::sa {

namespace fs = std::filesystem;

namespace {

bool is_ident(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

// One loaded file: raw text, a "code view" with comments and string/char
// literals blanked to spaces (newlines preserved so offsets and line numbers
// stay aligned), and a line-offset index.
struct Source {
    std::string raw;
    std::string code;
    std::vector<std::size_t> line_off;  // line_off[i] = offset where line i+1 starts

    std::size_t line_of(std::size_t off) const {
        const auto it = std::upper_bound(line_off.begin(), line_off.end(), off);
        return static_cast<std::size_t>(it - line_off.begin());
    }

    std::string raw_line(std::size_t line) const {  // 1-based; "" if out of range
        if (line == 0 || line > line_off.size()) return {};
        const std::size_t begin = line_off[line - 1];
        std::size_t end = raw.find('\n', begin);
        if (end == std::string::npos) end = raw.size();
        return raw.substr(begin, end - begin);
    }
};

// Blanks // and /* */ comments plus string/char literals (including raw
// strings — the delimiter is only honored when the prefix before the quote is
// exactly R/u8R/uR/UR/LR, so an identifier like REGISTER" is an ordinary
// string). Sequential single pass: each construct is consumed from the state
// it starts in, never via context-free pattern matching.
std::string blank_cpp(const std::string& s) {
    std::string out = s;
    const std::size_t n = s.size();
    const auto space = [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e && k < n; ++k) {
            if (out[k] != '\n') out[k] = ' ';
        }
    };
    std::size_t i = 0;
    while (i < n) {
        const char c = s[i];
        if (c == '/' && i + 1 < n && s[i + 1] == '/') {
            std::size_t j = i;
            while (j < n && s[j] != '\n') ++j;
            space(i, j);
            i = j;
        } else if (c == '/' && i + 1 < n && s[i + 1] == '*') {
            std::size_t j = s.find("*/", i + 2);
            j = (j == std::string::npos) ? n : j + 2;
            space(i, j);
            i = j;
        } else if (c == '"') {
            std::size_t ps = i;
            while (ps > 0 && is_ident(s[ps - 1])) --ps;
            const std::string prefix = s.substr(ps, i - ps);
            const bool raw_lit = prefix == "R" || prefix == "u8R" || prefix == "uR" ||
                                 prefix == "UR" || prefix == "LR";
            if (raw_lit) {
                std::string delim;
                std::size_t p = i + 1;
                while (p < n && s[p] != '(') delim += s[p++];
                const std::string close = ")" + delim + "\"";
                std::size_t j = s.find(close, p);
                j = (j == std::string::npos) ? n : j + close.size();
                space(i, j);
                i = j;
            } else {
                std::size_t j = i + 1;
                while (j < n && s[j] != '"') {
                    if (s[j] == '\\' && j + 1 < n) ++j;
                    ++j;
                }
                if (j < n) ++j;
                space(i, j);
                i = j;
            }
        } else if (c == '\'') {
            // A quote preceded by an alnum is a digit separator (1'000), not a
            // character literal.
            if (i > 0 && std::isalnum(static_cast<unsigned char>(s[i - 1])) != 0) {
                ++i;
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && s[j] != '\'') {
                if (s[j] == '\\' && j + 1 < n) ++j;
                ++j;
            }
            if (j < n) ++j;
            space(i, j);
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

// CMake: blank everything from an unquoted '#' to end of line.
std::string blank_cmake(const std::string& s) {
    std::string out = s;
    bool in_quote = false;
    bool in_comment = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '\n') {
            in_comment = false;
            in_quote = false;  // CMake quotes can span lines, but not in this repo
            continue;
        }
        if (in_comment) {
            out[i] = ' ';
            continue;
        }
        if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_quote = !in_quote;
        if (c == '#' && !in_quote) {
            in_comment = true;
            out[i] = ' ';
        }
    }
    return out;
}

Source load(const std::string& text, bool cmake) {
    Source src;
    src.raw = text;
    src.code = cmake ? blank_cmake(text) : blank_cpp(text);
    src.line_off.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n') src.line_off.push_back(i + 1);
    }
    return src;
}

// `cpt-sa-allow(rule)` or `cpt-sa-allow(*)` on the flagged line or the line
// above suppresses the finding. Checked against raw text so the marker lives
// in a comment.
bool suppressed(const Source& src, std::size_t line, const std::string& rule) {
    const std::string exact = "cpt-sa-allow(" + rule + ")";
    const std::string any = "cpt-sa-allow(*)";
    for (const std::size_t ln : {line, line > 1 ? line - 1 : line}) {
        const std::string text = src.raw_line(ln);
        if (text.find(exact) != std::string::npos || text.find(any) != std::string::npos) {
            return true;
        }
    }
    return false;
}

void emit(const Source& src, const std::string& rel, std::size_t off, std::string rule,
          std::string message, std::vector<Violation>& out) {
    const std::size_t line = src.line_of(off);
    if (suppressed(src, line, rule)) return;
    out.push_back({rel, line, std::move(rule), std::move(message)});
}

// ---- shared token helpers --------------------------------------------------

// Finds the next whole-identifier occurrence of `word` in `code` at or after
// `from`; npos if none.
std::size_t find_token(const std::string& code, const std::string& word, std::size_t from) {
    std::size_t pos = from;
    while ((pos = code.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok = end >= code.size() || !is_ident(code[end]);
        if (left_ok && right_ok) return pos;
        pos = end;
    }
    return std::string::npos;
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
    while (pos < code.size() && is_space(code[pos])) ++pos;
    return pos;
}

std::size_t skip_ws_back(const std::string& code, std::size_t pos) {
    // Returns the index of the last non-space char at or before pos, or npos.
    while (pos != std::string::npos && pos < code.size() && is_space(code[pos])) {
        if (pos == 0) return std::string::npos;
        --pos;
    }
    return pos;
}

std::string ident_at(const std::string& code, std::size_t pos) {
    std::size_t end = pos;
    while (end < code.size() && is_ident(code[end])) ++end;
    return code.substr(pos, end - pos);
}

std::string ident_ending_at(const std::string& code, std::size_t last) {
    // Identifier whose final character sits at index `last`.
    if (last == std::string::npos || !is_ident(code[last])) return {};
    std::size_t begin = last;
    while (begin > 0 && is_ident(code[begin - 1])) --begin;
    return code.substr(begin, last - begin + 1);
}

// ---- includes --------------------------------------------------------------

struct Include {
    std::size_t off = 0;       // offset of the '#'
    std::string target;        // between the delimiters
    bool angled = false;
};

std::vector<Include> find_includes(const Source& src) {
    std::vector<Include> out;
    // Horizontal-only skip: crossing a newline here would make an empty line
    // "see" the next line's directive and double-report it.
    const auto skip_hws = [](const std::string& s, std::size_t p) {
        while (p < s.size() && (s[p] == ' ' || s[p] == '\t')) ++p;
        return p;
    };
    for (std::size_t li = 0; li < src.line_off.size(); ++li) {
        std::size_t p = skip_hws(src.raw, src.line_off[li]);
        if (p >= src.raw.size() || src.raw[p] != '#') continue;
        // Blanked in the code view ⇒ the directive is inside a block comment.
        if (src.code[p] != '#') continue;
        const std::size_t hash = p;
        p = skip_hws(src.raw, p + 1);
        if (src.raw.compare(p, 7, "include") != 0) continue;
        p = skip_hws(src.raw, p + 7);
        if (p >= src.raw.size()) continue;
        const char open = src.raw[p];
        if (open != '<' && open != '"') continue;
        const char close = open == '<' ? '>' : '"';
        const std::size_t end = src.raw.find(close, p + 1);
        if (end == std::string::npos) continue;
        out.push_back({hash, src.raw.substr(p + 1, end - p - 1), open == '<'});
    }
    return out;
}

std::string include_basename(const std::string& target) {
    const std::size_t slash = target.find_last_of('/');
    return slash == std::string::npos ? target : target.substr(slash + 1);
}

// ---- rule: sync-types ------------------------------------------------------

constexpr std::array<const char*, 12> kStdSyncNames = {
    "mutex",          "timed_mutex",        "recursive_mutex",
    "recursive_timed_mutex",                "shared_mutex",
    "shared_timed_mutex",                   "condition_variable",
    "condition_variable_any",               "lock_guard",
    "unique_lock",    "scoped_lock",        "shared_lock",
};

constexpr std::array<const char*, 3> kSyncHeaders = {"mutex", "condition_variable",
                                                     "shared_mutex"};

void rule_sync_types(const std::string& rel, const Source& src,
                     std::vector<Violation>& out) {
    if (rel == "src/util/sync.hpp") return;
    for (const Include& inc : find_includes(src)) {
        if (!inc.angled) continue;
        for (const char* hdr : kSyncHeaders) {
            if (inc.target == hdr) {
                emit(src, rel, inc.off, "sync-types",
                     "#include <" + inc.target +
                         "> outside src/util/sync.hpp; use util::Mutex / util::CondVar / "
                         "util::LockGuard from \"util/sync.hpp\" so the lock carries "
                         "thread-safety capability annotations",
                     out);
            }
        }
    }
    std::size_t pos = 0;
    while ((pos = find_token(src.code, "std", pos)) != std::string::npos) {
        std::size_t p = skip_ws(src.code, pos + 3);
        if (src.code.compare(p, 2, "::") != 0) {
            pos += 3;
            continue;
        }
        p = skip_ws(src.code, p + 2);
        const std::string name = ident_at(src.code, p);
        for (const char* sync : kStdSyncNames) {
            if (name == sync) {
                emit(src, rel, pos, "sync-types",
                     "std::" + name +
                         " outside src/util/sync.hpp; use util::Mutex / util::CondVar / "
                         "util::LockGuard so clang thread-safety analysis sees the lock",
                     out);
                break;
            }
        }
        pos += 3;
    }
}

// ---- rule: avx2-isolation --------------------------------------------------

void rule_avx2_isolation(const std::string& rel, const Source& src,
                         std::vector<Violation>& out) {
    const std::string base = fs::path(rel).filename().string();
    if (base.find("_avx2") != std::string::npos) return;
    for (const Include& inc : find_includes(src)) {
        const std::string name = include_basename(inc.target);
        const bool intrin = inc.angled && (name == "immintrin.h" || name == "x86intrin.h");
        const bool avx2_hdr = name.find("_avx2") != std::string::npos;
        if (intrin || avx2_hdr) {
            emit(src, rel, inc.off, "avx2-isolation",
                 "include of " + inc.target +
                     " in a non-_avx2 translation unit; AVX2 intrinsics may only appear "
                     "in *_avx2.cpp files so the runtime dispatcher alone selects the "
                     "SIMD tier",
                 out);
        }
    }
}

// ---- rule: determinism -----------------------------------------------------

bool in_deterministic_path(const std::string& rel) {
    return rel.starts_with("src/nn/") || rel.starts_with("src/core/sampler.") ||
           rel.starts_with("src/core/spec_drafter.") ||
           rel.starts_with("src/trace/columnar.") || rel.starts_with("src/util/sketch.");
}

constexpr std::array<const char*, 8> kNondetCalls = {
    "rand", "srand", "rand_r", "random", "drand48", "time", "clock", "gettimeofday",
};

void rule_determinism(const std::string& rel, const Source& src,
                      std::vector<Violation>& out) {
    if (!in_deterministic_path(rel)) return;
    const std::string& code = src.code;

    // Banned libc calls: whole identifier followed by '(', excluding member
    // calls (obj.time(...), ptr->clock(...)) and foreign qualifications
    // (Clock::time(...)). std::time / ::time still count — those are libc.
    for (const char* fn : kNondetCalls) {
        std::size_t pos = 0;
        while ((pos = find_token(code, fn, pos)) != std::string::npos) {
            const std::size_t at = pos;
            pos += std::string(fn).size();
            if (skip_ws(code, pos) >= code.size() || code[skip_ws(code, pos)] != '(') {
                continue;
            }
            const std::size_t prev = skip_ws_back(code, at == 0 ? std::string::npos : at - 1);
            if (prev != std::string::npos) {
                const char pc = code[prev];
                if (pc == '.') continue;                       // member call
                if (pc == '>' && prev > 0 && code[prev - 1] == '-') continue;  // arrow
                if (pc == ':' && prev > 0 && code[prev - 1] == ':') {
                    // The qualifier must sit flush against the "::" —
                    // `return ::time(...)` has whitespace there, so `return`
                    // is not a qualifier and the global libc call is flagged.
                    const std::string qual =
                        prev >= 2 ? ident_ending_at(code, prev - 2) : std::string();
                    if (!qual.empty() && qual != "std") continue;  // Foo::time(...)
                }
            }
            emit(src, rel, at, "determinism",
                 std::string(fn) +
                     "() in a deterministic path; generation must be a pure function of "
                     "the seed — use the seeded util RNG, or take timestamps as inputs",
                 out);
        }
    }

    // Iterating a std::unordered_{map,set}: hash order is not seed-stable.
    // First collect names declared with an unordered type in this file...
    std::vector<std::string> names;
    for (const char* type : {"std::unordered_map", "std::unordered_set"}) {
        std::size_t pos = 0;
        while ((pos = code.find(type, pos)) != std::string::npos) {
            std::size_t p = pos + std::string(type).size();
            pos = p;
            if (p < code.size() && is_ident(code[p])) continue;  // e.g. unordered_multimap
            p = skip_ws(code, p);
            if (p >= code.size() || code[p] != '<') continue;
            int depth = 1;
            ++p;
            while (p < code.size() && depth > 0) {
                const char c = code[p];
                if (c == '<') ++depth;
                if (c == '>' && code[p - 1] != '-') --depth;  // skip ->
                ++p;
            }
            p = skip_ws(code, p);
            while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
                p = skip_ws(code, p + 1);
            }
            const std::string name = ident_at(code, p);
            if (!name.empty() && name != "const") names.push_back(name);
        }
    }

    for (const std::string& name : names) {
        // `for (... : name)` — range-for directly over the container.
        std::size_t pos = 0;
        while ((pos = find_token(code, "for", pos)) != std::string::npos) {
            const std::size_t kw = pos;
            pos += 3;
            std::size_t p = skip_ws(code, pos);
            if (p >= code.size() || code[p] != '(') continue;
            int depth = 1;
            std::size_t colon = std::string::npos;
            std::size_t q = p + 1;
            while (q < code.size() && depth > 0) {
                const char c = code[q];
                if (c == '(') ++depth;
                if (c == ')') --depth;
                if (c == ':' && depth == 1 && code[q - 1] != ':' &&
                    (q + 1 >= code.size() || code[q + 1] != ':') &&
                    colon == std::string::npos) {
                    colon = q;
                }
                ++q;
            }
            if (colon == std::string::npos) continue;
            std::size_t r = skip_ws(code, colon + 1);
            if (ident_at(code, r) != name) continue;
            r = skip_ws(code, r + name.size());
            if (r < code.size() && code[r] == ')') {
                emit(src, rel, kw, "determinism",
                     "range-for over std::unordered container '" + name +
                         "'; iteration order depends on hashing, not the seed — iterate a "
                         "side vector in insertion order (see src/nn/graph_lint.cpp)",
                     out);
            }
        }
        // `name.begin()` and friends — explicit iterator walks.
        pos = 0;
        while ((pos = find_token(code, name, pos)) != std::string::npos) {
            const std::size_t at = pos;
            pos += name.size();
            std::size_t p = skip_ws(code, pos);
            if (p >= code.size() || code[p] != '.') continue;
            const std::string member = ident_at(code, skip_ws(code, p + 1));
            if (member == "begin" || member == "cbegin" || member == "rbegin" ||
                member == "crbegin") {
                emit(src, rel, at, "determinism",
                     "iterator walk over std::unordered container '" + name +
                         "'; iteration order depends on hashing, not the seed — iterate a "
                         "side vector in insertion order (see src/nn/graph_lint.cpp)",
                     out);
            }
        }
    }
}

// ---- rule: raw-stderr ------------------------------------------------------

void rule_raw_stderr(const std::string& rel, const Source& src,
                     std::vector<Violation>& out) {
    if (!rel.starts_with("src/") || rel == "src/util/log.cpp") return;
    const std::string& code = src.code;

    for (const char* fn : {"fprintf", "vfprintf", "fputs", "fputc", "fwrite"}) {
        std::size_t pos = 0;
        while ((pos = find_token(code, fn, pos)) != std::string::npos) {
            const std::size_t at = pos;
            pos += std::string(fn).size();
            std::size_t p = skip_ws(code, pos);
            if (p >= code.size() || code[p] != '(') continue;
            // Scan the argument list (to the matching paren) for a bare
            // `stderr` token.
            int depth = 1;
            std::size_t q = p + 1;
            const std::size_t args_begin = q;
            while (q < code.size() && depth > 0) {
                if (code[q] == '(') ++depth;
                if (code[q] == ')') --depth;
                ++q;
            }
            const std::string args = code.substr(args_begin, q - args_begin);
            if (find_token(args, "stderr", 0) != std::string::npos) {
                emit(src, rel, at, "raw-stderr",
                     std::string(fn) +
                         "(… stderr …) outside src/util/log.cpp; route diagnostics "
                         "through util::warn/util::warnf/util::info so concurrent lines "
                         "never shear and keep the [cpt] prefix",
                     out);
            }
        }
    }

    for (const char* stream : {"cerr", "clog"}) {
        std::size_t pos = 0;
        while ((pos = find_token(code, "std", pos)) != std::string::npos) {
            const std::size_t at = pos;
            pos += 3;
            std::size_t p = skip_ws(code, pos);
            if (code.compare(p, 2, "::") != 0) continue;
            p = skip_ws(code, p + 2);
            if (ident_at(code, p) == stream) {
                emit(src, rel, at, "raw-stderr",
                     std::string("std::") + stream +
                         " outside src/util/log.cpp; route diagnostics through "
                         "util::warn/util::warnf/util::info",
                     out);
            }
        }
    }
}

// ---- rule: avx2-flags (CMake) ----------------------------------------------

std::vector<std::string> cmake_args(const std::string& args) {
    std::vector<std::string> out;
    std::string cur;
    bool in_quote = false;
    for (const char c : args) {
        if (c == '"') {
            in_quote = !in_quote;
            continue;
        }
        if (!in_quote && is_space(c)) {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

void rule_avx2_flags(const std::string& rel, const Source& src,
                     std::vector<Violation>& out) {
    const std::string& code = src.code;
    std::size_t pos = 0;
    while (pos < code.size()) {
        // Next command invocation: identifier then '('.
        while (pos < code.size() && !is_ident(code[pos])) ++pos;
        if (pos >= code.size()) break;
        const std::size_t at = pos;
        const std::string raw_name = ident_at(code, pos);
        pos += raw_name.size();
        std::size_t p = skip_ws(code, pos);
        if (p >= code.size() || code[p] != '(') continue;
        int depth = 1;
        std::size_t q = p + 1;
        const std::size_t args_begin = q;
        bool in_quote = false;
        while (q < code.size() && depth > 0) {
            const char c = code[q];
            if (c == '"') in_quote = !in_quote;
            if (!in_quote && c == '(') ++depth;
            if (!in_quote && c == ')') --depth;
            ++q;
        }
        const std::string args = code.substr(args_begin, q - args_begin - 1);
        pos = q;

        std::string name = raw_name;
        std::transform(name.begin(), name.end(), name.begin(),
                       [](unsigned char c) { return static_cast<char>(std::tolower(c)); });

        const bool has_flag = args.find("-mavx2") != std::string::npos ||
                              args.find("-mfma") != std::string::npos ||
                              args.find("-mf16c") != std::string::npos;
        const bool mentions_avx2 = args.find("AVX2") != std::string::npos ||
                                   args.find("avx2") != std::string::npos;

        if (name == "check_cxx_compiler_flag") continue;  // capability probe
        if (name == "set") {
            // set(CPT_AVX2_TU_OPTIONS ...) — the named holding variable.
            const std::vector<std::string> toks = cmake_args(args);
            if (has_flag &&
                (toks.empty() || toks.front().find("AVX2") == std::string::npos)) {
                emit(src, rel, at, "avx2-flags",
                     "set() stores -mavx2/-mfma/-mf16c in a variable not named *AVX2*; "
                     "keep the flags in CPT_AVX2_TU_OPTIONS so only *_avx2.cpp sources "
                     "can receive them",
                     out);
            }
            continue;
        }
        if (name == "set_source_files_properties") {
            if (!has_flag && !mentions_avx2) continue;
            const std::vector<std::string> toks = cmake_args(args);
            bool all_avx2 = true;
            for (const std::string& t : toks) {
                if (t == "PROPERTIES") break;
                if (!t.ends_with("_avx2.cpp")) all_avx2 = false;
            }
            if (!all_avx2) {
                emit(src, rel, at, "avx2-flags",
                     "set_source_files_properties applies AVX2 options to a source not "
                     "named *_avx2.cpp; AVX2 codegen is confined to *_avx2.cpp TUs so "
                     "the baseline binary never executes AVX2 instructions",
                     out);
            }
            continue;
        }
        if (has_flag) {
            emit(src, rel, at, "avx2-flags",
                 raw_name +
                     "() passes -mavx2/-mfma/-mf16c directly; AVX2 flags may only reach "
                     "*_avx2.cpp sources via set_source_files_properties (or the "
                     "CPT_AVX2_TU_OPTIONS variable / check_cxx_compiler_flag probes)",
                 out);
        }
    }
}

bool is_cpp_file(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
           ext == ".h" || ext == ".hh" || ext == ".inl" || ext == ".ipp";
}

bool is_cmake_file(const fs::path& p) {
    return p.filename() == "CMakeLists.txt" || p.extension() == ".cmake";
}

}  // namespace

void lint_text(const std::string& rel_path, const std::string& text,
               std::vector<Violation>& out) {
    const fs::path rel(rel_path);
    const std::size_t before = out.size();
    if (is_cmake_file(rel)) {
        const Source src = load(text, /*cmake=*/true);
        rule_avx2_flags(rel_path, src, out);
    } else if (is_cpp_file(rel)) {
        const Source src = load(text, /*cmake=*/false);
        rule_sync_types(rel_path, src, out);
        rule_avx2_isolation(rel_path, src, out);
        rule_determinism(rel_path, src, out);
        rule_raw_stderr(rel_path, src, out);
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
              [](const Violation& a, const Violation& b) {
                  return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
}

LintResult lint_paths(const std::string& root, const std::vector<std::string>& paths,
                      std::string* error) {
    LintResult result;
    std::vector<fs::path> files;
    std::error_code ec;
    const fs::path root_path = root.empty() ? fs::current_path() : fs::path(root);

    for (const std::string& raw : paths) {
        fs::path p(raw);
        if (p.is_relative()) p = root_path / p;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end; it != end;
                 it.increment(ec)) {
                if (ec) break;
                const fs::path& entry = it->path();
                const std::string name = entry.filename().string();
                if (it->is_directory() && !name.empty() && name.front() == '.') {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file() && (is_cpp_file(entry) || is_cmake_file(entry))) {
                    files.push_back(entry);
                }
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            if (error) *error = "cpt_sa: no such file or directory: " + raw;
            return result;
        }
    }

    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    for (const fs::path& file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            if (error) *error = "cpt_sa: cannot read " + file.string();
            return result;
        }
        std::ostringstream buf;
        buf << in.rdbuf();

        fs::path rel = fs::proximate(file, root_path, ec);
        if (ec || rel.empty() || *rel.begin() == "..") rel = file;
        lint_text(rel.generic_string(), buf.str(), result.violations);
        ++result.files_scanned;
    }

    std::sort(result.violations.begin(), result.violations.end(),
              [](const Violation& a, const Violation& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return result;
}

std::string format(const Violation& v) {
    std::ostringstream out;
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
        << " (suppress: cpt-sa-allow(" << v.rule << "))";
    return out.str();
}

}  // namespace cpt::sa
