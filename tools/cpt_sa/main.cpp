// cpt_sa CLI — see sa_lint.hpp for the rule set.
//
//   cpt_sa [--root=DIR] PATH...
//
// PATHs are files or directories, resolved against --root (default: the
// current directory). Rule scoping (e.g. "only src/util/sync.hpp may name
// std::mutex") keys off paths relative to --root, so run it from the repo
// root or pass --root explicitly. Exit: 0 clean, 1 violations, 2 usage/I-O
// error.
#include <cstdio>
#include <string>
#include <vector>

#include "sa_lint.hpp"

namespace {

void usage(std::FILE* to) {
    std::fprintf(to,
                 "usage: cpt_sa [--root=DIR] PATH...\n"
                 "Project-invariant linter: sync-types, avx2-isolation, avx2-flags,\n"
                 "determinism, raw-stderr. Suppress one finding with a\n"
                 "'cpt-sa-allow(<rule>)' comment on the flagged line or the line above.\n");
}

}  // namespace

int main(int argc, char** argv) {
    std::string root;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        }
        if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "cpt_sa: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(stderr);
        return 2;
    }

    std::string error;
    const cpt::sa::LintResult result = cpt::sa::lint_paths(root, paths, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
    }
    for (const cpt::sa::Violation& v : result.violations) {
        std::printf("%s\n", cpt::sa::format(v).c_str());
    }
    std::printf("cpt_sa: %zu file(s) scanned, %zu violation(s)\n", result.files_scanned,
                result.violations.size());
    return result.violations.empty() ? 0 : 1;
}
