#include "replay.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/check.hpp"

namespace cpt::mcn {

TraceReplayer::TraceReplayer(const trace::Dataset& ds) : dataset_(&ds) {
    timeline_.reserve(ds.total_events());
    for (const auto& s : ds.streams) {
        for (const auto& e : s.events) timeline_.push_back({e.timestamp, &s, e});
    }
    std::stable_sort(timeline_.begin(), timeline_.end(),
                     [](const ReplayEvent& a, const ReplayEvent& b) {
                         return a.timestamp < b.timestamp;
                     });
}

void TraceReplayer::replay(const EventConsumer& consumer) const {
    for (const auto& ev : timeline_) consumer(ev);
}

void TraceReplayer::replay_messages(const MessageConsumer& consumer,
                                    double per_message_gap_s) const {
    const auto gen = dataset_->generation;
    for (const auto& ev : timeline_) {
        double t = ev.timestamp;
        for (const auto& m : cellular::messages_for(gen, ev.event.type)) {
            consumer(ev, m, t);
            t += per_message_gap_s;
        }
    }
}

double TraceReplayer::replay_paced(const EventConsumer& consumer, double time_scale) const {
    CPT_CHECK_GT(time_scale, 0.0, " replay_paced: time_scale must be > 0");
    const auto start = std::chrono::steady_clock::now();
    const double t0 = timeline_.empty() ? 0.0 : timeline_.front().timestamp;
    for (const auto& ev : timeline_) {
        const double due_s = (ev.timestamp - t0) / time_scale;
        const auto due = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                     std::chrono::duration<double>(due_s));
        std::this_thread::sleep_until(due);
        consumer(ev);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace cpt::mcn
