#include "simulator.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "cellular/messages.hpp"
#include "cellular/state_machine.hpp"
#include "util/ascii.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cpt::mcn {

double NfCostModel::service_us(cellular::EventId event) const {
    namespace lte = cellular::lte;
    switch (event) {
        case lte::kAtch: return atch_us;
        case lte::kDtch: return dtch_us;
        case lte::kSrvReq: return srv_req_us;
        case lte::kS1ConnRel: return s1_rel_us;
        case lte::kHo: return ho_us;
        case lte::kTau: return tau_us;
        default: return srv_req_us;
    }
}

NfCostModel NfCostModel::from_messages(cellular::Generation gen, double us_per_message) {
    namespace lte = cellular::lte;
    namespace nr = cellular::nr;
    NfCostModel m;
    auto cost = [&](cellular::EventId e) {
        return static_cast<double>(cellular::mcn_message_count(gen, e)) * us_per_message;
    };
    if (gen == cellular::Generation::kLte4G) {
        m.atch_us = cost(lte::kAtch);
        m.dtch_us = cost(lte::kDtch);
        m.srv_req_us = cost(lte::kSrvReq);
        m.s1_rel_us = cost(lte::kS1ConnRel);
        m.ho_us = cost(lte::kHo);
        m.tau_us = cost(lte::kTau);
    } else {
        m.atch_us = cost(nr::kRegister);
        m.dtch_us = cost(nr::kDeregister);
        m.srv_req_us = cost(nr::kSrvReq);
        m.s1_rel_us = cost(nr::kAnRel);
        m.ho_us = cost(nr::kHo);
        m.tau_us = cost(nr::kSrvReq);  // no TAU in 5G; id unused
    }
    return m;
}

namespace {

struct Arrival {
    double t = 0.0;
    cellular::EventId type = 0;
};

// Peak concurrency of [enter, exit) intervals via an event sweep.
std::size_t peak_concurrency(std::vector<std::pair<double, int>> deltas) {
    std::sort(deltas.begin(), deltas.end(), [](const auto& a, const auto& b) {
        // Exits before entries at equal times so touching intervals don't
        // double count.
        return a.first < b.first || (a.first == b.first && a.second < b.second);
    });
    std::size_t cur = 0;
    std::size_t peak = 0;
    for (const auto& [t, d] : deltas) {
        if (d > 0) {
            ++cur;
            peak = std::max(peak, cur);
        } else if (cur > 0) {
            --cur;
        }
    }
    return peak;
}

}  // namespace

McnReport simulate(const trace::Dataset& ds, const McnConfig& config) {
    CPT_CHECK_GT(config.workers, std::size_t{0}, " simulate: workers must be > 0");
    McnReport report;

    // ---- Collect the interleaved arrival sequence. ----
    std::vector<Arrival> arrivals;
    arrivals.reserve(ds.total_events());
    for (const auto& s : ds.streams) {
        for (const auto& e : s.events) arrivals.push_back({e.timestamp, e.type});
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival& a, const Arrival& b) { return a.t < b.t; });
    if (arrivals.empty()) return report;

    util::Rng rng(config.seed);

    // ---- G/G/c queue: worker free times in a min-heap. ----
    std::priority_queue<double, std::vector<double>, std::greater<>> workers;
    std::size_t pool = config.workers;
    for (std::size_t i = 0; i < pool; ++i) workers.push(0.0);

    std::vector<double> latencies_ms;
    latencies_ms.reserve(arrivals.size());
    double busy_time = 0.0;
    double window_busy = 0.0;
    double window_start = arrivals.front().t;
    std::size_t peak_queue = 0;

    report.worker_trajectory.push_back({arrivals.front().t, pool});

    for (const Arrival& a : arrivals) {
        // ---- autoscaler boundary ----
        if (config.autoscale && a.t - window_start >= config.autoscale_interval_s) {
            const double capacity =
                static_cast<double>(pool) * (a.t - window_start);
            const double util = capacity > 0.0 ? window_busy / capacity : 0.0;
            const auto desired = static_cast<std::size_t>(std::clamp(
                static_cast<double>(pool) * util / config.target_utilization + 0.5,
                static_cast<double>(config.min_workers),
                static_cast<double>(config.max_workers)));
            if (desired != pool) {
                // Rebuild the pool: carry over backlog conservatively by
                // keeping the latest free times.
                std::vector<double> free_times;
                while (!workers.empty()) {
                    free_times.push_back(workers.top());
                    workers.pop();
                }
                std::sort(free_times.begin(), free_times.end());
                free_times.resize(std::min(free_times.size(), desired), a.t);
                while (free_times.size() < desired) free_times.push_back(a.t);
                for (double f : free_times) workers.push(f);
                pool = desired;
                report.worker_trajectory.push_back({a.t, pool});
            }
            window_start = a.t;
            window_busy = 0.0;
        }

        const double mean_us = config.costs.service_us(a.type);
        const double service_s =
            (config.stochastic_service ? rng.exponential(1.0 / mean_us) : mean_us) * 1e-6;

        const double free_at = workers.top();
        workers.pop();
        const double start = std::max(free_at, a.t);
        const double done = start + service_s;
        workers.push(done);

        latencies_ms.push_back((done - a.t) * 1e3);
        busy_time += service_s;
        window_busy += service_s;
        ++report.events_processed;

        // Queue depth proxy: how many workers are busy past this arrival.
        // (Exact queue tracking would need an event list; busy-count is the
        // standard G/G/c occupancy proxy.)
        std::size_t busy = 0;
        std::priority_queue<double, std::vector<double>, std::greater<>> copy = workers;
        while (!copy.empty()) {
            if (copy.top() > a.t) ++busy;
            copy.pop();
        }
        peak_queue = std::max(peak_queue, busy);
    }

    report.makespan_s = arrivals.back().t - arrivals.front().t;
    report.peak_queue_depth = peak_queue;
    report.latency_p50_ms = util::quantile(latencies_ms, 0.50);
    report.latency_p95_ms = util::quantile(latencies_ms, 0.95);
    report.latency_p99_ms = util::quantile(latencies_ms, 0.99);
    const double avail = report.makespan_s > 0.0
                             ? report.makespan_s * static_cast<double>(config.workers)
                             : busy_time;
    report.mean_utilization = avail > 0.0 ? busy_time / avail : 0.0;

    // ---- Peak concurrent CONNECTED UEs (per-UE state table load). ----
    const auto& machine = cellular::StateMachine::for_generation(ds.generation);
    const cellular::StateMachineReplayer replayer(machine);
    std::vector<std::pair<double, int>> deltas;
    for (const auto& s : ds.streams) {
        // Walk the machine tracking CONNECTED intervals.
        std::optional<cellular::SubState> state;
        double entered = 0.0;
        bool in_conn = false;
        for (const auto& e : s.events) {
            if (!state) {
                state = machine.bootstrap_state(e.type);
                if (state && top_state_of(*state) == cellular::TopState::kConnected) {
                    in_conn = true;
                    entered = e.timestamp;
                }
                continue;
            }
            const auto next = machine.step(*state, e.type);
            if (!next) continue;
            const bool next_conn = top_state_of(*next) == cellular::TopState::kConnected;
            if (next_conn && !in_conn) {
                entered = e.timestamp;
            } else if (!next_conn && in_conn) {
                deltas.push_back({entered, +1});
                deltas.push_back({e.timestamp, -1});
            }
            in_conn = next_conn;
            state = *next;
        }
        if (in_conn && !s.events.empty()) {
            deltas.push_back({entered, +1});
            deltas.push_back({s.events.back().timestamp, -1});
        }
    }
    report.peak_connected_ues = peak_concurrency(std::move(deltas));
    return report;
}

std::string McnReport::render() const {
    util::TextTable t({"MCN metric", "value"});
    t.add_row({"events processed", std::to_string(events_processed)});
    t.add_row({"makespan", util::fmt(makespan_s, 1) + " s"});
    t.add_row({"latency p50", util::fmt(latency_p50_ms, 3) + " ms"});
    t.add_row({"latency p95", util::fmt(latency_p95_ms, 3) + " ms"});
    t.add_row({"latency p99", util::fmt(latency_p99_ms, 3) + " ms"});
    t.add_row({"mean utilization", util::fmt_pct(mean_utilization, 1)});
    t.add_row({"peak busy workers", std::to_string(peak_queue_depth)});
    t.add_row({"peak CONNECTED UEs", std::to_string(peak_connected_ues)});
    t.add_row({"autoscale steps", std::to_string(worker_trajectory.size())});
    return t.render();
}

}  // namespace cpt::mcn
