// A discrete-event toy Mobile Core Network used to *consume* synthesized
// control-plane traffic — the paper's motivating use case (§2.2: performance
// evaluation of MCN designs such as CoreKube/L25GC under realistic
// control-plane workloads).
//
// Each control event invokes a chain of network functions (MME/AMF, SGW/SMF,
// HSS/UDM ...) whose aggregate service time depends on the event type. The
// control-plane worker pool is modeled as a G/G/c queue; an optional
// autoscaler resizes the pool at fixed intervals based on observed
// utilization, which is exactly the capability whose evaluation requires
// traces with realistic diurnal drift (challenge C5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/stream.hpp"

namespace cpt::mcn {

// Mean service time per event type in microseconds of control-plane CPU.
// Defaults reflect relative 3GPP procedure weights: attach runs the full
// authentication + session establishment chain, service request restores
// bearers, releases and TAUs are cheap, handovers involve path switching.
struct NfCostModel {
    double atch_us = 900.0;
    double dtch_us = 400.0;
    double srv_req_us = 250.0;
    double s1_rel_us = 120.0;
    double ho_us = 500.0;
    double tau_us = 150.0;

    double service_us(cellular::EventId event) const;

    // Derives per-event costs from the 3GPP message expansion
    // (cellular/messages.hpp): each MCN-side message of the procedure costs
    // `us_per_message` of control-plane CPU. This grounds the cost model in
    // the actual per-procedure signalling volume.
    static NfCostModel from_messages(cellular::Generation gen, double us_per_message = 60.0);
};

struct McnConfig {
    std::size_t workers = 4;
    NfCostModel costs;
    // Exponential jitter around the mean service time (G/G/c rather than D/D/c).
    bool stochastic_service = true;
    std::uint64_t seed = 1;

    // Autoscaler: every `autoscale_interval_s`, resize the pool so projected
    // utilization approaches `target_utilization` (within [min, max] workers).
    bool autoscale = false;
    double autoscale_interval_s = 60.0;
    double target_utilization = 0.6;
    std::size_t min_workers = 1;
    std::size_t max_workers = 64;
};

struct McnReport {
    std::size_t events_processed = 0;
    double makespan_s = 0.0;

    // Control-plane procedure latency (queueing + service), milliseconds.
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    double mean_utilization = 0.0;  // busy worker-time / available worker-time
    std::size_t peak_queue_depth = 0;

    // Peak number of UEs simultaneously in CONNECTED state (per-UE session
    // state an MCN must hold; challenge C3's sojourn realism feeds this).
    std::size_t peak_connected_ues = 0;

    // (time, worker count) autoscaling trajectory; single entry when
    // autoscaling is off.
    std::vector<std::pair<double, std::size_t>> worker_trajectory;

    std::string render() const;
};

// Replays every event of `ds` (stream timestamps are within one common hour
// window, so streams interleave) through the MCN model.
McnReport simulate(const trace::Dataset& ds, const McnConfig& config = {});

}  // namespace cpt::mcn
