// Trace replay driver: walks the merged (interleaved) timeline of a dataset
// and hands each control event — or its expanded 3GPP message sequence — to a
// consumer callback. This is the adapter an external MCN implementation
// would plug into to be driven by synthesized traffic (the paper's §2.2 use
// case: CoreKube-style evaluations replay exactly such a timeline).
//
// Replay is virtual-time by default (no sleeping, as fast as the consumer
// accepts); a wall-clock mode with a time-scale factor is available for
// driving live systems.
#pragma once

#include <functional>

#include "cellular/messages.hpp"
#include "trace/stream.hpp"

namespace cpt::mcn {

struct ReplayEvent {
    double timestamp = 0.0;            // within the trace window
    const trace::Stream* stream = nullptr;  // originating UE
    cellular::ControlEvent event;
};

using EventConsumer = std::function<void(const ReplayEvent&)>;
using MessageConsumer =
    std::function<void(const ReplayEvent&, const cellular::Message&, double message_time)>;

class TraceReplayer {
public:
    explicit TraceReplayer(const trace::Dataset& ds);

    std::size_t total_events() const { return timeline_.size(); }

    // Replays every event in timestamp order (virtual time).
    void replay(const EventConsumer& consumer) const;

    // Replays at message granularity using the generation's fixed
    // event-to-message mapping.
    void replay_messages(const MessageConsumer& consumer,
                         double per_message_gap_s = 0.005) const;

    // Wall-clock replay: sleeps so that trace time advances `time_scale`
    // times faster than real time (time_scale = 3600 plays an hour in a
    // second). Returns the wall seconds spent.
    double replay_paced(const EventConsumer& consumer, double time_scale) const;

private:
    const trace::Dataset* dataset_;
    std::vector<ReplayEvent> timeline_;
};

}  // namespace cpt::mcn
