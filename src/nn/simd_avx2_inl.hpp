// AVX2+FMA inline primitives shared by gemm_avx2.cpp and kernels_avx2.cpp —
// the only translation units built with -mavx2 -mfma. Do not include this
// header anywhere else: it requires the AVX2 target to compile.
//
// hsum8/dot8 fix the reduction tree, so every caller that sums a register the
// same way produces identical bits for identical inputs — the within-tier
// determinism contract depends on this.
#pragma once

#if !defined(__AVX2__) || !defined(__FMA__)
#error "simd_avx2_inl.hpp must only be included from TUs compiled with -mavx2 -mfma"
#endif

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace cpt::nn::detail {

// Fixed-order horizontal sum: pairs lane i with lane i+4, then a two-level
// binary tree. One canonical tree per 8-lane register everywhere.
inline float hsum8(__m256 v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

// Canonical dot product along a contiguous extent: two 8-lane FMA
// accumulators over 16-element steps, an 8-element step, one fixed-order
// horizontal sum, then std::fma for the scalar tail (same rounding as the
// vector lanes). Every AVX2 kernel that needs a k-contiguous dot — gemv_nt,
// gemm_nt rows, attention scores — goes through this one function, so the
// per-element reduction order is a pure function of the extent.
inline float dot_fma(const float* a, const float* b, std::size_t n) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
    }
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    }
    float s = hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) s = std::fma(a[i], b[i], s);
    return s;
}

}  // namespace cpt::nn::detail
