// Static analysis over a constructed autograd tape.
//
// lint_graph() walks the graph hanging off a loss root and reports structural
// problems that silently corrupt training rather than crashing it: parameters
// that can never receive a gradient, interior nodes whose gradient dead-ends,
// stale gradient buffers left over from a previous backward() on a reused
// subgraph, and gradient storage whose shape disagrees with its value.
//
// The pass is read-only and cheap (one DFS over the tape), so callers can run
// it on every freshly built graph; the Trainer runs it automatically on the
// first batch of each train() call in debug-check builds.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "autograd.hpp"

namespace cpt::nn {

enum class GraphLintKind {
    // A parameter from the supplied list is never reached by backward(): the
    // optimizer will keep stepping it with a zero (or stale) gradient.
    kUnreachableParam,
    // An interior node requires a gradient but has no backward closure, so
    // gradient flow stops there and everything beneath it starves.
    kUnconsumedGradient,
    // An interior node already owns gradient storage before backward() ran.
    // backward() accumulates into existing buffers, so re-running a graph that
    // shares live interior nodes double-counts their contribution.
    kStaleInteriorGradient,
    // Allocated gradient storage whose element count disagrees with the
    // node's value; backward() would skip or mis-scatter it.
    kGradShapeMismatch,
};

std::string_view to_string(GraphLintKind kind);

struct GraphLintFinding {
    GraphLintKind kind;
    std::string detail;  // human-readable, includes shapes/indices
};

struct GraphLintReport {
    std::vector<GraphLintFinding> findings;
    std::size_t nodes_visited = 0;    // every node reachable from the root
    std::size_t params_reachable = 0; // supplied params backward() will update

    bool clean() const { return findings.empty(); }
    std::size_t count(GraphLintKind kind) const;
    // Multi-line description suitable for a warning log; empty when clean.
    std::string summary() const;
};

// Inspects the tape rooted at `root` against the parameter list the optimizer
// will step. `root` is typically a scalar loss, but any node works.
GraphLintReport lint_graph(const Var& root, std::span<const Var> params);

}  // namespace cpt::nn
