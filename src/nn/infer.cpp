#include "infer.hpp"

#include <cmath>
#include <vector>

#include "gemm.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {

namespace {

// y = x W^T + b for row-major x [B, in], W [out, in], b [out]. Rows are
// pre-filled with the bias, then the blocked NT kernel accumulates x W^T;
// per-row arithmetic is independent of the batch/thread split.
void linear_rows(const Linear& fc, const Tensor& x, Tensor& y) {
    const std::size_t b = x.dim(0);
    const std::size_t in = fc.in_features();
    const std::size_t out = fc.out_features();
    const float* pb = fc.bias()->value.data().data();
    float* py = y.data().data();
    for (std::size_t r = 0; r < b; ++r) {
        float* yrow = py + r * out;
        for (std::size_t o = 0; o < out; ++o) yrow[o] = pb[o];
    }
    gemm_nt(x.data().data(), fc.weight()->value.data().data(), py, b, in, out);
}

void layer_norm_rows(const LayerNorm& ln, Tensor& x, float eps = 1e-5f) {
    const std::size_t d = ln.gain()->value.numel();
    const std::size_t rows = x.numel() / d;
    const float* gw = ln.gain()->value.data().data();
    const float* bw = ln.bias()->value.data().data();
    float* px = x.data().data();
    util::global_pool().parallel_for(
        rows, util::grain_for(6 * d), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r) {
                float* row = px + r * d;
                float mean = 0.0f;
                for (std::size_t j = 0; j < d; ++j) mean += row[j];
                mean /= static_cast<float>(d);
                float var = 0.0f;
                for (std::size_t j = 0; j < d; ++j) var += (row[j] - mean) * (row[j] - mean);
                var /= static_cast<float>(d);
                const float inv = 1.0f / std::sqrt(var + eps);
                for (std::size_t j = 0; j < d; ++j) row[j] = (row[j] - mean) * inv * gw[j] + bw[j];
            }
        });
}

void gelu_rows(Tensor& x) {
    constexpr float kC = 0.7978845608028654f;
    constexpr float kA = 0.044715f;
    auto xs = x.data();
    util::global_pool().parallel_for(xs.size(), util::grain_for(24),
                                     [&](std::size_t i0, std::size_t i1) {
                                         for (std::size_t i = i0; i < i1; ++i) {
                                             const float v = xs[i];
                                             const float u = kC * (v + kA * v * v * v);
                                             xs[i] = 0.5f * v * (1.0f + std::tanh(u));
                                         }
                                     });
}

void add_rows(Tensor& dst, const Tensor& src) { dst.add_(src); }

}  // namespace

TransformerDecoder::TransformerDecoder(const Transformer& model, std::size_t batch)
    : model_(&model), batch_(batch) {
    const auto& cfg = model.config();
    CPT_CHECK_GT(batch, std::size_t{0}, " TransformerDecoder: batch must be > 0");
    caches_.resize(cfg.blocks);
    const std::size_t dh = cfg.d_model / cfg.heads;
    for (auto& c : caches_) {
        c.k = Tensor({batch, cfg.heads, cfg.max_seq_len, dh});
        c.v = Tensor({batch, cfg.heads, cfg.max_seq_len, dh});
    }
}

Tensor TransformerDecoder::step(const Tensor& x) {
    const auto& cfg = model_->config();
    CPT_CHECK(x.rank() == 2 && x.dim(0) == batch_ && x.dim(1) == cfg.d_token,
              "TransformerDecoder::step: expected [", batch_, ", ", cfg.d_token, "], got ",
              shape_to_string(x.shape()));
    CPT_CHECK_LT(len_, cfg.max_seq_len, " TransformerDecoder::step: context full");
    const std::size_t d = cfg.d_model;
    const std::size_t h = cfg.heads;
    const std::size_t dh = d / h;
    const std::size_t max_t = cfg.max_seq_len;
    const std::size_t t = len_;  // position of the incoming token

    // Input projection + positional embedding.
    Tensor hstate({batch_, d});
    linear_rows(model_->input_proj(), x, hstate);
    {
        const float* pos = model_->positions()->value.data().data() + t * d;
        float* ph = hstate.data().data();
        for (std::size_t r = 0; r < batch_; ++r) {
            for (std::size_t j = 0; j < d; ++j) ph[r * d + j] += pos[j];
        }
    }

    Tensor q({batch_, d});
    Tensor attn_out({batch_, d});
    Tensor mlp_hidden;  // sized per block below
    Tensor scratch({batch_, d});

    for (std::size_t bi = 0; bi < caches_.size(); ++bi) {
        const auto& block = *model_->blocks()[bi];
        BlockCache& cache = caches_[bi];

        // ---- attention branch: ln1 -> qkv -> cached causal attention -> wo
        scratch = hstate.clone();
        layer_norm_rows(block.ln1(), scratch);
        linear_rows(block.attn().wq(), scratch, q);
        // New K/V rows go straight into the cache at position t.
        {
            Tensor kv({batch_, d});
            linear_rows(block.attn().wk(), scratch, kv);
            const float* pk = kv.data().data();
            float* ck = cache.k.data().data();
            util::global_pool().parallel_for(
                batch_ * h, util::grain_for(dh), [&](std::size_t i0, std::size_t i1) {
                    for (std::size_t i = i0; i < i1; ++i) {
                        const std::size_t r = i / h;
                        const std::size_t head = i % h;
                        float* dst = ck + (i * max_t + t) * dh;
                        const float* src = pk + r * d + head * dh;
                        for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
                    }
                });
            linear_rows(block.attn().wv(), scratch, kv);
            const float* pv = kv.data().data();
            float* cv = cache.v.data().data();
            util::global_pool().parallel_for(
                batch_ * h, util::grain_for(dh), [&](std::size_t i0, std::size_t i1) {
                    for (std::size_t i = i0; i < i1; ++i) {
                        const std::size_t r = i / h;
                        const std::size_t head = i % h;
                        float* dst = cv + (i * max_t + t) * dh;
                        const float* src = pv + r * d + head * dh;
                        for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
                    }
                });
        }
        // Per-row, per-head attention over positions [0, t].
        {
            const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
            const float* pq = q.data().data();
            const float* ck = cache.k.data().data();
            const float* cv = cache.v.data().data();
            float* ctx = scratch.data().data();  // reuse as context output
            // Each (row, head) pair is independent; the scores scratch buffer
            // is per-chunk so concurrent lanes never share it.
            util::global_pool().parallel_for(
                batch_ * h, util::grain_for(4 * (t + 1) * dh),
                [&](std::size_t i0, std::size_t i1) {
                    std::vector<float> scores(t + 1);
                    for (std::size_t i = i0; i < i1; ++i) {
                        const std::size_t r = i / h;
                        const std::size_t head = i % h;
                        const float* qrow = pq + r * d + head * dh;
                        const float* krows = ck + i * max_t * dh;
                        const float* vrows = cv + i * max_t * dh;
                        float mx = -1e30f;
                        for (std::size_t p = 0; p <= t; ++p) {
                            float acc = 0.0f;
                            const float* krow = krows + p * dh;
                            for (std::size_t j = 0; j < dh; ++j) acc += qrow[j] * krow[j];
                            scores[p] = acc * scale;
                            mx = std::max(mx, scores[p]);
                        }
                        float total = 0.0f;
                        for (std::size_t p = 0; p <= t; ++p) {
                            scores[p] = std::exp(scores[p] - mx);
                            total += scores[p];
                        }
                        const float inv = total > 0.0f ? 1.0f / total : 0.0f;
                        float* crow = ctx + r * d + head * dh;
                        for (std::size_t j = 0; j < dh; ++j) crow[j] = 0.0f;
                        for (std::size_t p = 0; p <= t; ++p) {
                            const float w = scores[p] * inv;
                            const float* vrow = vrows + p * dh;
                            for (std::size_t j = 0; j < dh; ++j) crow[j] += w * vrow[j];
                        }
                    }
                });
        }
        linear_rows(block.attn().wo(), scratch, attn_out);
        add_rows(hstate, attn_out);

        // ---- MLP branch: ln2 -> fc1 -> gelu -> fc2
        scratch = hstate.clone();
        layer_norm_rows(block.ln2(), scratch);
        const std::size_t hidden = block.mlp().fc1().out_features();
        if (mlp_hidden.numel() != batch_ * hidden) mlp_hidden = Tensor({batch_, hidden});
        linear_rows(block.mlp().fc1(), scratch, mlp_hidden);
        gelu_rows(mlp_hidden);
        linear_rows(block.mlp().fc2(), mlp_hidden, attn_out);  // reuse as mlp out
        add_rows(hstate, attn_out);
    }

    layer_norm_rows(model_->final_ln(), hstate);
    ++len_;
    return hstate;
}

void TransformerDecoder::compact(const std::vector<std::size_t>& keep_rows) {
    for (std::size_t i = 1; i < keep_rows.size(); ++i) {
        CPT_CHECK_LT(keep_rows[i - 1], keep_rows[i],
                     " TransformerDecoder::compact: rows must be ascending");
    }
    if (!keep_rows.empty()) {
        CPT_CHECK_LT(keep_rows.back(), batch_, " TransformerDecoder::compact: row out of range");
    }
    const std::size_t new_batch = keep_rows.size();
    const auto& cfg = model_->config();
    const std::size_t row_floats = cfg.heads * cfg.max_seq_len * (cfg.d_model / cfg.heads);
    for (auto& c : caches_) {
        Tensor nk({new_batch, cfg.heads, cfg.max_seq_len, cfg.d_model / cfg.heads});
        Tensor nv(nk.shape());
        const float* sk = c.k.data().data();
        const float* sv = c.v.data().data();
        float* dk = nk.data().data();
        float* dv = nv.data().data();
        for (std::size_t i = 0; i < new_batch; ++i) {
            const std::size_t src = keep_rows[i];
            std::copy_n(sk + src * row_floats, row_floats, dk + i * row_floats);
            std::copy_n(sv + src * row_floats, row_floats, dv + i * row_floats);
        }
        c.k = std::move(nk);
        c.v = std::move(nv);
    }
    batch_ = new_batch;
}

}  // namespace cpt::nn
