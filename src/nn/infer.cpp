#include "infer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {

TransformerDecoder::TransformerDecoder(const Transformer& model, std::size_t batch)
    : TransformerDecoder(model, batch, DecodeOptions{}) {}

TransformerDecoder::TransformerDecoder(const Transformer& model, std::size_t batch,
                                       const DecodeOptions& opts)
    : model_(&model), quant_(opts.quant), kv_fp16_(opts.kv_fp16), capacity_(batch),
      batch_(batch) {
    const auto& cfg = model.config();
    CPT_CHECK_GT(batch, std::size_t{0}, " TransformerDecoder: batch must be > 0");
    if (quant_ != nullptr) {
        CPT_CHECK_EQ(quant_->blocks.size(), cfg.blocks,
                     " TransformerDecoder: quantized weights do not match the model");
        CPT_CHECK_EQ(quant_->input_proj.in, cfg.d_token,
                     " TransformerDecoder: quantized weights do not match the model");
    }
    caches_.resize(cfg.blocks);
    start_.assign(batch, 0);
    phys_.resize(batch);
    for (std::size_t r = 0; r < batch; ++r) phys_[r] = r;
    free_.reserve(batch);
    const std::size_t dh = cfg.d_model / cfg.heads;
    for (auto& c : caches_) {
        if (kv_fp16_) {
            c.kh.assign(batch * cfg.heads * cfg.max_seq_len * dh, 0);
            c.vh.assign(batch * cfg.heads * cfg.max_seq_len * dh, 0);
        } else {
            c.k = Tensor({batch, cfg.heads, cfg.max_seq_len, dh});
            c.v = Tensor({batch, cfg.heads, cfg.max_seq_len, dh});
        }
    }
    std::size_t mlp_hidden = 0;
    for (const auto& block : model.blocks()) {
        mlp_hidden = std::max(mlp_hidden, block->mlp().fc1().out_features());
    }
    hstate_full_ = Tensor({batch, cfg.d_model});
    q_full_ = Tensor({batch, cfg.d_model});
    kv_full_ = Tensor({batch, cfg.d_model});
    attn_full_ = Tensor({batch, cfg.d_model});
    scratch_full_ = Tensor({batch, cfg.d_model});
    mlp_hidden_full_ = Tensor({batch, mlp_hidden});
    rebind_views();
    // One score row per chunk the attention loop can produce; grain 1 bounds
    // the chunk count from above for any grain step() later picks.
    scores_.resize(util::global_pool().num_chunks(batch * cfg.heads, 1) * cfg.max_seq_len);
}

void TransformerDecoder::rebind_views() {
    hstate_ = hstate_full_.first_rows(batch_);
    q_ = q_full_.first_rows(batch_);
    kv_ = kv_full_.first_rows(batch_);
    attn_out_ = attn_full_.first_rows(batch_);
    scratch_ = scratch_full_.first_rows(batch_);
    mlp_hidden_ = mlp_hidden_full_.first_rows(batch_);
}

const Tensor& TransformerDecoder::step(const Tensor& x) {
    const auto& cfg = model_->config();
    CPT_CHECK(x.rank() == 2 && x.dim(0) == batch_ && x.dim(1) == cfg.d_token,
              "TransformerDecoder::step: expected [", batch_, ", ", cfg.d_token, "], got ",
              shape_to_string(x.shape()));
    CPT_CHECK_LT(len_, cfg.max_seq_len, " TransformerDecoder::step: context full");
    const std::size_t d = cfg.d_model;
    const std::size_t h = cfg.heads;
    const std::size_t dh = d / h;
    const std::size_t max_t = cfg.max_seq_len;
    const std::size_t t = len_;  // position of the incoming token
    util::ThreadPool& pool = util::global_pool();
    float* ph = hstate_.data().data();
    float* pscratch = scratch_.data().data();

    // Input projection + positional embedding. The embedding is indexed by
    // the row-local position (t - row_start), so a row admitted mid-decode
    // sees exactly the embeddings a fresh decode would; when every row
    // started at 0 the uniform fast path adds one shared bias row.
    if (quant_ != nullptr) {
        quant_->input_proj.forward_rows(x.data().data(), ph, batch_, qscratch_, &pool);
    } else {
        model_->input_proj().forward_rows(x.data().data(), ph, batch_, &pool);
    }
    const float* pos = model_->positions()->value.data().data();
    if (uniform_start_) {
        kernels::add_bias_rows(ph, pos + t * d, batch_, d, &pool);
    } else {
        pool.parallel_for(batch_, util::grain_for(4 * d), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r) {
                kernels::add_bias_rows(ph + r * d, pos + (t - start_[r]) * d, 1, d, nullptr);
            }
        });
    }

    for (std::size_t bi = 0; bi < caches_.size(); ++bi) {
        const auto& block = *model_->blocks()[bi];
        const TransformerQuant::Block* qb = quant_ != nullptr ? &quant_->blocks[bi] : nullptr;
        BlockCache& cache = caches_[bi];
        // Projection dispatcher: int8 weights when quantized, fp32 otherwise.
        const auto proj = [&](const Linear& fp, const QuantLinear* q, const float* in,
                              float* out) {
            if (q != nullptr) {
                q->forward_rows(in, out, batch_, qscratch_, &pool);
            } else {
                fp.forward_rows(in, out, batch_, &pool);
            }
        };
        // Scatter the fresh K or V rows into the cache at position t,
        // converting to fp16 when the cache is half-precision (encoding is
        // round-to-nearest-even — the same bits on every tier).
        const auto append_kv = [&](const float* src_rows, float* dst32, std::uint16_t* dst16) {
            pool.parallel_for(batch_ * h, util::grain_for(dh),
                              [&](std::size_t i0, std::size_t i1) {
                                  for (std::size_t i = i0; i < i1; ++i) {
                                      const std::size_t r = i / h;
                                      const std::size_t head = i % h;
                                      const std::size_t off =
                                          ((phys_[r] * h + head) * max_t + t) * dh;
                                      const float* src = src_rows + r * d + head * dh;
                                      if (dst16 != nullptr) {
                                          kernels::fp16_encode(src, dst16 + off, dh);
                                      } else {
                                          std::copy_n(src, dh, dst32 + off);
                                      }
                                  }
                              });
        };

        // ---- attention branch: ln1 -> qkv -> cached causal attention -> wo
        kernels::layer_norm_rows(ph, pscratch, block.ln1().gain()->value.data().data(),
                                 block.ln1().bias()->value.data().data(), batch_, d, 1e-5f,
                                 nullptr, &pool);
        proj(block.attn().wq(), qb != nullptr ? &qb->wq : nullptr, pscratch, q_.data().data());
        // New K/V rows go straight into the cache at position t.
        {
            proj(block.attn().wk(), qb != nullptr ? &qb->wk : nullptr, pscratch,
                 kv_.data().data());
            append_kv(kv_.data().data(), kv_fp16_ ? nullptr : cache.k.data().data(),
                      kv_fp16_ ? cache.kh.data() : nullptr);
            proj(block.attn().wv(), qb != nullptr ? &qb->wv : nullptr, pscratch,
                 kv_.data().data());
            append_kv(kv_.data().data(), kv_fp16_ ? nullptr : cache.v.data().data(),
                      kv_fp16_ ? cache.vh.data() : nullptr);
        }
        // Per-row, per-head attention over the row's own window [start, t].
        // Rows constructed together have start 0 (the full causal prefix);
        // rows admitted mid-decode never read positions before their start,
        // so their math — dot order, softmax length, axpy order — is
        // bit-identical to a fresh decode of the same stream. Each (row,
        // head) pair is independent; the score rows live in the arena, one
        // row per chunk, so concurrent lanes never share one and the hot
        // loop stays allocation-free.
        {
            const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
            const float* pq = q_.data().data();
            const float* ck = kv_fp16_ ? nullptr : cache.k.data().data();
            const float* cv = kv_fp16_ ? nullptr : cache.v.data().data();
            const std::uint16_t* ckh = kv_fp16_ ? cache.kh.data() : nullptr;
            const std::uint16_t* cvh = kv_fp16_ ? cache.vh.data() : nullptr;
            float* ctx = pscratch;  // reuse as context output
            const std::size_t grain = util::grain_for(4 * (t + 1) * dh);
            const std::size_t chunks = pool.num_chunks(batch_ * h, grain);
            if (scores_.size() < chunks * max_t) scores_.resize(chunks * max_t);
            float* all_scores = scores_.data();
            pool.parallel_chunks(
                batch_ * h, grain, [&](std::size_t chunk, std::size_t i0, std::size_t i1) {
                    float* scores = all_scores + chunk * max_t;
                    for (std::size_t i = i0; i < i1; ++i) {
                        const std::size_t r = i / h;
                        const std::size_t head = i % h;
                        const std::size_t n = t - start_[r] + 1;  // window length
                        const std::size_t cache_row = (phys_[r] * h + head) * max_t;
                        const std::size_t win = (cache_row + start_[r]) * dh;
                        const float* qrow = pq + r * d + head * dh;
                        if (kv_fp16_) {
                            const std::uint16_t* krows = ckh + win;
                            for (std::size_t p = 0; p < n; ++p) {
                                scores[p] = kernels::dot_f16(qrow, krows + p * dh, dh) * scale;
                            }
                        } else {
                            const float* krows = ck + win;
                            for (std::size_t p = 0; p < n; ++p) {
                                scores[p] = kernels::dot(qrow, krows + p * dh, dh) * scale;
                            }
                        }
                        kernels::softmax_row(scores, scores, n, n);
                        float* crow = ctx + r * d + head * dh;
                        std::fill_n(crow, dh, 0.0f);
                        if (kv_fp16_) {
                            const std::uint16_t* vrows = cvh + win;
                            for (std::size_t p = 0; p < n; ++p) {
                                kernels::axpy_f16(scores[p], vrows + p * dh, crow, dh);
                            }
                        } else {
                            const float* vrows = cv + win;
                            for (std::size_t p = 0; p < n; ++p) {
                                kernels::axpy(scores[p], vrows + p * dh, crow, dh);
                            }
                        }
                    }
                });
        }
        proj(block.attn().wo(), qb != nullptr ? &qb->wo : nullptr, pscratch,
             attn_out_.data().data());
        hstate_.add_(attn_out_);

        // ---- MLP branch: ln2 -> fc1 -> fused bias+gelu -> fc2
        kernels::layer_norm_rows(ph, pscratch, block.ln2().gain()->value.data().data(),
                                 block.ln2().bias()->value.data().data(), batch_, d, 1e-5f,
                                 nullptr, &pool);
        // attn_out_ doubles as the MLP output buffer.
        if (qb != nullptr) {
            qb->mlp.forward_rows(pscratch, mlp_hidden_.data().data(), attn_out_.data().data(),
                                 batch_, qscratch_, &pool);
        } else {
            block.mlp().forward_rows(pscratch, mlp_hidden_.data().data(), attn_out_.data().data(),
                                     batch_, &pool);
        }
        hstate_.add_(attn_out_);
    }

    kernels::layer_norm_rows(ph, ph, model_->final_ln().gain()->value.data().data(),
                             model_->final_ln().bias()->value.data().data(), batch_, d, 1e-5f,
                             nullptr, &pool);
    ++len_;
    return hstate_;
}

std::size_t TransformerDecoder::kv_bytes() const {
    std::size_t total = 0;
    for (const auto& c : caches_) {
        total += c.k.numel() * sizeof(float) + c.v.numel() * sizeof(float);
        total += (c.kh.size() + c.vh.size()) * sizeof(std::uint16_t);
    }
    return total;
}

void TransformerDecoder::compact(const std::vector<std::size_t>& keep_rows) {
    for (std::size_t i = 1; i < keep_rows.size(); ++i) {
        CPT_CHECK_LT(keep_rows[i - 1], keep_rows[i],
                     " TransformerDecoder::compact: rows must be ascending");
    }
    if (!keep_rows.empty()) {
        CPT_CHECK_LT(keep_rows.back(), batch_, " TransformerDecoder::compact: row out of range");
    }
    const std::size_t new_batch = keep_rows.size();
    // O(batch): only the logical->physical map and the per-row metadata move;
    // the KV rows themselves stay where they are (dropped physical rows go on
    // the free list for admit() to hand out). A serving scheduler compacts at
    // nearly every step boundary, so moving KV data here — O(batch * maxT * d)
    // per call — would tax continuous batching far more than the occasional
    // end-of-round compact a drain scheduler performs.
    bool uniform = true;
    std::size_t next_keep = 0;
    for (std::size_t i = 0; i < batch_; ++i) {
        if (next_keep < new_batch && keep_rows[next_keep] == i) {
            start_[next_keep] = start_[i];
            phys_[next_keep] = phys_[i];
            uniform = uniform && start_[next_keep] == 0;
            ++next_keep;
        } else {
            free_.push_back(phys_[i]);
        }
    }
    uniform_start_ = uniform;
    batch_ = new_batch;
    rebind_views();
}

std::size_t TransformerDecoder::admit(std::size_t count) {
    CPT_CHECK_LE(batch_ + count, capacity_,
                 " TransformerDecoder::admit: live rows would exceed capacity");
    const std::size_t first = batch_;
    for (std::size_t i = 0; i < count; ++i) {
        start_[batch_ + i] = len_;
        // compact() returned enough physical rows to the free list: live rows
        // plus freed rows always cover the capacity.
        phys_[batch_ + i] = free_.back();
        free_.pop_back();
    }
    batch_ += count;
    if (count > 0 && len_ > 0) uniform_start_ = false;
    rebind_views();
    return first;
}

void TransformerDecoder::reset() {
    batch_ = 0;
    len_ = 0;
    std::fill(start_.begin(), start_.end(), 0);
    // Descending so admit() hands out physical rows 0, 1, 2, ... again.
    free_.clear();
    for (std::size_t r = capacity_; r > 0; --r) free_.push_back(r - 1);
    uniform_start_ = true;
    rebind_views();
}

}  // namespace cpt::nn
