#include "infer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {

TransformerDecoder::TransformerDecoder(const Transformer& model, std::size_t batch)
    : TransformerDecoder(model, batch, DecodeOptions{}) {}

TransformerDecoder::TransformerDecoder(const Transformer& model, std::size_t batch,
                                       const DecodeOptions& opts)
    : model_(&model), quant_(opts.quant), kv_fp16_(opts.kv_fp16), capacity_(batch),
      batch_(batch), max_window_(std::max<std::size_t>(opts.max_window, 1)) {
    const auto& cfg = model.config();
    CPT_CHECK_GT(batch, std::size_t{0}, " TransformerDecoder: batch must be > 0");
    CPT_CHECK_LE(max_window_, cfg.max_seq_len,
                 " TransformerDecoder: max_window exceeds max_seq_len");
    if (quant_ != nullptr) {
        CPT_CHECK_EQ(quant_->blocks.size(), cfg.blocks,
                     " TransformerDecoder: quantized weights do not match the model");
        CPT_CHECK_EQ(quant_->input_proj.in, cfg.d_token,
                     " TransformerDecoder: quantized weights do not match the model");
    }
    caches_.resize(cfg.blocks);
    len_.assign(batch, 0);
    phys_.resize(batch);
    for (std::size_t r = 0; r < batch; ++r) phys_[r] = r;
    free_.reserve(batch);
    const std::size_t dh = cfg.d_model / cfg.heads;
    for (auto& c : caches_) {
        if (kv_fp16_) {
            c.kh.assign(batch * cfg.heads * cfg.max_seq_len * dh, 0);
            c.vh.assign(batch * cfg.heads * cfg.max_seq_len * dh, 0);
        } else {
            c.k = Tensor({batch, cfg.heads, cfg.max_seq_len, dh});
            c.v = Tensor({batch, cfg.heads, cfg.max_seq_len, dh});
        }
    }
    std::size_t mlp_hidden = 0;
    for (const auto& block : model.blocks()) {
        mlp_hidden = std::max(mlp_hidden, block->mlp().fc1().out_features());
    }
    const std::size_t arena_rows = batch * max_window_;
    hstate_full_ = Tensor({arena_rows, cfg.d_model});
    q_full_ = Tensor({arena_rows, cfg.d_model});
    kv_full_ = Tensor({arena_rows, cfg.d_model});
    attn_full_ = Tensor({arena_rows, cfg.d_model});
    scratch_full_ = Tensor({arena_rows, cfg.d_model});
    mlp_hidden_full_ = Tensor({arena_rows, mlp_hidden});
    ones_.assign(batch, 1);
    wrow_.reserve(arena_rows);
    wpos_.reserve(arena_rows);
    bind_rows(batch_);
    // One score row per chunk the attention loop can produce; grain 1 bounds
    // the chunk count from above for any grain a later call picks.
    scores_.resize(util::global_pool().num_chunks(arena_rows * cfg.heads, 1) * cfg.max_seq_len);
}

void TransformerDecoder::bind_rows(std::size_t rows) {
    if (bound_rows_ == rows && hstate_.numel() > 0) return;
    hstate_ = hstate_full_.first_rows(rows);
    q_ = q_full_.first_rows(rows);
    kv_ = kv_full_.first_rows(rows);
    attn_out_ = attn_full_.first_rows(rows);
    scratch_ = scratch_full_.first_rows(rows);
    mlp_hidden_ = mlp_hidden_full_.first_rows(rows);
    bound_rows_ = rows;
}

std::size_t TransformerDecoder::length() const {
    std::size_t longest = 0;
    for (std::size_t r = 0; r < batch_; ++r) longest = std::max(longest, len_[r]);
    return longest;
}

const Tensor& TransformerDecoder::step(const Tensor& x) {
    const auto& cfg = model_->config();
    CPT_CHECK(x.rank() == 2 && x.dim(0) == batch_ && x.dim(1) == cfg.d_token,
              "TransformerDecoder::step: expected [", batch_, ", ", cfg.d_token, "], got ",
              shape_to_string(x.shape()));
    return step_window(x, std::span<const std::size_t>(ones_.data(), batch_));
}

const Tensor& TransformerDecoder::step_window(const Tensor& x,
                                              std::span<const std::size_t> counts) {
    const auto& cfg = model_->config();
    CPT_CHECK_EQ(counts.size(), batch_,
                 " TransformerDecoder::step_window: one window count per live row");
    // Pack the (row, in-window position) map for every incoming token and
    // detect the lockstep fast path (every row advancing one token from the
    // same position — the plain step() case).
    wrow_.clear();
    wpos_.clear();
    bool lockstep = batch_ > 0;
    std::size_t max_n = 0;  // longest attention window this call reads
    for (std::size_t r = 0; r < batch_; ++r) {
        const std::size_t c = counts[r];
        CPT_CHECK_LE(c, max_window_,
                     " TransformerDecoder::step_window: window exceeds max_window");
        CPT_CHECK_LE(len_[r] + c, cfg.max_seq_len, " TransformerDecoder::step: context full");
        lockstep = lockstep && c == 1 && len_[r] == len_[0];
        if (c == 0) continue;
        max_n = std::max(max_n, len_[r] + c);
        for (std::size_t j = 0; j < c; ++j) {
            wrow_.push_back(r);
            wpos_.push_back(j);
        }
    }
    const std::size_t m = wrow_.size();
    CPT_CHECK_GT(m, std::size_t{0}, " TransformerDecoder::step_window: empty window batch");
    CPT_CHECK(x.rank() == 2 && x.dim(0) == m && x.dim(1) == cfg.d_token,
              "TransformerDecoder::step_window: expected [", m, ", ", cfg.d_token, "], got ",
              shape_to_string(x.shape()));
    const std::size_t d = cfg.d_model;
    const std::size_t h = cfg.heads;
    const std::size_t dh = d / h;
    const std::size_t max_t = cfg.max_seq_len;
    util::ThreadPool& pool = util::global_pool();
    bind_rows(m);
    float* ph = hstate_.data().data();
    float* pscratch = scratch_.data().data();
    const std::size_t* wrow = wrow_.data();
    const std::size_t* wpos = wpos_.data();

    // Input projection + positional embedding. The embedding is indexed by
    // the row-local position len(r)+j, so a row admitted mid-decode (or
    // fed a multi-token window) sees exactly the embeddings a fresh
    // sequential decode would; in lockstep the fast path adds one shared
    // bias row.
    if (quant_ != nullptr) {
        quant_->input_proj.forward_rows(x.data().data(), ph, m, qscratch_, &pool);
    } else {
        model_->input_proj().forward_rows(x.data().data(), ph, m, &pool);
    }
    const float* pos = model_->positions()->value.data().data();
    if (lockstep) {
        kernels::add_bias_rows(ph, pos + len_[0] * d, m, d, &pool);
    } else {
        pool.parallel_for(m, util::grain_for(4 * d), [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                kernels::add_bias_rows(ph + i * d, pos + (len_[wrow[i]] + wpos[i]) * d, 1, d,
                                       nullptr);
            }
        });
    }

    for (std::size_t bi = 0; bi < caches_.size(); ++bi) {
        const auto& block = *model_->blocks()[bi];
        const TransformerQuant::Block* qb = quant_ != nullptr ? &quant_->blocks[bi] : nullptr;
        BlockCache& cache = caches_[bi];
        // Projection dispatcher: int8 weights when quantized, fp32 otherwise.
        const auto proj = [&](const Linear& fp, const QuantLinear* q, const float* in,
                              float* out) {
            if (q != nullptr) {
                q->forward_rows(in, out, m, qscratch_, &pool);
            } else {
                fp.forward_rows(in, out, m, &pool);
            }
        };
        // Scatter the fresh K or V rows into the cache at each token's
        // row-local position len(r)+j, converting to fp16 when the cache is
        // half-precision (encoding is round-to-nearest-even — the same bits
        // on every tier).
        const auto append_kv = [&](const float* src_rows, float* dst32, std::uint16_t* dst16) {
            pool.parallel_for(m * h, util::grain_for(dh),
                              [&](std::size_t i0, std::size_t i1) {
                                  for (std::size_t i = i0; i < i1; ++i) {
                                      const std::size_t tok = i / h;
                                      const std::size_t head = i % h;
                                      const std::size_t r = wrow[tok];
                                      const std::size_t p = len_[r] + wpos[tok];
                                      const std::size_t off =
                                          ((phys_[r] * h + head) * max_t + p) * dh;
                                      const float* src = src_rows + tok * d + head * dh;
                                      if (dst16 != nullptr) {
                                          kernels::fp16_encode(src, dst16 + off, dh);
                                      } else {
                                          std::copy_n(src, dh, dst32 + off);
                                      }
                                  }
                              });
        };

        // ---- attention branch: ln1 -> qkv -> cached causal attention -> wo
        kernels::layer_norm_rows(ph, pscratch, block.ln1().gain()->value.data().data(),
                                 block.ln1().bias()->value.data().data(), m, d, 1e-5f,
                                 nullptr, &pool);
        proj(block.attn().wq(), qb != nullptr ? &qb->wq : nullptr, pscratch, q_.data().data());
        // New K/V rows go straight into the cache — the whole window before
        // attention runs, so window token j can attend to the window tokens
        // appended before it.
        {
            proj(block.attn().wk(), qb != nullptr ? &qb->wk : nullptr, pscratch,
                 kv_.data().data());
            append_kv(kv_.data().data(), kv_fp16_ ? nullptr : cache.k.data().data(),
                      kv_fp16_ ? cache.kh.data() : nullptr);
            proj(block.attn().wv(), qb != nullptr ? &qb->wv : nullptr, pscratch,
                 kv_.data().data());
            append_kv(kv_.data().data(), kv_fp16_ ? nullptr : cache.v.data().data(),
                      kv_fp16_ ? cache.vh.data() : nullptr);
        }
        // Per-token, per-head attention over the row's own causal window
        // [0, len(r)+j]. K/V live at row-local positions, so the math —
        // dot order, softmax length, axpy order — is bit-identical to a
        // fresh sequential decode of the same stream regardless of when the
        // row was admitted or how the other rows advance. Each (token, head)
        // pair is independent; the score rows live in the arena, one row per
        // chunk, so concurrent lanes never share one and the hot loop stays
        // allocation-free.
        {
            const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
            const float* pq = q_.data().data();
            const float* ck = kv_fp16_ ? nullptr : cache.k.data().data();
            const float* cv = kv_fp16_ ? nullptr : cache.v.data().data();
            const std::uint16_t* ckh = kv_fp16_ ? cache.kh.data() : nullptr;
            const std::uint16_t* cvh = kv_fp16_ ? cache.vh.data() : nullptr;
            float* ctx = pscratch;  // reuse as context output
            const std::size_t grain = util::grain_for(4 * max_n * dh);
            const std::size_t chunks = pool.num_chunks(m * h, grain);
            if (scores_.size() < chunks * max_t) scores_.resize(chunks * max_t);
            float* all_scores = scores_.data();
            pool.parallel_chunks(
                m * h, grain, [&](std::size_t chunk, std::size_t i0, std::size_t i1) {
                    float* scores = all_scores + chunk * max_t;
                    for (std::size_t i = i0; i < i1; ++i) {
                        const std::size_t tok = i / h;
                        const std::size_t head = i % h;
                        const std::size_t r = wrow[tok];
                        const std::size_t n = len_[r] + wpos[tok] + 1;  // window length
                        const std::size_t win = (phys_[r] * h + head) * max_t * dh;
                        const float* qrow = pq + tok * d + head * dh;
                        // The batched kernels are defined as these per-key
                        // dot/axpy loops (kernels.hpp): one dispatch per
                        // (token, head) instead of per key, same bits.
                        if (kv_fp16_) {
                            kernels::attn_scores_f16(qrow, ckh + win, scores, n, dh, scale);
                        } else {
                            kernels::attn_scores(qrow, ck + win, scores, n, dh, scale);
                        }
                        kernels::softmax_row(scores, scores, n, n);
                        float* crow = ctx + tok * d + head * dh;
                        std::fill_n(crow, dh, 0.0f);
                        if (kv_fp16_) {
                            kernels::attn_mix_f16(scores, cvh + win, crow, n, dh);
                        } else {
                            kernels::attn_mix(scores, cv + win, crow, n, dh);
                        }
                    }
                });
        }
        proj(block.attn().wo(), qb != nullptr ? &qb->wo : nullptr, pscratch,
             attn_out_.data().data());
        hstate_.add_(attn_out_);

        // ---- MLP branch: ln2 -> fc1 -> fused bias+gelu -> fc2
        kernels::layer_norm_rows(ph, pscratch, block.ln2().gain()->value.data().data(),
                                 block.ln2().bias()->value.data().data(), m, d, 1e-5f,
                                 nullptr, &pool);
        // attn_out_ doubles as the MLP output buffer.
        if (qb != nullptr) {
            qb->mlp.forward_rows(pscratch, mlp_hidden_.data().data(), attn_out_.data().data(),
                                 m, qscratch_, &pool);
        } else {
            block.mlp().forward_rows(pscratch, mlp_hidden_.data().data(), attn_out_.data().data(),
                                     m, &pool);
        }
        hstate_.add_(attn_out_);
    }

    kernels::layer_norm_rows(ph, ph, model_->final_ln().gain()->value.data().data(),
                             model_->final_ln().bias()->value.data().data(), m, d, 1e-5f,
                             nullptr, &pool);
    for (std::size_t r = 0; r < batch_; ++r) len_[r] += counts[r];
    return hstate_;
}

void TransformerDecoder::rollback_row(std::size_t r, std::size_t new_len) {
    CPT_CHECK_LT(r, batch_, " TransformerDecoder::rollback_row: row out of range");
    CPT_CHECK_LE(new_len, len_[r],
                 " TransformerDecoder::rollback_row: cannot extend a row's context");
    len_[r] = new_len;
}

std::size_t TransformerDecoder::kv_bytes() const {
    std::size_t total = 0;
    for (const auto& c : caches_) {
        total += c.k.numel() * sizeof(float) + c.v.numel() * sizeof(float);
        total += (c.kh.size() + c.vh.size()) * sizeof(std::uint16_t);
    }
    return total;
}

void TransformerDecoder::compact(const std::vector<std::size_t>& keep_rows) {
    for (std::size_t i = 1; i < keep_rows.size(); ++i) {
        CPT_CHECK_LT(keep_rows[i - 1], keep_rows[i],
                     " TransformerDecoder::compact: rows must be ascending");
    }
    if (!keep_rows.empty()) {
        CPT_CHECK_LT(keep_rows.back(), batch_, " TransformerDecoder::compact: row out of range");
    }
    const std::size_t new_batch = keep_rows.size();
    // O(batch): only the logical->physical map and the per-row metadata move;
    // the KV rows themselves stay where they are (dropped physical rows go on
    // the free list for admit() to hand out). A serving scheduler compacts at
    // nearly every step boundary, so moving KV data here — O(batch * maxT * d)
    // per call — would tax continuous batching far more than the occasional
    // end-of-round compact a drain scheduler performs.
    std::size_t next_keep = 0;
    for (std::size_t i = 0; i < batch_; ++i) {
        if (next_keep < new_batch && keep_rows[next_keep] == i) {
            len_[next_keep] = len_[i];
            phys_[next_keep] = phys_[i];
            ++next_keep;
        } else {
            free_.push_back(phys_[i]);
        }
    }
    batch_ = new_batch;
}

std::size_t TransformerDecoder::admit(std::size_t count) {
    CPT_CHECK_LE(batch_ + count, capacity_,
                 " TransformerDecoder::admit: live rows would exceed capacity");
    const std::size_t first = batch_;
    for (std::size_t i = 0; i < count; ++i) {
        len_[batch_ + i] = 0;
        // compact() returned enough physical rows to the free list: live rows
        // plus freed rows always cover the capacity.
        phys_[batch_ + i] = free_.back();
        free_.pop_back();
    }
    batch_ += count;
    return first;
}

void TransformerDecoder::reset() {
    batch_ = 0;
    std::fill(len_.begin(), len_.end(), 0);
    // Descending so admit() hands out physical rows 0, 1, 2, ... again.
    free_.clear();
    for (std::size_t r = capacity_; r > 0; --r) free_.push_back(r - 1);
}

}  // namespace cpt::nn
