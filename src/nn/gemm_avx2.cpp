// AVX2+FMA GEMM/GEMV tier. Built with -mavx2 -mfma (see src/nn/CMakeLists);
// when the compiler lacks those flags every entry point degrades to a
// CPT_CHECK failure — the dispatcher in gemm.cpp never selects this tier
// unless util::detect_simd_tier() reports it available.
//
// Accumulation contract (same as gemm.cpp): every C element is one dot
// product with a fixed operation order depending only on (element index,
// shape) — a single ascending-k FMA chain per lane for the broadcast kernels,
// the canonical dot_fma tree for the k-contiguous kernels — so results are
// byte-identical across thread counts. Scalar edge paths use std::fma to
// round exactly like the vector lanes.
#include "simd_detail.hpp"

#include "util/check.hpp"
#include "util/thread_pool.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include "simd_avx2_inl.hpp"

#include <algorithm>
#include <vector>

namespace cpt::nn::detail {

namespace {

constexpr std::size_t kMr = 4;    // A rows per register tile
constexpr std::size_t kNr = 16;   // C columns per register tile (2 ymm)
constexpr std::size_t kNc = 256;  // B panel width kept cache-resident
constexpr std::size_t kMinChunkFlops = 1 << 18;

std::size_t row_grain(std::size_t k_dim, std::size_t n_dim) {
    return util::grain_for(2 * k_dim * n_dim, kMinChunkFlops);
}

// ---- NN / TN broadcast micro-kernels -----------------------------------------
// Per C element: acc = fma(a, b, acc) in ascending k, one accumulator. The
// only difference between NN and TN is how A is indexed, so the micro-kernels
// take a stride pair (row_stride, k_stride): NN reads a[i*lda + k], TN reads
// a[k*lda + i].

template <bool kATransposed>
inline float a_at(const float* a, std::size_t lda, std::size_t i, std::size_t k) {
    return kATransposed ? a[k * lda + i] : a[i * lda + k];
}

template <bool kATransposed>
void micro_bcast_fixed(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                       std::size_t ldc, std::size_t k_dim) {
    __m256 acc[kMr][2] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (std::size_t i = 0; i < kMr; ++i) {
            const __m256 av = _mm256_set1_ps(a_at<kATransposed>(a, lda, i, k));
            acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < kMr; ++i) {
        float* crow = c + i * ldc;
        _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[i][0]));
        _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[i][1]));
    }
}

template <bool kATransposed>
void micro_bcast_edge(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                      std::size_t ldc, std::size_t k_dim, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = a_at<kATransposed>(a, lda, i, k);
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] = std::fma(av, brow[j], acc[i][j]);
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

template <bool kATransposed>
void gemm_bcast_rows(const float* a, const float* b, float* c, std::size_t m_dim,
                     std::size_t k_dim, std::size_t n_dim, std::size_t r0, std::size_t r1) {
    const std::size_t lda = kATransposed ? m_dim : k_dim;
    for (std::size_t n0 = 0; n0 < n_dim; n0 += kNc) {
        const std::size_t nb = std::min(kNc, n_dim - n0);
        for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
            const std::size_t mr = std::min(kMr, r1 - m0);
            const float* atile = kATransposed ? a + m0 : a + m0 * lda;
            float* crow = c + m0 * n_dim + n0;
            std::size_t j0 = 0;
            if (mr == kMr) {
                for (; j0 + kNr <= nb; j0 += kNr) {
                    micro_bcast_fixed<kATransposed>(atile, lda, b + n0 + j0, n_dim, crow + j0,
                                                    n_dim, k_dim);
                }
            }
            for (; j0 < nb; j0 += kNr) {
                micro_bcast_edge<kATransposed>(atile, lda, b + n0 + j0, n_dim, crow + j0, n_dim,
                                               k_dim, mr, std::min(kNr, nb - j0));
            }
        }
    }
}

// ---- NT: k-contiguous dot kernels --------------------------------------------
// Every output element uses one canonical sequence — a single 8-wide FMA
// chain in ascending k, hsum8, then a scalar std::fma tail — no matter which
// micro-kernel computes it. Register tiles only change how A/B loads are
// shared, so chunk boundaries and row pairing never change an element's bits.

float dot_fma(const float* a, const float* b, std::size_t k_dim) {
    const std::size_t k8 = k_dim & ~std::size_t{7};
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t i = 0; i < k8; i += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
    }
    float s = hsum8(acc);
    for (std::size_t t = k8; t < k_dim; ++t) s = std::fma(a[t], b[t], s);
    return s;
}

// One A row x eight B rows (the m == 1 GEMV path): 8 chains, A load shared
// across all columns.
void nt_row8(const float* a, const float* b, std::size_t ldb, std::size_t k_dim, float* c) {
    __m256 acc[8] = {};
    const std::size_t k8 = k_dim & ~std::size_t{7};
    for (std::size_t i = 0; i < k8; i += 8) {
        const __m256 va = _mm256_loadu_ps(a + i);
        for (std::size_t j = 0; j < 8; ++j) {
            acc[j] = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + j * ldb + i), acc[j]);
        }
    }
    for (std::size_t j = 0; j < 8; ++j) {
        const float* brow = b + j * ldb;
        float s = hsum8(acc[j]);
        for (std::size_t t = k8; t < k_dim; ++t) s = std::fma(a[t], brow[t], s);
        c[j] += s;
    }
}

void gemm_nt_row(const float* arow, const float* b, float* crow, std::size_t k_dim,
                 std::size_t n_dim) {
    std::size_t j0 = 0;
    for (; j0 + 8 <= n_dim; j0 += 8) nt_row8(arow, b + j0 * k_dim, k_dim, k_dim, crow + j0);
    for (; j0 < n_dim; ++j0) crow[j0] += dot_fma(arow, b + j0 * k_dim, k_dim);
}

// M A rows x two B rows per k-step: the B stream is shared across all M rows,
// so weight traffic for an M-row tile matches a single GEMV pass instead of
// scaling with M. Every element still gets the canonical chain (one 8-wide
// FMA chain in ascending k, hsum8, scalar fma tail), so the result is
// bit-identical to M separate gemm_nt_row calls. M <= 7 keeps the register
// budget at M*2 accumulators + one A + two B vectors.
template <std::size_t M>
void nt_tile_cols(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim,
                  std::size_t j0, std::size_t j1) {
    const std::size_t k8 = k_dim & ~std::size_t{7};
    std::size_t j = j0;
    for (; j + 2 <= j1; j += 2) {
        const float* b0 = b + j * k_dim;
        const float* b1 = b0 + k_dim;
        __m256 acc[M][2];
        for (std::size_t r = 0; r < M; ++r) acc[r][0] = acc[r][1] = _mm256_setzero_ps();
        for (std::size_t i = 0; i < k8; i += 8) {
            const __m256 vb0 = _mm256_loadu_ps(b0 + i);
            const __m256 vb1 = _mm256_loadu_ps(b1 + i);
            for (std::size_t r = 0; r < M; ++r) {
                const __m256 va = _mm256_loadu_ps(a + r * k_dim + i);
                acc[r][0] = _mm256_fmadd_ps(va, vb0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(va, vb1, acc[r][1]);
            }
        }
        for (std::size_t r = 0; r < M; ++r) {
            const float* arow = a + r * k_dim;
            float s0 = hsum8(acc[r][0]);
            float s1 = hsum8(acc[r][1]);
            for (std::size_t t = k8; t < k_dim; ++t) {
                s0 = std::fma(arow[t], b0[t], s0);
                s1 = std::fma(arow[t], b1[t], s1);
            }
            c[r * n_dim + j] += s0;
            c[r * n_dim + j + 1] += s1;
        }
    }
    for (; j < j1; ++j) {
        const float* brow = b + j * k_dim;
        for (std::size_t r = 0; r < M; ++r) {
            c[r * n_dim + j] += dot_fma(a + r * k_dim, brow, k_dim);
        }
    }
}

// Column slice [j0, j1) of an m_dim < 8 NT product in a single row tile, so
// each B row in the slice is streamed exactly once regardless of m. The A
// broadcast register is consumed immediately after its two FMAs, so the live
// set is 2m accumulators + two B vectors + one A vector — 17 registers at
// m == 7, close enough that any spill stays L1-resident and cheap next to
// the weight traffic this saves.
void nt_small_cols(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                   std::size_t n_dim, std::size_t j0, std::size_t j1) {
    switch (m_dim) {
        case 7: nt_tile_cols<7>(a, b, c, k_dim, n_dim, j0, j1); break;
        case 6: nt_tile_cols<6>(a, b, c, k_dim, n_dim, j0, j1); break;
        case 5: nt_tile_cols<5>(a, b, c, k_dim, n_dim, j0, j1); break;
        case 4: nt_tile_cols<4>(a, b, c, k_dim, n_dim, j0, j1); break;
        case 3: nt_tile_cols<3>(a, b, c, k_dim, n_dim, j0, j1); break;
        case 2: nt_tile_cols<2>(a, b, c, k_dim, n_dim, j0, j1); break;
        case 1: nt_tile_cols<1>(a, b, c, k_dim, n_dim, j0, j1); break;
        default: break;
    }
}

}  // namespace

void gemm_nn_avx2(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, util::ThreadPool& pool) {
    pool.parallel_for(m_dim, row_grain(k_dim, n_dim), [&](std::size_t r0, std::size_t r1) {
        gemm_bcast_rows<false>(a, b, c, m_dim, k_dim, n_dim, r0, r1);
    });
}

void gemm_tn_avx2(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, util::ThreadPool& pool) {
    pool.parallel_for(m_dim, row_grain(k_dim, n_dim), [&](std::size_t r0, std::size_t r1) {
        gemm_bcast_rows<true>(a, b, c, m_dim, k_dim, n_dim, r0, r1);
    });
}

void gemm_nt_avx2(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, util::ThreadPool& pool) {
    if (m_dim < 8) {
        // Too few rows to amortise a B transpose (the pack is ~1/m of the
        // packed path's work). Decode at these shapes is weight-bandwidth
        // bound, so parallelise over columns and let each thread stream its
        // B slice once for the whole row tile: the speculative decode window
        // (DESIGN.md §16) lives here, and per-row B re-reads would make an
        // m-row window cost ~m GEMVs. Bits match the per-row dot kernels,
        // so this branch stays interchangeable with gemm_nt_row.
        const std::size_t col_grain = util::grain_for(2 * k_dim * m_dim, kMinChunkFlops);
        pool.parallel_for(n_dim, col_grain, [&](std::size_t j0, std::size_t j1) {
            nt_small_cols(a, b, c, m_dim, k_dim, n_dim, j0, j1);
        });
        return;
    }
    // Dot-style NT kernels pay a horizontal reduction per output element — at
    // decode/training k (64–256) that is ~a third of the work. Instead pack
    // each kNc-wide B panel transposed into [k x nb] and reuse the broadcast
    // micro-kernels: no reductions, and the per-element chain (one FMA per
    // ascending k) is the same as the NN path, so thread-count invariance is
    // unchanged. The pack buffer is thread_local and reused across calls.
    static thread_local std::vector<float> bt;
    for (std::size_t n0 = 0; n0 < n_dim; n0 += kNc) {
        const std::size_t nb = std::min(kNc, n_dim - n0);
        // Pad the packed panel's leading dimension so the micro-kernel's
        // k-walk stride is not a power of two: at ldbt = 256 floats (1 KiB)
        // consecutive k rows alias to only 4 L1 sets and the tile walk
        // thrashes the cache (measured 6-9x slowdown at m <= 16). Two ymm
        // lanes of padding advance the set index by 17 per row instead.
        const std::size_t ldbt = nb + 16;
        bt.resize(k_dim * ldbt);
        float* btp = bt.data();
        for (std::size_t j = 0; j < nb; ++j) {
            const float* brow = b + (n0 + j) * k_dim;
            for (std::size_t k = 0; k < k_dim; ++k) btp[k * ldbt + j] = brow[k];
        }
        pool.parallel_for(m_dim, row_grain(k_dim, nb), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
                const std::size_t mr = std::min(kMr, r1 - m0);
                const float* atile = a + m0 * k_dim;
                float* crow = c + m0 * n_dim + n0;
                std::size_t j0 = 0;
                if (mr == kMr) {
                    for (; j0 + kNr <= nb; j0 += kNr) {
                        micro_bcast_fixed<false>(atile, k_dim, btp + j0, ldbt, crow + j0, n_dim,
                                                 k_dim);
                    }
                }
                for (; j0 < nb; j0 += kNr) {
                    micro_bcast_edge<false>(atile, k_dim, btp + j0, ldbt, crow + j0, n_dim, k_dim,
                                            mr, std::min(kNr, nb - j0));
                }
            }
        });
    }
}

void gemv_nn_avx2(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim) {
    if (n_dim > 512) {
        // Wide rows: the j-tile walk below strides B by n*4 bytes — a full page
        // at n >= 1024, so every load misses unprefetched. Stream B rows
        // sequentially into an L1-resident accumulator chunk instead.
        constexpr std::size_t kChunk = 1024;
        alignas(32) float acc[kChunk];
        for (std::size_t j0 = 0; j0 < n_dim; j0 += kChunk) {
            const std::size_t w = std::min(kChunk, n_dim - j0);
            std::fill_n(acc, w, 0.0f);
            for (std::size_t k = 0; k < k_dim; ++k) {
                const __m256 av = _mm256_set1_ps(a[k]);
                const float* brow = b + k * n_dim + j0;
                std::size_t j = 0;
                for (; j + 32 <= w; j += 32) {
                    for (std::size_t u = 0; u < 4; ++u) {
                        float* aj = acc + j + 8 * u;
                        _mm256_store_ps(
                            aj, _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j + 8 * u),
                                                _mm256_load_ps(aj)));
                    }
                }
                for (; j < w; ++j) acc[j] = std::fma(a[k], brow[j], acc[j]);
            }
            float* cj = c + j0;
            for (std::size_t j = 0; j < w; ++j) cj[j] += acc[j];
        }
        return;
    }
    std::size_t j0 = 0;
    for (; j0 + kNr <= n_dim; j0 += kNr) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (std::size_t k = 0; k < k_dim; ++k) {
            const __m256 av = _mm256_set1_ps(a[k]);
            const float* brow = b + k * n_dim + j0;
            acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
            acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
        }
        _mm256_storeu_ps(c + j0, _mm256_add_ps(_mm256_loadu_ps(c + j0), acc0));
        _mm256_storeu_ps(c + j0 + 8, _mm256_add_ps(_mm256_loadu_ps(c + j0 + 8), acc1));
    }
    for (; j0 < n_dim; ++j0) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < k_dim; ++k) acc = std::fma(a[k], b[k * n_dim + j0], acc);
        c[j0] += acc;
    }
}

void gemv_nt_avx2(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim) {
    gemm_nt_row(a, b, c, k_dim, n_dim);
}

// ---- Int8 GEMV dots (quantized decode path) -----------------------------------
// VPMADDUBSW multiplies u8 activation codes by s8 weights into saturating i16
// pair sums; with 7-bit codes (<= 127) a pair is at most 2*127*127 = 32258,
// so saturation never fires and VPMADDWD's widening to i32 is exact. Integer
// addition is associative, so any tiling reproduces the scalar tier's result
// bit for bit — no ordering argument needed, unlike the float kernels.

namespace {

inline std::int32_t hsum8_epi32(__m256i v) {
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

std::int32_t dot_q8_avx2(const std::uint8_t* a, const std::int8_t* w, std::size_t k_dim) {
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= k_dim; i += 32) {
        const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, wv), ones));
    }
    std::int32_t r = hsum8_epi32(acc);
    for (; i < k_dim; ++i) {
        r += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(w[i]);
    }
    return r;
}

}  // namespace

void gemv_q8_dots_avx2(const std::uint8_t* a, const std::int8_t* w, std::int32_t* idot,
                       std::size_t k_dim, std::size_t n_dim) {
    const __m256i ones = _mm256_set1_epi16(1);
    const std::size_t k32 = k_dim & ~std::size_t{31};
    std::size_t j = 0;
    // Four weight rows per pass: the activation block is loaded once and the
    // four independent i32 accumulators keep the multiply ports busy.
    for (; j + 4 <= n_dim; j += 4) {
        const std::int8_t* w0 = w + j * k_dim;
        const std::int8_t* w1 = w0 + k_dim;
        const std::int8_t* w2 = w1 + k_dim;
        const std::int8_t* w3 = w2 + k_dim;
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        __m256i acc2 = _mm256_setzero_si256();
        __m256i acc3 = _mm256_setzero_si256();
        for (std::size_t i = 0; i < k32; i += 32) {
            const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
            acc0 = _mm256_add_epi32(
                acc0, _mm256_madd_epi16(
                          _mm256_maddubs_epi16(
                              av, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w0 + i))),
                          ones));
            acc1 = _mm256_add_epi32(
                acc1, _mm256_madd_epi16(
                          _mm256_maddubs_epi16(
                              av, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w1 + i))),
                          ones));
            acc2 = _mm256_add_epi32(
                acc2, _mm256_madd_epi16(
                          _mm256_maddubs_epi16(
                              av, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w2 + i))),
                          ones));
            acc3 = _mm256_add_epi32(
                acc3, _mm256_madd_epi16(
                          _mm256_maddubs_epi16(
                              av, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w3 + i))),
                          ones));
        }
        std::int32_t s0 = hsum8_epi32(acc0);
        std::int32_t s1 = hsum8_epi32(acc1);
        std::int32_t s2 = hsum8_epi32(acc2);
        std::int32_t s3 = hsum8_epi32(acc3);
        for (std::size_t i = k32; i < k_dim; ++i) {
            const std::int32_t av = a[i];
            s0 += av * w0[i];
            s1 += av * w1[i];
            s2 += av * w2[i];
            s3 += av * w3[i];
        }
        idot[j] = s0;
        idot[j + 1] = s1;
        idot[j + 2] = s2;
        idot[j + 3] = s3;
    }
    for (; j < n_dim; ++j) idot[j] = dot_q8_avx2(a, w + j * k_dim, k_dim);
}

}  // namespace cpt::nn::detail

#else  // !(__AVX2__ && __FMA__)

namespace cpt::nn::detail {

namespace {
[[noreturn]] void missing() { CPT_CHECK(false, "AVX2 kernels were not compiled into this binary"); }
}  // namespace

void gemm_nn_avx2(const float*, const float*, float*, std::size_t, std::size_t, std::size_t,
                  util::ThreadPool&) {
    missing();
}
void gemm_nt_avx2(const float*, const float*, float*, std::size_t, std::size_t, std::size_t,
                  util::ThreadPool&) {
    missing();
}
void gemm_tn_avx2(const float*, const float*, float*, std::size_t, std::size_t, std::size_t,
                  util::ThreadPool&) {
    missing();
}
void gemv_nn_avx2(const float*, const float*, float*, std::size_t, std::size_t) { missing(); }
void gemv_nt_avx2(const float*, const float*, float*, std::size_t, std::size_t) { missing(); }
void gemv_q8_dots_avx2(const std::uint8_t*, const std::int8_t*, std::int32_t*, std::size_t,
                       std::size_t) {
    missing();
}

}  // namespace cpt::nn::detail

#endif
