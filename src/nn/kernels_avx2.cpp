// AVX2+FMA elementwise kernel tier (dot/axpy, LayerNorm rows, softmax
// helpers). Built with -mavx2 -mfma; see gemm_avx2.cpp for the compile-gate
// and determinism conventions shared by both AVX2 translation units.
#include "simd_detail.hpp"

#include "util/check.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include "simd_avx2_inl.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "fp16.hpp"

namespace cpt::nn::detail {

float dot_avx2(const float* a, const float* b, std::size_t n) { return dot_fma(a, b, n); }

void axpy_avx2(float alpha, const float* x, float* y, std::size_t n) {
    const __m256 av = _mm256_set1_ps(alpha);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
    }
    for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void attn_scores_avx2(const float* q, const float* krows, float* scores, std::size_t n,
                      std::size_t dh, float scale) {
    // Four keys in flight, each with its own dot_fma-shaped accumulator pair
    // (16-element main loop, 8-element step, hsum8 of acc0+acc1, std::fma
    // tail), so scores[p] carries exactly the bits of dot_fma(q, key_p) *
    // scale while the q loads are shared and the FMA chains overlap instead
    // of serialising on one chain's latency.
    std::size_t p = 0;
    for (; p + 4 <= n; p += 4) {
        const float* k0 = krows + p * dh;
        const float* k1 = k0 + dh;
        const float* k2 = k1 + dh;
        const float* k3 = k2 + dh;
        __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
        __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
        __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
        __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
        std::size_t i = 0;
        for (; i + 16 <= dh; i += 16) {
            const __m256 q0 = _mm256_loadu_ps(q + i);
            const __m256 q1 = _mm256_loadu_ps(q + i + 8);
            a00 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k0 + i), a00);
            a01 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(k0 + i + 8), a01);
            a10 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k1 + i), a10);
            a11 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(k1 + i + 8), a11);
            a20 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k2 + i), a20);
            a21 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(k2 + i + 8), a21);
            a30 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k3 + i), a30);
            a31 = _mm256_fmadd_ps(q1, _mm256_loadu_ps(k3 + i + 8), a31);
        }
        for (; i + 8 <= dh; i += 8) {
            const __m256 q0 = _mm256_loadu_ps(q + i);
            a00 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k0 + i), a00);
            a10 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k1 + i), a10);
            a20 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k2 + i), a20);
            a30 = _mm256_fmadd_ps(q0, _mm256_loadu_ps(k3 + i), a30);
        }
        float s0 = hsum8(_mm256_add_ps(a00, a01));
        float s1 = hsum8(_mm256_add_ps(a10, a11));
        float s2 = hsum8(_mm256_add_ps(a20, a21));
        float s3 = hsum8(_mm256_add_ps(a30, a31));
        for (; i < dh; ++i) {
            s0 = std::fma(q[i], k0[i], s0);
            s1 = std::fma(q[i], k1[i], s1);
            s2 = std::fma(q[i], k2[i], s2);
            s3 = std::fma(q[i], k3[i], s3);
        }
        scores[p] = s0 * scale;
        scores[p + 1] = s1 * scale;
        scores[p + 2] = s2 * scale;
        scores[p + 3] = s3 * scale;
    }
    for (; p < n; ++p) scores[p] = dot_fma(q, krows + p * dh, dh) * scale;
}

namespace {

// Context row held in NB ymm registers across the whole key loop; per
// element this is the identical ascending-p FMA sequence n axpy calls
// perform, minus their per-key load/store round trips through memory.
template <std::size_t NB>
inline void attn_mix_reg(const float* scores, const float* vrows, float* crow, std::size_t n,
                         std::size_t dh) {
    __m256 acc[NB];
    for (std::size_t b = 0; b < NB; ++b) acc[b] = _mm256_loadu_ps(crow + 8 * b);
    for (std::size_t p = 0; p < n; ++p) {
        const __m256 s = _mm256_set1_ps(scores[p]);
        const float* v = vrows + p * dh;
        for (std::size_t b = 0; b < NB; ++b) {
            acc[b] = _mm256_fmadd_ps(s, _mm256_loadu_ps(v + 8 * b), acc[b]);
        }
    }
    for (std::size_t b = 0; b < NB; ++b) _mm256_storeu_ps(crow + 8 * b, acc[b]);
}

}  // namespace

void attn_mix_avx2(const float* scores, const float* vrows, float* crow, std::size_t n,
                   std::size_t dh) {
    if ((dh & 7) == 0 && dh >= 8 && dh <= 64) {
        switch (dh >> 3) {
            case 1: attn_mix_reg<1>(scores, vrows, crow, n, dh); return;
            case 2: attn_mix_reg<2>(scores, vrows, crow, n, dh); return;
            case 3: attn_mix_reg<3>(scores, vrows, crow, n, dh); return;
            case 4: attn_mix_reg<4>(scores, vrows, crow, n, dh); return;
            case 5: attn_mix_reg<5>(scores, vrows, crow, n, dh); return;
            case 6: attn_mix_reg<6>(scores, vrows, crow, n, dh); return;
            case 7: attn_mix_reg<7>(scores, vrows, crow, n, dh); return;
            case 8: attn_mix_reg<8>(scores, vrows, crow, n, dh); return;
            default: break;
        }
    }
    for (std::size_t p = 0; p < n; ++p) axpy_avx2(scores[p], vrows + p * dh, crow, dh);
}

float reduce_max_avx2(const float* x, std::size_t n) {
    // max is exact under any association; no ordering constraints here.
    std::size_t i = 0;
    float mx = -std::numeric_limits<float>::infinity();
    if (n >= 8) {
        __m256 vmx = _mm256_loadu_ps(x);
        for (i = 8; i + 8 <= n; i += 8) vmx = _mm256_max_ps(vmx, _mm256_loadu_ps(x + i));
        const __m128 lo = _mm256_castps256_ps128(vmx);
        const __m128 hi = _mm256_extractf128_ps(vmx, 1);
        __m128 m = _mm_max_ps(lo, hi);
        m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        mx = _mm_cvtss_f32(m);
    }
    for (; i < n; ++i) mx = std::max(mx, x[i]);
    return mx;
}

void scale_avx2(float* x, std::size_t n, float s) {
    const __m256 sv = _mm256_set1_ps(s);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), sv));
    }
    for (; i < n; ++i) x[i] *= s;
}

void layer_norm_row_avx2(const float* in, float* out, const float* gain, const float* bias,
                         std::size_t d, float eps, float* stats2) {
    // Both reductions use one fixed 8-lane tree (hsum8) plus a scalar tail,
    // so a row's statistics depend only on d — never on where the row sits
    // in the thread chunking.
    __m256 vsum = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(in + i));
    float sum = hsum8(vsum);
    for (; i < d; ++i) sum += in[i];
    const float mean = sum / static_cast<float>(d);

    const __m256 vmean = _mm256_set1_ps(mean);
    __m256 vvar = _mm256_setzero_ps();
    for (i = 0; i + 8 <= d; i += 8) {
        const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(in + i), vmean);
        vvar = _mm256_fmadd_ps(diff, diff, vvar);
    }
    float var = hsum8(vvar);
    for (; i < d; ++i) {
        const float diff = in[i] - mean;
        var = std::fma(diff, diff, var);
    }
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    if (stats2 != nullptr) {
        stats2[0] = mean;
        stats2[1] = inv;
    }

    const __m256 vinv = _mm256_set1_ps(inv);
    for (i = 0; i + 8 <= d; i += 8) {
        const __m256 xhat = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(in + i), vmean), vinv);
        _mm256_storeu_ps(out + i, _mm256_fmadd_ps(xhat, _mm256_loadu_ps(gain + i),
                                                  _mm256_loadu_ps(bias + i)));
    }
    for (; i < d; ++i) out[i] = std::fma((in[i] - mean) * inv, gain[i], bias[i]);
}

void add_bias_row_avx2(float* row, const float* bias, std::size_t d) {
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) {
        _mm256_storeu_ps(row + i, _mm256_add_ps(_mm256_loadu_ps(row + i), _mm256_loadu_ps(bias + i)));
    }
    for (; i < d; ++i) row[i] += bias[i];
}

// ---- fp16 KV-cache kernels ----------------------------------------------------
// The binary may carry F16C instructions (-mf16c is appended to this TU's
// flags when the compiler accepts it) on a CPU that lacks the feature — F16C
// is a separate CPUID bit from AVX2 — so the hardware path is gated at
// runtime too. The software fallback produces bit-identical halves (both
// round to nearest-even), so which path runs is unobservable in the encode;
// the dot fallback keeps a fixed scalar FMA chain, consistent per host.

namespace {

inline bool host_has_f16c() {
    static const bool ok = __builtin_cpu_supports("f16c");
    return ok;
}

}  // namespace

void fp16_encode_avx2(const float* src, std::uint16_t* dst, std::size_t n) {
#if defined(__F16C__)
    if (host_has_f16c()) {
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            _mm_storeu_si128(
                reinterpret_cast<__m128i*>(dst + i),
                _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
        }
        for (; i < n; ++i) dst[i] = fp16_encode_one(src[i]);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) dst[i] = fp16_encode_one(src[i]);
}

float dot_f16_avx2(const float* a, const std::uint16_t* b, std::size_t n) {
#if defined(__F16C__)
    if (host_has_f16c()) {
        const std::size_t n8 = n & ~std::size_t{7};
        __m256 acc = _mm256_setzero_ps();
        for (std::size_t i = 0; i < n8; i += 8) {
            const __m256 bv =
                _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), bv, acc);
        }
        float s = hsum8(acc);
        for (std::size_t t = n8; t < n; ++t) s = std::fma(a[t], fp16_decode_one(b[t]), s);
        return s;
    }
#endif
    float s = 0.0f;
    for (std::size_t i = 0; i < n; ++i) s = std::fma(a[i], fp16_decode_one(b[i]), s);
    return s;
}

void axpy_f16_avx2(float alpha, const std::uint16_t* x, float* y, std::size_t n) {
#if defined(__F16C__)
    if (host_has_f16c()) {
        const __m256 av = _mm256_set1_ps(alpha);
        std::size_t i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m256 xv =
                _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
            _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, xv, _mm256_loadu_ps(y + i)));
        }
        for (; i < n; ++i) y[i] = std::fma(alpha, fp16_decode_one(x[i]), y[i]);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, fp16_decode_one(x[i]), y[i]);
}

void attn_scores_f16_avx2(const float* q, const std::uint16_t* krows, float* scores,
                          std::size_t n, std::size_t dh, float scale) {
#if defined(__F16C__)
    if (host_has_f16c()) {
        // Four keys in flight, each chain shaped exactly like dot_f16_avx2
        // (single accumulator, 8-wide steps, hsum8, scalar widen tail).
        const std::size_t d8 = dh & ~std::size_t{7};
        std::size_t p = 0;
        for (; p + 4 <= n; p += 4) {
            const std::uint16_t* k0 = krows + p * dh;
            const std::uint16_t* k1 = k0 + dh;
            const std::uint16_t* k2 = k1 + dh;
            const std::uint16_t* k3 = k2 + dh;
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            for (std::size_t i = 0; i < d8; i += 8) {
                const __m256 qv = _mm256_loadu_ps(q + i);
                a0 = _mm256_fmadd_ps(
                    qv,
                    _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(k0 + i))),
                    a0);
                a1 = _mm256_fmadd_ps(
                    qv,
                    _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(k1 + i))),
                    a1);
                a2 = _mm256_fmadd_ps(
                    qv,
                    _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(k2 + i))),
                    a2);
                a3 = _mm256_fmadd_ps(
                    qv,
                    _mm256_cvtph_ps(_mm_loadu_si128(reinterpret_cast<const __m128i*>(k3 + i))),
                    a3);
            }
            float s0 = hsum8(a0);
            float s1 = hsum8(a1);
            float s2 = hsum8(a2);
            float s3 = hsum8(a3);
            for (std::size_t i = d8; i < dh; ++i) {
                s0 = std::fma(q[i], fp16_decode_one(k0[i]), s0);
                s1 = std::fma(q[i], fp16_decode_one(k1[i]), s1);
                s2 = std::fma(q[i], fp16_decode_one(k2[i]), s2);
                s3 = std::fma(q[i], fp16_decode_one(k3[i]), s3);
            }
            scores[p] = s0 * scale;
            scores[p + 1] = s1 * scale;
            scores[p + 2] = s2 * scale;
            scores[p + 3] = s3 * scale;
        }
        for (; p < n; ++p) scores[p] = dot_f16_avx2(q, krows + p * dh, dh) * scale;
        return;
    }
#endif
    for (std::size_t p = 0; p < n; ++p) scores[p] = dot_f16_avx2(q, krows + p * dh, dh) * scale;
}

#if defined(__F16C__)
namespace {

// f16 counterpart of attn_mix_reg: same register-resident ascending-p FMA
// sequence, with each V block widened exactly as axpy_f16_avx2 widens it.
template <std::size_t NB>
inline void attn_mix_f16_reg(const float* scores, const std::uint16_t* vrows, float* crow,
                             std::size_t n, std::size_t dh) {
    __m256 acc[NB];
    for (std::size_t b = 0; b < NB; ++b) acc[b] = _mm256_loadu_ps(crow + 8 * b);
    for (std::size_t p = 0; p < n; ++p) {
        const __m256 s = _mm256_set1_ps(scores[p]);
        const std::uint16_t* v = vrows + p * dh;
        for (std::size_t b = 0; b < NB; ++b) {
            const __m256 xv = _mm256_cvtph_ps(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + 8 * b)));
            acc[b] = _mm256_fmadd_ps(s, xv, acc[b]);
        }
    }
    for (std::size_t b = 0; b < NB; ++b) _mm256_storeu_ps(crow + 8 * b, acc[b]);
}

}  // namespace
#endif

void attn_mix_f16_avx2(const float* scores, const std::uint16_t* vrows, float* crow,
                       std::size_t n, std::size_t dh) {
#if defined(__F16C__)
    if (host_has_f16c() && (dh & 7) == 0 && dh >= 8 && dh <= 64) {
        switch (dh >> 3) {
            case 1: attn_mix_f16_reg<1>(scores, vrows, crow, n, dh); return;
            case 2: attn_mix_f16_reg<2>(scores, vrows, crow, n, dh); return;
            case 3: attn_mix_f16_reg<3>(scores, vrows, crow, n, dh); return;
            case 4: attn_mix_f16_reg<4>(scores, vrows, crow, n, dh); return;
            case 5: attn_mix_f16_reg<5>(scores, vrows, crow, n, dh); return;
            case 6: attn_mix_f16_reg<6>(scores, vrows, crow, n, dh); return;
            case 7: attn_mix_f16_reg<7>(scores, vrows, crow, n, dh); return;
            case 8: attn_mix_f16_reg<8>(scores, vrows, crow, n, dh); return;
            default: break;
        }
    }
#endif
    for (std::size_t p = 0; p < n; ++p) axpy_f16_avx2(scores[p], vrows + p * dh, crow, dh);
}

void softmax_backward_row_avx2(const float* y, const float* g, float* dx, std::size_t n) {
    const float dot = dot_fma(y, g, n);
    const __m256 vdot = _mm256_set1_ps(dot);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(g + i), vdot);
        _mm256_storeu_ps(dx + i,
                         _mm256_fmadd_ps(_mm256_loadu_ps(y + i), diff, _mm256_loadu_ps(dx + i)));
    }
    for (; i < n; ++i) dx[i] = std::fma(y[i], g[i] - dot, dx[i]);
}

void layer_norm_backward_row_avx2(const float* x, const float* gain, const float* g, float mean,
                                  float inv, float* dx, std::size_t d) {
    const __m256 vmean = _mm256_set1_ps(mean);
    const __m256 vinv = _mm256_set1_ps(inv);
    __m256 vsum_gy = _mm256_setzero_ps();
    __m256 vsum_gyx = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) {
        const __m256 gy = _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_loadu_ps(gain + i));
        const __m256 xhat = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
        vsum_gy = _mm256_add_ps(vsum_gy, gy);
        vsum_gyx = _mm256_fmadd_ps(gy, xhat, vsum_gyx);
    }
    float sum_gy = hsum8(vsum_gy);
    float sum_gyx = hsum8(vsum_gyx);
    for (; i < d; ++i) {
        const float gy = g[i] * gain[i];
        const float xhat = (x[i] - mean) * inv;
        sum_gy += gy;
        sum_gyx = std::fma(gy, xhat, sum_gyx);
    }
    const float dn = static_cast<float>(d);
    const float scl = inv / dn;
    const __m256 vdn = _mm256_set1_ps(dn);
    const __m256 vsgy = _mm256_set1_ps(sum_gy);
    const __m256 vsgyx = _mm256_set1_ps(sum_gyx);
    const __m256 vscl = _mm256_set1_ps(scl);
    for (i = 0; i + 8 <= d; i += 8) {
        const __m256 gy = _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_loadu_ps(gain + i));
        const __m256 xhat = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vinv);
        // d*gy - sum_gy - xhat*sum_gy_xhat
        const __m256 core =
            _mm256_fnmadd_ps(xhat, vsgyx, _mm256_fmsub_ps(vdn, gy, vsgy));
        _mm256_storeu_ps(dx + i, _mm256_fmadd_ps(vscl, core, _mm256_loadu_ps(dx + i)));
    }
    for (; i < d; ++i) {
        const float gy = g[i] * gain[i];
        const float xhat = (x[i] - mean) * inv;
        const float core = std::fma(-xhat, sum_gyx, std::fma(dn, gy, -sum_gy));
        dx[i] = std::fma(scl, core, dx[i]);
    }
}

namespace {

inline double hsum4d(__m256d v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d s = _mm_add_pd(lo, hi);
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
}

}  // namespace

double sqnorm_avx2(const float* x, std::size_t n) {
    // Two 4-double accumulators fed by cvtps_pd halves of each 8-float block;
    // combined with one fixed tree, so the result depends only on n. The
    // float*float products are exact in double (24-bit mantissas), so fma
    // vs mul+add is immaterial here.
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(x + i);
        const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
        const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
        acc0 = _mm256_fmadd_pd(lo, lo, acc0);
        acc1 = _mm256_fmadd_pd(hi, hi, acc1);
    }
    double s = hsum4d(_mm256_add_pd(acc0, acc1));
    for (; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
    return s;
}

void adam_update_avx2(float* w, const float* g, float* m, float* v, std::size_t n, float lr,
                      float beta1, float beta2, float eps, float weight_decay, float bc1,
                      float bc2, float gscale) {
    const __m256 vb1 = _mm256_set1_ps(beta1);
    const __m256 vomb1 = _mm256_set1_ps(1.0f - beta1);
    const __m256 vb2 = _mm256_set1_ps(beta2);
    const __m256 vomb2 = _mm256_set1_ps(1.0f - beta2);
    const __m256 vgs = _mm256_set1_ps(gscale);
    const __m256 vbc1 = _mm256_set1_ps(bc1);
    const __m256 vbc2 = _mm256_set1_ps(bc2);
    const __m256 veps = _mm256_set1_ps(eps);
    const __m256 vwd = _mm256_set1_ps(weight_decay);
    const __m256 vlr = _mm256_set1_ps(lr);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 gp = _mm256_mul_ps(_mm256_loadu_ps(g + i), vgs);
        const __m256 mv = _mm256_fmadd_ps(vb1, _mm256_loadu_ps(m + i), _mm256_mul_ps(vomb1, gp));
        const __m256 vv = _mm256_fmadd_ps(vb2, _mm256_loadu_ps(v + i),
                                          _mm256_mul_ps(vomb2, _mm256_mul_ps(gp, gp)));
        _mm256_storeu_ps(m + i, mv);
        _mm256_storeu_ps(v + i, vv);
        const __m256 mhat = _mm256_div_ps(mv, vbc1);
        const __m256 vhat = _mm256_div_ps(vv, vbc2);
        const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
        const __m256 wv = _mm256_loadu_ps(w + i);
        const __m256 upd = _mm256_fmadd_ps(vwd, wv, _mm256_div_ps(mhat, denom));
        _mm256_storeu_ps(w + i, _mm256_fnmadd_ps(vlr, upd, wv));
    }
    for (; i < n; ++i) {
        const float gp = g[i] * gscale;
        m[i] = std::fma(beta1, m[i], (1.0f - beta1) * gp);
        v[i] = std::fma(beta2, v[i], (1.0f - beta2) * gp * gp);
        const float mhat = m[i] / bc1;
        const float vhat = v[i] / bc2;
        const float upd = std::fma(weight_decay, w[i], mhat / (std::sqrt(vhat) + eps));
        w[i] = std::fma(-lr, upd, w[i]);
    }
}

}  // namespace cpt::nn::detail

#else  // !(__AVX2__ && __FMA__)

namespace cpt::nn::detail {

namespace {
[[noreturn]] void missing() { CPT_CHECK(false, "AVX2 kernels were not compiled into this binary"); }
}  // namespace

float dot_avx2(const float*, const float*, std::size_t) { missing(); }
void axpy_avx2(float, const float*, float*, std::size_t) { missing(); }
void attn_scores_avx2(const float*, const float*, float*, std::size_t, std::size_t, float) {
    missing();
}
void attn_mix_avx2(const float*, const float*, float*, std::size_t, std::size_t) { missing(); }
void attn_scores_f16_avx2(const float*, const std::uint16_t*, float*, std::size_t, std::size_t,
                          float) {
    missing();
}
void attn_mix_f16_avx2(const float*, const std::uint16_t*, float*, std::size_t, std::size_t) {
    missing();
}
float reduce_max_avx2(const float*, std::size_t) { missing(); }
void scale_avx2(float*, std::size_t, float) { missing(); }
void layer_norm_row_avx2(const float*, float*, const float*, const float*, std::size_t, float,
                         float*) {
    missing();
}
void add_bias_row_avx2(float*, const float*, std::size_t) { missing(); }
void fp16_encode_avx2(const float*, std::uint16_t*, std::size_t) { missing(); }
float dot_f16_avx2(const float*, const std::uint16_t*, std::size_t) { missing(); }
void axpy_f16_avx2(float, const std::uint16_t*, float*, std::size_t) { missing(); }
void softmax_backward_row_avx2(const float*, const float*, float*, std::size_t) { missing(); }
void layer_norm_backward_row_avx2(const float*, const float*, const float*, float, float, float*,
                                  std::size_t) {
    missing();
}
double sqnorm_avx2(const float*, std::size_t) { missing(); }
void adam_update_avx2(float*, const float*, float*, float*, std::size_t, float, float, float,
                      float, float, float, float, float) {
    missing();
}

}  // namespace cpt::nn::detail

#endif
