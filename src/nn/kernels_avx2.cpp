// AVX2+FMA elementwise kernel tier (dot/axpy, LayerNorm rows, softmax
// helpers). Built with -mavx2 -mfma; see gemm_avx2.cpp for the compile-gate
// and determinism conventions shared by both AVX2 translation units.
#include "simd_detail.hpp"

#include "util/check.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include "simd_avx2_inl.hpp"

#include <algorithm>
#include <limits>

namespace cpt::nn::detail {

float dot_avx2(const float* a, const float* b, std::size_t n) { return dot_fma(a, b, n); }

void axpy_avx2(float alpha, const float* x, float* y, std::size_t n) {
    const __m256 av = _mm256_set1_ps(alpha);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
    }
    for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

float reduce_max_avx2(const float* x, std::size_t n) {
    // max is exact under any association; no ordering constraints here.
    std::size_t i = 0;
    float mx = -std::numeric_limits<float>::infinity();
    if (n >= 8) {
        __m256 vmx = _mm256_loadu_ps(x);
        for (i = 8; i + 8 <= n; i += 8) vmx = _mm256_max_ps(vmx, _mm256_loadu_ps(x + i));
        const __m128 lo = _mm256_castps256_ps128(vmx);
        const __m128 hi = _mm256_extractf128_ps(vmx, 1);
        __m128 m = _mm_max_ps(lo, hi);
        m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
        mx = _mm_cvtss_f32(m);
    }
    for (; i < n; ++i) mx = std::max(mx, x[i]);
    return mx;
}

void scale_avx2(float* x, std::size_t n, float s) {
    const __m256 sv = _mm256_set1_ps(s);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), sv));
    }
    for (; i < n; ++i) x[i] *= s;
}

void layer_norm_row_avx2(const float* in, float* out, const float* gain, const float* bias,
                         std::size_t d, float eps, float* stats2) {
    // Both reductions use one fixed 8-lane tree (hsum8) plus a scalar tail,
    // so a row's statistics depend only on d — never on where the row sits
    // in the thread chunking.
    __m256 vsum = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(in + i));
    float sum = hsum8(vsum);
    for (; i < d; ++i) sum += in[i];
    const float mean = sum / static_cast<float>(d);

    const __m256 vmean = _mm256_set1_ps(mean);
    __m256 vvar = _mm256_setzero_ps();
    for (i = 0; i + 8 <= d; i += 8) {
        const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(in + i), vmean);
        vvar = _mm256_fmadd_ps(diff, diff, vvar);
    }
    float var = hsum8(vvar);
    for (; i < d; ++i) {
        const float diff = in[i] - mean;
        var = std::fma(diff, diff, var);
    }
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    if (stats2 != nullptr) {
        stats2[0] = mean;
        stats2[1] = inv;
    }

    const __m256 vinv = _mm256_set1_ps(inv);
    for (i = 0; i + 8 <= d; i += 8) {
        const __m256 xhat = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(in + i), vmean), vinv);
        _mm256_storeu_ps(out + i, _mm256_fmadd_ps(xhat, _mm256_loadu_ps(gain + i),
                                                  _mm256_loadu_ps(bias + i)));
    }
    for (; i < d; ++i) out[i] = std::fma((in[i] - mean) * inv, gain[i], bias[i]);
}

void add_bias_row_avx2(float* row, const float* bias, std::size_t d) {
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) {
        _mm256_storeu_ps(row + i, _mm256_add_ps(_mm256_loadu_ps(row + i), _mm256_loadu_ps(bias + i)));
    }
    for (; i < d; ++i) row[i] += bias[i];
}

}  // namespace cpt::nn::detail

#else  // !(__AVX2__ && __FMA__)

namespace cpt::nn::detail {

namespace {
[[noreturn]] void missing() { CPT_CHECK(false, "AVX2 kernels were not compiled into this binary"); }
}  // namespace

float dot_avx2(const float*, const float*, std::size_t) { missing(); }
void axpy_avx2(float, const float*, float*, std::size_t) { missing(); }
float reduce_max_avx2(const float*, std::size_t) { missing(); }
void scale_avx2(float*, std::size_t, float) { missing(); }
void layer_norm_row_avx2(const float*, float*, const float*, const float*, std::size_t, float,
                         float*) {
    missing();
}
void add_bias_row_avx2(float*, const float*, std::size_t) { missing(); }

}  // namespace cpt::nn::detail

#endif
