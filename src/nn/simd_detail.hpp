// Internal declarations of the AVX2+FMA kernel tier. The definitions live in
// gemm_avx2.cpp / kernels_avx2.cpp, the only translation units built with
// -mavx2 -mfma; when the compiler lacks those flags the definitions degrade to
// CPT_CHECK failures. Callers must only reach these through the tier
// dispatchers in gemm.cpp / kernels.cpp, which guarantee the active tier is
// kAvx2 (and therefore that the host CPU supports the instructions).
//
// Determinism contract shared by every function here: the floating-point
// operations producing one output element depend only on (element index,
// operand shape) — never on tile position or thread chunk boundaries. Scalar
// edge paths use std::fma so they round exactly like the vector FMA lanes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cpt::util {
class ThreadPool;
}  // namespace cpt::util

namespace cpt::nn::detail {

// Dense GEMM tiers (semantics identical to the public gemm_* entry points:
// accumulate into C, row-major, shapes as documented in gemm.hpp).
void gemm_nn_avx2(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, util::ThreadPool& pool);
void gemm_nt_avx2(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, util::ThreadPool& pool);
void gemm_tn_avx2(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, util::ThreadPool& pool);

// GEMV fast paths (m == 1, single caller thread — decode-shaped work is far
// too small to shard). nn: c[n] += sum_k a[k] * B[k,n] with B row-major
// [K,N]. nt: c[n] += dot(a, B[n,:]) with B row-major [N,K].
void gemv_nn_avx2(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim);
void gemv_nt_avx2(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim);

// Fused elementwise helpers used by kernels.cpp's per-row dispatch.
float dot_avx2(const float* a, const float* b, std::size_t n);
void axpy_avx2(float alpha, const float* x, float* y, std::size_t n);
// Batched attention inner loops (kernels.hpp documents the per-key
// equivalence contract): n key chains per dispatch, each chain the canonical
// dot_fma / axpy sequence for its key.
void attn_scores_avx2(const float* q, const float* krows, float* scores, std::size_t n,
                      std::size_t dh, float scale);
void attn_mix_avx2(const float* scores, const float* vrows, float* crow, std::size_t n,
                   std::size_t dh);
void attn_scores_f16_avx2(const float* q, const std::uint16_t* krows, float* scores,
                          std::size_t n, std::size_t dh, float scale);
void attn_mix_f16_avx2(const float* scores, const std::uint16_t* vrows, float* crow,
                       std::size_t n, std::size_t dh);
float reduce_max_avx2(const float* x, std::size_t n);
void scale_avx2(float* x, std::size_t n, float s);
// One LayerNorm row: out = (in - mean) * inv * gain + bias; writes the
// mean/inv pair when stats2 != nullptr (autograd backward cache).
void layer_norm_row_avx2(const float* in, float* out, const float* gain, const float* bias,
                         std::size_t d, float eps, float* stats2);
void add_bias_row_avx2(float* row, const float* bias, std::size_t d);

// Int8 decode path (quant.cpp): idot[j] = sum_k a[k] * w[j,k] over 7-bit
// offset-64 activation codes and int8 weights — VPMADDUBSW + VPMADDWD, exact
// integers (codes are small enough that the saturating i16 stage cannot
// fire), so the result matches the scalar/sse2 forms bit for bit.
void gemv_q8_dots_avx2(const std::uint8_t* a, const std::int8_t* w, std::int32_t* idot,
                       std::size_t k_dim, std::size_t n_dim);

// fp16 KV-cache kernels (infer.cpp via kernels.cpp). Encode rounds to
// nearest-even exactly like the software converter in fp16.hpp (VCVTPS2PH
// when the host has F16C, bit-identical fallback otherwise); dot/axpy widen
// exactly and then follow the fp32 AVX2 FMA conventions.
void fp16_encode_avx2(const float* src, std::uint16_t* dst, std::size_t n);
float dot_f16_avx2(const float* a, const std::uint16_t* b, std::size_t n);
void axpy_f16_avx2(float alpha, const std::uint16_t* x, float* y, std::size_t n);

// Backward-pass helpers used by the training kernels in kernels.cpp.
// One softmax backward row: dx += y * (g - dot(g, y)).
void softmax_backward_row_avx2(const float* y, const float* g, float* dx, std::size_t n);
// One LayerNorm backward row (the dx formula; see kernels.hpp).
void layer_norm_backward_row_avx2(const float* x, const float* gain, const float* g, float mean,
                                  float inv, float* dx, std::size_t d);
// sum(x[i]^2) in double precision: four double lanes, fixed combine order.
double sqnorm_avx2(const float* x, std::size_t n);
// Fused Adam update over one segment (semantics in kernels.hpp).
void adam_update_avx2(float* w, const float* g, float* m, float* v, std::size_t n, float lr,
                      float beta1, float beta2, float eps, float weight_decay, float bc1,
                      float bc2, float gscale);

}  // namespace cpt::nn::detail
