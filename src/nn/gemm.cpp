#include "gemm.hpp"

#include <algorithm>

#include "simd_detail.hpp"
#include "util/cpu.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cpt::nn {

namespace {

using util::SimdTier;

// Register-tile sizes. MR x NR float accumulators must fit the 16 SSE
// registers of the baseline x86-64 ABI: 4x8 = 32 floats = 8 xmm, leaving
// room for the A broadcast and B loads.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
// NT keeps NR smaller: its micro-kernel streams MR + NR rows concurrently.
constexpr std::size_t kNrNt = 4;
// Column block so one B panel stays cache-resident across row tiles.
constexpr std::size_t kNc = 256;
// Minimum FLOPs a parallel chunk should carry; below this, threads cost more
// than they save.
constexpr std::size_t kMinChunkFlops = 1 << 18;

std::size_t row_grain(std::size_t k_dim, std::size_t n_dim) {
    return util::grain_for(2 * k_dim * n_dim, kMinChunkFlops);
}

util::ThreadPool& pick(util::ThreadPool* pool) {
    return pool ? *pool : util::global_pool();
}

// ---- NN: C[M,N] += A[M,K] * B[K,N] -------------------------------------------
// A rows are broadcast, B rows are read contiguously per k; accumulators live
// in registers for the whole (unsplit) K extent.
//
// Both the scalar and SSE2 micro-kernels perform, per C element, exactly the
// chain `acc += a * b` in ascending k with one accumulator per element — the
// SSE2 bodies are the same per-lane IEEE operations four lanes at a time — so
// BOTH tiers stay bit-identical to the reference kernels. GCC's SLP
// vectorizer handles the TN form on its own but leaves these two scalar (the
// strided A / B accesses defeat it), hence the explicit intrinsics.

using MicroNnFn = void (*)(const float*, std::size_t, const float*, std::size_t, float*,
                           std::size_t, std::size_t);

void micro_nn_fixed_scalar(const float* a, std::size_t lda, const float* b, std::size_t ldb,
                           float* c, std::size_t ldc, std::size_t k_dim) {
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < kMr; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < kMr; ++i) {
        for (std::size_t j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

#if defined(__SSE2__)
void micro_nn_fixed_sse2(const float* a, std::size_t lda, const float* b, std::size_t ldb,
                         float* c, std::size_t ldc, std::size_t k_dim) {
    __m128 acc[kMr][2] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        const __m128 b0 = _mm_loadu_ps(brow);
        const __m128 b1 = _mm_loadu_ps(brow + 4);
        for (std::size_t i = 0; i < kMr; ++i) {
            const __m128 av = _mm_set1_ps(a[i * lda + k]);
            acc[i][0] = _mm_add_ps(acc[i][0], _mm_mul_ps(av, b0));
            acc[i][1] = _mm_add_ps(acc[i][1], _mm_mul_ps(av, b1));
        }
    }
    for (std::size_t i = 0; i < kMr; ++i) {
        float* crow = c + i * ldc;
        _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow), acc[i][0]));
        _mm_storeu_ps(crow + 4, _mm_add_ps(_mm_loadu_ps(crow + 4), acc[i][1]));
    }
}
#endif

void micro_nn_edge(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                   std::size_t ldc, std::size_t k_dim, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

template <MicroNnFn kFixed>
void gemm_nn_rows(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim,
                  std::size_t r0, std::size_t r1) {
    for (std::size_t n0 = 0; n0 < n_dim; n0 += kNc) {
        const std::size_t nb = std::min(kNc, n_dim - n0);
        for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
            const std::size_t mr = std::min(kMr, r1 - m0);
            const float* atile = a + m0 * k_dim;
            float* crow = c + m0 * n_dim + n0;
            std::size_t j0 = 0;
            if (mr == kMr) {
                for (; j0 + kNr <= nb; j0 += kNr) {
                    kFixed(atile, k_dim, b + n0 + j0, n_dim, crow + j0, n_dim, k_dim);
                }
            }
            for (; j0 < nb; j0 += kNr) {
                micro_nn_edge(atile, k_dim, b + n0 + j0, n_dim, crow + j0, n_dim, k_dim, mr,
                              std::min(kNr, nb - j0));
            }
        }
    }
}

// ---- NT: C[M,N] += A[M,K] * B^T, B stored [N,K] -------------------------------
// Both operands stream contiguously along k; no packing needed.

using MicroNtFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t,
                           std::size_t, std::size_t);

void micro_nt_fixed_scalar(const float* a, const float* b, float* c, std::size_t ldc,
                           std::size_t k_dim, std::size_t lda, std::size_t ldb) {
    float acc[kMr][kNrNt] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        for (std::size_t i = 0; i < kMr; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < kNrNt; ++j) acc[i][j] += av * b[j * ldb + k];
        }
    }
    for (std::size_t i = 0; i < kMr; ++i) {
        for (std::size_t j = 0; j < kNrNt; ++j) c[i * ldc + j] += acc[i][j];
    }
}

#if defined(__SSE2__)
void micro_nt_fixed_sse2(const float* a, const float* b, float* c, std::size_t ldc,
                         std::size_t k_dim, std::size_t lda, std::size_t ldb) {
    // Neither operand is contiguous across the 4 B rows, so the B column is
    // gathered into one vector per k; lane j of acc[i] is C[i][j]'s single
    // ascending-k accumulator.
    __m128 acc[kMr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const __m128 bv = _mm_set_ps(b[3 * ldb + k], b[2 * ldb + k], b[1 * ldb + k], b[0 * ldb + k]);
        for (std::size_t i = 0; i < kMr; ++i) {
            const __m128 av = _mm_set1_ps(a[i * lda + k]);
            acc[i] = _mm_add_ps(acc[i], _mm_mul_ps(av, bv));
        }
    }
    for (std::size_t i = 0; i < kMr; ++i) {
        float* crow = c + i * ldc;
        _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow), acc[i]));
    }
}
#endif

void micro_nt_edge(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                   std::size_t lda, std::size_t ldb, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNrNt] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av * b[j * ldb + k];
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

template <MicroNtFn kFixed>
void gemm_nt_rows(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim,
                  std::size_t r0, std::size_t r1) {
    for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
        const std::size_t mr = std::min(kMr, r1 - m0);
        const float* atile = a + m0 * k_dim;
        float* crow = c + m0 * n_dim;
        std::size_t j0 = 0;
        if (mr == kMr) {
            for (; j0 + kNrNt <= n_dim; j0 += kNrNt) {
                kFixed(atile, b + j0 * k_dim, crow + j0, n_dim, k_dim, k_dim, k_dim);
            }
        }
        for (; j0 < n_dim; j0 += kNrNt) {
            micro_nt_edge(atile, b + j0 * k_dim, crow + j0, n_dim, k_dim, k_dim, k_dim, mr,
                          std::min(kNrNt, n_dim - j0));
        }
    }
}

// ---- TN: C[M,N] += A^T * B, A stored [K,M], B [K,N] ---------------------------
// Per k both loads are contiguous short vectors (along m and n respectively).
// GCC SLP-vectorizes this form, so one micro-kernel serves the scalar and
// sse2 tiers (identical bits either way: one ascending-k accumulator per
// element).

template <std::size_t MR, std::size_t NR>
void micro_tn_fixed(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                    std::size_t lda, std::size_t ldb) {
    float acc[MR][NR] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* arow = a + k * lda;
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < MR; ++i) {
            const float av = arow[i];
            for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] += acc[i][j];
    }
}

void micro_tn_edge(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                   std::size_t lda, std::size_t ldb, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* arow = a + k * lda;
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = arow[i];
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

void gemm_tn_rows(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, std::size_t r0, std::size_t r1) {
    for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
        const std::size_t mr = std::min(kMr, r1 - m0);
        float* crow = c + m0 * n_dim;
        std::size_t j0 = 0;
        if (mr == kMr) {
            for (; j0 + kNr <= n_dim; j0 += kNr) {
                micro_tn_fixed<kMr, kNr>(a + m0, b + j0, crow + j0, n_dim, k_dim, m_dim, n_dim);
            }
        }
        for (; j0 < n_dim; j0 += kNr) {
            micro_tn_edge(a + m0, b + j0, crow + j0, n_dim, k_dim, m_dim, n_dim, mr,
                          std::min(kNr, n_dim - j0));
        }
    }
}

// ---- GEMV fast paths (m == 1) -------------------------------------------------
// Decode-shaped matmuls are a single output row; the blocked drivers above
// waste their register tile on them (and the NT gather kernel is actively
// slower than the seed loop — the PR-1 regression). These paths run on the
// calling thread: one row is far below any useful parallel grain.
//
// nn/tn with m == 1 are the same computation: c[n] += sum_k a[k] * B[k,n]
// with a contiguous (A is [1,K] or [K,1]). One ascending-k accumulator per
// element, so the scalar and sse2 variants stay bit-identical to the
// reference kernels.

// Two loop orders, same per-element arithmetic. The j-tile form holds
// accumulators in registers but walks B with stride n*4 bytes; once that
// stride reaches a page (n >= 1024) every load is an unprefetchable miss.
// The chunk form streams B rows sequentially into a zero-initialised
// accumulator buffer (<= 4 KiB, L1-resident) and adds it to c at the end.
// Either way each output element is (0 + sum over ascending k) added to the
// prefilled c last — exactly the reference order, so both stay bit-identical
// to gemm_*_ref on the scalar and sse2 tiers.
constexpr std::size_t kGemvChunk = 1024;          // accumulator floats per pass
constexpr std::size_t kGemvWideN = 512;           // switch to streaming above this

void gemv_nn_scalar(const float* a, const float* b, float* c, std::size_t k_dim,
                    std::size_t n_dim) {
    float acc[kGemvChunk];
    for (std::size_t j0 = 0; j0 < n_dim; j0 += kGemvChunk) {
        const std::size_t w = std::min(kGemvChunk, n_dim - j0);
        std::fill_n(acc, w, 0.0f);
        for (std::size_t k = 0; k < k_dim; ++k) {
            const float av = a[k];
            const float* brow = b + k * n_dim + j0;
            for (std::size_t j = 0; j < w; ++j) acc[j] += av * brow[j];
        }
        float* cj = c + j0;
        for (std::size_t j = 0; j < w; ++j) cj[j] += acc[j];
    }
}

#if defined(__SSE2__)
void gemv_nn_sse2(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim) {
    if (n_dim > kGemvWideN) {
        // Streaming form: B read once, sequentially.
        alignas(16) float acc[kGemvChunk];
        for (std::size_t j0 = 0; j0 < n_dim; j0 += kGemvChunk) {
            const std::size_t w = std::min(kGemvChunk, n_dim - j0);
            std::fill_n(acc, w, 0.0f);
            for (std::size_t k = 0; k < k_dim; ++k) {
                const __m128 av = _mm_set1_ps(a[k]);
                const float* brow = b + k * n_dim + j0;
                std::size_t j = 0;
                for (; j + 16 <= w; j += 16) {
                    for (std::size_t u = 0; u < 4; ++u) {
                        float* aj = acc + j + 4 * u;
                        _mm_store_ps(aj, _mm_add_ps(_mm_load_ps(aj),
                                                    _mm_mul_ps(av, _mm_loadu_ps(brow + j + 4 * u))));
                    }
                }
                for (; j < w; ++j) acc[j] += a[k] * brow[j];
            }
            float* cj = c + j0;
            for (std::size_t j = 0; j < w; ++j) cj[j] += acc[j];
        }
        return;
    }
    constexpr std::size_t kTile = 16;  // 4 xmm accumulators
    std::size_t j0 = 0;
    for (; j0 + kTile <= n_dim; j0 += kTile) {
        __m128 acc[4] = {};
        for (std::size_t k = 0; k < k_dim; ++k) {
            const __m128 av = _mm_set1_ps(a[k]);
            const float* brow = b + k * n_dim + j0;
            for (std::size_t j = 0; j < 4; ++j) {
                acc[j] = _mm_add_ps(acc[j], _mm_mul_ps(av, _mm_loadu_ps(brow + 4 * j)));
            }
        }
        for (std::size_t j = 0; j < 4; ++j) {
            float* cj = c + j0 + 4 * j;
            _mm_storeu_ps(cj, _mm_add_ps(_mm_loadu_ps(cj), acc[j]));
        }
    }
    // Column tail: same per-element mul+add chain as the vector lanes.
    for (; j0 < n_dim; ++j0) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < k_dim; ++k) acc += a[k] * b[k * n_dim + j0];
        c[j0] += acc;
    }
}
#endif

// nt with m == 1: one dot per output along contiguous k. Multiple
// accumulators reassociate the sum (tolerance vs the reference, pinned by
// tests); still deterministic — single-threaded and fixed order per shape.

float dot4_scalar(const float* a, const float* b, std::size_t k_dim) {
    float s0 = 0.0f;
    float s1 = 0.0f;
    float s2 = 0.0f;
    float s3 = 0.0f;
    std::size_t i = 0;
    for (; i + 4 <= k_dim; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    float s = (s0 + s1) + (s2 + s3);
    for (; i < k_dim; ++i) s += a[i] * b[i];
    return s;
}

void gemv_nt_scalar(const float* a, const float* b, float* c, std::size_t k_dim,
                    std::size_t n_dim) {
    for (std::size_t n = 0; n < n_dim; ++n) c[n] += dot4_scalar(a, b + n * k_dim, k_dim);
}

#if defined(__SSE2__)
float dot_sse2(const float* a, const float* b, std::size_t k_dim) {
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= k_dim; i += 8) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
    }
    for (; i + 4 <= k_dim; i += 4) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    }
    __m128 s = _mm_add_ps(acc0, acc1);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    float r = _mm_cvtss_f32(s);
    for (; i < k_dim; ++i) r += a[i] * b[i];
    return r;
}

void gemv_nt_sse2(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim) {
    for (std::size_t n = 0; n < n_dim; ++n) c[n] += dot_sse2(a, b + n * k_dim, k_dim);
}
#endif

void gemv_nn_dispatch(const float* a, const float* b, float* c, std::size_t k_dim,
                      std::size_t n_dim, SimdTier tier) {
    switch (tier) {
        case SimdTier::kAvx2:
            detail::gemv_nn_avx2(a, b, c, k_dim, n_dim);
            return;
        case SimdTier::kSse2:
#if defined(__SSE2__)
            gemv_nn_sse2(a, b, c, k_dim, n_dim);
            return;
#else
            break;
#endif
        case SimdTier::kScalar:
            break;
    }
    gemv_nn_scalar(a, b, c, k_dim, n_dim);
}

void gemv_nt_dispatch(const float* a, const float* b, float* c, std::size_t k_dim,
                      std::size_t n_dim, SimdTier tier) {
    switch (tier) {
        case SimdTier::kAvx2:
            detail::gemv_nt_avx2(a, b, c, k_dim, n_dim);
            return;
        case SimdTier::kSse2:
#if defined(__SSE2__)
            gemv_nt_sse2(a, b, c, k_dim, n_dim);
            return;
#else
            break;
#endif
        case SimdTier::kScalar:
            break;
    }
    gemv_nt_scalar(a, b, c, k_dim, n_dim);
}

#if defined(__SSE2__)
constexpr MicroNnFn kMicroNnSse2 = micro_nn_fixed_sse2;
constexpr MicroNtFn kMicroNtSse2 = micro_nt_fixed_sse2;
#else
constexpr MicroNnFn kMicroNnSse2 = micro_nn_fixed_scalar;
constexpr MicroNtFn kMicroNtSse2 = micro_nt_fixed_scalar;
#endif

}  // namespace

void gemm_nn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    const SimdTier tier = util::active_simd_tier();
    if (m_dim == 1) {
        gemv_nn_dispatch(a, b, c, k_dim, n_dim, tier);
        return;
    }
    if (tier == SimdTier::kAvx2) {
        detail::gemm_nn_avx2(a, b, c, m_dim, k_dim, n_dim, pick(pool));
        return;
    }
    const bool sse2 = tier == SimdTier::kSse2;
    pick(pool).parallel_for(m_dim, row_grain(k_dim, n_dim), [&](std::size_t r0, std::size_t r1) {
        if (sse2) {
            gemm_nn_rows<kMicroNnSse2>(a, b, c, k_dim, n_dim, r0, r1);
        } else {
            gemm_nn_rows<micro_nn_fixed_scalar>(a, b, c, k_dim, n_dim, r0, r1);
        }
    });
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    const SimdTier tier = util::active_simd_tier();
    if (m_dim == 1) {
        gemv_nt_dispatch(a, b, c, k_dim, n_dim, tier);
        return;
    }
    if (tier == SimdTier::kAvx2) {
        detail::gemm_nt_avx2(a, b, c, m_dim, k_dim, n_dim, pick(pool));
        return;
    }
    const bool sse2 = tier == SimdTier::kSse2;
    pick(pool).parallel_for(m_dim, row_grain(k_dim, n_dim), [&](std::size_t r0, std::size_t r1) {
        if (sse2) {
            gemm_nt_rows<kMicroNtSse2>(a, b, c, k_dim, n_dim, r0, r1);
        } else {
            gemm_nt_rows<micro_nt_fixed_scalar>(a, b, c, k_dim, n_dim, r0, r1);
        }
    });
}

void gemm_tn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    const SimdTier tier = util::active_simd_tier();
    if (m_dim == 1) {
        // A is [K, 1] — contiguous along k, identical computation to nn GEMV.
        gemv_nn_dispatch(a, b, c, k_dim, n_dim, tier);
        return;
    }
    if (tier == SimdTier::kAvx2) {
        detail::gemm_tn_avx2(a, b, c, m_dim, k_dim, n_dim, pick(pool));
        return;
    }
    pick(pool).parallel_for(m_dim, row_grain(k_dim, n_dim), [&](std::size_t r0, std::size_t r1) {
        gemm_tn_rows(a, b, c, m_dim, k_dim, n_dim, r0, r1);
    });
}

void gemm_nn_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        const float* arow = a + m * k_dim;
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += arow[k] * b[k * n_dim + n];
            crow[n] += acc;
        }
    }
}

void gemm_nt_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        const float* arow = a + m * k_dim;
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            const float* brow = b + n * k_dim;
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
            crow[n] += acc;
        }
    }
}

void gemm_tn_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += a[k * m_dim + m] * b[k * n_dim + n];
            crow[n] += acc;
        }
    }
}

}  // namespace cpt::nn
