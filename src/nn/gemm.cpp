#include "gemm.hpp"

#include <algorithm>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cpt::nn {

namespace {

// Register-tile sizes. MR x NR float accumulators must fit the 16 SSE
// registers of the baseline x86-64 ABI: 4x8 = 32 floats = 8 xmm, leaving
// room for the A broadcast and B loads.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
// NT keeps NR smaller: its micro-kernel streams MR + NR rows concurrently.
constexpr std::size_t kNrNt = 4;
// Column block so one B panel stays cache-resident across row tiles.
constexpr std::size_t kNc = 256;
// Minimum FLOPs a parallel chunk should carry; below this, threads cost more
// than they save.
constexpr std::size_t kMinChunkFlops = 1 << 18;

std::size_t row_grain(std::size_t k_dim, std::size_t n_dim) {
    return util::grain_for(2 * k_dim * n_dim, kMinChunkFlops);
}

// ---- NN: C[M,N] += A[M,K] * B[K,N] -------------------------------------------
// A rows are broadcast, B rows are read contiguously per k; accumulators live
// in registers for the whole (unsplit) K extent.

// The SSE2 bodies below perform, per C element, exactly the scalar chain
// `acc += a * b` in ascending k with one accumulator per element — the same
// per-lane IEEE operations as the scalar template, just four lanes at a time —
// so they stay bit-identical to the reference kernels. GCC's SLP vectorizer
// handles the TN form on its own but leaves these two scalar (the strided A /
// B accesses defeat it), hence the explicit intrinsics.
#if defined(__SSE2__)
template <std::size_t MR, std::size_t NR>
void micro_nn_fixed(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, std::size_t k_dim) {
    static_assert(MR == 4 && NR == 8);
    __m128 acc[MR][2] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        const __m128 b0 = _mm_loadu_ps(brow);
        const __m128 b1 = _mm_loadu_ps(brow + 4);
        for (std::size_t i = 0; i < MR; ++i) {
            const __m128 av = _mm_set1_ps(a[i * lda + k]);
            acc[i][0] = _mm_add_ps(acc[i][0], _mm_mul_ps(av, b0));
            acc[i][1] = _mm_add_ps(acc[i][1], _mm_mul_ps(av, b1));
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        float* crow = c + i * ldc;
        _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow), acc[i][0]));
        _mm_storeu_ps(crow + 4, _mm_add_ps(_mm_loadu_ps(crow + 4), acc[i][1]));
    }
}
#else
template <std::size_t MR, std::size_t NR>
void micro_nn_fixed(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, std::size_t k_dim) {
    float acc[MR][NR] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < MR; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] += acc[i][j];
    }
}
#endif

void micro_nn_edge(const float* a, std::size_t lda, const float* b, std::size_t ldb, float* c,
                   std::size_t ldc, std::size_t k_dim, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

void gemm_nn_rows(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim,
                  std::size_t r0, std::size_t r1) {
    for (std::size_t n0 = 0; n0 < n_dim; n0 += kNc) {
        const std::size_t nb = std::min(kNc, n_dim - n0);
        for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
            const std::size_t mr = std::min(kMr, r1 - m0);
            const float* atile = a + m0 * k_dim;
            float* crow = c + m0 * n_dim + n0;
            std::size_t j0 = 0;
            if (mr == kMr) {
                for (; j0 + kNr <= nb; j0 += kNr) {
                    micro_nn_fixed<kMr, kNr>(atile, k_dim, b + n0 + j0, n_dim, crow + j0, n_dim,
                                             k_dim);
                }
            }
            for (; j0 < nb; j0 += kNr) {
                micro_nn_edge(atile, k_dim, b + n0 + j0, n_dim, crow + j0, n_dim, k_dim, mr,
                              std::min(kNr, nb - j0));
            }
        }
    }
}

// ---- NT: C[M,N] += A[M,K] * B^T, B stored [N,K] -------------------------------
// Both operands stream contiguously along k; no packing needed.

#if defined(__SSE2__)
template <std::size_t MR, std::size_t NR>
void micro_nt_fixed(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                    std::size_t lda, std::size_t ldb) {
    static_assert(MR == 4 && NR == 4);
    // Neither operand is contiguous across the 4 B rows, so the B column is
    // gathered into one vector per k; lane j of acc[i] is C[i][j]'s single
    // ascending-k accumulator.
    __m128 acc[MR] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const __m128 bv = _mm_set_ps(b[3 * ldb + k], b[2 * ldb + k], b[1 * ldb + k], b[0 * ldb + k]);
        for (std::size_t i = 0; i < MR; ++i) {
            const __m128 av = _mm_set1_ps(a[i * lda + k]);
            acc[i] = _mm_add_ps(acc[i], _mm_mul_ps(av, bv));
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        float* crow = c + i * ldc;
        _mm_storeu_ps(crow, _mm_add_ps(_mm_loadu_ps(crow), acc[i]));
    }
}
#else
template <std::size_t MR, std::size_t NR>
void micro_nt_fixed(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                    std::size_t lda, std::size_t ldb) {
    float acc[MR][NR] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        for (std::size_t i = 0; i < MR; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * b[j * ldb + k];
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] += acc[i][j];
    }
}
#endif

void micro_nt_edge(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                   std::size_t lda, std::size_t ldb, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNrNt] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = a[i * lda + k];
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av * b[j * ldb + k];
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

void gemm_nt_rows(const float* a, const float* b, float* c, std::size_t k_dim, std::size_t n_dim,
                  std::size_t r0, std::size_t r1) {
    for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
        const std::size_t mr = std::min(kMr, r1 - m0);
        const float* atile = a + m0 * k_dim;
        float* crow = c + m0 * n_dim;
        std::size_t j0 = 0;
        if (mr == kMr) {
            for (; j0 + kNrNt <= n_dim; j0 += kNrNt) {
                micro_nt_fixed<kMr, kNrNt>(atile, b + j0 * k_dim, crow + j0, n_dim, k_dim, k_dim,
                                           k_dim);
            }
        }
        for (; j0 < n_dim; j0 += kNrNt) {
            micro_nt_edge(atile, b + j0 * k_dim, crow + j0, n_dim, k_dim, k_dim, k_dim, mr,
                          std::min(kNrNt, n_dim - j0));
        }
    }
}

// ---- TN: C[M,N] += A^T * B, A stored [K,M], B [K,N] ---------------------------
// Per k both loads are contiguous short vectors (along m and n respectively).

template <std::size_t MR, std::size_t NR>
void micro_tn_fixed(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                    std::size_t lda, std::size_t ldb) {
    float acc[MR][NR] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* arow = a + k * lda;
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < MR; ++i) {
            const float av = arow[i];
            for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] += acc[i][j];
    }
}

void micro_tn_edge(const float* a, const float* b, float* c, std::size_t ldc, std::size_t k_dim,
                   std::size_t lda, std::size_t ldb, std::size_t mr, std::size_t nr) {
    float acc[kMr][kNr] = {};
    for (std::size_t k = 0; k < k_dim; ++k) {
        const float* arow = a + k * lda;
        const float* brow = b + k * ldb;
        for (std::size_t i = 0; i < mr; ++i) {
            const float av = arow[i];
            for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
        }
    }
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
}

void gemm_tn_rows(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                  std::size_t n_dim, std::size_t r0, std::size_t r1) {
    for (std::size_t m0 = r0; m0 < r1; m0 += kMr) {
        const std::size_t mr = std::min(kMr, r1 - m0);
        float* crow = c + m0 * n_dim;
        std::size_t j0 = 0;
        if (mr == kMr) {
            for (; j0 + kNr <= n_dim; j0 += kNr) {
                micro_tn_fixed<kMr, kNr>(a + m0, b + j0, crow + j0, n_dim, k_dim, m_dim, n_dim);
            }
        }
        for (; j0 < n_dim; j0 += kNr) {
            micro_tn_edge(a + m0, b + j0, crow + j0, n_dim, k_dim, m_dim, n_dim, mr,
                          std::min(kNr, n_dim - j0));
        }
    }
}

util::ThreadPool& pick(util::ThreadPool* pool) {
    return pool ? *pool : util::global_pool();
}

}  // namespace

void gemm_nn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    pick(pool).parallel_for(m_dim, row_grain(k_dim, n_dim),
                            [&](std::size_t r0, std::size_t r1) {
                                gemm_nn_rows(a, b, c, k_dim, n_dim, r0, r1);
                            });
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    pick(pool).parallel_for(m_dim, row_grain(k_dim, n_dim),
                            [&](std::size_t r0, std::size_t r1) {
                                gemm_nt_rows(a, b, c, k_dim, n_dim, r0, r1);
                            });
}

void gemm_tn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    pick(pool).parallel_for(m_dim, row_grain(k_dim, n_dim),
                            [&](std::size_t r0, std::size_t r1) {
                                gemm_tn_rows(a, b, c, m_dim, k_dim, n_dim, r0, r1);
                            });
}

void gemm_nn_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        const float* arow = a + m * k_dim;
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += arow[k] * b[k * n_dim + n];
            crow[n] += acc;
        }
    }
}

void gemm_nt_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        const float* arow = a + m * k_dim;
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            const float* brow = b + n * k_dim;
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += arow[k] * brow[k];
            crow[n] += acc;
        }
    }
}

void gemm_tn_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim) {
    for (std::size_t m = 0; m < m_dim; ++m) {
        float* crow = c + m * n_dim;
        for (std::size_t n = 0; n < n_dim; ++n) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < k_dim; ++k) acc += a[k * m_dim + m] * b[k * n_dim + n];
            crow[n] += acc;
        }
    }
}

}  // namespace cpt::nn
