#include "quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels.hpp"
#include "simd_detail.hpp"
#include "util/check.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cpt::nn {

namespace {

using util::SimdTier;

util::ThreadPool& pick(util::ThreadPool* pool) {
    return pool ? *pool : util::global_pool();
}

// Integer-dot chunk width: the idot scratch stays on the stack (2 KiB) and
// the float epilogue runs over it in cache.
constexpr std::size_t kQ8Chunk = 512;

// idot[j] = sum_k a[k] * w[j,k] for j in [0, n): exact int32 on every tier
// (codes are 7-bit, so |sum| <= k * 127 * 127 — no overflow for any k this
// project can reach).
void gemv_q8_dots_scalar(const std::uint8_t* a, const std::int8_t* w, std::int32_t* idot,
                         std::size_t k_dim, std::size_t n_dim) {
    for (std::size_t j = 0; j < n_dim; ++j) {
        const std::int8_t* wrow = w + j * k_dim;
        std::int32_t s = 0;
        for (std::size_t i = 0; i < k_dim; ++i) {
            s += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(wrow[i]);
        }
        idot[j] = s;
    }
}

#if defined(__SSE2__)
// SSE2 has no VPMADDUBSW, so widen u8 (zero-extend) and s8 (sign-extend via
// a compare mask) to i16 and use PMADDWD. Same exact integers as the scalar
// loop — integer addition is associative.
std::int32_t dot_q8_sse2(const std::uint8_t* a, const std::int8_t* w, std::size_t k_dim) {
    const __m128i zero = _mm_setzero_si128();
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= k_dim; i += 16) {
        const __m128i av = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i wv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
        const __m128i alo = _mm_unpacklo_epi8(av, zero);
        const __m128i ahi = _mm_unpackhi_epi8(av, zero);
        const __m128i wsign = _mm_cmpgt_epi8(zero, wv);
        const __m128i wlo = _mm_unpacklo_epi8(wv, wsign);
        const __m128i whi = _mm_unpackhi_epi8(wv, wsign);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, wlo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, whi));
    }
    __m128i s = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    std::int32_t r = _mm_cvtsi128_si32(s);
    for (; i < k_dim; ++i) {
        r += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(w[i]);
    }
    return r;
}

void gemv_q8_dots_sse2(const std::uint8_t* a, const std::int8_t* w, std::int32_t* idot,
                       std::size_t k_dim, std::size_t n_dim) {
    for (std::size_t j = 0; j < n_dim; ++j) idot[j] = dot_q8_sse2(a, w + j * k_dim, k_dim);
}
#endif

void gemv_q8_dots(const std::uint8_t* a, const std::int8_t* w, std::int32_t* idot,
                  std::size_t k_dim, std::size_t n_dim, SimdTier tier) {
    switch (tier) {
        case SimdTier::kAvx2:
            detail::gemv_q8_dots_avx2(a, w, idot, k_dim, n_dim);
            return;
        case SimdTier::kSse2:
#if defined(__SSE2__)
            gemv_q8_dots_sse2(a, w, idot, k_dim, n_dim);
            return;
#else
            break;
#endif
        case SimdTier::kScalar:
            break;
    }
    gemv_q8_dots_scalar(a, w, idot, k_dim, n_dim);
}

// One activation row against all weight rows: integer dots per chunk, then
// the fixed float epilogue. The epilogue lives only in this TU (compiled
// without -mfma), so no tier can contract the mul+add into an FMA — the
// float result is the same bit pattern everywhere.
void gemv_q8_row(const std::uint8_t* arow, float as, const std::int8_t* wq, const float* wscale,
                 const std::int32_t* rowsum, float* crow, std::size_t k_dim, std::size_t n_dim,
                 SimdTier tier) {
    std::int32_t idot[kQ8Chunk];
    for (std::size_t j0 = 0; j0 < n_dim; j0 += kQ8Chunk) {
        const std::size_t w = std::min(kQ8Chunk, n_dim - j0);
        gemv_q8_dots(arow, wq + j0 * k_dim, idot, k_dim, w, tier);
        for (std::size_t j = 0; j < w; ++j) {
            crow[j0 + j] += (as * wscale[j0 + j]) *
                            static_cast<float>(idot[j] - 64 * rowsum[j0 + j]);
        }
    }
}

}  // namespace

const char* precision_name(Precision p) {
    switch (p) {
        case Precision::kFp32:
            return "fp32";
        case Precision::kInt8W8A32:
            return "int8_w8a32";
    }
    return "unknown";
}

Precision parse_precision(const std::string& s) {
    if (s == "fp32") return Precision::kFp32;
    if (s == "int8" || s == "int8_w8a32") return Precision::kInt8W8A32;
    throw std::invalid_argument("unknown precision '" + s + "' (expected fp32 or int8)");
}

void QuantScratch::ensure(std::size_t rows, std::size_t k) {
    if (qa.size() < rows * k) qa.resize(rows * k);
    if (ascale.size() < rows) ascale.resize(rows);
}

void quantize_activations(const float* x, std::size_t rows, std::size_t k, QuantScratch& qs,
                          util::ThreadPool* pool) {
    qs.ensure(rows, k);
    std::uint8_t* qa = qs.qa.data();
    float* ascale = qs.ascale.data();
    pick(pool).parallel_for(rows, util::grain_for(6 * k), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float* row = x + r * k;
            std::uint8_t* qrow = qa + r * k;
            float amax = 0.0f;
            for (std::size_t j = 0; j < k; ++j) amax = std::max(amax, std::fabs(row[j]));
            // amax == 0: all codes collapse to the offset (q = 0) and the
            // zero scale annihilates the epilogue — the row contributes
            // exactly its bias.
            const float inv = amax > 0.0f ? 63.0f / amax : 0.0f;
            ascale[r] = amax > 0.0f ? amax / 63.0f : 0.0f;
            for (std::size_t j = 0; j < k; ++j) {
                float q = std::nearbyintf(row[j] * inv);
                q = std::min(63.0f, std::max(-63.0f, q));
                qrow[j] = static_cast<std::uint8_t>(static_cast<std::int32_t>(q) + 64);
            }
        }
    });
}

void quantize_weights_rowwise(const float* w, std::size_t out, std::size_t in, std::int8_t* wq,
                              float* scale) {
    for (std::size_t r = 0; r < out; ++r) {
        const float* row = w + r * in;
        float wmax = 0.0f;
        for (std::size_t j = 0; j < in; ++j) wmax = std::max(wmax, std::fabs(row[j]));
        const float inv = wmax > 0.0f ? 127.0f / wmax : 0.0f;
        scale[r] = wmax > 0.0f ? wmax / 127.0f : 0.0f;
        std::int8_t* qrow = wq + r * in;
        for (std::size_t j = 0; j < in; ++j) {
            float q = std::nearbyintf(row[j] * inv);
            q = std::min(127.0f, std::max(-127.0f, q));
            qrow[j] = static_cast<std::int8_t>(static_cast<std::int32_t>(q));
        }
    }
}

void dequantize_weights_rowwise(const std::int8_t* wq, const float* scale, std::size_t out,
                                std::size_t in, float* w) {
    for (std::size_t r = 0; r < out; ++r) {
        const float s = scale[r];
        const std::int8_t* qrow = wq + r * in;
        float* row = w + r * in;
        for (std::size_t j = 0; j < in; ++j) row[j] = static_cast<float>(qrow[j]) * s;
    }
}

void rowsums_q8(const std::int8_t* wq, std::size_t out, std::size_t in, std::int32_t* rowsum) {
    for (std::size_t r = 0; r < out; ++r) {
        const std::int8_t* qrow = wq + r * in;
        std::int32_t s = 0;
        for (std::size_t j = 0; j < in; ++j) s += qrow[j];
        rowsum[r] = s;
    }
}

void gemm_q8_nt(const std::uint8_t* qa, const float* ascale, const std::int8_t* wq,
                const float* wscale, const std::int32_t* wrowsum, float* c, std::size_t m_dim,
                std::size_t k_dim, std::size_t n_dim, util::ThreadPool* pool) {
    if (m_dim == 0 || k_dim == 0 || n_dim == 0) return;
    const SimdTier tier = util::active_simd_tier();
    // Integer accumulation is exact, so sharding over rows cannot perturb any
    // output element for any thread count (the fp32 kernels need a careful
    // per-element-order argument here; the q8 path gets it for free).
    pick(pool).parallel_for(m_dim, util::grain_for(2 * k_dim * n_dim, std::size_t{1} << 18),
                            [&](std::size_t r0, std::size_t r1) {
                                for (std::size_t r = r0; r < r1; ++r) {
                                    gemv_q8_row(qa + r * k_dim, ascale[r], wq, wscale, wrowsum,
                                                c + r * n_dim, k_dim, n_dim, tier);
                                }
                            });
}

// ---- Quantized module mirrors -------------------------------------------------

QuantLinear QuantLinear::from(const Linear& fp) {
    QuantLinear q;
    q.in = fp.in_features();
    q.out = fp.out_features();
    q.wq.resize(q.in * q.out);
    q.scale.resize(q.out);
    q.rowsum.resize(q.out);
    quantize_weights_rowwise(fp.weight()->value.data().data(), q.out, q.in, q.wq.data(),
                             q.scale.data());
    rowsums_q8(q.wq.data(), q.out, q.in, q.rowsum.data());
    const auto b = fp.bias()->value.data();
    q.bias.assign(b.begin(), b.end());
    return q;
}

void QuantLinear::install(std::vector<std::int8_t> wq_in, std::vector<float> scale_in) {
    CPT_CHECK_EQ(wq_in.size(), in * out, " QuantLinear::install: payload size mismatch");
    CPT_CHECK_EQ(scale_in.size(), out, " QuantLinear::install: scale size mismatch");
    wq = std::move(wq_in);
    scale = std::move(scale_in);
    rowsum.resize(out);
    rowsums_q8(wq.data(), out, in, rowsum.data());
}

void QuantLinear::forward_rows(const float* x, float* y, std::size_t rows, QuantScratch& qs,
                               util::ThreadPool* pool) const {
    kernels::fill_bias_rows(y, bias.data(), rows, out, pool);
    quantize_activations(x, rows, in, qs, pool);
    gemm_q8_nt(qs.qa.data(), qs.ascale.data(), wq.data(), scale.data(), rowsum.data(), y, rows,
               in, out, pool);
}

void QuantLinear::apply_rows(const float* x, float* y, std::size_t rows, QuantScratch& qs,
                             util::ThreadPool* pool) const {
    quantize_activations(x, rows, in, qs, pool);
    gemm_q8_nt(qs.qa.data(), qs.ascale.data(), wq.data(), scale.data(), rowsum.data(), y, rows,
               in, out, pool);
}

QuantMlp QuantMlp::from(const Mlp& fp) {
    QuantMlp q;
    q.fc1 = QuantLinear::from(fp.fc1());
    q.fc2 = QuantLinear::from(fp.fc2());
    return q;
}

void QuantMlp::forward_rows(const float* x, float* hidden, float* y, std::size_t rows,
                            QuantScratch& qs, util::ThreadPool* pool) const {
    const std::size_t h = fc1.out;
    std::fill_n(hidden, rows * h, 0.0f);
    fc1.apply_rows(x, hidden, rows, qs, pool);
    kernels::bias_gelu_rows(hidden, fc1.bias.data(), rows, h, pool);
    fc2.forward_rows(hidden, y, rows, qs, pool);
}

TransformerQuant TransformerQuant::from(const Transformer& model) {
    TransformerQuant q;
    q.input_proj = QuantLinear::from(model.input_proj());
    q.blocks.reserve(model.blocks().size());
    for (const auto& block : model.blocks()) {
        Block b;
        b.wq = QuantLinear::from(block->attn().wq());
        b.wk = QuantLinear::from(block->attn().wk());
        b.wv = QuantLinear::from(block->attn().wv());
        b.wo = QuantLinear::from(block->attn().wo());
        b.mlp = QuantMlp::from(block->mlp());
        q.blocks.push_back(std::move(b));
    }
    return q;
}

std::size_t TransformerQuant::weight_bytes() const {
    std::size_t total = input_proj.weight_bytes();
    for (const auto& b : blocks) {
        total += b.wq.weight_bytes() + b.wk.weight_bytes() + b.wv.weight_bytes() +
                 b.wo.weight_bytes() + b.mlp.weight_bytes();
    }
    return total;
}

}  // namespace cpt::nn
