// Int8 weight-quantized decode path (DESIGN.md §12).
//
// Weights are quantized offline, per output row, symmetric:
//   wscale[r] = max_j |W[r,j]| / 127,  wq[r,j] = round(W[r,j] / wscale[r])
// Activations are quantized per row at decode time to SEVEN bits:
//   amax = max_j |x[j]|, ascale = amax / 63, q[j] = round(x[j] / ascale)
// and stored offset-64 as u8 codes ua = q + 64 in [1, 127]. The integer dot
//   idot = sum_k ua[k] * wq[j,k]
// then recovers the real dot via the row sum of wq:
//   y[j] += (ascale * wscale[j]) * float(idot - 64 * rowsum[j])
//
// Why 7-bit offset codes: the AVX2 kernel uses VPMADDUBSW (u8 x s8 ->
// saturating i16 pair sums). With ua <= 127 and |wq| <= 127 a pair sum is at
// most 2*127*127 = 32258 < 32767, so saturation can never fire and the
// instruction computes the exact integer sum. Every tier therefore produces
// the SAME int32 dot (integer addition is associative), and the float
// epilogue is one fixed scalar expression compiled without FMA — so the
// quantized matmul output is byte-identical across scalar/sse2/avx2 AND
// across thread counts, a strictly stronger contract than the fp32 kernels.
//
// Rounding: activation codes use std::nearbyintf under the default
// round-to-nearest-even mode, the same rounding VCVTPS2DQ performs, so a
// future vectorized quantizer could not drift either.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "modules.hpp"

namespace cpt::util {
class ThreadPool;
}  // namespace cpt::util

namespace cpt::nn {

// Decode-path numeric mode. kInt8W8A32 = int8 weights with int32 integer
// accumulation (fp32 epilogue) plus the fp16-storage KV cache.
enum class Precision { kFp32, kInt8W8A32 };

const char* precision_name(Precision p);
// Accepts "fp32" / "int8" (alias "int8_w8a32"); throws std::invalid_argument.
Precision parse_precision(const std::string& s);

// Reusable per-call activation-quantization buffers (no allocation in the
// decode hot loop once sized).
struct QuantScratch {
    std::vector<std::uint8_t> qa;  // [rows, k] offset-64 codes
    std::vector<float> ascale;     // [rows]
    void ensure(std::size_t rows, std::size_t k);
};

// Per-row 7-bit activation quantization into qs (scalar ascending arithmetic
// on every tier; cost is O(rows*k), negligible next to the O(rows*k*n)
// matmul it feeds).
void quantize_activations(const float* x, std::size_t rows, std::size_t k, QuantScratch& qs,
                          util::ThreadPool* pool = nullptr);

// Offline per-row symmetric weight quantization of a row-major [out, in]
// matrix, its exact inverse map, and the rowsum the epilogue needs.
void quantize_weights_rowwise(const float* w, std::size_t out, std::size_t in, std::int8_t* wq,
                              float* scale);
void dequantize_weights_rowwise(const std::int8_t* wq, const float* scale, std::size_t out,
                                std::size_t in, float* w);
void rowsums_q8(const std::int8_t* wq, std::size_t out, std::size_t in, std::int32_t* rowsum);

// C[M,N] += dequant(QA[M,K] * WQ^T), WQ stored [N,K] like gemm_nt. Shards
// over M rows; each output element is exact-integer + one fixed float
// epilogue, so the result is byte-identical across tiers and thread counts.
void gemm_q8_nt(const std::uint8_t* qa, const float* ascale, const std::int8_t* wq,
                const float* wscale, const std::int32_t* wrowsum, float* c, std::size_t m_dim,
                std::size_t k_dim, std::size_t n_dim, util::ThreadPool* pool = nullptr);

// Quantized mirror of Linear ([out, in] weight + bias). Built from a trained
// Linear, or installed directly from a quantized checkpoint section (the
// latter preserves the exact payload — requantizing a dequantized matrix can
// drift by 1 ulp in the scales).
struct QuantLinear {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<std::int8_t> wq;       // [out, in]
    std::vector<float> scale;          // [out]
    std::vector<std::int32_t> rowsum;  // [out]
    std::vector<float> bias;           // [out]

    static QuantLinear from(const Linear& fp);
    // Replaces the payload with checkpoint data (sizes must match in*out /
    // out); recomputes rowsum.
    void install(std::vector<std::int8_t> wq_in, std::vector<float> scale_in);

    // y = bias + x W^T (overwrites y), quantizing x into qs first.
    void forward_rows(const float* x, float* y, std::size_t rows, QuantScratch& qs,
                      util::ThreadPool* pool = nullptr) const;
    // Accumulates x W^T into y without touching the bias (the fc1 path folds
    // its bias into the fused GELU epilogue).
    void apply_rows(const float* x, float* y, std::size_t rows, QuantScratch& qs,
                    util::ThreadPool* pool = nullptr) const;

    std::size_t weight_bytes() const {
        return wq.size() * sizeof(std::int8_t) + scale.size() * sizeof(float) +
               rowsum.size() * sizeof(std::int32_t) + bias.size() * sizeof(float);
    }
};

// Quantized mirror of Mlp: y = fc2(gelu(fc1(x))) with the fused bias+GELU
// epilogue between the two quantized matmuls.
struct QuantMlp {
    QuantLinear fc1;
    QuantLinear fc2;

    static QuantMlp from(const Mlp& fp);
    void forward_rows(const float* x, float* hidden, float* y, std::size_t rows, QuantScratch& qs,
                      util::ThreadPool* pool = nullptr) const;
    std::size_t weight_bytes() const { return fc1.weight_bytes() + fc2.weight_bytes(); }
};

// Quantized projections of a Transformer backbone. LayerNorms, positions and
// the residual stream stay fp32 (they are O(d) per token — quantizing them
// buys nothing and costs accuracy); only the O(d^2) matmul weights shrink.
struct TransformerQuant {
    struct Block {
        QuantLinear wq;
        QuantLinear wk;
        QuantLinear wv;
        QuantLinear wo;
        QuantMlp mlp;
    };

    QuantLinear input_proj;
    std::vector<Block> blocks;

    static TransformerQuant from(const Transformer& model);
    std::size_t weight_bytes() const;
};

}  // namespace cpt::nn
