#include "kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fp16.hpp"
#include "simd_detail.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn::kernels {

namespace {

using util::SimdTier;

util::ThreadPool& pick(util::ThreadPool* pool) {
    return pool ? *pool : util::global_pool();
}

}  // namespace

float dot(const float* a, const float* b, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) return detail::dot_avx2(a, b, n);
    // Ascending serial accumulation: the historical (pre-dispatch) order, so
    // the scalar and sse2 tiers keep bit-identical decoder output.
    float s = 0.0f;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::axpy_avx2(alpha, x, y, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void attn_scores(const float* q, const float* krows, float* scores, std::size_t n,
                 std::size_t dh, float scale) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::attn_scores_avx2(q, krows, scores, n, dh, scale);
        return;
    }
    // Per key: the scalar dot's ascending serial accumulation, then the scale
    // — the exact loop the decoder ran per key before this kernel existed.
    for (std::size_t p = 0; p < n; ++p) {
        const float* k = krows + p * dh;
        float s = 0.0f;
        for (std::size_t i = 0; i < dh; ++i) s += q[i] * k[i];
        scores[p] = s * scale;
    }
}

void attn_mix(const float* scores, const float* vrows, float* crow, std::size_t n,
              std::size_t dh) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::attn_mix_avx2(scores, vrows, crow, n, dh);
        return;
    }
    for (std::size_t p = 0; p < n; ++p) {
        const float* v = vrows + p * dh;
        for (std::size_t i = 0; i < dh; ++i) crow[i] += scores[p] * v[i];
    }
}

void attn_scores_f16(const float* q, const std::uint16_t* krows, float* scores, std::size_t n,
                     std::size_t dh, float scale) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::attn_scores_f16_avx2(q, krows, scores, n, dh, scale);
        return;
    }
    for (std::size_t p = 0; p < n; ++p) {
        const std::uint16_t* k = krows + p * dh;
        float s = 0.0f;
        for (std::size_t i = 0; i < dh; ++i) s += q[i] * fp16_decode_one(k[i]);
        scores[p] = s * scale;
    }
}

void attn_mix_f16(const float* scores, const std::uint16_t* vrows, float* crow, std::size_t n,
                  std::size_t dh) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::attn_mix_f16_avx2(scores, vrows, crow, n, dh);
        return;
    }
    for (std::size_t p = 0; p < n; ++p) {
        const std::uint16_t* v = vrows + p * dh;
        for (std::size_t i = 0; i < dh; ++i) crow[i] += scores[p] * fp16_decode_one(v[i]);
    }
}

void fp16_encode(const float* src, std::uint16_t* dst, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::fp16_encode_avx2(src, dst, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) dst[i] = fp16_encode_one(src[i]);
}

float dot_f16(const float* a, const std::uint16_t* b, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) return detail::dot_f16_avx2(a, b, n);
    // Ascending serial accumulation with an exact widen per element, mirroring
    // the fp32 dot's scalar/sse2 contract.
    float s = 0.0f;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * fp16_decode_one(b[i]);
    return s;
}

void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::axpy_f16_avx2(alpha, x, y, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * fp16_decode_one(x[i]);
}

void softmax_row(const float* in, float* out, std::size_t len, std::size_t valid) {
    float mx = -std::numeric_limits<float>::infinity();
    if (util::active_simd_tier() == SimdTier::kAvx2 && valid >= 8) {
        mx = detail::reduce_max_avx2(in, valid);  // max is association-exact
    } else {
        for (std::size_t j = 0; j < valid; ++j) mx = std::max(mx, in[j]);
    }
    // exp and the normalizer sum stay scalar on every tier: the sum is an
    // ascending serial reduction, so softmax output is identical across tiers
    // (pinned by the parity tests), not just across thread counts.
    float total = 0.0f;
    for (std::size_t j = 0; j < valid; ++j) {
        out[j] = std::exp(in[j] - mx);
        total += out[j];
    }
    const float inv = total > 0.0f ? 1.0f / total : 0.0f;
    if (util::active_simd_tier() == SimdTier::kAvx2 && valid >= 8) {
        detail::scale_avx2(out, valid, inv);
    } else {
        for (std::size_t j = 0; j < valid; ++j) out[j] *= inv;
    }
    for (std::size_t j = valid; j < len; ++j) out[j] = 0.0f;
}

void softmax_rows(const float* in, float* out, std::size_t rows, std::size_t d,
                  util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(8 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) softmax_row(in + r * d, out + r * d, d, d);
    });
}

void layer_norm_rows(const float* in, float* out, const float* gain, const float* bias,
                     std::size_t rows, std::size_t d, float eps, float* stats2,
                     util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(rows, util::grain_for(6 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float* row = in + r * d;
            float* orow = out + r * d;
            float* rstats = stats2 != nullptr ? stats2 + r * 2 : nullptr;
            if (avx2) {
                detail::layer_norm_row_avx2(row, orow, gain, bias, d, eps, rstats);
                continue;
            }
            float mean = 0.0f;
            for (std::size_t j = 0; j < d; ++j) mean += row[j];
            mean /= static_cast<float>(d);
            float var = 0.0f;
            for (std::size_t j = 0; j < d; ++j) var += (row[j] - mean) * (row[j] - mean);
            var /= static_cast<float>(d);
            const float inv = 1.0f / std::sqrt(var + eps);
            if (rstats != nullptr) {
                rstats[0] = mean;
                rstats[1] = inv;
            }
            for (std::size_t j = 0; j < d; ++j) orow[j] = (row[j] - mean) * inv * gain[j] + bias[j];
        }
    });
}

void fill_bias_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) std::copy_n(bias, d, y + r * d);
    });
}

void add_bias_rows(float* dst, const float* bias, std::size_t rows, std::size_t d,
                   util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(rows, util::grain_for(d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float* row = dst + r * d;
            if (avx2) {
                detail::add_bias_row_avx2(row, bias, d);
            } else {
                for (std::size_t j = 0; j < d; ++j) row[j] += bias[j];
            }
        }
    });
}

void gelu_rows(float* x, std::size_t n, util::ThreadPool* pool) {
    pick(pool).parallel_for(n, util::grain_for(24), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) x[i] = gelu_scalar(x[i]);
    });
}

void bias_gelu_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(26 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float* row = y + r * d;
            for (std::size_t j = 0; j < d; ++j) row[j] = gelu_scalar(row[j] + bias[j]);
        }
    });
}

// ---- Backward kernels (training path) ----------------------------------------

void softmax_backward_row_ref(const float* y, const float* g, float* dx, std::size_t valid) {
    float dot = 0.0f;
    for (std::size_t j = 0; j < valid; ++j) dot += g[j] * y[j];
    for (std::size_t j = 0; j < valid; ++j) dx[j] += y[j] * (g[j] - dot);
}

namespace {

inline void softmax_backward_row(const float* y, const float* g, float* dx, std::size_t valid,
                                 bool avx2) {
    if (avx2 && valid >= 8) {
        detail::softmax_backward_row_avx2(y, g, dx, valid);
    } else {
        softmax_backward_row_ref(y, g, dx, valid);
    }
}

}  // namespace

void softmax_backward_rows(const float* y, const float* g, float* dx, std::size_t rows,
                           std::size_t d, util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(rows, util::grain_for(4 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            softmax_backward_row(y + r * d, g + r * d, dx + r * d, d, avx2);
        }
    });
}

void softmax_backward_causal(const float* y, const float* g, float* dx, std::size_t mats,
                             std::size_t t, util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(mats, util::grain_for(2 * t * t), [&](std::size_t m0, std::size_t m1) {
        for (std::size_t m = m0; m < m1; ++m) {
            for (std::size_t r = 0; r < t; ++r) {
                const std::size_t off = (m * t + r) * t;
                softmax_backward_row(y + off, g + off, dx + off, r + 1, avx2);
            }
        }
    });
}

void softmax_xent_rows(const float* logits, float* probs, const int* targets, int ignore_index,
                       double* rowloss, std::size_t rows, std::size_t c,
                       util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(8 * c), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            softmax_row(logits + r * c, probs + r * c, c, c);
            const int tgt = targets[r];
            // float log, matching the historical serial loss loop bit-for-bit
            // once the caller sums rowloss in ascending row order.
            rowloss[r] =
                tgt == ignore_index
                    ? 0.0
                    : -static_cast<double>(
                          std::log(std::max(probs[r * c + static_cast<std::size_t>(tgt)], 1e-12f)));
        }
    });
}

void xent_backward_row_ref(const float* probs, int target, float* dx, float gscale,
                           std::size_t c) {
    for (std::size_t j = 0; j < c; ++j) {
        const float onehot = (static_cast<std::size_t>(target) == j) ? 1.0f : 0.0f;
        dx[j] += gscale * (probs[j] - onehot);
    }
}

void xent_backward_rows(const float* probs, const int* targets, int ignore_index, float* dx,
                        float gscale, std::size_t rows, std::size_t c, util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(rows, util::grain_for(3 * c), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const int tgt = targets[r];
            if (tgt == ignore_index) continue;
            if (avx2 && c >= 8) {
                detail::axpy_avx2(gscale, probs + r * c, dx + r * c, c);
                dx[r * c + static_cast<std::size_t>(tgt)] -= gscale;
            } else {
                xent_backward_row_ref(probs + r * c, tgt, dx + r * c, gscale, c);
            }
        }
    });
}

void layer_norm_backward_row_ref(const float* x, const float* gain, const float* g, float mean,
                                 float inv, float* dx, std::size_t d) {
    float sum_gy = 0.0f;
    float sum_gy_xhat = 0.0f;
    for (std::size_t j = 0; j < d; ++j) {
        const float gy = g[j] * gain[j];
        const float xhat = (x[j] - mean) * inv;
        sum_gy += gy;
        sum_gy_xhat += gy * xhat;
    }
    const float dn = static_cast<float>(d);
    for (std::size_t j = 0; j < d; ++j) {
        const float gy = g[j] * gain[j];
        const float xhat = (x[j] - mean) * inv;
        dx[j] += inv / dn * (dn * gy - sum_gy - xhat * sum_gy_xhat);
    }
}

void layer_norm_backward_rows(const float* x, const float* gain, const float* g,
                              const float* stats2, float* dx, float* dgain, float* dbias,
                              std::size_t rows, std::size_t d, util::ThreadPool* pool) {
    auto& tp = pick(pool);
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    if (dx != nullptr) {
        // dx rows are disjoint: shard over rows.
        tp.parallel_for(rows, util::grain_for(10 * d), [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r) {
                if (avx2) {
                    detail::layer_norm_backward_row_avx2(x + r * d, gain, g + r * d,
                                                         stats2[r * 2], stats2[r * 2 + 1],
                                                         dx + r * d, d);
                } else {
                    layer_norm_backward_row_ref(x + r * d, gain, g + r * d, stats2[r * 2],
                                                stats2[r * 2 + 1], dx + r * d, d);
                }
            }
        });
    }
    if (dgain == nullptr && dbias == nullptr) return;
    // dgain/dbias reduce across rows: shard over columns, each accumulated in
    // ascending row order directly into the destination — bit-identical for
    // every thread count, and equal to the single-threaded historical order.
    tp.parallel_for(d, util::grain_for(4 * rows), [&](std::size_t j0, std::size_t j1) {
        for (std::size_t r = 0; r < rows; ++r) {
            const float mean = stats2[r * 2];
            const float inv = stats2[r * 2 + 1];
            const float* xrow = x + r * d;
            const float* grow = g + r * d;
            if (dgain != nullptr) {
                for (std::size_t j = j0; j < j1; ++j) {
                    dgain[j] += grow[j] * ((xrow[j] - mean) * inv);
                }
            }
            if (dbias != nullptr) {
                for (std::size_t j = j0; j < j1; ++j) dbias[j] += grow[j];
            }
        }
    });
}

void col_sum_rows(const float* src, float* dst, std::size_t rows, std::size_t d,
                  util::ThreadPool* pool) {
    // Row-outer within each column block (cache-friendly), ascending r per
    // column: the same per-column accumulation order as the historical serial
    // double loop, independent of the thread count.
    pick(pool).parallel_for(d, util::grain_for(2 * rows), [&](std::size_t j0, std::size_t j1) {
        for (std::size_t r = 0; r < rows; ++r) {
            const float* row = src + r * d;
            for (std::size_t j = j0; j < j1; ++j) dst[j] += row[j];
        }
    });
}

void bias_gelu_backward_rows(const float* x, const float* bias, const float* g, float* dx,
                             float* scratch, std::size_t rows, std::size_t d,
                             util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(30 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float* xrow = x + r * d;
            const float* grow = g + r * d;
            float* srow = scratch + r * d;
            if (dx != nullptr) {
                float* dxrow = dx + r * d;
                for (std::size_t j = 0; j < d; ++j) {
                    const float t = grow[j] * gelu_grad_scalar(xrow[j] + bias[j]);
                    srow[j] = t;
                    dxrow[j] += t;
                }
            } else {
                for (std::size_t j = 0; j < d; ++j) {
                    srow[j] = grow[j] * gelu_grad_scalar(xrow[j] + bias[j]);
                }
            }
        }
    });
}

// ---- Optimizer kernels --------------------------------------------------------

double sqnorm(const float* x, std::size_t n, double carry) {
    if (util::active_simd_tier() == SimdTier::kAvx2) return carry + detail::sqnorm_avx2(x, n);
    double s = carry;
    for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
    return s;
}

void adam_update_ref(float* w, const float* g, float* m, float* v, std::size_t n, float lr,
                     float beta1, float beta2, float eps, float weight_decay, float bc1,
                     float bc2, float gscale) {
    for (std::size_t j = 0; j < n; ++j) {
        const float gj = g[j] * gscale;
        m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
        v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
        const float mhat = m[j] / bc1;
        const float vhat = v[j] / bc2;
        w[j] -= lr * (mhat / (std::sqrt(vhat) + eps) + weight_decay * w[j]);
    }
}

void adam_update(float* w, const float* g, float* m, float* v, std::size_t n, float lr,
                 float beta1, float beta2, float eps, float weight_decay, float bc1, float bc2,
                 float gscale) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::adam_update_avx2(w, g, m, v, n, lr, beta1, beta2, eps, weight_decay, bc1, bc2,
                                 gscale);
        return;
    }
    adam_update_ref(w, g, m, v, n, lr, beta1, beta2, eps, weight_decay, bc1, bc2, gscale);
}

}  // namespace cpt::nn::kernels
