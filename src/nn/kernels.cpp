#include "kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simd_detail.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn::kernels {

namespace {

using util::SimdTier;

util::ThreadPool& pick(util::ThreadPool* pool) {
    return pool ? *pool : util::global_pool();
}

}  // namespace

float dot(const float* a, const float* b, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) return detail::dot_avx2(a, b, n);
    // Ascending serial accumulation: the historical (pre-dispatch) order, so
    // the scalar and sse2 tiers keep bit-identical decoder output.
    float s = 0.0f;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
    if (util::active_simd_tier() == SimdTier::kAvx2) {
        detail::axpy_avx2(alpha, x, y, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void softmax_row(const float* in, float* out, std::size_t len, std::size_t valid) {
    float mx = -std::numeric_limits<float>::infinity();
    if (util::active_simd_tier() == SimdTier::kAvx2 && valid >= 8) {
        mx = detail::reduce_max_avx2(in, valid);  // max is association-exact
    } else {
        for (std::size_t j = 0; j < valid; ++j) mx = std::max(mx, in[j]);
    }
    // exp and the normalizer sum stay scalar on every tier: the sum is an
    // ascending serial reduction, so softmax output is identical across tiers
    // (pinned by the parity tests), not just across thread counts.
    float total = 0.0f;
    for (std::size_t j = 0; j < valid; ++j) {
        out[j] = std::exp(in[j] - mx);
        total += out[j];
    }
    const float inv = total > 0.0f ? 1.0f / total : 0.0f;
    if (util::active_simd_tier() == SimdTier::kAvx2 && valid >= 8) {
        detail::scale_avx2(out, valid, inv);
    } else {
        for (std::size_t j = 0; j < valid; ++j) out[j] *= inv;
    }
    for (std::size_t j = valid; j < len; ++j) out[j] = 0.0f;
}

void softmax_rows(const float* in, float* out, std::size_t rows, std::size_t d,
                  util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(8 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) softmax_row(in + r * d, out + r * d, d, d);
    });
}

void layer_norm_rows(const float* in, float* out, const float* gain, const float* bias,
                     std::size_t rows, std::size_t d, float eps, float* stats2,
                     util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(rows, util::grain_for(6 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            const float* row = in + r * d;
            float* orow = out + r * d;
            float* rstats = stats2 != nullptr ? stats2 + r * 2 : nullptr;
            if (avx2) {
                detail::layer_norm_row_avx2(row, orow, gain, bias, d, eps, rstats);
                continue;
            }
            float mean = 0.0f;
            for (std::size_t j = 0; j < d; ++j) mean += row[j];
            mean /= static_cast<float>(d);
            float var = 0.0f;
            for (std::size_t j = 0; j < d; ++j) var += (row[j] - mean) * (row[j] - mean);
            var /= static_cast<float>(d);
            const float inv = 1.0f / std::sqrt(var + eps);
            if (rstats != nullptr) {
                rstats[0] = mean;
                rstats[1] = inv;
            }
            for (std::size_t j = 0; j < d; ++j) orow[j] = (row[j] - mean) * inv * gain[j] + bias[j];
        }
    });
}

void fill_bias_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) std::copy_n(bias, d, y + r * d);
    });
}

void add_bias_rows(float* dst, const float* bias, std::size_t rows, std::size_t d,
                   util::ThreadPool* pool) {
    const bool avx2 = util::active_simd_tier() == SimdTier::kAvx2;
    pick(pool).parallel_for(rows, util::grain_for(d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float* row = dst + r * d;
            if (avx2) {
                detail::add_bias_row_avx2(row, bias, d);
            } else {
                for (std::size_t j = 0; j < d; ++j) row[j] += bias[j];
            }
        }
    });
}

void gelu_rows(float* x, std::size_t n, util::ThreadPool* pool) {
    pick(pool).parallel_for(n, util::grain_for(24), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) x[i] = gelu_scalar(x[i]);
    });
}

void bias_gelu_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool) {
    pick(pool).parallel_for(rows, util::grain_for(26 * d), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            float* row = y + r * d;
            for (std::size_t j = 0; j < d; ++j) row[j] = gelu_scalar(row[j] + bias[j]);
        }
    });
}

}  // namespace cpt::nn::kernels
