#include "optim.hpp"

#include <cmath>

#include "kernels.hpp"
#include "util/check.hpp"

namespace cpt::nn {

namespace {

// Joint squared L2 norm across all parameter gradients: one running double
// accumulation chained across tensors in parameter order (carry), identical
// to the historical single serial loop.
double grad_sqnorm(std::span<const Var> params) {
    double sq = 0.0;
    for (const auto& p : params) {
        CPT_CHECK(p != nullptr, "clip_grad_norm: null parameter");
        if (p->grad.numel() == 0) continue;
        sq = kernels::sqnorm(p->grad.data().data(), p->grad.numel(), sq);
    }
    return sq;
}

}  // namespace

double clip_grad_norm(std::span<const Var> params, double max_norm) {
    CPT_CHECK_GT(max_norm, 0.0, " clip_grad_norm: max_norm must be > 0");
    const double norm = std::sqrt(grad_sqnorm(params));
    if (norm > max_norm && norm > 0.0) {
        const auto factor = static_cast<float>(max_norm / norm);
        for (const auto& p : params) {
            if (p->grad.numel() > 0) p->grad.scale_(factor);
        }
    }
    return norm;
}

void Optimizer::zero_grad() { nn::zero_grad(params_); }

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (p->grad.numel() == 0) continue;
        auto w = p->value.data();
        auto g = p->grad.data();
        auto v = velocity_[i].data();
        for (std::size_t j = 0; j < w.size(); ++j) {
            v[j] = momentum_ * v[j] + g[j];
            w[j] -= lr_ * v[j];
        }
        CPT_DCHECK_FINITE(w, "Sgd::step: updated parameter");
    }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void Adam::step() { apply(1.0f); }

double Adam::step_clipped(double max_norm) {
    CPT_CHECK_GT(max_norm, 0.0, " Adam::step_clipped: max_norm must be > 0");
    const double norm = std::sqrt(grad_sqnorm(params_));
    const float gscale =
        (norm > max_norm && norm > 0.0) ? static_cast<float>(max_norm / norm) : 1.0f;
    apply(gscale);
    return norm;
}

void Adam::apply(float gscale) {
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (p->grad.numel() == 0) continue;
        auto w = p->value.data();
        kernels::adam_update(w.data(), p->grad.data().data(), m_[i].data().data(),
                             v_[i].data().data(), w.size(), lr_, beta1_, beta2_, eps_,
                             weight_decay_, bc1, bc2, gscale);
        CPT_DCHECK_FINITE(w, "Adam::step: updated parameter");
    }
}

}  // namespace cpt::nn
