#include "optim.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cpt::nn {

double clip_grad_norm(std::span<const Var> params, double max_norm) {
    CPT_CHECK_GT(max_norm, 0.0, " clip_grad_norm: max_norm must be > 0");
    double sq = 0.0;
    for (const auto& p : params) {
        CPT_CHECK(p != nullptr, "clip_grad_norm: null parameter");
        if (p->grad.numel() == 0) continue;
        for (float g : p->grad.data()) sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0.0) {
        const auto factor = static_cast<float>(max_norm / norm);
        for (const auto& p : params) {
            if (p->grad.numel() > 0) p->grad.scale_(factor);
        }
    }
    return norm;
}

void Optimizer::zero_grad() { nn::zero_grad(params_); }

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (p->grad.numel() == 0) continue;
        auto w = p->value.data();
        auto g = p->grad.data();
        auto v = velocity_[i].data();
        for (std::size_t j = 0; j < w.size(); ++j) {
            v[j] = momentum_ * v[j] + g[j];
            w[j] -= lr_ * v[j];
        }
        CPT_DCHECK_FINITE(w, "Sgd::step: updated parameter");
    }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void Adam::step() {
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (p->grad.numel() == 0) continue;
        auto w = p->value.data();
        auto g = p->grad.data();
        auto m = m_[i].data();
        auto v = v_[i].data();
        for (std::size_t j = 0; j < w.size(); ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
            const float mhat = m[j] / bc1;
            const float vhat = v[j] / bc2;
            w[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[j]);
        }
        CPT_DCHECK_FINITE(w, "Adam::step: updated parameter");
    }
}

}  // namespace cpt::nn
