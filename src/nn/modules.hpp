// Neural-network modules built on the autograd ops: Linear, LayerNorm, MLP,
// causal multi-head self-attention, pre-LN transformer blocks (the CPT-GPT
// backbone), and an LSTM stack (the NetShare-baseline backbone).
//
// Modules own their parameters as Vars; calling forward() builds a fresh
// autograd graph referencing those parameter nodes, so gradients land on the
// module parameters after backward().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autograd.hpp"

namespace cpt::util {
class ThreadPool;
}  // namespace cpt::util

namespace cpt::nn {

struct NamedParam {
    std::string name;
    Var param;
};

class Module {
public:
    virtual ~Module() = default;

    // Appends (prefix + local name, param) pairs for every trainable tensor.
    virtual void collect(const std::string& prefix, std::vector<NamedParam>& out) const = 0;

    std::vector<NamedParam> named_parameters(const std::string& prefix = "") const;
    std::vector<Var> parameters() const;
    std::size_t num_parameters() const;
};

// Fully connected layer: y = x W^T + b, x: [..., in] -> [..., out].
class Linear : public Module {
public:
    Linear(std::size_t in, std::size_t out, util::Rng& rng, float init_std = 0.02f);

    Var forward(const Var& x) const;
    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    // Inference fast path (no autograd graph): y = x W^T + b over row-major
    // x [rows, in], y [rows, out]. Overwrites y; same per-element arithmetic
    // as forward() (bias + ascending-k dot), so decoder-vs-forward
    // equivalence is preserved.
    void forward_rows(const float* x, float* y, std::size_t rows,
                      util::ThreadPool* pool = nullptr) const;

    std::size_t in_features() const { return in_; }
    std::size_t out_features() const { return out_; }
    const Var& weight() const { return weight_; }
    const Var& bias() const { return bias_; }

private:
    std::size_t in_;
    std::size_t out_;
    Var weight_;  // [out, in]
    Var bias_;    // [out]
};

class LayerNorm : public Module {
public:
    explicit LayerNorm(std::size_t dim);

    Var forward(const Var& x) const;
    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    const Var& gain() const { return gain_; }
    const Var& bias() const { return bias_; }

private:
    Var gain_;
    Var bias_;
};

// Two-layer perceptron with GELU: in -> hidden -> out.
class Mlp : public Module {
public:
    Mlp(std::size_t in, std::size_t hidden, std::size_t out, util::Rng& rng);

    Var forward(const Var& x) const;
    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    // Inference fast path: y = fc2(gelu(fc1(x))) over row-major x [rows, in],
    // y [rows, out], using `hidden` [rows, fc1.out_features()] as scratch
    // (overwritten). The fc1 epilogue is the fused bias+GELU kernel.
    void forward_rows(const float* x, float* hidden, float* y, std::size_t rows,
                      util::ThreadPool* pool = nullptr) const;

    const Linear& fc1() const { return fc1_; }
    const Linear& fc2() const { return fc2_; }

private:
    Linear fc1_;
    Linear fc2_;
};

// Causal multi-head self-attention over [B, T, D].
class MultiHeadSelfAttention : public Module {
public:
    MultiHeadSelfAttention(std::size_t d_model, std::size_t heads, util::Rng& rng);

    Var forward(const Var& x) const;
    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    std::size_t heads() const { return heads_; }
    const Linear& wq() const { return wq_; }
    const Linear& wk() const { return wk_; }
    const Linear& wv() const { return wv_; }
    const Linear& wo() const { return wo_; }

private:
    std::size_t heads_;
    std::size_t d_model_;
    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;
};

// Pre-LN transformer block: x += attn(ln1(x)); x += mlp(ln2(x)).
class TransformerBlock : public Module {
public:
    TransformerBlock(std::size_t d_model, std::size_t heads, std::size_t mlp_hidden,
                     util::Rng& rng);

    Var forward(const Var& x) const;
    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    const LayerNorm& ln1() const { return ln1_; }
    const MultiHeadSelfAttention& attn() const { return attn_; }
    const LayerNorm& ln2() const { return ln2_; }
    const Mlp& mlp() const { return mlp_; }

private:
    LayerNorm ln1_;
    MultiHeadSelfAttention attn_;
    LayerNorm ln2_;
    Mlp mlp_;
};

// Decoder-only transformer backbone: token linear + learned positions +
// N blocks + final LayerNorm. Input: [B, T, d_token]; output: [B, T, d_model].
struct TransformerConfig {
    std::size_t d_token = 9;
    std::size_t d_model = 64;
    std::size_t heads = 4;
    std::size_t mlp_hidden = 256;
    std::size_t blocks = 2;
    std::size_t max_seq_len = 512;
};

class Transformer : public Module {
public:
    Transformer(const TransformerConfig& config, util::Rng& rng);

    Var forward(const Var& tokens) const;
    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    const TransformerConfig& config() const { return config_; }
    const Linear& input_proj() const { return input_proj_; }
    const Var& positions() const { return positions_; }
    const std::vector<std::unique_ptr<TransformerBlock>>& blocks() const { return blocks_; }
    const LayerNorm& final_ln() const { return final_ln_; }

private:
    TransformerConfig config_;
    Linear input_proj_;
    Var positions_;  // [max_seq_len, d_model]
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    LayerNorm final_ln_;
};

// Single LSTM cell; state is (h, c), each [B, H].
class LstmCell : public Module {
public:
    LstmCell(std::size_t in, std::size_t hidden, util::Rng& rng);

    struct State {
        Var h;
        Var c;
    };
    // Zero state for batch size B (non-trainable leaves).
    State zero_state(std::size_t batch) const;
    State step(const Var& x, const State& state) const;

    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

    std::size_t hidden_size() const { return hidden_; }

private:
    std::size_t in_;
    std::size_t hidden_;
    Linear gates_;  // [in + hidden] -> [4 * hidden], gate order i, f, g, o
};

// Stack of LSTM layers stepped jointly.
class LstmStack : public Module {
public:
    LstmStack(std::size_t in, std::size_t hidden, std::size_t layers, util::Rng& rng);

    using State = std::vector<LstmCell::State>;
    State zero_state(std::size_t batch) const;
    // Returns the top layer's h along with the updated stack state.
    std::pair<Var, State> step(const Var& x, const State& state) const;

    void collect(const std::string& prefix, std::vector<NamedParam>& out) const override;

private:
    std::vector<std::unique_ptr<LstmCell>> cells_;
};

}  // namespace cpt::nn
