#include "graph_lint.hpp"

#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace cpt::nn {

std::string_view to_string(GraphLintKind kind) {
    switch (kind) {
        case GraphLintKind::kUnreachableParam: return "unreachable-param";
        case GraphLintKind::kUnconsumedGradient: return "unconsumed-gradient";
        case GraphLintKind::kStaleInteriorGradient: return "stale-interior-gradient";
        case GraphLintKind::kGradShapeMismatch: return "grad-shape-mismatch";
    }
    return "?";
}

std::size_t GraphLintReport::count(GraphLintKind kind) const {
    std::size_t n = 0;
    for (const auto& f : findings) {
        if (f.kind == kind) ++n;
    }
    return n;
}

std::string GraphLintReport::summary() const {
    if (findings.empty()) return {};
    std::ostringstream out;
    out << "graph lint: " << findings.size() << " finding(s) over " << nodes_visited
        << " node(s), " << params_reachable << " reachable param(s)";
    for (const auto& f : findings) {
        out << "\n  [" << to_string(f.kind) << "] " << f.detail;
    }
    return out.str();
}

namespace {

// Iterative DFS over all parent edges. `grad_path` restricts the walk to the
// requires_grad edges backward() actually follows. `order` records nodes in
// discovery order: the hash set is membership-only, so finding order — and
// therefore report ordering — is a pure function of the graph, never of
// pointer hashing (the `determinism` rule tools/cpt_sa enforces on src/nn).
void collect(Node* root, bool grad_path, std::unordered_set<Node*>& visited,
             std::vector<Node*>* order) {
    std::vector<Node*> stack{root};
    visited.insert(root);
    if (order) order->push_back(root);
    while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        for (const auto& p : n->parents) {
            if (!p) continue;
            if (grad_path && !p->requires_grad) continue;
            if (visited.insert(p.get()).second) {
                if (order) order->push_back(p.get());
                stack.push_back(p.get());
            }
        }
    }
}

}  // namespace

GraphLintReport lint_graph(const Var& root, std::span<const Var> params) {
    CPT_CHECK(root != nullptr, "lint_graph: null root");
    GraphLintReport report;

    std::unordered_set<Node*> seen;
    std::vector<Node*> all;
    collect(root.get(), /*grad_path=*/false, seen, &all);
    report.nodes_visited = all.size();

    // Mirror backward()'s pruned traversal: only these nodes ever see a
    // gradient. Leaves outside this set are what kUnreachableParam reports.
    std::unordered_set<Node*> grad_reach;
    if (root->requires_grad || !root->parents.empty()) {
        collect(root.get(), /*grad_path=*/true, grad_reach, nullptr);
    }

    for (Node* n : all) {
        const bool interior = !n->parents.empty();
        if (interior && n->requires_grad && !n->backward_fn) {
            report.findings.push_back(
                {GraphLintKind::kUnconsumedGradient,
                 "interior node " + shape_to_string(n->value.shape()) +
                     " requires a gradient but has no backward closure; gradient flow "
                     "dead-ends here"});
        }
        if (n->grad.numel() != 0 && n->grad.numel() != n->value.numel()) {
            report.findings.push_back(
                {GraphLintKind::kGradShapeMismatch,
                 "node value " + shape_to_string(n->value.shape()) + " has gradient storage " +
                     shape_to_string(n->grad.shape())});
        }
        if (interior && n->requires_grad && n->grad.numel() == n->value.numel() &&
            n->grad.numel() != 0) {
            report.findings.push_back(
                {GraphLintKind::kStaleInteriorGradient,
                 "interior node " + shape_to_string(n->value.shape()) +
                     " carries gradient storage from a previous backward(); re-running this "
                     "graph accumulates into it twice"});
        }
    }

    for (std::size_t i = 0; i < params.size(); ++i) {
        const Var& p = params[i];
        if (!p) continue;
        if (grad_reach.contains(p.get())) {
            ++report.params_reachable;
        } else {
            report.findings.push_back(
                {GraphLintKind::kUnreachableParam,
                 "param #" + std::to_string(i) + " " + shape_to_string(p->value.shape()) +
                     " is not reachable from the loss; the optimizer will never update it"});
        }
    }
    return report;
}

}  // namespace cpt::nn
