#include "modules.hpp"

#include <algorithm>
#include <cmath>

#include "gemm.hpp"
#include "kernels.hpp"
#include "util/check.hpp"

namespace cpt::nn {

std::vector<NamedParam> Module::named_parameters(const std::string& prefix) const {
    std::vector<NamedParam> out;
    collect(prefix, out);
    return out;
}

std::vector<Var> Module::parameters() const {
    std::vector<Var> out;
    for (auto& [name, p] : named_parameters()) out.push_back(p);
    return out;
}

std::size_t Module::num_parameters() const {
    std::size_t n = 0;
    for (const auto& p : parameters()) n += p->value.numel();
    return n;
}

// ---- Linear -------------------------------------------------------------------

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng, float init_std)
    : in_(in),
      out_(out),
      weight_(make_param(Tensor::randn(rng, {out, in}, init_std))),
      bias_(make_param(Tensor::zeros({out}))) {}

Var Linear::forward(const Var& x) const {
    const auto& xs = x->value.shape();
    CPT_CHECK(!xs.empty() && xs.back() == in_, "Linear::forward: expected last dim ", in_,
              ", got ", shape_to_string(xs));
    // matmul_nt consumes the [out, in] weight directly (one NT GEMM over the
    // flattened rows), so the training path no longer materializes the
    // transposed weight or the reshape nodes on either pass.
    return add_bias(matmul_nt(x, weight_), bias_);
}

void Linear::forward_rows(const float* x, float* y, std::size_t rows,
                          util::ThreadPool* pool) const {
    // Rows are pre-filled with the bias, then the NT kernel accumulates
    // x W^T; per-row arithmetic is independent of the batch/thread split.
    kernels::fill_bias_rows(y, bias_->value.data().data(), rows, out_, pool);
    gemm_nt(x, weight_->value.data().data(), y, rows, in_, out_, pool);
}

void Linear::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    out.push_back({prefix + "weight", weight_});
    out.push_back({prefix + "bias", bias_});
}

// ---- LayerNorm ------------------------------------------------------------------

LayerNorm::LayerNorm(std::size_t dim)
    : gain_(make_param(Tensor::full({dim}, 1.0f))), bias_(make_param(Tensor::zeros({dim}))) {}

Var LayerNorm::forward(const Var& x) const { return layer_norm(x, gain_, bias_); }

void LayerNorm::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    out.push_back({prefix + "gain", gain_});
    out.push_back({prefix + "bias", bias_});
}

// ---- MLP ------------------------------------------------------------------------

Mlp::Mlp(std::size_t in, std::size_t hidden, std::size_t out, util::Rng& rng)
    : fc1_(in, hidden, rng), fc2_(hidden, out, rng) {}

Var Mlp::forward(const Var& x) const {
    // Fused bias+GELU epilogue on fc1, mirroring forward_rows: same
    // per-element math as matmul -> add_bias -> gelu with two fewer
    // activation tensors on the tape.
    return fc2_.forward(bias_gelu(matmul_nt(x, fc1_.weight()), fc1_.bias()));
}

void Mlp::forward_rows(const float* x, float* hidden, float* y, std::size_t rows,
                       util::ThreadPool* pool) const {
    const std::size_t h = fc1_.out_features();
    // fc1 accumulates into zeroed scratch and the bias is folded into the
    // GELU epilogue: gelu(dot + bias), the same per-element value and order
    // forward() computes via matmul -> add_bias -> gelu.
    std::fill_n(hidden, rows * h, 0.0f);
    gemm_nt(x, fc1_.weight()->value.data().data(), hidden, rows, fc1_.in_features(), h, pool);
    kernels::bias_gelu_rows(hidden, fc1_.bias()->value.data().data(), rows, h, pool);
    fc2_.forward_rows(hidden, y, rows, pool);
}

void Mlp::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    fc1_.collect(prefix + "fc1.", out);
    fc2_.collect(prefix + "fc2.", out);
}

// ---- Attention --------------------------------------------------------------------

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t d_model, std::size_t heads,
                                               util::Rng& rng)
    : heads_(heads),
      d_model_(d_model),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
    CPT_CHECK(heads > 0 && d_model % heads == 0,
              "MultiHeadSelfAttention: d_model ", d_model, " must divide by heads ", heads);
}

Var MultiHeadSelfAttention::forward(const Var& x) const {
    const auto& xs = x->value.shape();
    CPT_CHECK(xs.size() == 3 && xs[2] == d_model_,
              "MultiHeadSelfAttention::forward: bad input ", shape_to_string(xs));
    const std::size_t dh = d_model_ / heads_;
    Var q = split_heads(wq_.forward(x), heads_);
    Var k = split_heads(wk_.forward(x), heads_);
    Var v = split_heads(wv_.forward(x), heads_);
    Var scores = scale(matmul(q, transpose_last2(k)), 1.0f / std::sqrt(static_cast<float>(dh)));
    Var attn = softmax_causal(scores);
    Var ctx = merge_heads(matmul(attn, v));
    return wo_.forward(ctx);
}

void MultiHeadSelfAttention::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    wq_.collect(prefix + "wq.", out);
    wk_.collect(prefix + "wk.", out);
    wv_.collect(prefix + "wv.", out);
    wo_.collect(prefix + "wo.", out);
}

// ---- Transformer block ---------------------------------------------------------------

TransformerBlock::TransformerBlock(std::size_t d_model, std::size_t heads, std::size_t mlp_hidden,
                                   util::Rng& rng)
    : ln1_(d_model), attn_(d_model, heads, rng), ln2_(d_model), mlp_(d_model, mlp_hidden, d_model, rng) {}

Var TransformerBlock::forward(const Var& x) const {
    Var h = add(x, attn_.forward(ln1_.forward(x)));
    return add(h, mlp_.forward(ln2_.forward(h)));
}

void TransformerBlock::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    ln1_.collect(prefix + "ln1.", out);
    attn_.collect(prefix + "attn.", out);
    ln2_.collect(prefix + "ln2.", out);
    mlp_.collect(prefix + "mlp.", out);
}

// ---- Transformer backbone --------------------------------------------------------------

Transformer::Transformer(const TransformerConfig& config, util::Rng& rng)
    : config_(config),
      input_proj_(config.d_token, config.d_model, rng),
      positions_(make_param(Tensor::randn(rng, {config.max_seq_len, config.d_model}, 0.02f))),
      final_ln_(config.d_model) {
    for (std::size_t i = 0; i < config.blocks; ++i) {
        blocks_.push_back(
            std::make_unique<TransformerBlock>(config.d_model, config.heads, config.mlp_hidden, rng));
    }
}

Var Transformer::forward(const Var& tokens) const {
    const auto& ts = tokens->value.shape();
    CPT_CHECK(ts.size() == 3 && ts[2] == config_.d_token,
              "Transformer::forward: expected [B, T, d_token], got ", shape_to_string(ts));
    CPT_CHECK_LE(ts[1], config_.max_seq_len, " Transformer::forward: sequence too long");
    Var x = add_position(input_proj_.forward(tokens), positions_);
    for (const auto& block : blocks_) x = block->forward(x);
    return final_ln_.forward(x);
}

void Transformer::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    input_proj_.collect(prefix + "input_proj.", out);
    out.push_back({prefix + "positions", positions_});
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        blocks_[i]->collect(prefix + "block" + std::to_string(i) + ".", out);
    }
    final_ln_.collect(prefix + "final_ln.", out);
}

// ---- LSTM ------------------------------------------------------------------------------

LstmCell::LstmCell(std::size_t in, std::size_t hidden, util::Rng& rng)
    : in_(in),
      hidden_(hidden),
      gates_(in + hidden, 4 * hidden, rng,
             1.0f / std::sqrt(static_cast<float>(in + hidden))) {}

LstmCell::State LstmCell::zero_state(std::size_t batch) const {
    return {make_var(Tensor::zeros({batch, hidden_})), make_var(Tensor::zeros({batch, hidden_}))};
}

LstmCell::State LstmCell::step(const Var& x, const State& state) const {
    const auto& xs = x->value.shape();
    CPT_CHECK(xs.size() == 2 && xs[1] == in_, "LstmCell::step: bad input shape ",
              shape_to_string(xs));
    Var xh = concat_lastdim({x, state.h});
    Var g = gates_.forward(xh);  // [B, 4H]
    Var i = sigmoid(slice_lastdim(g, 0, hidden_));
    Var f = sigmoid(slice_lastdim(g, hidden_, hidden_));
    Var cand = tanh_op(slice_lastdim(g, 2 * hidden_, hidden_));
    Var o = sigmoid(slice_lastdim(g, 3 * hidden_, hidden_));
    Var c = add(mul(f, state.c), mul(i, cand));
    Var h = mul(o, tanh_op(c));
    return {h, c};
}

void LstmCell::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    gates_.collect(prefix + "gates.", out);
}

LstmStack::LstmStack(std::size_t in, std::size_t hidden, std::size_t layers, util::Rng& rng) {
    CPT_CHECK_GT(layers, std::size_t{0}, " LstmStack: needs at least one layer");
    for (std::size_t i = 0; i < layers; ++i) {
        cells_.push_back(std::make_unique<LstmCell>(i == 0 ? in : hidden, hidden, rng));
    }
}

LstmStack::State LstmStack::zero_state(std::size_t batch) const {
    State s;
    for (const auto& cell : cells_) s.push_back(cell->zero_state(batch));
    return s;
}

std::pair<Var, LstmStack::State> LstmStack::step(const Var& x, const State& state) const {
    CPT_CHECK_EQ(state.size(), cells_.size(), " LstmStack::step: state vs layer count");
    State next;
    Var input = x;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        auto s = cells_[i]->step(input, state[i]);
        input = s.h;
        next.push_back(std::move(s));
    }
    return {input, std::move(next)};
}

void LstmStack::collect(const std::string& prefix, std::vector<NamedParam>& out) const {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        cells_[i]->collect(prefix + "layer" + std::to_string(i) + ".", out);
    }
}

}  // namespace cpt::nn
