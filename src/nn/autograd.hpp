// Tape-based reverse-mode automatic differentiation over Tensor.
//
// Usage: wrap leaf tensors in Vars (make_var / make_param), compose them with
// the differentiable ops below, call backward() on a scalar result, then read
// gradients from the leaves. Each op allocates a graph Node whose backward
// closure scatters the output gradient into its parents; the graph is freed
// when the root Var goes out of scope (parameter nodes are kept alive by the
// modules that own them).
//
// Gradients accumulate across backward() calls until zero_grad(), which is
// what lets parameters participate in many graphs (e.g. gradient
// accumulation, GAN generator/discriminator alternation).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "tensor.hpp"

namespace cpt::nn {

struct Node;
using Var = std::shared_ptr<Node>;

// ---- Tape arena ---------------------------------------------------------------
// Recycles tensor storage across training steps. The tape built by one
// forward/backward pass allocates the same sequence of activation and
// gradient buffers every step (the shapes are a pure function of the batch
// and window sizes), so a trainer can size the tape once on the first step
// and then reuse the freed buffers instead of hitting the allocator — the
// training-path analogue of the decoder's zero-alloc DecodeScratch arena.
//
// Usage (see core/trainer.cpp): create one TapeArena per training loop, open
// an ArenaScope for each step's tape, release the step's graph (let the loss
// Var go out of scope), then call reset() to reclaim the step's buffers.
// Buffers still referenced after reset() — parameter gradients, cached loss
// values — simply stay checked out and are reconsidered at the next reset.
//
// Recycled buffers are re-zeroed on reuse, so arena-backed results are
// bit-identical to fresh Tensor allocations (pinned by
// tests/train_determinism_test.cpp). The arena is not thread-safe; the
// active-arena pointer an ArenaScope installs is thread-local, which is what
// lets hub_trainer workers each run their own scoped arena concurrently.
class TapeArena {
public:
    TapeArena() = default;
    TapeArena(const TapeArena&) = delete;
    TapeArena& operator=(const TapeArena&) = delete;

    // Zero-filled tensor of `shape` (same contract as Tensor(shape)), backed
    // by a recycled buffer of the exact byte size when one is free.
    Tensor alloc(Shape shape);
    // Arena-backed deep copy of `src`.
    Tensor clone(const Tensor& src);

    // Reclaims every lent buffer whose only remaining reference is the
    // arena's (the graph released it); still-referenced buffers stay lent.
    void reset();

    struct Stats {
        std::size_t fresh = 0;       // allocations that hit the heap
        std::size_t reused = 0;      // allocations served from the free lists
        std::size_t held_bytes = 0;  // total bytes ever allocated through the arena
        std::size_t lent = 0;        // buffers currently checked out
    };
    Stats stats() const;

private:
    TensorStorage take(std::size_t numel);

    // Free buffers keyed by exact element count, LIFO per size class.
    std::unordered_map<std::size_t, std::vector<TensorStorage>> free_;
    // Every storage currently checked out (graph tensors, param grads, ...).
    std::vector<TensorStorage> lent_;
    Stats stats_;
};

// RAII: routes the tensor allocations of every autograd op on this thread
// through `arena` for the scope's lifetime. Scopes do not nest. Ops called
// outside any scope allocate normally, so inference and non-training code
// paths are unaffected.
class ArenaScope {
public:
    explicit ArenaScope(TapeArena& arena);
    ~ArenaScope();
    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;
};

struct Node {
    Tensor value;
    Tensor grad;  // allocated lazily by ensure_grad()
    bool requires_grad = false;
    std::vector<Var> parents;
    // Scatters this node's grad into parents' grads. Null for leaves.
    std::function<void()> backward_fn;

    // Allocates (zero) grad storage if absent; returns it.
    Tensor& ensure_grad();
};

// Leaf that does not require a gradient (e.g. input batch).
Var make_var(Tensor value);
// Trainable leaf.
Var make_param(Tensor value);

// Runs reverse-mode AD from `root`, which must be scalar (numel == 1).
// Seeds d(root)/d(root) = 1 and accumulates into every reachable
// requires_grad leaf.
void backward(const Var& root);

// Clears gradients on the given parameters.
void zero_grad(std::span<const Var> params);

// ---- Differentiable operations ----------------------------------------------
// Shape contracts are asserted; violations throw std::invalid_argument.

Var add(const Var& a, const Var& b);            // same shape
Var sub(const Var& a, const Var& b);            // same shape
Var mul(const Var& a, const Var& b);            // elementwise, same shape
Var scale(const Var& a, float s);               // a * s
Var add_scalar(const Var& a, float s);          // a + s
Var neg(const Var& a);

// x: [..., D], bias: [D] -> x + bias broadcast over leading dims.
Var add_bias(const Var& x, const Var& bias);

// Batched matrix multiply: [.., M, K] x [.., K, N] -> [.., M, N]; leading
// batch dims must match exactly (or both operands are rank 2).
Var matmul(const Var& a, const Var& b);

// y = x · bᵀ with b stored [N, K] and shared across all leading dims of
// x [..., K] -> [..., N]. Equivalent to matmul(x, transpose_last2(b)) without
// materializing the transposed weight on either the forward or the backward
// path: forward runs the NT kernel and backward the NN/TN kernels directly
// (dX = dY·B, dB = dYᵀ·X), so training linear layers hits the same
// tier-dispatched GEMMs as inference.
Var matmul_nt(const Var& x, const Var& b);

// Swap the last two dims (copying).
Var transpose_last2(const Var& a);

// O(1) metadata reshape; numel must match.
Var reshape(const Var& a, Shape shape);

// Softmax over the last dimension.
Var softmax_lastdim(const Var& a);
// Softmax over the last dim of [..., T, T] scores with a causal mask: entries
// with column > row are excluded (treated as -inf).
Var softmax_causal(const Var& scores);

// Layer normalization over the last dimension with learnable gain/bias [D].
Var layer_norm(const Var& x, const Var& gain, const Var& bias, float eps = 1e-5f);

Var gelu(const Var& a);      // tanh approximation
// Fused gelu(x + bias) over the last dimension (bias: [D]); one node and no
// intermediate pre-activation tensor, with the same per-element math as
// gelu(add_bias(x, bias)). The backward recomputes x + bias instead of
// storing it.
Var bias_gelu(const Var& x, const Var& bias);
Var relu(const Var& a);
Var sigmoid(const Var& a);
Var tanh_op(const Var& a);
Var exp_op(const Var& a);
// log(a) with inputs clamped to >= eps for numerical safety.
Var log_op(const Var& a, float eps = 1e-12f);

// Slice of the last dimension: x[..., start : start+len].
Var slice_lastdim(const Var& x, std::size_t start, std::size_t len);
// Concatenate along the last dimension; all leading dims must match.
Var concat_lastdim(const std::vector<Var>& xs);

// x: [B, T, D], pos: [Tmax, D] with T <= Tmax -> x + pos[0:T] broadcast over B.
Var add_position(const Var& x, const Var& pos);

// [B, T, D] -> [B, H, T, D/H] (D divisible by H), and its inverse.
Var split_heads(const Var& x, std::size_t heads);
Var merge_heads(const Var& x);

Var sum_all(const Var& a);   // -> [1]
Var mean_all(const Var& a);  // -> [1]

// ---- Losses (produce scalar [1]) --------------------------------------------

// Softmax cross-entropy from logits [N, C] against integer targets (size N).
// Targets equal to kIgnoreIndex contribute nothing; the loss is the mean over
// non-ignored rows (0 if all ignored).
inline constexpr int kIgnoreIndex = -1;
Var cross_entropy(const Var& logits, const std::vector<int>& targets);

// Gaussian negative log-likelihood of `target` under N(mu, exp(logvar)):
// mean over rows with mask != 0 of 0.5 * (logvar + (target - mu)^2 / exp(logvar)).
// mu/logvar: any shape with numel N; target/mask: length N.
Var gaussian_nll(const Var& mu, const Var& logvar, const Tensor& target,
                 const std::vector<float>& mask);

// Masked mean squared error (used by the "no distribution prediction"
// ablation head).
Var mse_masked(const Var& pred, const Tensor& target, const std::vector<float>& mask);

// Binary cross-entropy from a single logit per row, targets in {0,1}, mean
// over rows. Used by the GAN discriminator.
Var bce_with_logits(const Var& logits, const std::vector<float>& targets);

}  // namespace cpt::nn
