// Dense float32 tensor with row-major contiguous storage. This is the value
// type underneath the autograd graph (autograd.hpp). Storage is shared via
// shared_ptr so reshapes are O(1) views; all mutating access goes through
// data(), so aliasing is explicit at call sites.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cpt::nn {

using Shape = std::vector<std::size_t>;
// The underlying storage block of a Tensor. Exposed so the autograd
// TapeArena (autograd.hpp) can pool and re-issue buffers across training
// steps without copying.
using TensorStorage = std::shared_ptr<std::vector<float>>;

std::string shape_to_string(const Shape& s);
std::size_t shape_numel(const Shape& s);

class Tensor {
public:
    // Empty (rank-0, zero elements) tensor.
    Tensor() = default;

    // Zero-initialized tensor of the given shape.
    explicit Tensor(Shape shape);

    static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
    static Tensor full(Shape shape, float value);
    // i.i.d. N(0, stddev^2) entries.
    static Tensor randn(util::Rng& rng, Shape shape, float stddev = 1.0f);
    // i.i.d. U(lo, hi) entries.
    static Tensor uniform(util::Rng& rng, Shape shape, float lo, float hi);
    // Takes ownership of `values`; values.size() must equal numel(shape).
    static Tensor from(std::vector<float> values, Shape shape);
    static Tensor scalar(float value) { return from({value}, {1}); }
    // Wraps existing storage (size must equal numel(shape)) without copying;
    // contents are taken as-is. The arena recycling entry point.
    static Tensor adopt(TensorStorage storage, Shape shape);

    const Shape& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t dim(std::size_t i) const { return shape_.at(i); }
    std::size_t numel() const { return numel_; }
    bool empty() const { return numel_ == 0; }

    std::span<float> data();
    std::span<const float> data() const;

    float& operator[](std::size_t flat_index) { return data()[flat_index]; }
    float operator[](std::size_t flat_index) const { return data()[flat_index]; }

    // O(1) view with a new shape over the same storage. numel must match.
    Tensor reshaped(Shape shape) const;

    // O(1) view of the leading `rows` rows (first dimension) over the same
    // storage. Rank must be >= 1 and rows <= dim(0). Used by the decode path
    // to reuse capacity-sized arena tensors at smaller batch sizes without
    // reallocating.
    Tensor first_rows(std::size_t rows) const;

    // Deep copy (detaches storage).
    Tensor clone() const;

    void fill(float value);

    // this += other (same numel; shapes may differ, e.g. grad of a reshape).
    void add_(const Tensor& other);
    // this *= s
    void scale_(float s);

    bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

    // The shared storage handle (null for empty tensors); use_count on it is
    // how the TapeArena decides a lent buffer has been released by the graph.
    const TensorStorage& storage() const { return storage_; }

private:
    Shape shape_;
    std::size_t numel_ = 0;
    TensorStorage storage_;
};

}  // namespace cpt::nn
