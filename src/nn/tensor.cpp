#include "tensor.hpp"

#include <sstream>

#include "util/check.hpp"

namespace cpt::nn {

std::string shape_to_string(const Shape& s) {
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i) out << ", ";
        out << s[i];
    }
    out << ']';
    return out.str();
}

std::size_t shape_numel(const Shape& s) {
    std::size_t n = 1;
    for (std::size_t d : s) n *= d;
    return s.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor Tensor::full(Shape shape, float value) {
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor Tensor::randn(util::Rng& rng, Shape shape, float stddev) {
    Tensor t(std::move(shape));
    for (float& x : t.data()) x = static_cast<float>(rng.normal()) * stddev;
    return t;
}

Tensor Tensor::uniform(util::Rng& rng, Shape shape, float lo, float hi) {
    Tensor t(std::move(shape));
    for (float& x : t.data()) x = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor Tensor::from(std::vector<float> values, Shape shape) {
    CPT_CHECK_EQ(values.size(), shape_numel(shape), " Tensor::from: value count vs shape ",
                 shape_to_string(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.numel_ = values.size();
    t.storage_ = std::make_shared<std::vector<float>>(std::move(values));
    return t;
}

Tensor Tensor::adopt(TensorStorage storage, Shape shape) {
    const std::size_t n = shape_numel(shape);
    CPT_CHECK(storage != nullptr && storage->size() == n, " Tensor::adopt: storage size ",
              storage ? storage->size() : 0, " vs shape ", shape_to_string(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.numel_ = n;
    t.storage_ = std::move(storage);
    return t;
}

std::span<float> Tensor::data() {
    if (!storage_) return {};
    return {storage_->data(), numel_};
}

std::span<const float> Tensor::data() const {
    if (!storage_) return {};
    return {storage_->data(), numel_};
}

Tensor Tensor::reshaped(Shape shape) const {
    CPT_CHECK_EQ(shape_numel(shape), numel_, " Tensor::reshaped: ", shape_to_string(shape_),
                 " -> ", shape_to_string(shape));
    Tensor t = *this;
    t.shape_ = std::move(shape);
    return t;
}

Tensor Tensor::first_rows(std::size_t rows) const {
    CPT_CHECK(!shape_.empty() && rows <= shape_[0], " Tensor::first_rows: ", rows,
              " rows requested from ", shape_to_string(shape_));
    Tensor t = *this;
    t.shape_[0] = rows;
    t.numel_ = shape_numel(t.shape_);
    return t;
}

Tensor Tensor::clone() const {
    Tensor t;
    t.shape_ = shape_;
    t.numel_ = numel_;
    t.storage_ = storage_ ? std::make_shared<std::vector<float>>(*storage_)
                          : nullptr;
    return t;
}

void Tensor::fill(float value) {
    for (float& x : data()) x = value;
}

void Tensor::add_(const Tensor& other) {
    CPT_CHECK_EQ(other.numel_, numel_, " Tensor::add_: ", shape_to_string(other.shape_), " vs ",
                 shape_to_string(shape_));
    auto dst = data();
    auto src = other.data();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void Tensor::scale_(float s) {
    for (float& x : data()) x *= s;
}

}  // namespace cpt::nn
