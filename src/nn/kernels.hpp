// Fused elementwise kernels shared by the autograd forward pass (autograd.cpp,
// modules.cpp) and the inference decoder (infer.cpp), dispatched on the active
// SIMD tier (util/cpu.hpp). Keeping one implementation per op is what makes
// the decoder-vs-forward equivalence tests tight and the tier parity tests
// meaningful.
//
// Numerics: on the scalar and sse2 tiers every function below performs the
// exact per-element operation order the pre-dispatch code performed, so those
// tiers remain bit-identical to the historical outputs. The avx2 tier may
// reassociate reductions and use FMA; within that tier results are still a
// pure function of (element index, shape), never of thread count.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace cpt::util {
class ThreadPool;
}  // namespace cpt::util

namespace cpt::nn::kernels {

// GELU (tanh approximation) — the single definition of the activation's math,
// used by the autograd op, the fused bias+GELU kernel, and the decoder.
inline constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
inline constexpr float kGeluA = 0.044715f;

inline float gelu_scalar(float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(u));
}

inline float gelu_grad_scalar(float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

// dot/axpy along contiguous spans, tier-dispatched (decoder attention).
float dot(const float* a, const float* b, std::size_t n);
void axpy(float alpha, const float* x, float* y, std::size_t n);

// Batched attention inner loops. Each call is defined as the per-key loop it
// replaces — scores[p] = dot(q, krows + p*dh) * scale for p in [0, n), and
// crow += scores[p] * vrows[p*dh..] applied in ascending p — with the SAME
// per-element operation order as n separate dot/axpy calls on every tier, so
// swapping the loops for these kernels is unobservable in decoder output.
// They exist because the per-key calls pay a tier dispatch per key and leave
// the dot's FMA chain latency-bound; the batched forms dispatch once, run
// several independent key chains in flight, and keep the context row in
// registers across keys (dh <= 64, the decoder head sizes).
void attn_scores(const float* q, const float* krows, float* scores, std::size_t n,
                 std::size_t dh, float scale);
void attn_mix(const float* scores, const float* vrows, float* crow, std::size_t n,
              std::size_t dh);
void attn_scores_f16(const float* q, const std::uint16_t* krows, float* scores, std::size_t n,
                     std::size_t dh, float scale);
void attn_mix_f16(const float* scores, const std::uint16_t* vrows, float* crow, std::size_t n,
                  std::size_t dh);

// fp16-storage KV-cache kernels (infer.cpp). Encoding rounds fp32 to
// nearest-even binary16 — the SAME bits on every tier (software converter on
// scalar/sse2, VCVTPS2PH or the identical software fallback on avx2), so the
// cache contents never depend on the tier. dot_f16/axpy_f16 widen the halves
// exactly and then follow the fp32 dot/axpy tier conventions: ascending
// scalar on scalar/sse2 (bit-identical to each other), FMA forms on avx2.
void fp16_encode(const float* src, std::uint16_t* dst, std::size_t n);
float dot_f16(const float* a, const std::uint16_t* b, std::size_t n);
void axpy_f16(float alpha, const std::uint16_t* x, float* y, std::size_t n);

// Stable softmax over the first `valid` of `len` entries; entries past
// `valid` are zeroed. The exp/sum stage is scalar on every tier (the sum is
// an ascending serial reduction), so softmax output is identical across
// tiers as well as thread counts.
void softmax_row(const float* in, float* out, std::size_t len, std::size_t valid);
// Row-parallel softmax over [rows, d] (full rows valid).
void softmax_rows(const float* in, float* out, std::size_t rows, std::size_t d,
                  util::ThreadPool* pool = nullptr);

// LayerNorm over rows of width d: out = (in - mean) * inv_std * gain + bias.
// When stats2 != nullptr, writes {mean, inv_std} per row at stats2[r*2] (the
// autograd backward cache). in == out aliasing is allowed.
void layer_norm_rows(const float* in, float* out, const float* gain, const float* bias,
                     std::size_t rows, std::size_t d, float eps, float* stats2,
                     util::ThreadPool* pool = nullptr);

// y[r,:] = bias (GEMM-accumulate prologue for linear layers).
void fill_bias_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool = nullptr);
// dst[r,:] += bias.
void add_bias_rows(float* dst, const float* bias, std::size_t rows, std::size_t d,
                   util::ThreadPool* pool = nullptr);
// x[i] = gelu(x[i]) in place.
void gelu_rows(float* x, std::size_t n, util::ThreadPool* pool = nullptr);
// Fused epilogue for fc1: y[r,j] = gelu(y[r,j] + bias[j]).
void bias_gelu_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool = nullptr);

// ---- Backward kernels (training path) ----------------------------------------
// Each dispatched kernel keeps a scalar reference (*_ref) beside it, like the
// gemm_*_ref kernels, pinned by tests/nn_train_kernels_test.cpp. Reductions
// that cross rows (bias-style gradients) shard over COLUMNS with an
// ascending-row accumulation per column, so their results are bit-identical
// for every thread count — not merely for a fixed one.

// Softmax backward for one row restricted to the first `valid` entries:
// dx_j += y_j * (g_j - sum_k g_k y_k), with an ascending serial dot.
void softmax_backward_row_ref(const float* y, const float* g, float* dx, std::size_t valid);
// Row-parallel softmax backward over [rows, d] (full rows valid).
void softmax_backward_rows(const float* y, const float* g, float* dx, std::size_t rows,
                           std::size_t d, util::ThreadPool* pool = nullptr);
// Causal variant over [mats, t, t]: row r of every matrix has r+1 valid
// entries (the attention backward of softmax_causal).
void softmax_backward_causal(const float* y, const float* g, float* dx, std::size_t mats,
                             std::size_t t, util::ThreadPool* pool = nullptr);

// Fused softmax + cross-entropy forward over logits [rows, c]: writes each
// row's softmax into probs and its negative log-likelihood into rowloss
// (0.0 for rows whose target equals ignore_index). Row-parallel; the caller
// reduces rowloss serially, keeping the loss value thread-count independent.
void softmax_xent_rows(const float* logits, float* probs, const int* targets, int ignore_index,
                       double* rowloss, std::size_t rows, std::size_t c,
                       util::ThreadPool* pool = nullptr);
// Cross-entropy backward: dx[r,:] += gscale * (probs[r,:] - onehot(target_r))
// for rows whose target is not ignore_index.
void xent_backward_rows(const float* probs, const int* targets, int ignore_index, float* dx,
                        float gscale, std::size_t rows, std::size_t c,
                        util::ThreadPool* pool = nullptr);
void xent_backward_row_ref(const float* probs, int target, float* dx, float gscale,
                           std::size_t c);

// LayerNorm backward over rows of width d, given the forward's cached
// {mean, inv_std} pairs at stats2[r*2]. Accumulates (gy_j = g_j * gain_j,
// xhat_j = (x_j - mean) * inv):
//   dx[r,j]  += inv/d * (d*gy_j - sum(gy) - xhat_j * sum(gy*xhat))
//   dgain[j] += sum_r g[r,j] * xhat[r,j]      (ascending r per column)
//   dbias[j] += sum_r g[r,j]                  (ascending r per column)
// dx rows are disjoint and shard over rows; dgain/dbias shard over columns.
// Any of dx/dgain/dbias may be null.
void layer_norm_backward_rows(const float* x, const float* gain, const float* g,
                              const float* stats2, float* dx, float* dgain, float* dbias,
                              std::size_t rows, std::size_t d,
                              util::ThreadPool* pool = nullptr);
// One row of the dx formula above (scalar reference).
void layer_norm_backward_row_ref(const float* x, const float* gain, const float* g, float mean,
                                 float inv, float* dx, std::size_t d);

// dst[j] += sum_r src[r,j] (ascending r per column, column-parallel): the
// bias-gradient reduction shared by add_bias and bias+GELU backward.
void col_sum_rows(const float* src, float* dst, std::size_t rows, std::size_t d,
                  util::ThreadPool* pool = nullptr);

// Fused bias+GELU backward: recomputes u = x[r,j] + bias[j] (no stored
// pre-activation), writes t = g[r,j] * gelu'(u) into scratch [rows, d] and
// accumulates dx[r,j] += t (dx may be null). The caller reduces scratch with
// col_sum_rows for dbias.
void bias_gelu_backward_rows(const float* x, const float* bias, const float* g, float* dx,
                             float* scratch, std::size_t rows, std::size_t d,
                             util::ThreadPool* pool = nullptr);

// ---- Optimizer kernels --------------------------------------------------------

// carry + sum(x[i]^2) with double-precision ascending accumulation on the
// scalar/sse2 tiers — chaining calls over parameter tensors reproduces the
// historical clip_grad_norm loop bit-for-bit. avx2 uses four double lanes
// with a fixed combine order (tolerance, still thread-count independent —
// the function is single-threaded either way).
double sqnorm(const float* x, std::size_t n, double carry = 0.0);

// Fused Adam/AdamW update over one parameter segment; single pass, with the
// global-norm clip factor folded into the gradient read:
//   g' = g[j] * gscale
//   m[j] = beta1*m[j] + (1-beta1)*g'
//   v[j] = beta2*v[j] + (1-beta2)*g'*g'
//   w[j] -= lr * ((m[j]/bc1) / (sqrt(v[j]/bc2) + eps) + weight_decay*w[j])
// On scalar/sse2 this is bit-identical to scaling the gradient in place and
// running the historical per-element Adam loop.
void adam_update(float* w, const float* g, float* m, float* v, std::size_t n, float lr,
                 float beta1, float beta2, float eps, float weight_decay, float bc1, float bc2,
                 float gscale);
void adam_update_ref(float* w, const float* g, float* m, float* v, std::size_t n, float lr,
                     float beta1, float beta2, float eps, float weight_decay, float bc1,
                     float bc2, float gscale);

}  // namespace cpt::nn::kernels
