// Fused elementwise kernels shared by the autograd forward pass (autograd.cpp,
// modules.cpp) and the inference decoder (infer.cpp), dispatched on the active
// SIMD tier (util/cpu.hpp). Keeping one implementation per op is what makes
// the decoder-vs-forward equivalence tests tight and the tier parity tests
// meaningful.
//
// Numerics: on the scalar and sse2 tiers every function below performs the
// exact per-element operation order the pre-dispatch code performed, so those
// tiers remain bit-identical to the historical outputs. The avx2 tier may
// reassociate reductions and use FMA; within that tier results are still a
// pure function of (element index, shape), never of thread count.
#pragma once

#include <cmath>
#include <cstddef>

namespace cpt::util {
class ThreadPool;
}  // namespace cpt::util

namespace cpt::nn::kernels {

// GELU (tanh approximation) — the single definition of the activation's math,
// used by the autograd op, the fused bias+GELU kernel, and the decoder.
inline constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
inline constexpr float kGeluA = 0.044715f;

inline float gelu_scalar(float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(u));
}

inline float gelu_grad_scalar(float x) {
    const float u = kGeluC * (x + kGeluA * x * x * x);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

// dot/axpy along contiguous spans, tier-dispatched (decoder attention).
float dot(const float* a, const float* b, std::size_t n);
void axpy(float alpha, const float* x, float* y, std::size_t n);

// Stable softmax over the first `valid` of `len` entries; entries past
// `valid` are zeroed. The exp/sum stage is scalar on every tier (the sum is
// an ascending serial reduction), so softmax output is identical across
// tiers as well as thread counts.
void softmax_row(const float* in, float* out, std::size_t len, std::size_t valid);
// Row-parallel softmax over [rows, d] (full rows valid).
void softmax_rows(const float* in, float* out, std::size_t rows, std::size_t d,
                  util::ThreadPool* pool = nullptr);

// LayerNorm over rows of width d: out = (in - mean) * inv_std * gain + bias.
// When stats2 != nullptr, writes {mean, inv_std} per row at stats2[r*2] (the
// autograd backward cache). in == out aliasing is allowed.
void layer_norm_rows(const float* in, float* out, const float* gain, const float* bias,
                     std::size_t rows, std::size_t d, float eps, float* stats2,
                     util::ThreadPool* pool = nullptr);

// y[r,:] = bias (GEMM-accumulate prologue for linear layers).
void fill_bias_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool = nullptr);
// dst[r,:] += bias.
void add_bias_rows(float* dst, const float* bias, std::size_t rows, std::size_t d,
                   util::ThreadPool* pool = nullptr);
// x[i] = gelu(x[i]) in place.
void gelu_rows(float* x, std::size_t n, util::ThreadPool* pool = nullptr);
// Fused epilogue for fc1: y[r,j] = gelu(y[r,j] + bias[j]).
void bias_gelu_rows(float* y, const float* bias, std::size_t rows, std::size_t d,
                    util::ThreadPool* pool = nullptr);

}  // namespace cpt::nn::kernels
