// Cache-blocked, register-tiled, multi-threaded GEMM kernels for the nn
// substrate, dispatched at runtime across three SIMD tiers (scalar, SSE2,
// AVX2+FMA — see util/cpu.hpp), plus the naive reference kernels they are
// tested against. Matmuls with m == 1 (the decode-shaped hot path of
// autoregressive sampling) route through dedicated single-threaded GEMV
// kernels instead of the blocked drivers.
//
// All kernels ACCUMULATE into C (callers zero it or rely on fresh tensors)
// and share one accumulation contract: the floating-point operations
// producing a C element are a pure function of (element index, shape, active
// tier). Register tiling changes which elements are computed together, and
// threading changes which rows are computed where, but never the per-element
// operation sequence — so every tier is byte-stable across CPT_THREADS.
// Tier-relative numerics:
//   * scalar / sse2: a single ascending-k accumulator per element, added to
//     C exactly once — BIT-IDENTICAL to the reference kernels for every
//     shape (pinned by tests/nn_gemm_test.cpp), except the nt m == 1 GEMV,
//     which uses a multi-accumulator dot (tolerance vs the reference).
//   * avx2: FMA and fixed-tree reductions — tolerance vs the reference,
//     still byte-stable across thread counts (tests/nn_simd_parity_test.cpp).
//
// The K dimension is deliberately not split (no Kc accumulation blocking):
// at this project's sizes (d_model <= 128, MLP <= 1024, vocab < 16) a full-K
// micro-panel fits in L1, and keeping K whole is what preserves the
// per-element order above.
#pragma once

#include <cstddef>

#include "util/thread_pool.hpp"

namespace cpt::nn {

// Blocked/threaded kernels. `pool` defaults to util::global_pool(); pass an
// explicit pool to pin a thread count (benchmarks, tests). Work smaller than
// one grain runs inline on the calling thread.

// C[M,N] += A[M,K] * B[K,N]
void gemm_nn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool = nullptr);

// C[M,N] += A[M,K] * B^T where B is stored [N,K]
void gemm_nt(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool = nullptr);

// C[M,N] += A^T * B where A is stored [K,M], B is [K,N]
void gemm_tn(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
             std::size_t n_dim, util::ThreadPool* pool = nullptr);

// Naive single-threaded reference kernels (triple loop, ascending-k dot
// products). Retained for the bit-exactness tests and the perf baseline in
// bench_micro_nn.
void gemm_nn_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim);
void gemm_nt_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim);
void gemm_tn_ref(const float* a, const float* b, float* c, std::size_t m_dim, std::size_t k_dim,
                 std::size_t n_dim);

}  // namespace cpt::nn
