// Inference-only incremental decoding for the Transformer backbone with a
// key/value cache. Autoregressive sampling with the autograd forward costs
// O(T^2) matmuls per generated token (the full prefix is re-encoded each
// step); this decoder reuses cached per-block K/V so each step costs O(T)
// attention plus O(1) projections — an order of magnitude faster on CPU.
//
// The decoder holds plain tensors (no autograd graph) and owns a scratch
// arena allocated once at construction, so steady-state decoding performs
// zero tensor allocations per step (the decode hot path of
// Sampler::generate_batch). compact() shrinks the KV cache and arena views
// in place. Numerical equivalence with Transformer::forward() is pinned by
// tests; all kernels dispatch on the active SIMD tier (util/cpu.hpp) and
// stay byte-identical across CPT_THREADS within a tier.
#pragma once

#include <vector>

#include "modules.hpp"

namespace cpt::nn {

class TransformerDecoder {
public:
    // Binds to a trained model; `batch` rows decode in lockstep. The arena
    // and KV cache are sized for `batch` (the capacity); compact() can only
    // shrink below it.
    TransformerDecoder(const Transformer& model, std::size_t batch);

    // Feeds one token per row (x: [B, d_token]) and returns the final-layer
    // hidden state for that position ([B, d_model]). The returned tensor is
    // a view into the decoder's arena: it is overwritten by the next step()
    // (clone it to keep it). Throws when the context is full
    // (length() == max_seq_len).
    const Tensor& step(const Tensor& x);

    // Tokens consumed so far.
    std::size_t length() const { return len_; }
    std::size_t batch() const { return batch_; }

    // Keeps only the given rows (ascending, unique); used to drop finished
    // streams mid-generation. In-place: no reallocation.
    void compact(const std::vector<std::size_t>& keep_rows);

private:
    struct BlockCache {
        // K/V laid out [capacity, H, maxT, Dh] (row-major, preallocated);
        // only the first batch_ rows are live.
        Tensor k;
        Tensor v;
    };

    // Re-points the batch-sized arena views at the first batch_ rows.
    void rebind_views();

    const Transformer* model_;
    std::size_t capacity_ = 0;
    std::size_t batch_ = 0;
    std::size_t len_ = 0;
    std::vector<BlockCache> caches_;

    // Scratch arena, allocated once for `capacity_` rows...
    Tensor hstate_full_;
    Tensor q_full_;
    Tensor kv_full_;
    Tensor attn_full_;
    Tensor scratch_full_;
    Tensor mlp_hidden_full_;
    // ...and the first_rows(batch_) views the step() kernels run on,
    // rebound only when batch_ changes.
    Tensor hstate_;
    Tensor q_;
    Tensor kv_;
    Tensor attn_out_;
    Tensor scratch_;
    Tensor mlp_hidden_;
    // Per-chunk attention score rows ([num_chunks, max_seq_len]); grown
    // lazily if the pool's chunk count exceeds the initial estimate.
    std::vector<float> scores_;
};

}  // namespace cpt::nn
