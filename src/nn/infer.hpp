// Inference-only incremental decoding for the Transformer backbone with a
// key/value cache. Autoregressive sampling with the autograd forward costs
// O(T^2) matmuls per generated token (the full prefix is re-encoded each
// step); this decoder reuses cached per-block K/V so each step costs O(T)
// attention plus O(1) projections — an order of magnitude faster on CPU.
//
// The decoder holds plain tensors (no autograd graph) and owns a scratch
// arena allocated once at construction, so steady-state decoding performs
// zero tensor allocations per step (the decode hot path of
// Sampler::generate_batch). compact() drops rows by permuting a
// logical->physical row map over the KV cache — O(batch), no data movement.
// Numerical equivalence with Transformer::forward() is pinned by
// tests; all kernels dispatch on the active SIMD tier (util/cpu.hpp) and
// stay byte-identical across CPT_THREADS within a tier.
//
// Continuous batching: admit() re-activates freed rows mid-decode. Each row
// carries its own context length and its K/V is stored at row-local
// positions — attention for row r covers cache positions [0, len(r)] and the
// positional embedding is indexed by len(r) — so a row's arithmetic is
// bit-identical to the same stream decoded from position 0 in a fresh
// decoder, regardless of when it was admitted or how other rows advance.
// That invariance is what lets a serving scheduler refill slots that
// compact() frees without perturbing the streams already in flight (pinned
// by tests/serve_test.cpp).
//
// Speculative decoding (DESIGN.md §16) rides on two extensions: step_window()
// feeds a variable-length token window per row in one batched forward
// (intra-window causality falls out of the row-local positions — window
// token j attends to [0, len(r)+j], which includes the window tokens
// appended before it), and rollback_row() truncates a row's context in O(1)
// so draft tokens past the first rejection are discarded without touching
// the cache (the stale rows are simply never read again).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "modules.hpp"
#include "quant.hpp"

namespace cpt::nn {

// Numeric options for a decoder instance (DESIGN.md §12). `quant` swaps every
// projection matmul (input proj, q/k/v/o, MLP) for the int8 weight-quantized
// path; `kv_fp16` stores the KV cache as IEEE binary16 (encode on append,
// widen to fp32 inside the attention dot/axpy kernels), halving KV bandwidth
// and memory. The two are independent knobs at this layer; the public
// Precision::kInt8W8A32 mode enables both. `max_window` sizes the scratch
// arena for step_window(): the largest per-row token window a single call
// may feed (1 = plain one-token stepping).
struct DecodeOptions {
    const TransformerQuant* quant = nullptr;  // borrowed; must outlive the decoder
    bool kv_fp16 = false;
    std::size_t max_window = 1;
};

class TransformerDecoder {
public:
    // Binds to a trained model; `batch` rows decode in lockstep. The arena
    // and KV cache are sized for `batch` (the capacity); compact() can only
    // shrink below it.
    TransformerDecoder(const Transformer& model, std::size_t batch);
    TransformerDecoder(const Transformer& model, std::size_t batch, const DecodeOptions& opts);

    // Feeds one token per row (x: [B, d_token]) and returns the final-layer
    // hidden state for that position ([B, d_model]). The returned tensor is
    // a view into the decoder's arena: it is overwritten by the next step()
    // (clone it to keep it). Throws when any row's context is full
    // (row_length() == max_seq_len). Equivalent to step_window() with a
    // one-token window per row (bit-identical by construction: it is that
    // call).
    const Tensor& step(const Tensor& x);

    // Feeds counts[r] consecutive tokens for each row in one batched
    // forward. `x` holds the windows packed row-major in ascending row
    // order: sum(counts) rows of d_token (rows with counts[r] == 0
    // contribute nothing). Returns the final-layer hidden states in the
    // same packed layout ([sum(counts), d_model], a view overwritten by the
    // next call). Window token j of row r is processed at context position
    // len(r)+j and attends to cache positions [0, len(r)+j] — the window
    // tokens before it included — which is exactly the causal mask a
    // sequential decode would apply. Each counts[r] must be <= the
    // construction-time max_window and fit the row's remaining context.
    // Afterwards len(r) += counts[r]; use rollback_row() to discard a
    // rejected suffix.
    const Tensor& step_window(const Tensor& x, std::span<const std::size_t> counts);

    // Truncates row r's context to new_len tokens (new_len <= row_length(r)).
    // O(1): the KV entries past new_len stay in place and are overwritten by
    // the next append before ever being read.
    void rollback_row(std::size_t r, std::size_t new_len);

    // Longest live row context (tokens consumed); 0 when no rows are live.
    // Rows advance independently under step_window(), so per-row
    // row_length() is the precise notion; this remains the lockstep value
    // when every row advances one token per step.
    std::size_t length() const;
    // Tokens consumed by row r (its local context length).
    std::size_t row_length(std::size_t r) const { return len_[r]; }
    std::size_t batch() const { return batch_; }
    std::size_t capacity() const { return capacity_; }

    // True when projections run through the int8 weight path.
    bool quantized() const { return quant_ != nullptr; }
    // True when the KV cache stores binary16 instead of fp32.
    bool kv_fp16() const { return kv_fp16_; }
    // Bytes held by the KV cache (all blocks, full capacity) — halved in
    // fp16 mode; reported by the benches alongside weight bytes.
    std::size_t kv_bytes() const;

    // Keeps only the given rows (ascending, unique); used to drop finished
    // streams mid-generation. O(batch): rows are indirected through a
    // logical->physical map, so no KV data moves — dropped physical rows are
    // recycled to admit(). No reallocation.
    void compact(const std::vector<std::size_t>& keep_rows);

    // Activates `count` additional rows (append after the live ones) with an
    // empty context: their K/V is stored at row-local positions starting at
    // 0 and their positional embedding restarts at 0, so each admitted row
    // has the full max_seq_len of context regardless of how far the other
    // rows have decoded. Returns the index of the first new row. Requires
    // batch() + count <= capacity(). The stale K/V those rows inherit is
    // never read.
    std::size_t admit(std::size_t count);

    // Forgets all rows, so the decoder can be reused from a clean slate.
    // O(capacity): only the row metadata and the physical-row free list are
    // rebuilt (descending, so admit() hands out rows 0, 1, 2, ... again); no
    // cache buffer is touched.
    void reset();

private:
    struct BlockCache {
        // K/V laid out [capacity, H, maxT, Dh] (row-major, preallocated);
        // only the first batch_ rows are live. fp32 mode fills k/v and leaves
        // kh/vh empty; fp16 mode allocates only the half-width kh/vh.
        Tensor k;
        Tensor v;
        std::vector<std::uint16_t> kh;
        std::vector<std::uint16_t> vh;
    };

    // Re-points the arena views at the first `rows` rows of the full
    // buffers (no-op when already bound to that count).
    void bind_rows(std::size_t rows);

    const Transformer* model_;
    // Numeric mode (fixed at construction). quant_ borrows the caller's
    // quantized weights; qscratch_ holds the per-step activation codes so the
    // quantized hot loop stays allocation-free after warm-up.
    const TransformerQuant* quant_ = nullptr;
    bool kv_fp16_ = false;
    QuantScratch qscratch_;
    std::size_t capacity_ = 0;
    std::size_t batch_ = 0;
    std::size_t max_window_ = 1;
    // Per-row context length ([capacity_]; first batch_ entries live). K/V
    // for row r occupies cache positions [0, len_[r]) of its physical row.
    std::vector<std::size_t> len_;
    // Logical row r's K/V lives at cache row phys_[r]; free_ holds the
    // physical rows not referenced by any live logical row. compact()
    // permutes this map instead of moving KV data, so a continuous-batching
    // scheduler can compact at every step boundary for O(batch) rather than
    // O(batch * maxT * d_model).
    std::vector<std::size_t> phys_;
    std::vector<std::size_t> free_;
    std::vector<BlockCache> caches_;

    // All-ones window counts so step() can delegate to step_window() without
    // touching the heap.
    std::vector<std::size_t> ones_;
    // Packed-token maps rebuilt by each step_window() call: logical row and
    // in-window position of every packed row of x.
    std::vector<std::size_t> wrow_;
    std::vector<std::size_t> wpos_;

    // Scratch arena, allocated once for `capacity_ * max_window_` rows...
    Tensor hstate_full_;
    Tensor q_full_;
    Tensor kv_full_;
    Tensor attn_full_;
    Tensor scratch_full_;
    Tensor mlp_hidden_full_;
    // ...and the first_rows(m) views the current call's kernels run on,
    // rebound only when the packed row count changes.
    std::size_t bound_rows_ = 0;
    Tensor hstate_;
    Tensor q_;
    Tensor kv_;
    Tensor attn_out_;
    Tensor scratch_;
    Tensor mlp_hidden_;
    // Per-chunk attention score rows ([num_chunks, max_seq_len]); grown
    // lazily if the pool's chunk count exceeds the initial estimate.
    std::vector<float> scores_;
};

}  // namespace cpt::nn
