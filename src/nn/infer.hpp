// Inference-only incremental decoding for the Transformer backbone with a
// key/value cache. Autoregressive sampling with the autograd forward costs
// O(T^2) matmuls per generated token (the full prefix is re-encoded each
// step); this decoder reuses cached per-block K/V so each step costs O(T)
// attention plus O(1) projections — an order of magnitude faster on CPU.
//
// The decoder holds plain tensors (no autograd graph). Numerical equivalence
// with Transformer::forward() is pinned by tests.
#pragma once

#include <vector>

#include "modules.hpp"

namespace cpt::nn {

class TransformerDecoder {
public:
    // Binds to a trained model; `batch` rows decode in lockstep.
    TransformerDecoder(const Transformer& model, std::size_t batch);

    // Feeds one token per row (x: [B, d_token]) and returns the final-layer
    // hidden state for that position ([B, d_model]). Throws when the context
    // is full (length() == max_seq_len).
    Tensor step(const Tensor& x);

    // Tokens consumed so far.
    std::size_t length() const { return len_; }
    std::size_t batch() const { return batch_; }

    // Keeps only the given rows (ascending, unique); used to drop finished
    // streams mid-generation.
    void compact(const std::vector<std::size_t>& keep_rows);

private:
    struct BlockCache {
        // K/V laid out [B, H, maxT, Dh] (row-major, preallocated).
        Tensor k;
        Tensor v;
    };

    const Transformer* model_;
    std::size_t batch_ = 0;
    std::size_t len_ = 0;
    std::vector<BlockCache> caches_;
};

}  // namespace cpt::nn
