// Inference-only incremental decoding for the Transformer backbone with a
// key/value cache. Autoregressive sampling with the autograd forward costs
// O(T^2) matmuls per generated token (the full prefix is re-encoded each
// step); this decoder reuses cached per-block K/V so each step costs O(T)
// attention plus O(1) projections — an order of magnitude faster on CPU.
//
// The decoder holds plain tensors (no autograd graph) and owns a scratch
// arena allocated once at construction, so steady-state decoding performs
// zero tensor allocations per step (the decode hot path of
// Sampler::generate_batch). compact() drops rows by permuting a
// logical->physical row map over the KV cache — O(batch), no data movement.
// Numerical equivalence with Transformer::forward() is pinned by
// tests; all kernels dispatch on the active SIMD tier (util/cpu.hpp) and
// stay byte-identical across CPT_THREADS within a tier.
//
// Continuous batching: admit() re-activates freed rows mid-decode. Each row
// carries its own start offset — attention is windowed to [row_start, t] and
// the positional embedding is indexed by the row-local position (t -
// row_start) — so a row's arithmetic is bit-identical to the same stream
// decoded from position 0 in a fresh decoder, regardless of when it was
// admitted. That invariance is what lets a serving scheduler refill slots
// that compact() frees without perturbing the streams already in flight
// (pinned by tests/serve_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "modules.hpp"
#include "quant.hpp"

namespace cpt::nn {

// Numeric options for a decoder instance (DESIGN.md §12). `quant` swaps every
// projection matmul (input proj, q/k/v/o, MLP) for the int8 weight-quantized
// path; `kv_fp16` stores the KV cache as IEEE binary16 (encode on append,
// widen to fp32 inside the attention dot/axpy kernels), halving KV bandwidth
// and memory. The two are independent knobs at this layer; the public
// Precision::kInt8W8A32 mode enables both.
struct DecodeOptions {
    const TransformerQuant* quant = nullptr;  // borrowed; must outlive the decoder
    bool kv_fp16 = false;
};

class TransformerDecoder {
public:
    // Binds to a trained model; `batch` rows decode in lockstep. The arena
    // and KV cache are sized for `batch` (the capacity); compact() can only
    // shrink below it.
    TransformerDecoder(const Transformer& model, std::size_t batch);
    TransformerDecoder(const Transformer& model, std::size_t batch, const DecodeOptions& opts);

    // Feeds one token per row (x: [B, d_token]) and returns the final-layer
    // hidden state for that position ([B, d_model]). The returned tensor is
    // a view into the decoder's arena: it is overwritten by the next step()
    // (clone it to keep it). Throws when the context is full
    // (length() == max_seq_len).
    const Tensor& step(const Tensor& x);

    // Tokens consumed so far (shared context position).
    std::size_t length() const { return len_; }
    std::size_t batch() const { return batch_; }
    std::size_t capacity() const { return capacity_; }

    // True when projections run through the int8 weight path.
    bool quantized() const { return quant_ != nullptr; }
    // True when the KV cache stores binary16 instead of fp32.
    bool kv_fp16() const { return kv_fp16_; }
    // Bytes held by the KV cache (all blocks, full capacity) — halved in
    // fp16 mode; reported by the benches alongside weight bytes.
    std::size_t kv_bytes() const;

    // Position at which row r was admitted; 0 for construction-time rows.
    std::size_t row_start(std::size_t r) const { return start_[r]; }
    // Steps row r has decoded so far (its local context length).
    std::size_t row_length(std::size_t r) const { return len_ - start_[r]; }

    // Keeps only the given rows (ascending, unique); used to drop finished
    // streams mid-generation. O(batch): rows are indirected through a
    // logical->physical map, so no KV data moves — dropped physical rows are
    // recycled to admit(). No reallocation.
    void compact(const std::vector<std::size_t>& keep_rows);

    // Activates `count` additional rows (append after the live ones) whose
    // context starts at the current position: they attend only to tokens fed
    // from the next step() on, and their positional embedding restarts at 0.
    // Returns the index of the first new row. Requires batch() + count <=
    // capacity(). The stale K/V those rows inherit is never read.
    std::size_t admit(std::size_t count);

    // Forgets all rows and rewinds the shared context to position 0, so the
    // decoder can be reused once every row has drained (a serving scheduler
    // does this when the shared context fills up). O(1): no buffer is touched.
    void reset();

private:
    struct BlockCache {
        // K/V laid out [capacity, H, maxT, Dh] (row-major, preallocated);
        // only the first batch_ rows are live. fp32 mode fills k/v and leaves
        // kh/vh empty; fp16 mode allocates only the half-width kh/vh.
        Tensor k;
        Tensor v;
        std::vector<std::uint16_t> kh;
        std::vector<std::uint16_t> vh;
    };

    // Re-points the batch-sized arena views at the first batch_ rows.
    void rebind_views();

    const Transformer* model_;
    // Numeric mode (fixed at construction). quant_ borrows the caller's
    // quantized weights; qscratch_ holds the per-step activation codes so the
    // quantized hot loop stays allocation-free after warm-up.
    const TransformerQuant* quant_ = nullptr;
    bool kv_fp16_ = false;
    QuantScratch qscratch_;
    std::size_t capacity_ = 0;
    std::size_t batch_ = 0;
    std::size_t len_ = 0;
    // Per-row admission position ([capacity_]; first batch_ entries live).
    // uniform_start_ short-circuits the windowed paths when every live row
    // started at 0 (the Sampler::generate_batch case).
    std::vector<std::size_t> start_;
    bool uniform_start_ = true;
    // Logical row r's K/V lives at cache row phys_[r]; free_ holds the
    // physical rows not referenced by any live logical row. compact()
    // permutes this map instead of moving KV data, so a continuous-batching
    // scheduler can compact at every step boundary for O(batch) rather than
    // O(batch * maxT * d_model).
    std::vector<std::size_t> phys_;
    std::vector<std::size_t> free_;
    std::vector<BlockCache> caches_;

    // Scratch arena, allocated once for `capacity_` rows...
    Tensor hstate_full_;
    Tensor q_full_;
    Tensor kv_full_;
    Tensor attn_full_;
    Tensor scratch_full_;
    Tensor mlp_hidden_full_;
    // ...and the first_rows(batch_) views the step() kernels run on,
    // rebound only when batch_ changes.
    Tensor hstate_;
    Tensor q_;
    Tensor kv_;
    Tensor attn_out_;
    Tensor scratch_;
    Tensor mlp_hidden_;
    // Per-chunk attention score rows ([num_chunks, max_seq_len]); grown
    // lazily if the pool's chunk count exceeds the initial estimate.
    std::vector<float> scores_;
};

}  // namespace cpt::nn
