// IEEE binary16 (fp16) conversion helpers for the half-precision KV cache.
//
// Both directions are pure bit manipulation with round-to-nearest-even, so
// the stored half bits are a function of the input value alone — identical on
// every SIMD tier, every thread count, and every host. The AVX2 kernel tier
// may use F16C instructions instead (kernels_avx2.cpp); hardware
// VCVTPS2PH/VCVTPH2PS implement exactly this rounding, so the two paths are
// bit-interchangeable and the choice is purely a speed matter.
//
// Widening fp16 -> fp32 is exact (every half value is representable as a
// float); narrowing fp32 -> fp16 rounds to nearest, ties to even, which gives
// a relative error bound of 2^-11 for normal values (the error-bound argument
// in DESIGN.md §12 builds on this).
#pragma once

#include <bit>
#include <cstdint>

namespace cpt::nn {

// fp32 -> fp16 with round-to-nearest-even (matches VCVTPS2PH round-nearest).
inline std::uint16_t fp16_encode_one(float f) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
    const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
    const std::uint32_t abs = bits & 0x7fffffffu;
    if (abs >= 0x47800000u) {  // >= 2^16 after rounding, or inf/NaN
        if (abs > 0x7f800000u) {
            // NaN: keep the top payload bits and force the quiet bit.
            return static_cast<std::uint16_t>(sign | 0x7c00u | ((abs & 0x7fffffu) >> 13) |
                                              0x200u);
        }
        return static_cast<std::uint16_t>(sign | 0x7c00u);  // +-inf / overflow
    }
    if (abs < 0x38800000u) {  // < 2^-14: half subnormal (or zero)
        if (abs < 0x33000000u) return sign;  // < 2^-25 rounds to +-0 (tie at 2^-25 -> even)
        // value = m * 2^(e-150) with the implicit bit restored; the half
        // subnormal unit is 2^-24, so shift down by (126 - e) with RNE.
        const std::uint32_t exp = abs >> 23;
        const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
        const std::uint32_t shift = 126u - exp;  // in [14, 24]
        std::uint32_t q = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1u);
        const std::uint32_t half = 1u << (shift - 1u);
        if (rem > half || (rem == half && (q & 1u))) ++q;
        return static_cast<std::uint16_t>(sign | q);  // a carry lands in the exponent correctly
    }
    // Normal range: rebias the exponent, round the mantissa down to 10 bits.
    const std::uint32_t exp = (abs >> 23) - 112u;  // 127 - 15
    const std::uint32_t mant = abs & 0x7fffffu;
    std::uint32_t half = (exp << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // carry may round up to inf
    return static_cast<std::uint16_t>(sign | half);
}

// fp16 -> fp32, exact (matches VCVTPH2PS).
inline float fp16_decode_one(std::uint16_t h) {
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    const std::uint32_t mant = h & 0x3ffu;
    std::uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign;  // +-0
        } else {
            // Subnormal half: normalize into a float with the implicit bit.
            std::uint32_t m = mant;
            std::uint32_t e = 113;  // 127 - 14
            while ((m & 0x400u) == 0) {
                m <<= 1;
                --e;
            }
            bits = sign | (e << 23) | ((m & 0x3ffu) << 13);
        }
    } else if (exp == 31) {
        bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
    } else {
        bits = sign | ((exp + 112u) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(bits);
}

}  // namespace cpt::nn
