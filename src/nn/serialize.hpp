// Binary checkpoint format for named parameters.
//
// Version 1 (fp32 only):
//   magic "CPTW" | u32 version=1 | u32 count |
//   per entry: u32 name_len | name bytes | u32 rank | u64 dims... | f32 data...
//
// Version 2 adds a per-entry dtype byte so decoder weight matrices can be
// stored int8 weight-quantized (DESIGN.md §12) and served without ever
// materializing the fp32 weights on disk:
//   magic "CPTW" | u32 version=2 | u32 count |
//   per entry: u32 name_len | name bytes | u8 dtype | u32 rank | u64 dims... |
//     dtype 0 (f32): f32 data[numel]
//     dtype 1 (q8, rank must be 2): f32 scale[dims[0]] | i8 payload[numel]
//
// save_parameters() without a quantize list keeps writing version 1 so
// existing artifacts and tools stay byte-compatible; the loader accepts both
// versions. Quantized sections round-trip exactly: the loader hands the raw
// scale/payload bytes back through QuantSections so callers can install them
// verbatim instead of re-quantizing the dequantized fp32 copy (which could
// drift by 1 ulp in the scales).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "modules.hpp"

namespace cpt::nn {

// Raw bytes of one int8 weight-quantized checkpoint entry: per-row scales
// ([shape[0]]) plus the row-major int8 payload ([shape[0] * shape[1]]).
struct QuantSection {
    Shape shape;
    std::vector<float> scale;
    std::vector<std::int8_t> payload;
};
using QuantSections = std::map<std::string, QuantSection>;

// Writes a version-1 (pure fp32) checkpoint.
void save_parameters(const std::string& path, const std::vector<NamedParam>& params);

// Writes a version-2 checkpoint in which every parameter named in `quantize`
// is stored int8 per-row weight-quantized (dtype q8) and the rest stay fp32.
// Quantization uses the same deterministic per-row symmetric scheme as
// QuantLinear::from, so loading the file reproduces exactly the quantized
// weights quantize_weights() would derive from the fp32 model. Every name in
// `quantize` must match a rank-2 parameter; throws std::invalid_argument
// otherwise.
void save_parameters(const std::string& path, const std::vector<NamedParam>& params,
                     const std::vector<std::string>& quantize);

// Loads into existing parameters by name; every checkpoint entry must match a
// parameter with identical shape, and every parameter must be present in the
// checkpoint. Throws std::runtime_error on any mismatch — and, because this
// overload declares the caller expects fp32-only weights, on any quantized
// section (the error names the file and the offending section, so an
// fp32/quantized hub mixup fails loudly at load rather than silently serving
// the wrong numbers).
void load_parameters(const std::string& path, const std::vector<NamedParam>& params);

// As above, but quantized (dtype q8) sections are accepted: each is
// dequantized into the matching fp32 parameter AND its exact scale/payload
// bytes are recorded in `*quant_out` (cleared first) keyed by parameter name,
// so the caller can install them verbatim. quant_out must be non-null.
void load_parameters(const std::string& path, const std::vector<NamedParam>& params,
                     QuantSections* quant_out);

}  // namespace cpt::nn
