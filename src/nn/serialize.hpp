// Binary checkpoint format for named parameters:
//   magic "CPTW" | u32 version | u32 count |
//   per entry: u32 name_len | name bytes | u32 rank | u64 dims... | f32 data...
#pragma once

#include <string>
#include <vector>

#include "modules.hpp"

namespace cpt::nn {

void save_parameters(const std::string& path, const std::vector<NamedParam>& params);

// Loads into existing parameters by name; every checkpoint entry must match a
// parameter with identical shape, and every parameter must be present in the
// checkpoint. Throws std::runtime_error on any mismatch.
void load_parameters(const std::string& path, const std::vector<NamedParam>& params);

}  // namespace cpt::nn
