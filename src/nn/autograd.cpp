#include "autograd.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "gemm.hpp"
#include "kernels.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {

namespace {

// Shorthand for shape diagnostics in the CPT_CHECK messages below.
std::string sstr(const Tensor& t) { return shape_to_string(t.shape()); }

// Active arena for this thread (installed by ArenaScope). Null outside any
// scope, in which case the helpers below degrade to plain allocations.
thread_local TapeArena* tls_arena = nullptr;

// Every tensor an op materializes (outputs, gradients, backward scratch)
// funnels through these two helpers so a scoped arena can recycle them.
Tensor tape_tensor(Shape shape) {
    if (tls_arena != nullptr) return tls_arena->alloc(std::move(shape));
    return Tensor(std::move(shape));
}

Tensor tape_clone(const Tensor& src) {
    if (tls_arena != nullptr) return tls_arena->clone(src);
    return src.clone();
}

// Creates the output node for an op. Chokepoint for every differentiable op's
// forward result, so the debug-build NaN/Inf guard lives here.
Var make_node(Tensor value, std::vector<Var> parents) {
    CPT_DCHECK_FINITE(value.data(), "autograd op output");
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requires_grad = false;
    for (const auto& p : parents) {
        if (p->requires_grad) node->requires_grad = true;
    }
    node->parents = std::move(parents);
    return node;
}

// ---- Batched GEMM dispatch ---------------------------------------------------
// The kernels themselves live in gemm.cpp (blocked, register-tiled, threaded).
// For a single matrix the kernel parallelizes over rows; for a batch we shard
// over batch items instead and let the nested kernel calls run inline on each
// worker. Both schedules perform identical per-element arithmetic, so results
// do not depend on the batch/thread split.

using GemmFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t, std::size_t,
                        util::ThreadPool*);

void batched_gemm(GemmFn fn, const float* a, const float* b, float* c, std::size_t batch,
                  std::size_t a_stride, std::size_t b_stride, std::size_t c_stride,
                  std::size_t m_dim, std::size_t k_dim, std::size_t n_dim) {
    if (batch == 1) {
        fn(a, b, c, m_dim, k_dim, n_dim, nullptr);
        return;
    }
    util::global_pool().parallel_for(batch, 1, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t i = b0; i < b1; ++i) {
            fn(a + i * a_stride, b + i * b_stride, c + i * c_stride, m_dim, k_dim, n_dim, nullptr);
        }
    });
}

}  // namespace

// ---- TapeArena ----------------------------------------------------------------

TensorStorage TapeArena::take(std::size_t numel) {
    auto it = free_.find(numel);
    if (it != free_.end() && !it->second.empty()) {
        TensorStorage s = std::move(it->second.back());
        it->second.pop_back();
        ++stats_.reused;
        lent_.push_back(s);
        return s;
    }
    ++stats_.fresh;
    stats_.held_bytes += numel * sizeof(float);
    auto s = std::make_shared<std::vector<float>>(numel, 0.0f);
    lent_.push_back(s);
    return s;
}

Tensor TapeArena::alloc(Shape shape) {
    const std::size_t n = shape_numel(shape);
    TensorStorage s = take(n);
    // Recycled buffers carry the previous step's values; re-zero so the
    // result is bit-identical to a fresh Tensor(shape).
    std::fill(s->begin(), s->end(), 0.0f);
    return Tensor::adopt(std::move(s), std::move(shape));
}

Tensor TapeArena::clone(const Tensor& src) {
    TensorStorage s = take(src.numel());
    auto d = src.data();
    std::copy(d.begin(), d.end(), s->begin());
    return Tensor::adopt(std::move(s), src.shape());
}

void TapeArena::reset() {
    std::vector<TensorStorage> still;
    still.reserve(lent_.size());
    for (auto& s : lent_) {
        if (s.use_count() == 1) {
            free_[s->size()].push_back(std::move(s));
        } else {
            still.push_back(std::move(s));
        }
    }
    lent_ = std::move(still);
}

TapeArena::Stats TapeArena::stats() const {
    Stats s = stats_;
    s.lent = lent_.size();
    return s;
}

ArenaScope::ArenaScope(TapeArena& arena) {
    CPT_CHECK(tls_arena == nullptr, "ArenaScope: scopes do not nest");
    tls_arena = &arena;
}

ArenaScope::~ArenaScope() { tls_arena = nullptr; }

Tensor& Node::ensure_grad() {
    if (grad.numel() != value.numel()) grad = tape_tensor(value.shape());
    return grad;
}

Var make_var(Tensor value) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requires_grad = false;
    return node;
}

Var make_param(Tensor value) {
    CPT_DCHECK_FINITE(value.data(), "make_param: initial value");
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requires_grad = true;
    return node;
}

void backward(const Var& root) {
    CPT_CHECK(root != nullptr, "backward: null root");
    CPT_CHECK_EQ(root->value.numel(), std::size_t{1}, " backward: root must be scalar, got ",
                 sstr(root->value));
    // Iterative post-order DFS to build a topological order.
    std::vector<Node*> topo;
    std::unordered_set<Node*> visited;
    struct Frame {
        Node* node;
        std::size_t next_parent;
    };
    std::vector<Frame> stack;
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
    while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next_parent < f.node->parents.size()) {
            Node* p = f.node->parents[f.next_parent++].get();
            if (p->requires_grad && !visited.contains(p)) {
                visited.insert(p);
                stack.push_back({p, 0});
            }
        } else {
            topo.push_back(f.node);
            stack.pop_back();
        }
    }
    root->ensure_grad().fill(1.0f);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        Node* n = *it;
        if (n->backward_fn && n->grad.numel() == n->value.numel()) {
            // Guard the incoming gradient before scattering it: a NaN caught
            // here names the op whose backward produced it rather than
            // surfacing later as a corrupted weight.
            CPT_DCHECK_FINITE(n->grad.data(), "backward: incoming gradient");
            n->backward_fn();
        }
    }
}

void zero_grad(std::span<const Var> params) {
    for (const auto& p : params) {
        if (p && p->grad.numel() > 0) p->grad.fill(0.0f);
    }
}

// ---- Elementwise binary ops ---------------------------------------------------

Var add(const Var& a, const Var& b) {
    CPT_CHECK(a->value.same_shape(b->value), "add: shape mismatch ", sstr(a->value), " vs ",
              sstr(b->value));
    Tensor out = tape_clone(a->value);
    out.add_(b->value);
    Var node = make_node(std::move(out), {a, b});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, b] {
        if (a->requires_grad) a->ensure_grad().add_(raw->grad);
        if (b->requires_grad) b->ensure_grad().add_(raw->grad);
    };
    return node;
}

Var sub(const Var& a, const Var& b) {
    CPT_CHECK(a->value.same_shape(b->value), "sub: shape mismatch ", sstr(a->value), " vs ",
              sstr(b->value));
    Tensor out = tape_clone(a->value);
    {
        auto dst = out.data();
        auto src = b->value.data();
        for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= src[i];
    }
    Var node = make_node(std::move(out), {a, b});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, b] {
        if (a->requires_grad) a->ensure_grad().add_(raw->grad);
        if (b->requires_grad) {
            auto dst = b->ensure_grad().data();
            auto g = raw->grad.data();
            for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= g[i];
        }
    };
    return node;
}

Var mul(const Var& a, const Var& b) {
    CPT_CHECK(a->value.same_shape(b->value), "mul: shape mismatch ", sstr(a->value), " vs ",
              sstr(b->value));
    Tensor out = tape_tensor(a->value.shape());
    {
        auto dst = out.data();
        auto xa = a->value.data();
        auto xb = b->value.data();
        for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = xa[i] * xb[i];
    }
    Var node = make_node(std::move(out), {a, b});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, b] {
        auto g = raw->grad.data();
        if (a->requires_grad) {
            auto dst = a->ensure_grad().data();
            auto xb = b->value.data();
            for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += g[i] * xb[i];
        }
        if (b->requires_grad) {
            auto dst = b->ensure_grad().data();
            auto xa = a->value.data();
            for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += g[i] * xa[i];
        }
    };
    return node;
}

Var scale(const Var& a, float s) {
    Tensor out = tape_clone(a->value);
    out.scale_(s);
    Var node = make_node(std::move(out), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, s] {
        auto dst = a->ensure_grad().data();
        auto g = raw->grad.data();
        for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += g[i] * s;
    };
    return node;
}

Var add_scalar(const Var& a, float s) {
    Tensor out = tape_clone(a->value);
    for (float& x : out.data()) x += s;
    Var node = make_node(std::move(out), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a] {
        if (a->requires_grad) a->ensure_grad().add_(raw->grad);
    };
    return node;
}

Var neg(const Var& a) { return scale(a, -1.0f); }

Var add_bias(const Var& x, const Var& bias) {
    const auto& xs = x->value.shape();
    CPT_CHECK(!xs.empty() && bias->value.rank() == 1 && bias->value.dim(0) == xs.back(),
              "add_bias: x ", sstr(x->value), " incompatible with bias ", sstr(bias->value));
    const std::size_t d = xs.back();
    const std::size_t rows = x->value.numel() / d;
    Tensor out = tape_clone(x->value);
    kernels::add_bias_rows(out.data().data(), bias->value.data().data(), rows, d);
    Var node = make_node(std::move(out), {x, bias});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, bias, rows, d] {
        if (x->requires_grad) x->ensure_grad().add_(raw->grad);
        if (bias->requires_grad) {
            kernels::col_sum_rows(raw->grad.data().data(), bias->ensure_grad().data().data(),
                                  rows, d, &util::global_pool());
        }
    };
    return node;
}

// ---- Matmul / transpose / reshape ---------------------------------------------

Var matmul(const Var& a, const Var& b) {
    const auto& as = a->value.shape();
    const auto& bs = b->value.shape();
    CPT_CHECK(as.size() >= 2 && bs.size() == as.size(), "matmul: shape mismatch ", sstr(a->value),
              " vs ", sstr(b->value));
    for (std::size_t i = 0; i + 2 < as.size(); ++i) {
        CPT_CHECK_EQ(as[i], bs[i], " matmul: batch dim ", i, " differs: ", sstr(a->value), " vs ",
                     sstr(b->value));
    }
    const std::size_t m_dim = as[as.size() - 2];
    const std::size_t k_dim = as[as.size() - 1];
    CPT_CHECK_EQ(bs[bs.size() - 2], k_dim, " matmul: inner dims differ: ", sstr(a->value), " vs ",
                 sstr(b->value));
    const std::size_t n_dim = bs[bs.size() - 1];
    std::size_t batch = 1;
    for (std::size_t i = 0; i + 2 < as.size(); ++i) batch *= as[i];

    Shape out_shape(as.begin(), as.end() - 2);
    out_shape.push_back(m_dim);
    out_shape.push_back(n_dim);
    Tensor out = tape_tensor(out_shape);
    batched_gemm(gemm_nn, a->value.data().data(), b->value.data().data(), out.data().data(),
                 batch, m_dim * k_dim, k_dim * n_dim, m_dim * n_dim, m_dim, k_dim, n_dim);
    Var node = make_node(std::move(out), {a, b});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, b, batch, m_dim, k_dim, n_dim] {
        const float* g = raw->grad.data().data();
        if (a->requires_grad) {
            // dA = dC * B^T
            batched_gemm(gemm_nt, g, b->value.data().data(), a->ensure_grad().data().data(),
                         batch, m_dim * n_dim, k_dim * n_dim, m_dim * k_dim, m_dim, n_dim, k_dim);
        }
        if (b->requires_grad) {
            // dB = A^T * dC
            batched_gemm(gemm_tn, a->value.data().data(), g, b->ensure_grad().data().data(),
                         batch, m_dim * k_dim, m_dim * n_dim, k_dim * n_dim, k_dim, m_dim, n_dim);
        }
    };
    return node;
}

Var matmul_nt(const Var& x, const Var& b) {
    const auto& xs = x->value.shape();
    const auto& bs = b->value.shape();
    CPT_CHECK(!xs.empty() && bs.size() == 2, "matmul_nt: x ", sstr(x->value), " vs b ",
              sstr(b->value));
    const std::size_t k_dim = xs.back();
    CPT_CHECK_EQ(bs[1], k_dim, " matmul_nt: inner dims differ: ", sstr(x->value), " vs ",
                 sstr(b->value));
    const std::size_t n_dim = bs[0];
    // b is shared across all leading dims of x, so the whole input flattens
    // into one [rows, k] x [n, k]^T GEMM regardless of batch structure.
    const std::size_t rows = x->value.numel() / k_dim;
    Shape out_shape(xs.begin(), xs.end() - 1);
    out_shape.push_back(n_dim);
    Tensor out = tape_tensor(out_shape);
    gemm_nt(x->value.data().data(), b->value.data().data(), out.data().data(), rows, k_dim, n_dim,
            nullptr);
    Var node = make_node(std::move(out), {x, b});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, b, rows, k_dim, n_dim] {
        const float* g = raw->grad.data().data();
        if (x->requires_grad) {
            // dX = dY · B  ([rows, n] x [n, k])
            gemm_nn(g, b->value.data().data(), x->ensure_grad().data().data(), rows, n_dim, k_dim,
                    nullptr);
        }
        if (b->requires_grad) {
            // dB = dYᵀ · X  ([n, rows] x [rows, k])
            gemm_tn(g, x->value.data().data(), b->ensure_grad().data().data(), n_dim, rows, k_dim,
                    nullptr);
        }
    };
    return node;
}

namespace {

void transpose_copy(const float* src, float* dst, std::size_t batch, std::size_t rows,
                    std::size_t cols) {
    util::global_pool().parallel_for(
        batch, util::grain_for(rows * cols), [&](std::size_t b0, std::size_t b1) {
            for (std::size_t i = b0; i < b1; ++i) {
                const float* s = src + i * rows * cols;
                float* d = dst + i * rows * cols;
                for (std::size_t r = 0; r < rows; ++r) {
                    for (std::size_t c = 0; c < cols; ++c) d[c * rows + r] = s[r * cols + c];
                }
            }
        });
}

}  // namespace

Var transpose_last2(const Var& a) {
    const auto& as = a->value.shape();
    CPT_CHECK_GE(as.size(), std::size_t{2}, " transpose_last2: bad shape ", sstr(a->value));
    const std::size_t rows = as[as.size() - 2];
    const std::size_t cols = as[as.size() - 1];
    std::size_t batch = 1;
    for (std::size_t i = 0; i + 2 < as.size(); ++i) batch *= as[i];
    Shape out_shape = as;
    std::swap(out_shape[out_shape.size() - 2], out_shape[out_shape.size() - 1]);
    Tensor out = tape_tensor(out_shape);
    transpose_copy(a->value.data().data(), out.data().data(), batch, rows, cols);
    Var node = make_node(std::move(out), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, batch, rows, cols] {
        // Gradient of a transpose is the transpose of the gradient.
        Tensor tmp = tape_tensor(a->value.shape());
        transpose_copy(raw->grad.data().data(), tmp.data().data(), batch, cols, rows);
        a->ensure_grad().add_(tmp);
    };
    return node;
}

Var reshape(const Var& a, Shape shape) {
    Tensor out = a->value.reshaped(std::move(shape));
    Var node = make_node(std::move(out), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a] { a->ensure_grad().add_(raw->grad); };
    return node;
}

// ---- Softmax family -----------------------------------------------------------
// Forward softmax and the tier-dispatched backward both live in kernels.hpp,
// shared with the decoder and parity-pinned against scalar references.

Var softmax_lastdim(const Var& a) {
    const auto& as = a->value.shape();
    CPT_CHECK(!as.empty(), "softmax_lastdim: bad shape ", sstr(a->value));
    const std::size_t d = as.back();
    const std::size_t rows = a->value.numel() / d;
    Tensor out = tape_tensor(as);
    kernels::softmax_rows(a->value.data().data(), out.data().data(), rows, d,
                          &util::global_pool());
    Var node = make_node(std::move(out), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, rows, d] {
        kernels::softmax_backward_rows(raw->value.data().data(), raw->grad.data().data(),
                                       a->ensure_grad().data().data(), rows, d,
                                       &util::global_pool());
    };
    return node;
}

Var softmax_causal(const Var& scores) {
    const auto& ss = scores->value.shape();
    CPT_CHECK(ss.size() >= 2 && ss[ss.size() - 1] == ss[ss.size() - 2],
              "softmax_causal: scores must be [..., T, T], got ", sstr(scores->value));
    const std::size_t t = ss.back();
    const std::size_t mats = scores->value.numel() / (t * t);
    Tensor out = tape_tensor(ss);
    {
        const float* in = scores->value.data().data();
        float* o = out.data().data();
        util::global_pool().parallel_for(
            mats, util::grain_for(4 * t * t), [&](std::size_t m0, std::size_t m1) {
                for (std::size_t m = m0; m < m1; ++m) {
                    for (std::size_t r = 0; r < t; ++r) {
                        const std::size_t off = (m * t + r) * t;
                        kernels::softmax_row(in + off, o + off, t, r + 1);
                    }
                }
            });
    }
    Var node = make_node(std::move(out), {scores});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, scores, mats, t] {
        kernels::softmax_backward_causal(raw->value.data().data(), raw->grad.data().data(),
                                         scores->ensure_grad().data().data(), mats, t,
                                         &util::global_pool());
    };
    return node;
}

// ---- Layer norm ---------------------------------------------------------------

Var layer_norm(const Var& x, const Var& gain, const Var& bias, float eps) {
    const auto& xs = x->value.shape();
    CPT_CHECK(!xs.empty(), "layer_norm: bad shape ", sstr(x->value));
    const std::size_t d = xs.back();
    CPT_CHECK(gain->value.numel() == d && bias->value.numel() == d,
              "layer_norm: gain ", sstr(gain->value), " / bias ", sstr(bias->value),
              " must both have ", d, " elements");
    const std::size_t rows = x->value.numel() / d;
    Tensor out = tape_tensor(xs);
    // Cache per-row {mean, inv_std} for backward in an arena-recycled tensor.
    Tensor stats = tape_tensor({rows, 2});
    kernels::layer_norm_rows(x->value.data().data(), out.data().data(),
                             gain->value.data().data(), bias->value.data().data(), rows, d, eps,
                             stats.data().data());
    Var node = make_node(std::move(out), {x, gain, bias});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, gain, bias, rows, d, stats] {
        float* dgain = gain->requires_grad ? gain->ensure_grad().data().data() : nullptr;
        float* dbias = bias->requires_grad ? bias->ensure_grad().data().data() : nullptr;
        float* dx = x->requires_grad ? x->ensure_grad().data().data() : nullptr;
        kernels::layer_norm_backward_rows(x->value.data().data(), gain->value.data().data(),
                                          raw->grad.data().data(), stats.data().data(), dx, dgain,
                                          dbias, rows, d, &util::global_pool());
    };
    return node;
}

// ---- Pointwise nonlinearities ---------------------------------------------------

namespace {

// Builds a pointwise op from forward f(x) and derivative df(x, y). Forward
// and backward are element-disjoint, so both shard over elements.
template <typename F, typename DF>
Var pointwise(const Var& a, F f, DF df) {
    Tensor out = tape_tensor(a->value.shape());
    {
        auto in = a->value.data();
        auto o = out.data();
        util::global_pool().parallel_for(in.size(), util::grain_for(24),
                                         [&](std::size_t i0, std::size_t i1) {
                                             for (std::size_t i = i0; i < i1; ++i) o[i] = f(in[i]);
                                         });
    }
    Var node = make_node(std::move(out), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a, df] {
        auto in = a->value.data();
        auto y = raw->value.data();
        auto g = raw->grad.data();
        auto dx = a->ensure_grad().data();
        util::global_pool().parallel_for(
            in.size(), util::grain_for(24), [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) dx[i] += g[i] * df(in[i], y[i]);
            });
    };
    return node;
}

}  // namespace

Var gelu(const Var& a) {
    // tanh approximation: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715 x^3))).
    // The math lives in kernels.hpp, shared with the fused bias+GELU kernel
    // and the inference decoder.
    return pointwise(
        a, [](float x) { return kernels::gelu_scalar(x); },
        [](float x, float /*y*/) { return kernels::gelu_grad_scalar(x); });
}

Var bias_gelu(const Var& x, const Var& bias) {
    const auto& xs = x->value.shape();
    CPT_CHECK(!xs.empty() && bias->value.rank() == 1 && bias->value.dim(0) == xs.back(),
              "bias_gelu: x ", sstr(x->value), " incompatible with bias ", sstr(bias->value));
    const std::size_t d = xs.back();
    const std::size_t rows = x->value.numel() / d;
    Tensor out = tape_clone(x->value);
    kernels::bias_gelu_rows(out.data().data(), bias->value.data().data(), rows, d,
                            &util::global_pool());
    Var node = make_node(std::move(out), {x, bias});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, bias, rows, d] {
        // scratch holds t = g * gelu'(x + bias); dx accumulates it directly
        // and dbias reduces it column-wise.
        Tensor scratch = tape_tensor(x->value.shape());
        float* dx = x->requires_grad ? x->ensure_grad().data().data() : nullptr;
        kernels::bias_gelu_backward_rows(x->value.data().data(), bias->value.data().data(),
                                         raw->grad.data().data(), dx, scratch.data().data(),
                                         rows, d, &util::global_pool());
        if (bias->requires_grad) {
            kernels::col_sum_rows(scratch.data().data(), bias->ensure_grad().data().data(),
                                  rows, d, &util::global_pool());
        }
    };
    return node;
}

Var relu(const Var& a) {
    return pointwise(
        a, [](float x) { return x > 0.0f ? x : 0.0f; },
        [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Var sigmoid(const Var& a) {
    return pointwise(
        a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
        [](float, float y) { return y * (1.0f - y); });
}

Var tanh_op(const Var& a) {
    return pointwise(
        a, [](float x) { return std::tanh(x); }, [](float, float y) { return 1.0f - y * y; });
}

Var exp_op(const Var& a) {
    return pointwise(
        a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Var log_op(const Var& a, float eps) {
    return pointwise(
        a, [eps](float x) { return std::log(std::max(x, eps)); },
        [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

// ---- Slicing / concatenation ----------------------------------------------------

Var slice_lastdim(const Var& x, std::size_t start, std::size_t len) {
    const auto& xs = x->value.shape();
    CPT_CHECK(!xs.empty() && start + len <= xs.back(), "slice_lastdim: [", start, ", ", start + len,
              ") out of range for ", sstr(x->value));
    const std::size_t d = xs.back();
    const std::size_t rows = x->value.numel() / d;
    Shape out_shape = xs;
    out_shape.back() = len;
    Tensor out = tape_tensor(out_shape);
    {
        const float* in = x->value.data().data();
        float* o = out.data().data();
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t j = 0; j < len; ++j) o[r * len + j] = in[r * d + start + j];
        }
    }
    Var node = make_node(std::move(out), {x});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, rows, d, start, len] {
        const float* g = raw->grad.data().data();
        float* dx = x->ensure_grad().data().data();
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t j = 0; j < len; ++j) dx[r * d + start + j] += g[r * len + j];
        }
    };
    return node;
}

Var concat_lastdim(const std::vector<Var>& xs) {
    CPT_CHECK(!xs.empty(), "concat_lastdim: empty input list");
    const auto& first = xs[0]->value.shape();
    CPT_CHECK(!first.empty(), "concat_lastdim: bad shape ", sstr(xs[0]->value));
    std::size_t total_d = 0;
    const std::size_t rows = xs[0]->value.numel() / first.back();
    for (const auto& x : xs) {
        const auto& s = x->value.shape();
        CPT_CHECK(s.size() == first.size() && x->value.numel() / s.back() == rows,
                  "concat_lastdim: shape mismatch ", sstr(xs[0]->value), " vs ", sstr(x->value));
        total_d += s.back();
    }
    Shape out_shape = first;
    out_shape.back() = total_d;
    Tensor out = tape_tensor(out_shape);
    {
        float* o = out.data().data();
        std::size_t offset = 0;
        for (const auto& x : xs) {
            const std::size_t d = x->value.shape().back();
            const float* in = x->value.data().data();
            for (std::size_t r = 0; r < rows; ++r) {
                for (std::size_t j = 0; j < d; ++j) o[r * total_d + offset + j] = in[r * d + j];
            }
            offset += d;
        }
    }
    Var node = make_node(std::move(out), xs);
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, xs, rows, total_d] {
        const float* g = raw->grad.data().data();
        std::size_t offset = 0;
        for (const auto& x : xs) {
            const std::size_t d = x->value.shape().back();
            if (x->requires_grad) {
                float* dx = x->ensure_grad().data().data();
                for (std::size_t r = 0; r < rows; ++r) {
                    for (std::size_t j = 0; j < d; ++j) dx[r * d + j] += g[r * total_d + offset + j];
                }
            }
            offset += d;
        }
    };
    return node;
}

Var add_position(const Var& x, const Var& pos) {
    const auto& xs = x->value.shape();
    const auto& ps = pos->value.shape();
    CPT_CHECK(xs.size() == 3 && ps.size() == 2 && xs[1] <= ps[0] && xs[2] == ps[1],
              "add_position: x ", sstr(x->value), " incompatible with pos ", sstr(pos->value));
    const std::size_t b = xs[0];
    const std::size_t t = xs[1];
    const std::size_t d = xs[2];
    Tensor out = tape_clone(x->value);
    {
        float* o = out.data().data();
        const float* p = pos->value.data().data();
        for (std::size_t i = 0; i < b; ++i) {
            for (std::size_t r = 0; r < t; ++r) {
                for (std::size_t j = 0; j < d; ++j) o[(i * t + r) * d + j] += p[r * d + j];
            }
        }
    }
    Var node = make_node(std::move(out), {x, pos});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, pos, b, t, d] {
        const float* g = raw->grad.data().data();
        if (x->requires_grad) x->ensure_grad().add_(raw->grad);
        if (pos->requires_grad) {
            float* dp = pos->ensure_grad().data().data();
            for (std::size_t i = 0; i < b; ++i) {
                for (std::size_t r = 0; r < t; ++r) {
                    for (std::size_t j = 0; j < d; ++j) dp[r * d + j] += g[(i * t + r) * d + j];
                }
            }
        }
    };
    return node;
}

namespace {

// [B, T, H, Dh] <-> [B, H, T, Dh] permutation copy.
void permute_0213(const float* src, float* dst, std::size_t b, std::size_t d1, std::size_t d2,
                  std::size_t d3) {
    // src laid out [b, d1, d2, d3]; dst laid out [b, d2, d1, d3].
    util::global_pool().parallel_for(
        b, util::grain_for(d1 * d2 * d3), [&](std::size_t b0, std::size_t b1) {
            for (std::size_t i = b0; i < b1; ++i) {
                for (std::size_t x = 0; x < d1; ++x) {
                    for (std::size_t y = 0; y < d2; ++y) {
                        const float* s = src + ((i * d1 + x) * d2 + y) * d3;
                        float* o = dst + ((i * d2 + y) * d1 + x) * d3;
                        for (std::size_t j = 0; j < d3; ++j) o[j] = s[j];
                    }
                }
            }
        });
}

}  // namespace

Var split_heads(const Var& x, std::size_t heads) {
    const auto& xs = x->value.shape();
    CPT_CHECK(xs.size() == 3 && heads > 0 && xs[2] % heads == 0, "split_heads: ", sstr(x->value),
              " not divisible into ", heads, " heads");
    const std::size_t b = xs[0];
    const std::size_t t = xs[1];
    const std::size_t dh = xs[2] / heads;
    Tensor out = tape_tensor({b, heads, t, dh});
    // [B, T, H*Dh] viewed as [B, T, H, Dh]; permute to [B, H, T, Dh].
    permute_0213(x->value.data().data(), out.data().data(), b, t, heads, dh);
    Var node = make_node(std::move(out), {x});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, b, t, heads, dh] {
        Tensor tmp = tape_tensor(x->value.shape());
        permute_0213(raw->grad.data().data(), tmp.data().data(), b, heads, t, dh);
        x->ensure_grad().add_(tmp);
    };
    return node;
}

Var merge_heads(const Var& x) {
    const auto& xs = x->value.shape();
    CPT_CHECK_EQ(xs.size(), std::size_t{4}, " merge_heads: bad shape ", sstr(x->value));
    const std::size_t b = xs[0];
    const std::size_t h = xs[1];
    const std::size_t t = xs[2];
    const std::size_t dh = xs[3];
    Tensor out = tape_tensor({b, t, h * dh});
    permute_0213(x->value.data().data(), out.data().data(), b, h, t, dh);
    Var node = make_node(std::move(out), {x});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, x, b, t, h, dh] {
        Tensor tmp = tape_tensor(x->value.shape());
        permute_0213(raw->grad.data().data(), tmp.data().data(), b, t, h, dh);
        x->ensure_grad().add_(tmp);
    };
    return node;
}

// ---- Reductions ------------------------------------------------------------------

Var sum_all(const Var& a) {
    float total = 0.0f;
    for (float x : a->value.data()) total += x;
    Var node = make_node(Tensor::scalar(total), {a});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, a] {
        const float g = raw->grad[0];
        auto dx = a->ensure_grad().data();
        for (float& x : dx) x += g;
    };
    return node;
}

Var mean_all(const Var& a) {
    const auto n = static_cast<float>(a->value.numel());
    return scale(sum_all(a), n > 0.0f ? 1.0f / n : 0.0f);
}

// ---- Losses ------------------------------------------------------------------------

Var cross_entropy(const Var& logits, const std::vector<int>& targets) {
    const auto& ls = logits->value.shape();
    CPT_CHECK(ls.size() == 2 && ls[0] == targets.size(), "cross_entropy: logits ",
              sstr(logits->value), " vs ", targets.size(), " targets");
    const std::size_t n = ls[0];
    const std::size_t c = ls[1];
    // Validate targets and count active rows serially up front, then let the
    // fused kernel compute row-disjoint softmax + per-row loss in parallel.
    std::size_t active = 0;
    for (std::size_t r = 0; r < n; ++r) {
        const int tgt = targets[r];
        if (tgt == kIgnoreIndex) continue;
        CPT_CHECK(tgt >= 0 && static_cast<std::size_t>(tgt) < c,
                  "cross_entropy: target ", tgt, " out of range for ", c, " classes at row ", r);
        ++active;
    }
    Tensor probs = tape_tensor({n, c});
    // Per-row losses land in a reusable buffer and are reduced serially in
    // ascending row order, keeping the loss value thread-count independent.
    static thread_local std::vector<double> rowloss;
    rowloss.assign(n, 0.0);
    kernels::softmax_xent_rows(logits->value.data().data(), probs.data().data(), targets.data(),
                               kIgnoreIndex, rowloss.data(), n, c, &util::global_pool());
    double loss = 0.0;
    for (std::size_t r = 0; r < n; ++r) loss += rowloss[r];
    const float denom = active > 0 ? static_cast<float>(active) : 1.0f;
    Var node = make_node(Tensor::scalar(static_cast<float>(loss) / denom), {logits});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, logits, targets, probs, n, c, denom] {
        const float g = raw->grad[0] / denom;
        kernels::xent_backward_rows(probs.data().data(), targets.data(), kIgnoreIndex,
                                    logits->ensure_grad().data().data(), g, n, c,
                                    &util::global_pool());
    };
    return node;
}

Var gaussian_nll(const Var& mu, const Var& logvar, const Tensor& target,
                 const std::vector<float>& mask) {
    const std::size_t n = target.numel();
    CPT_CHECK(mu->value.numel() == n && logvar->value.numel() == n && mask.size() == n,
              "gaussian_nll: mu ", sstr(mu->value), " / logvar ", sstr(logvar->value),
              " / mask ", mask.size(), " must all have ", n, " elements");
    float active = 0.0f;
    for (float m : mask) active += (m != 0.0f) ? 1.0f : 0.0f;
    const float denom = active > 0.0f ? active : 1.0f;
    double loss = 0.0;
    {
        const float* pm = mu->value.data().data();
        const float* pv = logvar->value.data().data();
        auto pt = target.data();
        for (std::size_t i = 0; i < n; ++i) {
            if (mask[i] == 0.0f) continue;
            const float diff = pt[i] - pm[i];
            loss += 0.5 * (pv[i] + diff * diff * std::exp(-pv[i]));
        }
    }
    Var node = make_node(Tensor::scalar(static_cast<float>(loss) / denom), {mu, logvar});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    Tensor target_copy = tape_clone(target);
    node->backward_fn = [raw, mu, logvar, target_copy, mask, n, denom] {
        const float g = raw->grad[0] / denom;
        const float* pm = mu->value.data().data();
        const float* pv = logvar->value.data().data();
        auto pt = target_copy.data();
        float* dmu = mu->requires_grad ? mu->ensure_grad().data().data() : nullptr;
        float* dlv = logvar->requires_grad ? logvar->ensure_grad().data().data() : nullptr;
        for (std::size_t i = 0; i < n; ++i) {
            if (mask[i] == 0.0f) continue;
            const float inv_var = std::exp(-pv[i]);
            const float diff = pt[i] - pm[i];
            if (dmu) dmu[i] += g * (-diff * inv_var);
            if (dlv) dlv[i] += g * 0.5f * (1.0f - diff * diff * inv_var);
        }
    };
    return node;
}

Var mse_masked(const Var& pred, const Tensor& target, const std::vector<float>& mask) {
    const std::size_t n = target.numel();
    CPT_CHECK(pred->value.numel() == n && mask.size() == n, "mse_masked: pred ",
              sstr(pred->value), " / mask ", mask.size(), " must have ", n, " elements");
    float active = 0.0f;
    for (float m : mask) active += (m != 0.0f) ? 1.0f : 0.0f;
    const float denom = active > 0.0f ? active : 1.0f;
    double loss = 0.0;
    {
        const float* pp = pred->value.data().data();
        auto pt = target.data();
        for (std::size_t i = 0; i < n; ++i) {
            if (mask[i] == 0.0f) continue;
            const float diff = pp[i] - pt[i];
            loss += diff * diff;
        }
    }
    Var node = make_node(Tensor::scalar(static_cast<float>(loss) / denom), {pred});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    Tensor target_copy = tape_clone(target);
    node->backward_fn = [raw, pred, target_copy, mask, n, denom] {
        const float g = raw->grad[0] / denom;
        const float* pp = pred->value.data().data();
        auto pt = target_copy.data();
        float* dx = pred->ensure_grad().data().data();
        for (std::size_t i = 0; i < n; ++i) {
            if (mask[i] == 0.0f) continue;
            dx[i] += g * 2.0f * (pp[i] - pt[i]);
        }
    };
    return node;
}

Var bce_with_logits(const Var& logits, const std::vector<float>& targets) {
    const std::size_t n = logits->value.numel();
    CPT_CHECK_EQ(targets.size(), n, " bce_with_logits: targets vs logits ", sstr(logits->value));
    double loss = 0.0;
    {
        const float* in = logits->value.data().data();
        for (std::size_t i = 0; i < n; ++i) {
            // Numerically stable: max(x,0) - x*t + log(1 + exp(-|x|)).
            const float x = in[i];
            loss += std::max(x, 0.0f) - x * targets[i] + std::log1p(std::exp(-std::abs(x)));
        }
    }
    const float denom = n > 0 ? static_cast<float>(n) : 1.0f;
    Var node = make_node(Tensor::scalar(static_cast<float>(loss) / denom), {logits});
    if (!node->requires_grad) return node;
    Node* raw = node.get();
    node->backward_fn = [raw, logits, targets, n, denom] {
        const float g = raw->grad[0] / denom;
        const float* in = logits->value.data().data();
        float* dx = logits->ensure_grad().data().data();
        for (std::size_t i = 0; i < n; ++i) {
            const float p = 1.0f / (1.0f + std::exp(-in[i]));
            dx[i] += g * (p - targets[i]);
        }
    };
    return node;
}

}  // namespace cpt::nn
