// First-order optimizers over autograd parameters, plus gradient clipping.
#pragma once

#include <span>
#include <vector>

#include "autograd.hpp"

namespace cpt::nn {

// Scales all gradients so their joint L2 norm is at most `max_norm`; returns
// the pre-clip norm.
double clip_grad_norm(std::span<const Var> params, double max_norm);

class Optimizer {
public:
    virtual ~Optimizer() = default;
    // Applies one update using the parameters' current gradients.
    virtual void step() = 0;
    void zero_grad();

protected:
    explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
    std::vector<Var> params_;
};

class Sgd : public Optimizer {
public:
    Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);
    void step() override;

private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

// Adam with optional decoupled weight decay (AdamW when weight_decay > 0):
// the decay is applied directly to the weights, not through the moment
// estimates, per Loshchilov & Hutter.
class Adam : public Optimizer {
public:
    Adam(std::vector<Var> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
         float eps = 1e-8f, float weight_decay = 0.0f);
    void step() override;

    // Fused global-norm clip + update: computes the joint gradient L2 norm
    // (one pass, no gradient mutation), folds the clip factor into the Adam
    // update as a gradient scale, and applies it in a single pass per
    // parameter via the tier-dispatched kernels. Equivalent to
    // clip_grad_norm(params, max_norm) followed by step() — the fold is a
    // bit-exact identity on the scalar/sse2 tiers — but touches each gradient
    // element once instead of three times. Returns the pre-clip norm.
    double step_clipped(double max_norm);

    void set_lr(float lr) { lr_ = lr; }
    float lr() const { return lr_; }

private:
    // One update pass with gradients scaled by `gscale` on the fly.
    void apply(float gscale);

    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weight_decay_;
    long t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

}  // namespace cpt::nn
