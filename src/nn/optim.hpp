// First-order optimizers over autograd parameters, plus gradient clipping.
#pragma once

#include <span>
#include <vector>

#include "autograd.hpp"

namespace cpt::nn {

// Scales all gradients so their joint L2 norm is at most `max_norm`; returns
// the pre-clip norm.
double clip_grad_norm(std::span<const Var> params, double max_norm);

class Optimizer {
public:
    virtual ~Optimizer() = default;
    // Applies one update using the parameters' current gradients.
    virtual void step() = 0;
    void zero_grad();

protected:
    explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
    std::vector<Var> params_;
};

class Sgd : public Optimizer {
public:
    Sgd(std::vector<Var> params, float lr, float momentum = 0.0f);
    void step() override;

private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

// Adam with optional decoupled weight decay (AdamW when weight_decay > 0):
// the decay is applied directly to the weights, not through the moment
// estimates, per Loshchilov & Hutter.
class Adam : public Optimizer {
public:
    Adam(std::vector<Var> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
         float eps = 1e-8f, float weight_decay = 0.0f);
    void step() override;

    void set_lr(float lr) { lr_ = lr; }
    float lr() const { return lr_; }

private:
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weight_decay_;
    long t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

}  // namespace cpt::nn
