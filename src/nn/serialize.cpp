#include "serialize.hpp"

#include <cstdint>
#include <fstream>
#include <set>
#include <stdexcept>

#include "quant.hpp"
#include "util/check.hpp"

namespace cpt::nn {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'T', 'W'};
constexpr std::uint32_t kVersionF32 = 1;
constexpr std::uint32_t kVersionDtyped = 2;

// Per-entry dtype codes (version >= 2).
constexpr std::uint8_t kDtypeF32 = 0;
constexpr std::uint8_t kDtypeQ8 = 1;

const char* dtype_name(std::uint8_t dtype) {
    switch (dtype) {
        case kDtypeF32: return "f32";
        case kDtypeQ8: return "q8";
        default: return "?";
    }
}

template <typename T>
void write_pod(std::ostream& out, T value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const std::string& path) {
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) throw std::runtime_error("load_parameters: truncated file '" + path + "'");
    return value;
}

void save_parameters_impl(const std::string& path, const std::vector<NamedParam>& params,
                          const std::set<std::string>& quantize) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_parameters: cannot open '" + path + "'");
    out.write(kMagic, sizeof(kMagic));
    const bool dtyped = !quantize.empty();
    write_pod<std::uint32_t>(out, dtyped ? kVersionDtyped : kVersionF32);
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(params.size()));
    for (const auto& [name, p] : params) {
        write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
        out.write(name.data(), static_cast<std::streamsize>(name.size()));
        const bool q8 = quantize.count(name) != 0;
        if (dtyped) write_pod<std::uint8_t>(out, q8 ? kDtypeQ8 : kDtypeF32);
        const auto& shape = p->value.shape();
        write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(shape.size()));
        for (std::size_t d : shape) write_pod<std::uint64_t>(out, d);
        const auto data = p->value.data();
        if (q8) {
            // Same deterministic per-row symmetric scheme as QuantLinear::from,
            // so a loaded checkpoint reproduces quantize_weights() exactly.
            const std::size_t rows = shape[0];
            const std::size_t cols = shape[1];
            std::vector<std::int8_t> payload(rows * cols);
            std::vector<float> scale(rows);
            quantize_weights_rowwise(data.data(), rows, cols, payload.data(), scale.data());
            out.write(reinterpret_cast<const char*>(scale.data()),
                      static_cast<std::streamsize>(rows * sizeof(float)));
            out.write(reinterpret_cast<const char*>(payload.data()),
                      static_cast<std::streamsize>(payload.size()));
        } else {
            out.write(reinterpret_cast<const char*>(data.data()),
                      static_cast<std::streamsize>(data.size() * sizeof(float)));
        }
    }
    if (!out) throw std::runtime_error("save_parameters: write failed for '" + path + "'");
}

void load_parameters_impl(const std::string& path, const std::vector<NamedParam>& params,
                          QuantSections* quant_out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_parameters: cannot open '" + path + "'");
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
        throw std::runtime_error("load_parameters: bad magic in '" + path + "'");
    }
    const auto version = read_pod<std::uint32_t>(in, path);
    if (version != kVersionF32 && version != kVersionDtyped) {
        throw std::runtime_error("load_parameters: unsupported version " +
                                 std::to_string(version) + " in '" + path + "'");
    }
    const auto count = read_pod<std::uint32_t>(in, path);

    std::map<std::string, Var> by_name;
    for (const auto& [name, p] : params) by_name[name] = p;
    std::size_t loaded = 0;
    if (quant_out) quant_out->clear();

    for (std::uint32_t i = 0; i < count; ++i) {
        const auto name_len = read_pod<std::uint32_t>(in, path);
        std::string name(name_len, '\0');
        in.read(name.data(), name_len);
        if (!in) throw std::runtime_error("load_parameters: truncated file '" + path + "'");
        const std::uint8_t dtype =
            version >= kVersionDtyped ? read_pod<std::uint8_t>(in, path) : kDtypeF32;
        if (dtype != kDtypeF32 && dtype != kDtypeQ8) {
            throw std::runtime_error("load_parameters: unknown dtype " + std::to_string(dtype) +
                                     " for section '" + name + "' in '" + path + "'");
        }
        const auto rank = read_pod<std::uint32_t>(in, path);
        Shape shape(rank);
        for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(in, path));
        const std::size_t numel = shape_numel(shape);

        const auto it = by_name.find(name);
        if (it == by_name.end()) {
            throw std::runtime_error("load_parameters: unknown parameter '" + name + "' in '" +
                                     path + "'");
        }
        if (it->second->value.shape() != shape) {
            throw std::runtime_error("load_parameters: shape mismatch for '" + name + "' in '" +
                                     path + "': file " + shape_to_string(shape) + " vs model " +
                                     shape_to_string(it->second->value.shape()));
        }
        auto dst = it->second->value.data();

        if (dtype == kDtypeQ8) {
            if (rank != 2) {
                throw std::runtime_error("load_parameters: quantized section '" + name +
                                         "' in '" + path + "' must be rank 2, got rank " +
                                         std::to_string(rank));
            }
            if (!quant_out) {
                throw std::runtime_error(
                    "load_parameters: '" + path + "' stores section '" + name +
                    "' as q8 but the model expects f32 weights here; load it through a "
                    "quantization-aware path (Precision::kInt8W8A32) or re-save the hub in fp32");
            }
            QuantSection sec;
            sec.shape = shape;
            sec.scale.resize(shape[0]);
            sec.payload.resize(numel);
            in.read(reinterpret_cast<char*>(sec.scale.data()),
                    static_cast<std::streamsize>(sec.scale.size() * sizeof(float)));
            in.read(reinterpret_cast<char*>(sec.payload.data()),
                    static_cast<std::streamsize>(sec.payload.size()));
            if (!in) {
                throw std::runtime_error("load_parameters: truncated q8 section '" + name +
                                         "' in '" + path + "'");
            }
            dequantize_weights_rowwise(sec.payload.data(), sec.scale.data(), shape[0], shape[1],
                                       dst.data());
            (*quant_out)[name] = std::move(sec);
        } else {
            std::vector<float> data(numel);
            in.read(reinterpret_cast<char*>(data.data()),
                    static_cast<std::streamsize>(numel * sizeof(float)));
            if (!in) {
                throw std::runtime_error("load_parameters: truncated " +
                                         std::string(dtype_name(dtype)) + " section '" + name +
                                         "' in '" + path + "'");
            }
            for (std::size_t j = 0; j < numel; ++j) dst[j] = data[j];
        }
        ++loaded;
    }
    if (loaded != by_name.size()) {
        throw std::runtime_error("load_parameters: checkpoint '" + path + "' covers " +
                                 std::to_string(loaded) + " of " +
                                 std::to_string(by_name.size()) + " parameters");
    }
}

}  // namespace

void save_parameters(const std::string& path, const std::vector<NamedParam>& params) {
    save_parameters_impl(path, params, {});
}

void save_parameters(const std::string& path, const std::vector<NamedParam>& params,
                     const std::vector<std::string>& quantize) {
    std::map<std::string, const NamedParam*> by_name;
    for (const auto& np : params) by_name[np.name] = &np;
    std::set<std::string> names;
    for (const auto& q : quantize) {
        const auto it = by_name.find(q);
        if (it == by_name.end()) {
            throw std::invalid_argument("save_parameters: quantize list names unknown parameter '" +
                                        q + "'");
        }
        if (it->second->param->value.shape().size() != 2) {
            throw std::invalid_argument("save_parameters: cannot quantize non-matrix parameter '" +
                                        q + "'");
        }
        names.insert(q);
    }
    save_parameters_impl(path, params, names);
}

void load_parameters(const std::string& path, const std::vector<NamedParam>& params) {
    load_parameters_impl(path, params, nullptr);
}

void load_parameters(const std::string& path, const std::vector<NamedParam>& params,
                     QuantSections* quant_out) {
    CPT_CHECK(quant_out != nullptr);
    load_parameters_impl(path, params, quant_out);
}

}  // namespace cpt::nn
