#include "serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace cpt::nn {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'T', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) throw std::runtime_error("checkpoint: truncated file");
    return value;
}

}  // namespace

void save_parameters(const std::string& path, const std::vector<NamedParam>& params) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_parameters: cannot open '" + path + "'");
    out.write(kMagic, sizeof(kMagic));
    write_pod<std::uint32_t>(out, kVersion);
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(params.size()));
    for (const auto& [name, p] : params) {
        write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
        out.write(name.data(), static_cast<std::streamsize>(name.size()));
        const auto& shape = p->value.shape();
        write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(shape.size()));
        for (std::size_t d : shape) write_pod<std::uint64_t>(out, d);
        const auto data = p->value.data();
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size() * sizeof(float)));
    }
    if (!out) throw std::runtime_error("save_parameters: write failed for '" + path + "'");
}

void load_parameters(const std::string& path, const std::vector<NamedParam>& params) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_parameters: cannot open '" + path + "'");
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
        throw std::runtime_error("load_parameters: bad magic in '" + path + "'");
    }
    const auto version = read_pod<std::uint32_t>(in);
    if (version != kVersion) throw std::runtime_error("load_parameters: unsupported version");
    const auto count = read_pod<std::uint32_t>(in);

    std::map<std::string, Var> by_name;
    for (const auto& [name, p] : params) by_name[name] = p;
    std::size_t loaded = 0;

    for (std::uint32_t i = 0; i < count; ++i) {
        const auto name_len = read_pod<std::uint32_t>(in);
        std::string name(name_len, '\0');
        in.read(name.data(), name_len);
        const auto rank = read_pod<std::uint32_t>(in);
        Shape shape(rank);
        for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
        const std::size_t numel = shape_numel(shape);
        std::vector<float> data(numel);
        in.read(reinterpret_cast<char*>(data.data()),
                static_cast<std::streamsize>(numel * sizeof(float)));
        if (!in) throw std::runtime_error("load_parameters: truncated tensor data");

        const auto it = by_name.find(name);
        if (it == by_name.end()) {
            throw std::runtime_error("load_parameters: unknown parameter '" + name + "'");
        }
        if (it->second->value.shape() != shape) {
            throw std::runtime_error("load_parameters: shape mismatch for '" + name + "': file " +
                                     shape_to_string(shape) + " vs model " +
                                     shape_to_string(it->second->value.shape()));
        }
        auto dst = it->second->value.data();
        for (std::size_t j = 0; j < numel; ++j) dst[j] = data[j];
        ++loaded;
    }
    if (loaded != by_name.size()) {
        throw std::runtime_error("load_parameters: checkpoint covers " + std::to_string(loaded) +
                                 " of " + std::to_string(by_name.size()) + " parameters");
    }
}

}  // namespace cpt::nn
