#include "semi_markov.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace cpt::smm {

using cellular::EventId;
using cellular::StateMachine;
using cellular::SubState;

namespace {
constexpr std::size_t kNumSubStates = static_cast<std::size_t>(SubState::kNumSubStates);
}

std::size_t SemiMarkovModel::index(SubState s, EventId e) const {
    return static_cast<std::size_t>(s) * num_events_ + e;
}

SemiMarkovModel SemiMarkovModel::fit(const trace::Dataset& ds, const SmmConfig& config) {
    const auto& machine = StateMachine::for_generation(ds.generation);
    SemiMarkovModel m;
    m.generation_ = ds.generation;
    m.config_ = config;
    m.num_events_ = machine.num_events();
    m.transition_counts_.assign(kNumSubStates * m.num_events_, 0.0);
    std::vector<std::vector<double>> delays(kNumSubStates * m.num_events_);

    for (const auto& stream : ds.streams) {
        if (stream.length() < config.min_stream_length) continue;
        // Walk the machine; identical bootstrap rule as the replayer.
        std::optional<SubState> state;
        double prev_t = 0.0;
        bool counted_stream = false;
        for (const auto& ev : stream.events) {
            if (!state) {
                state = machine.bootstrap_state(ev.type);
                if (state) {
                    prev_t = ev.timestamp;
                    m.initial_state_counts_[static_cast<std::size_t>(*state)] += 1.0;
                    counted_stream = true;
                    m.device_ = stream.device;
                    m.hour_ = stream.hour_of_day;
                }
                continue;
            }
            const auto next = machine.step(*state, ev.type);
            if (!next) continue;  // real traces contain none; skip defensively
            const std::size_t key = m.index(*state, ev.type);
            m.transition_counts_[key] += 1.0;
            delays[key].push_back(ev.timestamp - prev_t);
            prev_t = ev.timestamp;
            state = *next;
        }
        if (counted_stream) ++m.fitted_streams_;
    }
    CPT_CHECK_GT(m.fitted_streams_, std::size_t{0},
                 " SemiMarkovModel::fit: no usable streams in dataset");
    m.sojourn_.resize(delays.size());
    for (std::size_t i = 0; i < delays.size(); ++i) {
        if (!delays[i].empty()) m.sojourn_[i] = EmpiricalCdf(std::move(delays[i]));
    }
    return m;
}

std::size_t SemiMarkovModel::num_cdfs() const {
    std::size_t n = 0;
    for (const auto& cdf : sojourn_) {
        if (!cdf.empty()) ++n;
    }
    return n;
}

trace::Stream SemiMarkovModel::generate_stream(const std::string& ue_id, util::Rng& rng) const {
    trace::Stream out;
    out.ue_id = ue_id;
    out.device = device_;
    out.hour_of_day = hour_;

    auto state = static_cast<SubState>(
        rng.categorical(std::span<const double>(initial_state_counts_)));
    double t = 0.0;
    bool first = true;
    while (out.events.size() < config_.max_events_per_stream) {
        // Next-event distribution at the current sub-state.
        const std::size_t base = static_cast<std::size_t>(state) * num_events_;
        double total = 0.0;
        for (std::size_t e = 0; e < num_events_; ++e) total += transition_counts_[base + e];
        if (total <= 0.0) break;  // no outgoing transition observed in training
        std::span<const double> weights(transition_counts_.data() + base, num_events_);
        const auto event = static_cast<EventId>(rng.categorical(weights));
        const auto& cdf = sojourn_[base + event];
        const double delay = cdf.empty() ? 0.0 : std::max(0.0, cdf.sample(rng));
        if (!first && t + delay > config_.window_seconds) break;
        t = first ? 0.0 : t + delay;
        first = false;
        out.events.push_back({t, event});
        const auto next =
            StateMachine::for_generation(generation_).step(state, event);
        CPT_CHECK(next.has_value(), "SemiMarkovModel generated an illegal transition from state ",
                  static_cast<int>(state), " on event ", event);
        state = *next;
    }
    return out;
}

trace::Dataset SemiMarkovModel::generate(std::size_t n, util::Rng& rng,
                                         const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = generation_;
    for (std::size_t i = 0; i < n; ++i) {
        char id[64];
        std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), i);
        trace::Stream s;
        // Bounded re-draws: a stream that terminated below the minimum length
        // is discarded and re-sampled.
        for (int attempt = 0; attempt < 5; ++attempt) {
            s = generate_stream(id, rng);
            if (s.length() >= config_.min_stream_length) break;
        }
        if (s.length() >= config_.min_stream_length) ds.streams.push_back(std::move(s));
    }
    return ds;
}

}  // namespace cpt::smm
