// Semi-Markov model over the two-level 3GPP UE state machine: per-sub-state
// next-event probabilities plus a per-(sub-state, event) empirical sojourn
// CDF, both fitted by replaying real streams (the SMM baseline of the paper,
// originally Meng et al. IMC'23).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "cellular/state_machine.hpp"
#include "empirical_cdf.hpp"
#include "trace/stream.hpp"
#include "util/rng.hpp"

namespace cpt::smm {

struct SmmConfig {
    double window_seconds = 3600.0;
    std::size_t max_events_per_stream = 600;
    std::size_t min_stream_length = 2;
};

class SemiMarkovModel {
public:
    // Fits transition counts and sojourn CDFs from the streams of `ds`
    // (replayed through the generation's state machine; violating events are
    // skipped). Throws if the dataset contains no usable streams.
    static SemiMarkovModel fit(const trace::Dataset& ds, const SmmConfig& config = {});

    // Generates one stream. Because the model embeds the state machine, the
    // output never violates stateful semantics.
    trace::Stream generate_stream(const std::string& ue_id, util::Rng& rng) const;

    // Generates `n` streams (shorter than min_stream_length are re-drawn a
    // bounded number of times, then dropped).
    trace::Dataset generate(std::size_t n, util::Rng& rng,
                            const std::string& ue_prefix = "smm") const;

    cellular::Generation generation() const { return generation_; }
    std::size_t num_fitted_streams() const { return fitted_streams_; }
    // Number of non-empty per-transition CDFs (the paper counts 283,024 of
    // these across its 20,216 models).
    std::size_t num_cdfs() const;

private:
    SemiMarkovModel() = default;

    std::size_t index(cellular::SubState s, cellular::EventId e) const;

    cellular::Generation generation_ = cellular::Generation::kLte4G;
    SmmConfig config_;
    std::size_t num_events_ = 0;
    std::size_t fitted_streams_ = 0;
    // Unnormalized next-event counts per sub-state.
    std::vector<double> transition_counts_;  // [num_substates * num_events]
    std::vector<EmpiricalCdf> sojourn_;      // same indexing
    // Distribution over bootstrap sub-states of training streams.
    std::array<double, static_cast<std::size_t>(cellular::SubState::kNumSubStates)>
        initial_state_counts_{};
    trace::DeviceType device_ = trace::DeviceType::kPhone;
    int hour_ = 0;
};

}  // namespace cpt::smm
