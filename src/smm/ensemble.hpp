// SMM generator frontends matching the paper's two baselines:
//   * SMM-1  — a single semi-Markov model per device type (§5.1);
//   * SMM-20k — an ensemble of per-cluster models, the scaled-down equivalent
//     of the paper's 20,216 per-cluster-per-hour models.
#pragma once

#include <vector>

#include "cluster.hpp"
#include "semi_markov.hpp"

namespace cpt::smm {

// Fits one SMM on the whole (single-device-type) dataset. Equivalent to the
// paper's SMM-1 baseline.
SemiMarkovModel fit_smm1(const trace::Dataset& ds, const SmmConfig& config = {});

// Ensemble of cluster-specialized SMMs with empirical cluster weights.
class SmmEnsemble {
public:
    // Clusters the dataset into (up to) `clusters` groups and fits one SMM
    // per non-trivial cluster (tiny clusters are merged into the nearest
    // usable one by falling back to a whole-dataset model).
    static SmmEnsemble fit(const trace::Dataset& ds, std::size_t clusters, util::Rng& rng,
                           const SmmConfig& config = {});

    // Picks a cluster by empirical share, then generates from its model.
    trace::Dataset generate(std::size_t n, util::Rng& rng,
                            const std::string& ue_prefix = "smm20k") const;

    std::size_t num_models() const { return models_.size(); }
    // Total empirical sojourn CDFs across the ensemble (paper: 283,024).
    std::size_t num_cdfs() const;

private:
    std::vector<SemiMarkovModel> models_;
    std::vector<double> weights_;
};

}  // namespace cpt::smm
