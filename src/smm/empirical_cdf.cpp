#include "empirical_cdf.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cpt::smm {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::sample(util::Rng& rng) const {
    CPT_CHECK(!sorted_.empty(), "EmpiricalCdf::sample: empty CDF");
    if (sorted_.size() == 1) return sorted_[0];
    const double u = rng.uniform() * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(u);
    const double frac = u - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

}  // namespace cpt::smm
