// Empirical CDF sojourn-time model. The SMM paper found that classic
// parametric interarrival distributions (Poisson/Pareto/Weibull/TCPlib) do
// not fit cellular control traffic and instead stores one empirical CDF per
// SMM transition (paper §3.3); this class is that per-transition CDF model.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace cpt::smm {

class EmpiricalCdf {
public:
    EmpiricalCdf() = default;
    explicit EmpiricalCdf(std::vector<double> samples);

    bool empty() const { return sorted_.empty(); }
    std::size_t size() const { return sorted_.size(); }

    // Inverse-transform sampling with linear interpolation between adjacent
    // order statistics (keeps the support continuous instead of replaying the
    // exact training values).
    double sample(util::Rng& rng) const;

    const std::vector<double>& sorted_samples() const { return sorted_; }

private:
    std::vector<double> sorted_;
};

}  // namespace cpt::smm
