#include "markov.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace cpt::smm {

std::uint32_t MarkovGenerator::context_key(const std::vector<cellular::EventId>& history) const {
    // 6 bits per event id; +1 offset distinguishes "absent" from event 0.
    std::uint32_t key = 0;
    const std::size_t take = std::min(history.size(), config_.order);
    for (std::size_t i = history.size() - take; i < history.size(); ++i) {
        key = (key << 6) | (static_cast<std::uint32_t>(history[i]) + 1u);
    }
    return key;
}

MarkovGenerator MarkovGenerator::fit(const trace::Dataset& ds, const Config& config) {
    CPT_CHECK(config.order >= 1 && config.order <= 4,
              "MarkovGenerator::fit: order must be in [1, 4], got ", config.order);
    MarkovGenerator m;
    m.config_ = config;
    m.generation_ = ds.generation;
    m.num_events_ = cellular::vocabulary(ds.generation).size();
    m.initial_counts_.assign(m.num_events_, 0.0);
    std::vector<std::vector<double>> delay_samples((m.num_events_ + 1) * m.num_events_);

    std::size_t fitted = 0;
    for (const auto& s : ds.streams) {
        if (s.length() < 2) continue;
        ++fitted;
        m.initial_counts_[s.events.front().type] += 1.0;
        std::vector<cellular::EventId> history{s.events.front().type};
        for (std::size_t k = 1; k < s.events.size(); ++k) {
            const auto ev = s.events[k].type;
            auto& counts = m.transitions_[m.context_key(history)];
            if (counts.empty()) counts.assign(m.num_events_, 0.0);
            counts[ev] += 1.0;
            const std::size_t prev = history.back() + 1;
            delay_samples[prev * m.num_events_ + ev].push_back(s.events[k].timestamp -
                                                               s.events[k - 1].timestamp);
            history.push_back(ev);
        }
    }
    CPT_CHECK_GT(fitted, std::size_t{0}, " MarkovGenerator::fit: no usable streams");
    m.delays_.resize(delay_samples.size());
    for (std::size_t i = 0; i < delay_samples.size(); ++i) {
        if (!delay_samples[i].empty()) m.delays_[i] = EmpiricalCdf(std::move(delay_samples[i]));
    }
    return m;
}

trace::Stream MarkovGenerator::generate_stream(const std::string& ue_id, util::Rng& rng) const {
    trace::Stream out;
    out.ue_id = ue_id;
    const auto first =
        static_cast<cellular::EventId>(rng.categorical(std::span<const double>(initial_counts_)));
    out.events.push_back({0.0, first});
    std::vector<cellular::EventId> history{first};
    double t = 0.0;
    while (out.events.size() < config_.max_events_per_stream) {
        const auto it = transitions_.find(context_key(history));
        if (it == transitions_.end()) break;  // unseen context: stream ends
        double total = 0.0;
        for (double c : it->second) total += c;
        if (total <= 0.0) break;
        const auto ev =
            static_cast<cellular::EventId>(rng.categorical(std::span<const double>(it->second)));
        const std::size_t prev = history.back() + 1;
        const auto& cdf = delays_[prev * num_events_ + ev];
        const double delay = cdf.empty() ? 0.0 : std::max(0.0, cdf.sample(rng));
        if (t + delay > config_.window_seconds) break;
        t += delay;
        out.events.push_back({t, ev});
        history.push_back(ev);
    }
    return out;
}

trace::Dataset MarkovGenerator::generate(std::size_t n, util::Rng& rng,
                                         const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = generation_;
    for (std::size_t i = 0; i < n; ++i) {
        char id[64];
        std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), i);
        trace::Stream s;
        for (int attempt = 0; attempt < 5; ++attempt) {
            s = generate_stream(id, rng);
            if (s.length() >= 2) break;
        }
        if (s.length() >= 2) ds.streams.push_back(std::move(s));
    }
    return ds;
}

}  // namespace cpt::smm
