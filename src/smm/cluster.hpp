// Stream clustering for the SMM-20k ensemble. The SMM paper clusters UEs on
// domain-specific features (flow length, sojourn variation) and instantiates
// one model per cluster; we use k-means over five per-stream features.
#pragma once

#include <array>
#include <vector>

#include "trace/stream.hpp"
#include "util/rng.hpp"

namespace cpt::smm {

inline constexpr std::size_t kNumStreamFeatures = 5;
using FeatureVector = std::array<double, kNumStreamFeatures>;

// Per-stream features: log flow length, mean log interarrival, handover
// fraction, mean CONNECTED sojourn (log), mean IDLE sojourn (log).
FeatureVector stream_features(const trace::Stream& s);

struct Clustering {
    std::vector<FeatureVector> centroids;      // k centroids (standardized space)
    std::vector<std::size_t> assignment;       // per input stream
    std::vector<std::size_t> sizes;            // per cluster
    // Standardization applied before clustering.
    FeatureVector feature_mean{};
    FeatureVector feature_std{};
};

// Lloyd's k-means with k-means++-style seeding on standardized features.
// `k` is clamped to the number of streams. Deterministic given `rng`.
Clustering kmeans_streams(const trace::Dataset& ds, std::size_t k, util::Rng& rng,
                          std::size_t max_iters = 50);

}  // namespace cpt::smm
