#include "cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cellular/state_machine.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace cpt::smm {

FeatureVector stream_features(const trace::Stream& s) {
    FeatureVector f{};
    f[0] = std::log(static_cast<double>(std::max<std::size_t>(s.length(), 1)));

    const auto ia = s.interarrivals();
    double log_ia_sum = 0.0;
    std::size_t ia_count = 0;
    for (std::size_t i = 1; i < ia.size(); ++i) {
        log_ia_sum += std::log(ia[i] + 1.0);
        ++ia_count;
    }
    f[1] = ia_count ? log_ia_sum / static_cast<double>(ia_count) : 0.0;

    std::size_t ho = 0;
    for (const auto& e : s.events) {
        if (e.type == cellular::lte::kHo) ++ho;
    }
    f[2] = s.length() ? static_cast<double>(ho) / static_cast<double>(s.length()) : 0.0;

    const auto& machine =
        cellular::StateMachine::for_generation(cellular::Generation::kLte4G);
    const auto r = cellular::StateMachineReplayer(machine).replay(s.events);
    f[3] = r.sojourn_connected.empty()
               ? 0.0
               : std::log(util::summarize(r.sojourn_connected).mean + 1.0);
    f[4] = r.sojourn_idle.empty() ? 0.0 : std::log(util::summarize(r.sojourn_idle).mean + 1.0);
    return f;
}

namespace {

double sq_distance(const FeatureVector& a, const FeatureVector& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < kNumStreamFeatures; ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
}

}  // namespace

Clustering kmeans_streams(const trace::Dataset& ds, std::size_t k, util::Rng& rng,
                          std::size_t max_iters) {
    const std::size_t n = ds.streams.size();
    CPT_CHECK_GT(n, std::size_t{0}, " kmeans_streams: empty dataset");
    k = std::clamp<std::size_t>(k, 1, n);

    std::vector<FeatureVector> feats(n);
    for (std::size_t i = 0; i < n; ++i) feats[i] = stream_features(ds.streams[i]);

    Clustering c;
    // Standardize features so no single scale dominates.
    for (std::size_t j = 0; j < kNumStreamFeatures; ++j) {
        std::vector<double> col(n);
        for (std::size_t i = 0; i < n; ++i) col[i] = feats[i][j];
        const auto s = util::summarize(col);
        c.feature_mean[j] = s.mean;
        c.feature_std[j] = s.stddev > 1e-9 ? s.stddev : 1.0;
        for (std::size_t i = 0; i < n; ++i) feats[i][j] = (feats[i][j] - s.mean) / c.feature_std[j];
    }

    // k-means++ seeding.
    c.centroids.push_back(feats[rng.uniform_index(n)]);
    std::vector<double> dist2(n, std::numeric_limits<double>::max());
    while (c.centroids.size() < k) {
        for (std::size_t i = 0; i < n; ++i) {
            dist2[i] = std::min(dist2[i], sq_distance(feats[i], c.centroids.back()));
        }
        double total = 0.0;
        for (double d : dist2) total += d;
        if (total <= 0.0) {
            c.centroids.push_back(feats[rng.uniform_index(n)]);
            continue;
        }
        c.centroids.push_back(feats[rng.categorical(std::span<const double>(dist2))]);
    }

    c.assignment.assign(n, 0);
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t j = 0; j < c.centroids.size(); ++j) {
                const double d = sq_distance(feats[i], c.centroids[j]);
                if (d < best_d) {
                    best_d = d;
                    best = j;
                }
            }
            if (c.assignment[i] != best) {
                c.assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        std::vector<FeatureVector> sums(c.centroids.size(), FeatureVector{});
        std::vector<std::size_t> counts(c.centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < kNumStreamFeatures; ++j) {
                sums[c.assignment[i]][j] += feats[i][j];
            }
            ++counts[c.assignment[i]];
        }
        for (std::size_t j = 0; j < c.centroids.size(); ++j) {
            if (counts[j] == 0) continue;  // empty cluster keeps its centroid
            for (std::size_t f = 0; f < kNumStreamFeatures; ++f) {
                c.centroids[j][f] = sums[j][f] / static_cast<double>(counts[j]);
            }
        }
        if (!changed) break;
    }
    c.sizes.assign(c.centroids.size(), 0);
    for (std::size_t a : c.assignment) ++c.sizes[a];
    return c;
}

}  // namespace cpt::smm
