#include "ensemble.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace cpt::smm {

SemiMarkovModel fit_smm1(const trace::Dataset& ds, const SmmConfig& config) {
    return SemiMarkovModel::fit(ds, config);
}

SmmEnsemble SmmEnsemble::fit(const trace::Dataset& ds, std::size_t clusters, util::Rng& rng,
                             const SmmConfig& config) {
    CPT_CHECK(!ds.streams.empty(), "SmmEnsemble::fit: empty dataset");
    const Clustering clustering = kmeans_streams(ds, clusters, rng);

    SmmEnsemble ensemble;
    for (std::size_t c = 0; c < clustering.centroids.size(); ++c) {
        if (clustering.sizes[c] < 3) continue;  // too small to fit a stable model
        trace::Dataset sub;
        sub.generation = ds.generation;
        for (std::size_t i = 0; i < ds.streams.size(); ++i) {
            if (clustering.assignment[i] == c) sub.streams.push_back(ds.streams[i]);
        }
        ensemble.models_.push_back(SemiMarkovModel::fit(sub, config));
        ensemble.weights_.push_back(static_cast<double>(clustering.sizes[c]));
    }
    if (ensemble.models_.empty()) {
        // Degenerate clustering (e.g. tiny dataset): fall back to one model.
        ensemble.models_.push_back(SemiMarkovModel::fit(ds, config));
        ensemble.weights_.push_back(1.0);
    }
    return ensemble;
}

trace::Dataset SmmEnsemble::generate(std::size_t n, util::Rng& rng,
                                     const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = models_.front().generation();
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t model_idx = rng.categorical(std::span<const double>(weights_));
        char id[64];
        std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), i);
        trace::Stream s;
        for (int attempt = 0; attempt < 5; ++attempt) {
            s = models_[model_idx].generate_stream(id, rng);
            if (s.length() >= 2) break;
        }
        if (s.length() >= 2) ds.streams.push_back(std::move(s));
    }
    return ds;
}

std::size_t SmmEnsemble::num_cdfs() const {
    std::size_t n = 0;
    for (const auto& m : models_) n += m.num_cdfs();
    return n;
}

}  // namespace cpt::smm
