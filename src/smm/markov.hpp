// Order-k Markov baseline over raw event types — a statistical generator that
// needs NO domain knowledge (unlike the SMM, which embeds the 3GPP state
// machine). It conditions the next event on the last k events and draws the
// interarrival from a per-(previous event, next event) empirical CDF.
//
// This sits between the paper's two worlds: like CPT-GPT it learns purely
// from the trace; like the SMM it is a classical statistical model. Its
// weakness is bounded memory: any dependence longer than k events (e.g. a
// TAU that is only legal because of a handover several events back, or
// per-UE activity levels) is lost, which shows up as semantic violations and
// collapsed per-UE diversity. The ablation bench uses it to quantify how
// much of CPT-GPT's fidelity comes from long-range attention rather than
// short-range transition statistics.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "empirical_cdf.hpp"
#include "trace/stream.hpp"
#include "util/rng.hpp"

namespace cpt::smm {

struct MarkovConfig {
    std::size_t order = 2;  // events of context (1..4)
    double window_seconds = 3600.0;
    std::size_t max_events_per_stream = 600;
};

class MarkovGenerator {
public:
    using Config = MarkovConfig;

    // Fits transition counts and delay CDFs from the dataset. Throws if the
    // dataset has no streams of length >= 2 or order is out of range.
    static MarkovGenerator fit(const trace::Dataset& ds, const Config& config = {});

    trace::Stream generate_stream(const std::string& ue_id, util::Rng& rng) const;
    trace::Dataset generate(std::size_t n, util::Rng& rng,
                            const std::string& ue_prefix = "markov") const;

    std::size_t order() const { return config_.order; }
    std::size_t num_contexts() const { return transitions_.size(); }

private:
    MarkovGenerator() = default;

    // Packs up to `order` event ids into a context key (6 bits per event,
    // plus a length marker so shorter prefixes are distinct).
    std::uint32_t context_key(const std::vector<cellular::EventId>& history) const;

    Config config_;
    cellular::Generation generation_ = cellular::Generation::kLte4G;
    std::size_t num_events_ = 0;
    std::vector<double> initial_counts_;  // first-event distribution
    // context key -> next-event counts (size num_events_).
    std::unordered_map<std::uint32_t, std::vector<double>> transitions_;
    // (prev event * num_events + next event) -> delay CDF; index 0 reserved
    // for "no previous event".
    std::vector<EmpiricalCdf> delays_;
};

}  // namespace cpt::smm
