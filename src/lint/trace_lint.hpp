// Semantic linter for control-plane event streams (§5.2.1).
//
// TraceLinter replays every stream of a dataset through the generation's
// hierarchical UE state machine and produces a structured report: violation
// counts per (sub-state, event) category, the first offending event with its
// full context, optional per-UE summaries, and text/JSON renderings. It is
// the single source of truth for violation accounting — the Table 3/5 benches
// and metrics::semantic_violations both delegate to it, so a CSV trace linted
// with the cpt_lint CLI shows exactly the numbers the paper tables report.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cellular/state_machine.hpp"
#include "trace/stream.hpp"

namespace cpt::trace {
class ColumnarReader;
}

namespace cpt::lint {

// One (sub-state, event) violation category with its aggregate count.
struct ViolationCategory {
    cellular::SubState state = cellular::SubState::kDeregistered;
    cellular::EventId event = 0;
    std::size_t count = 0;
    // Share of counted (post-bootstrap) events, the paper's Table 3 metric.
    double event_fraction = 0.0;
};

// Context of the first violating event in dataset order.
struct FirstOffender {
    std::size_t stream_index = 0;  // position of the stream in the dataset
    std::string ue_id;
    std::size_t event_index = 0;   // position of the event within the stream
    double timestamp = 0.0;
    cellular::SubState state = cellular::SubState::kDeregistered;  // at the event
    cellular::EventId event = 0;
};

struct UeSummary {
    std::string ue_id;
    std::size_t events = 0;          // stream length
    std::size_t counted_events = 0;  // post-bootstrap
    std::size_t violations = 0;
    bool bootstrapped = false;
};

struct TraceLintConfig {
    // Collect a per-UE summary row for every stream (off for bulk metric use;
    // the CLI turns it on).
    bool per_ue = false;
    // Categories listed by render()/to_json(); all non-zero ones are always
    // available via top_categories().
    std::size_t top_k = 3;
};

struct TraceLintReport {
    cellular::Generation generation = cellular::Generation::kLte4G;
    std::size_t total_streams = 0;
    std::size_t total_events = 0;
    std::size_t pre_bootstrap_events = 0;
    std::size_t counted_events = 0;
    std::size_t violating_events = 0;
    std::size_t violating_streams = 0;
    std::size_t unbootstrapped_streams = 0;
    // Dense (sub-state, event) counts keyed state * num_events + event —
    // identical keying to cellular::ReplayResult::violation_by_state_event.
    std::vector<std::size_t> violations_by_state_event;
    std::optional<FirstOffender> first_offender;
    std::vector<UeSummary> per_ue;  // filled when TraceLintConfig::per_ue
    std::size_t top_k = 3;

    double event_fraction() const {
        return counted_events ? static_cast<double>(violating_events) /
                                    static_cast<double>(counted_events)
                              : 0.0;
    }
    double stream_fraction() const {
        return total_streams ? static_cast<double>(violating_streams) /
                                   static_cast<double>(total_streams)
                             : 0.0;
    }
    // The k largest non-zero categories, by descending count.
    std::vector<ViolationCategory> top_categories(std::size_t k) const;

    // Aligned text rendering (tables: totals, top categories, worst UEs).
    std::string render() const;
    // Machine-readable JSON object with the same content.
    std::string to_json() const;
};

class TraceLinter {
public:
    explicit TraceLinter(cellular::Generation gen)
        : machine_(&cellular::StateMachine::for_generation(gen)) {}

    const cellular::StateMachine& machine() const { return *machine_; }

    // Replays every stream (sharded over the thread pool) and aggregates.
    TraceLintReport lint(const trace::Dataset& ds, const TraceLintConfig& config = {}) const;

    // Streaming overload: replays a columnar trace one chunk at a time
    // (rewinding the reader first), holding O(chunk) memory. Produces the
    // same report as the in-RAM overload on the same streams, except that
    // per-UE summaries are unavailable (they are O(streams) by definition,
    // so TraceLintConfig::per_ue is rejected here).
    TraceLintReport lint(trace::ColumnarReader& reader, const TraceLintConfig& config = {}) const;

private:
    const cellular::StateMachine* machine_;
};

}  // namespace cpt::lint
