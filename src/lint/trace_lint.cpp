#include "trace_lint.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "trace/columnar.hpp"
#include "util/ascii.hpp"
#include "util/check.hpp"

namespace cpt::lint {

using cellular::StateMachineReplayer;
using cellular::SubState;

namespace {

constexpr std::size_t kNumSubStates = static_cast<std::size_t>(SubState::kNumSubStates);

// Re-walks one stream with the replayer's exact semantics (bootstrap scan,
// stay-in-state on violation) to recover the position of its first violation.
FirstOffender locate_first_offender(const cellular::StateMachine& m,
                                    std::span<const cellular::ControlEvent> events,
                                    const std::string& ue_id, std::size_t stream_index) {
    SubState state = SubState::kDeregistered;
    bool bootstrapped = false;
    for (std::size_t k = 0; k < events.size(); ++k) {
        const auto& ev = events[k];
        if (!bootstrapped) {
            const auto boot = m.bootstrap_state(ev.type);
            if (boot) {
                bootstrapped = true;
                state = *boot;
            }
            continue;
        }
        const auto next = m.step(state, ev.type);
        if (!next) {
            return {stream_index, ue_id, k, ev.timestamp, state, ev.type};
        }
        state = *next;
    }
    // The caller only asks for streams the replayer reported as violating.
    CPT_CHECK(false, "locate_first_offender: stream ", ue_id,
              " has no violation on re-walk (replayer disagreement)");
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::vector<ViolationCategory> TraceLintReport::top_categories(std::size_t k) const {
    const std::size_t num_events = violations_by_state_event.size() / kNumSubStates;
    std::vector<std::size_t> order(violations_by_state_event.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return violations_by_state_event[a] > violations_by_state_event[b];
    });
    std::vector<ViolationCategory> out;
    for (std::size_t rank = 0; rank < k && rank < order.size(); ++rank) {
        const std::size_t key = order[rank];
        if (violations_by_state_event[key] == 0) break;
        ViolationCategory cat;
        cat.state = static_cast<SubState>(key / num_events);
        cat.event = static_cast<cellular::EventId>(key % num_events);
        cat.count = violations_by_state_event[key];
        cat.event_fraction =
            counted_events ? static_cast<double>(cat.count) / static_cast<double>(counted_events)
                           : 0.0;
        out.push_back(cat);
    }
    return out;
}

std::string TraceLintReport::render() const {
    const auto& vocab = cellular::vocabulary(generation);
    std::ostringstream out;

    util::TextTable totals({"metric", "value"});
    totals.add_row({"streams", std::to_string(total_streams)});
    totals.add_row({"events", std::to_string(total_events)});
    totals.add_row({"pre-bootstrap events", std::to_string(pre_bootstrap_events)});
    totals.add_row({"counted events", std::to_string(counted_events)});
    totals.add_row({"violating events",
                    std::to_string(violating_events) + " (" + util::fmt_pct(event_fraction(), 3) +
                        ")"});
    totals.add_row({"violating streams",
                    std::to_string(violating_streams) + " (" + util::fmt_pct(stream_fraction(), 2) +
                        ")"});
    totals.add_row({"unbootstrapped streams", std::to_string(unbootstrapped_streams)});
    out << totals.render();

    const auto cats = top_categories(top_k);
    if (!cats.empty()) {
        out << "\nTop violation categories:\n";
        util::TextTable t({"state", "event", "count", "share of events"});
        for (const auto& c : cats) {
            t.add_row({std::string(to_string(c.state)), vocab.name(c.event),
                       std::to_string(c.count), util::fmt_pct(c.event_fraction, 2)});
        }
        out << t.render();
    }

    if (first_offender) {
        const auto& f = *first_offender;
        out << "\nFirst offender: stream #" << f.stream_index << " (" << f.ue_id << "), event #"
            << f.event_index << " '" << vocab.name(f.event) << "' at t=" << f.timestamp
            << "s in state " << to_string(f.state) << "\n";
    }

    if (!per_ue.empty()) {
        // Worst offenders first; clean UEs are summarized by the totals.
        std::vector<const UeSummary*> worst;
        for (const auto& u : per_ue) {
            if (u.violations > 0) worst.push_back(&u);
        }
        std::stable_sort(worst.begin(), worst.end(),
                         [](const UeSummary* a, const UeSummary* b) {
                             return a->violations > b->violations;
                         });
        if (!worst.empty()) {
            out << "\nViolating UEs (" << worst.size() << "):\n";
            util::TextTable t({"ue", "events", "counted", "violations"});
            constexpr std::size_t kMaxRows = 20;
            for (std::size_t i = 0; i < worst.size() && i < kMaxRows; ++i) {
                const auto& u = *worst[i];
                t.add_row({u.ue_id, std::to_string(u.events), std::to_string(u.counted_events),
                           std::to_string(u.violations)});
            }
            out << t.render();
            if (worst.size() > kMaxRows) {
                out << "  ... " << (worst.size() - kMaxRows) << " more\n";
            }
        }
    }
    return out.str();
}

std::string TraceLintReport::to_json() const {
    const auto& vocab = cellular::vocabulary(generation);
    std::ostringstream out;
    out << "{";
    out << "\"generation\":\"" << (generation == cellular::Generation::kLte4G ? "4g" : "5g")
        << "\"";
    out << ",\"streams\":" << total_streams;
    out << ",\"events\":" << total_events;
    out << ",\"pre_bootstrap_events\":" << pre_bootstrap_events;
    out << ",\"counted_events\":" << counted_events;
    out << ",\"violating_events\":" << violating_events;
    out << ",\"violating_streams\":" << violating_streams;
    out << ",\"unbootstrapped_streams\":" << unbootstrapped_streams;
    out << ",\"event_violation_fraction\":" << event_fraction();
    out << ",\"stream_violation_fraction\":" << stream_fraction();
    out << ",\"top_categories\":[";
    const auto cats = top_categories(top_k);
    for (std::size_t i = 0; i < cats.size(); ++i) {
        if (i) out << ",";
        out << "{\"state\":\"" << to_string(cats[i].state) << "\",\"event\":\""
            << json_escape(vocab.name(cats[i].event)) << "\",\"count\":" << cats[i].count
            << ",\"event_fraction\":" << cats[i].event_fraction << "}";
    }
    out << "]";
    if (first_offender) {
        const auto& f = *first_offender;
        out << ",\"first_offender\":{\"stream_index\":" << f.stream_index << ",\"ue_id\":\""
            << json_escape(f.ue_id) << "\",\"event_index\":" << f.event_index
            << ",\"timestamp\":" << f.timestamp << ",\"state\":\"" << to_string(f.state)
            << "\",\"event\":\"" << json_escape(vocab.name(f.event)) << "\"}";
    }
    if (!per_ue.empty()) {
        out << ",\"per_ue\":[";
        for (std::size_t i = 0; i < per_ue.size(); ++i) {
            const auto& u = per_ue[i];
            if (i) out << ",";
            out << "{\"ue_id\":\"" << json_escape(u.ue_id) << "\",\"events\":" << u.events
                << ",\"counted_events\":" << u.counted_events
                << ",\"violations\":" << u.violations
                << ",\"bootstrapped\":" << (u.bootstrapped ? "true" : "false") << "}";
        }
        out << "]";
    }
    out << "}";
    return out.str();
}

TraceLintReport TraceLinter::lint(const trace::Dataset& ds, const TraceLintConfig& config) const {
    const auto& m = *machine_;
    CPT_CHECK(ds.generation == m.generation(),
              "TraceLinter::lint: dataset generation does not match the linter's machine");

    TraceLintReport report;
    report.generation = ds.generation;
    report.total_streams = ds.streams.size();
    report.top_k = config.top_k;
    report.violations_by_state_event.assign(kNumSubStates * m.num_events(), 0);

    std::vector<std::span<const cellular::ControlEvent>> streams;
    streams.reserve(ds.streams.size());
    for (const auto& s : ds.streams) streams.emplace_back(s.events);
    const auto results = StateMachineReplayer(m).replay_all(streams);

    std::optional<std::size_t> first_violating_stream;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        report.total_events += ds.streams[i].events.size();
        report.pre_bootstrap_events += r.pre_bootstrap_events;
        report.counted_events += r.counted_events;
        report.violating_events += r.violations;
        if (r.has_violation()) {
            ++report.violating_streams;
            if (!first_violating_stream) first_violating_stream = i;
        }
        if (!r.bootstrapped) ++report.unbootstrapped_streams;
        for (std::size_t k = 0; k < report.violations_by_state_event.size(); ++k) {
            report.violations_by_state_event[k] += r.violation_by_state_event[k];
        }
        if (config.per_ue) {
            report.per_ue.push_back({ds.streams[i].ue_id, ds.streams[i].events.size(),
                                     r.counted_events, r.violations, r.bootstrapped});
        }
    }
    if (first_violating_stream) {
        const auto& s = ds.streams[*first_violating_stream];
        report.first_offender =
            locate_first_offender(m, s.events, s.ue_id, *first_violating_stream);
    }
    return report;
}

TraceLintReport TraceLinter::lint(trace::ColumnarReader& reader,
                                  const TraceLintConfig& config) const {
    const auto& m = *machine_;
    CPT_CHECK(reader.generation() == m.generation(),
              "TraceLinter::lint: trace generation does not match the linter's machine");
    CPT_CHECK(!config.per_ue,
              "TraceLinter::lint(ColumnarReader): per-UE summaries are O(streams) and not "
              "available on the streaming path");

    TraceLintReport report;
    report.generation = reader.generation();
    report.top_k = config.top_k;
    report.violations_by_state_event.assign(kNumSubStates * m.num_events(), 0);

    reader.rewind();
    trace::StreamBatch batch;
    std::vector<std::span<const cellular::ControlEvent>> streams;
    std::size_t base = 0;
    while (reader.next(batch)) {
        streams.clear();
        streams.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) streams.push_back(batch.events_of(i));
        const auto results = StateMachineReplayer(m).replay_all(streams);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            report.total_events += streams[i].size();
            report.pre_bootstrap_events += r.pre_bootstrap_events;
            report.counted_events += r.counted_events;
            report.violating_events += r.violations;
            if (r.has_violation()) {
                ++report.violating_streams;
                if (!report.first_offender) {
                    report.first_offender = locate_first_offender(m, streams[i], batch.ue_ids[i],
                                                                  base + i);
                }
            }
            if (!r.bootstrapped) ++report.unbootstrapped_streams;
            for (std::size_t k = 0; k < report.violations_by_state_event.size(); ++k) {
                report.violations_by_state_event[k] += r.violation_by_state_event[k];
            }
        }
        base += batch.size();
    }
    report.total_streams = base;
    return report;
}

}  // namespace cpt::lint
