// Invariant-check substrate shared by every subsystem.
//
// Three macro families, all throwing cpt::CheckError with a file:line-tagged
// message on failure:
//
//   CPT_CHECK(cond, msg...)          always on; precondition / contract check
//   CPT_CHECK_EQ/NE/LT/LE/GT/GE     always on; binary comparison with both
//                                    operand values formatted into the message
//   CPT_CHECK_FINITE(range, what)    always on; every float in `range` must be
//                                    finite (no NaN/Inf)
//
//   CPT_DCHECK / CPT_DCHECK_*        same checks, compiled to no-ops unless
//                                    the build defines CPT_DEBUG_CHECKS
//                                    (cmake -DCPT_DEBUG_CHECKS=ON, or any
//                                    Debug build). Use these on hot paths —
//                                    per-element guards after forward/backward
//                                    passes, optimizer steps, kernel loops.
//
// CheckError derives from std::invalid_argument (and therefore
// std::logic_error), so existing call sites and tests that catch those types
// keep working; the gain is one uniform failure type, uniform formatting, and
// a single place to put a breakpoint.
//
// The trailing message arguments accept anything streamable through
// append_display below: strings, string_views, arithmetic types, bools.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace cpt {

// Uniform failure type for violated invariants. Derives from
// std::invalid_argument so callers that already expect the standard hierarchy
// (tests, fuzzers, the CLI catch blocks) observe no behavioral change.
class CheckError : public std::invalid_argument {
public:
    explicit CheckError(const std::string& what) : std::invalid_argument(what) {}
};

}  // namespace cpt

namespace cpt::util {

// True when CPT_DCHECK* are active in this translation unit's build.
#ifdef CPT_DEBUG_CHECKS
inline constexpr bool kDebugChecksEnabled = true;
#else
inline constexpr bool kDebugChecksEnabled = false;
#endif

namespace check_detail {

inline void append_display(std::string& out, std::string_view v) { out.append(v); }
inline void append_display(std::string& out, const char* v) { out.append(v); }
inline void append_display(std::string& out, const std::string& v) { out.append(v); }
inline void append_display(std::string& out, bool v) { out.append(v ? "true" : "false"); }

template <typename T>
    requires std::is_arithmetic_v<T>
void append_display(std::string& out, T v) {
    out.append(std::to_string(v));
}

// Pointers show up in messages as their address; enums as their underlying
// integer value.
template <typename T>
    requires std::is_enum_v<T>
void append_display(std::string& out, T v) {
    append_display(out, static_cast<std::underlying_type_t<T>>(v));
}

inline std::string msg_cat() { return {}; }

template <typename... Args>
std::string msg_cat(const Args&... args) {
    std::string out;
    (append_display(out, args), ...);
    return out;
}

// Formats "  (lhs vs rhs)" for the comparison macros.
template <typename A, typename B>
std::string operands(const A& a, const B& b) {
    std::string out = " (";
    append_display(out, a);
    out.append(" vs ");
    append_display(out, b);
    out.push_back(')');
    return out;
}

// Throws CheckError with the canonical "file:line: CHECK failed: expr" shape.
// Out of line so the macro expansion stays small at every call site.
[[noreturn]] void check_failed(const char* file, int line, const char* expr, std::string detail);

// Scans `data[0, size)` for NaN/Inf; throws naming `what` and the offending
// index/value. Out of line: the loop is only worth inlining when it never
// fires, and the error path never is.
void check_finite_span(const float* data, std::size_t size, const char* what, const char* file,
                       int line);
void check_finite_span(const double* data, std::size_t size, const char* what, const char* file,
                       int line);

// Accepts any contiguous range of float/double (std::span, std::vector,
// Tensor::data(), ...).
template <typename Range>
void check_finite(const Range& values, const char* what, const char* file, int line) {
    check_finite_span(std::data(values), std::size(values), what, file, line);
}

inline void check_finite(float value, const char* what, const char* file, int line) {
    check_finite_span(&value, 1, what, file, line);
}

inline void check_finite(double value, const char* what, const char* file, int line) {
    check_finite_span(&value, 1, what, file, line);
}

}  // namespace check_detail

}  // namespace cpt::util

// ---- Always-on checks ----------------------------------------------------------

#define CPT_CHECK(cond, ...)                                                             \
    do {                                                                                 \
        if (!(cond)) [[unlikely]] {                                                      \
            ::cpt::util::check_detail::check_failed(                                     \
                __FILE__, __LINE__, #cond, ::cpt::util::check_detail::msg_cat(__VA_ARGS__)); \
        }                                                                                \
    } while (0)

// Binary comparison with operand values in the diagnostic. Operands are
// evaluated exactly once.
#define CPT_CHECK_OP_(op, a, b, ...)                                                     \
    do {                                                                                 \
        const auto& cpt_chk_a_ = (a);                                                    \
        const auto& cpt_chk_b_ = (b);                                                    \
        if (!(cpt_chk_a_ op cpt_chk_b_)) [[unlikely]] {                                  \
            ::cpt::util::check_detail::check_failed(                                     \
                __FILE__, __LINE__, #a " " #op " " #b,                                   \
                ::cpt::util::check_detail::operands(cpt_chk_a_, cpt_chk_b_) +            \
                    ::cpt::util::check_detail::msg_cat(__VA_ARGS__));                    \
        }                                                                                \
    } while (0)

#define CPT_CHECK_EQ(a, b, ...) CPT_CHECK_OP_(==, a, b, __VA_ARGS__)
#define CPT_CHECK_NE(a, b, ...) CPT_CHECK_OP_(!=, a, b, __VA_ARGS__)
#define CPT_CHECK_LT(a, b, ...) CPT_CHECK_OP_(<, a, b, __VA_ARGS__)
#define CPT_CHECK_LE(a, b, ...) CPT_CHECK_OP_(<=, a, b, __VA_ARGS__)
#define CPT_CHECK_GT(a, b, ...) CPT_CHECK_OP_(>, a, b, __VA_ARGS__)
#define CPT_CHECK_GE(a, b, ...) CPT_CHECK_OP_(>=, a, b, __VA_ARGS__)

// `values` is a float/double scalar or any contiguous range of them.
#define CPT_CHECK_FINITE(values, what) \
    ::cpt::util::check_detail::check_finite((values), (what), __FILE__, __LINE__)

// ---- Debug-only checks ---------------------------------------------------------
// Compiled out entirely (operands not evaluated) unless CPT_DEBUG_CHECKS.

#ifdef CPT_DEBUG_CHECKS
#define CPT_DCHECK(cond, ...) CPT_CHECK(cond, __VA_ARGS__)
#define CPT_DCHECK_EQ(a, b, ...) CPT_CHECK_EQ(a, b, __VA_ARGS__)
#define CPT_DCHECK_NE(a, b, ...) CPT_CHECK_NE(a, b, __VA_ARGS__)
#define CPT_DCHECK_LT(a, b, ...) CPT_CHECK_LT(a, b, __VA_ARGS__)
#define CPT_DCHECK_LE(a, b, ...) CPT_CHECK_LE(a, b, __VA_ARGS__)
#define CPT_DCHECK_GT(a, b, ...) CPT_CHECK_GT(a, b, __VA_ARGS__)
#define CPT_DCHECK_GE(a, b, ...) CPT_CHECK_GE(a, b, __VA_ARGS__)
#define CPT_DCHECK_FINITE(values, what) CPT_CHECK_FINITE(values, what)
#else
#define CPT_DCHECK(cond, ...) \
    do {                      \
    } while (0)
#define CPT_DCHECK_EQ(a, b, ...) \
    do {                         \
    } while (0)
#define CPT_DCHECK_NE(a, b, ...) \
    do {                         \
    } while (0)
#define CPT_DCHECK_LT(a, b, ...) \
    do {                         \
    } while (0)
#define CPT_DCHECK_LE(a, b, ...) \
    do {                         \
    } while (0)
#define CPT_DCHECK_GT(a, b, ...) \
    do {                         \
    } while (0)
#define CPT_DCHECK_GE(a, b, ...) \
    do {                         \
    } while (0)
#define CPT_DCHECK_FINITE(values, what) \
    do {                                \
    } while (0)
#endif
