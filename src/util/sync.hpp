// Capability-annotated synchronization primitives (DESIGN.md §13).
//
// Every mutex in the project goes through these wrappers so Clang's Thread
// Safety Analysis (-Wthread-safety, enabled as errors by the CPT_THREAD_SAFETY
// CMake option) can prove lock discipline at compile time: fields annotated
// CPT_GUARDED_BY(mu) may only be touched while `mu` is held, and private
// *_locked helpers annotated CPT_REQUIRES(mu) may only be called under it.
// On compilers without the analysis (GCC) the attributes expand to nothing
// and the wrappers compile down to the std types they hold, so the annotated
// tree costs nothing off clang.
//
// Project rule (enforced by tools/cpt_sa, rule `sync-types`): this header is
// the only file in src/ allowed to name std::mutex / std::condition_variable
// / std::lock_guard / std::unique_lock — everything else uses util::Mutex,
// util::CondVar, and util::LockGuard so no lock can escape the analysis.
//
// Condition-variable idiom under the analysis: predicate lambdas passed to a
// wait() would be analyzed as separate functions that do not inherit the
// caller's lock set, so guarded reads inside them would (correctly) be
// flagged. Write the loop inline instead, where the analysis tracks the
// capability:
//
//   util::LockGuard lock(mu_);
//   while (!ready_) cv_.wait(mu_);   // ready_ is CPT_GUARDED_BY(mu_)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- Thread-safety capability attribute macros ------------------------------
// No-ops everywhere except clang; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
#if defined(__clang__)
#define CPT_TSA_ATTR(x) __attribute__((x))
#else
#define CPT_TSA_ATTR(x)
#endif

// Declares a type to be a capability (lockable).
#define CPT_CAPABILITY(x) CPT_TSA_ATTR(capability(x))
// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define CPT_SCOPED_CAPABILITY CPT_TSA_ATTR(scoped_lockable)
// Field may only be accessed while the named capability is held.
#define CPT_GUARDED_BY(x) CPT_TSA_ATTR(guarded_by(x))
// Pointer field whose pointee may only be accessed while held.
#define CPT_PT_GUARDED_BY(x) CPT_TSA_ATTR(pt_guarded_by(x))
// Function may only be called while holding the named capabilities.
#define CPT_REQUIRES(...) CPT_TSA_ATTR(requires_capability(__VA_ARGS__))
// Function acquires the capability (and it must not already be held).
#define CPT_ACQUIRE(...) CPT_TSA_ATTR(acquire_capability(__VA_ARGS__))
// Function releases the capability (and it must be held on entry).
#define CPT_RELEASE(...) CPT_TSA_ATTR(release_capability(__VA_ARGS__))
// Function acquires the capability iff it returns the given value.
#define CPT_TRY_ACQUIRE(...) CPT_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
// Caller must NOT hold the named capabilities (deadlock prevention).
#define CPT_EXCLUDES(...) CPT_TSA_ATTR(locks_excluded(__VA_ARGS__))
// Function returns a reference to the named capability.
#define CPT_RETURN_CAPABILITY(x) CPT_TSA_ATTR(lock_returned(x))
// Escape hatch: disables the analysis for one function. Use only with a
// comment explaining why the discipline holds anyway.
#define CPT_NO_THREAD_SAFETY_ANALYSIS CPT_TSA_ATTR(no_thread_safety_analysis)

namespace cpt::util {

class CondVar;

// std::mutex with the capability attribute so the analysis can track it.
class CPT_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() CPT_ACQUIRE() { mu_.lock(); }
    void unlock() CPT_RELEASE() { mu_.unlock(); }
    bool try_lock() CPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    friend class CondVar;
    std::mutex mu_;
};

// RAII lock for util::Mutex (the std::lock_guard replacement). Scoped
// capability: the analysis treats the guarded region as the guard's lexical
// scope, including early returns.
class CPT_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& mu) CPT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() CPT_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& mu_;
};

// Condition variable over util::Mutex. wait() requires the capability so a
// missing lock around the predicate loop is a compile error under clang; it
// atomically releases the underlying std::mutex for the duration of the block
// exactly like std::condition_variable::wait.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    // Caller must hold `mu` (typically via LockGuard or Mutex::lock) and must
    // re-check its predicate in a loop: spurious wakeups are allowed.
    void wait(Mutex& mu) CPT_REQUIRES(mu) {
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        cv_.wait(native);
        native.release();  // ownership stays with the caller's guard
    }

    // Timed wait; returns false when the timeout elapsed before a notify.
    // Same discipline as wait(): hold `mu`, re-check the predicate in a loop.
    bool wait_for(Mutex& mu, std::chrono::milliseconds timeout) CPT_REQUIRES(mu) {
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        const auto status = cv_.wait_for(native, timeout);
        native.release();  // ownership stays with the caller's guard
        return status == std::cv_status::no_timeout;
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace cpt::util
