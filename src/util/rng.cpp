#include "rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cpt::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

void Xoshiro256pp::reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    // All-zero state would be a fixed point; splitmix64 cannot produce four
    // zero outputs in a row, but guard anyway.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void Xoshiro256pp::jump() {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t mask : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (mask & (1ULL << b)) {
                for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
            }
            (*this)();
        }
    }
    s_ = acc;
}

Rng Rng::fork(std::uint64_t salt) {
    // Mix the parent's stream with the salt so forks with different salts are
    // decorrelated even when taken from the same parent state.
    std::uint64_t seed = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
    return Rng(seed);
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ULL) - (~0ULL) % n;
    std::uint64_t x;
    do {
        x = engine_();
    } while (x >= limit);
    return static_cast<std::size_t>(x % n);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(engine_());  // full 64-bit range
    return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::size_t>(span)));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    // Box-Muller; u1 is re-drawn to avoid log(0).
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    has_spare_normal_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
    if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double Rng::pareto(double scale, double shape) {
    if (scale <= 0.0 || shape <= 0.0) {
        throw std::invalid_argument("Rng::pareto: scale and shape must be > 0");
    }
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return scale / std::pow(u, 1.0 / shape);
}

namespace {

template <typename T>
std::size_t categorical_impl(Rng& rng, std::span<const T> weights) {
    double total = 0.0;
    for (T w : weights) {
        if (w < 0) throw std::invalid_argument("Rng::categorical: negative weight");
        total += static_cast<double>(w);
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::categorical: all weights zero");
    double r = rng.uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= static_cast<double>(weights[i]);
        if (r < 0.0) return i;
    }
    // Floating point slack: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0) return i;
    }
    return weights.size() - 1;
}

}  // namespace

std::size_t Rng::categorical(std::span<const double> weights) {
    return categorical_impl<double>(*this, weights);
}

std::size_t Rng::categorical(std::span<const float> weights) {
    return categorical_impl<float>(*this, weights);
}

}  // namespace cpt::util
