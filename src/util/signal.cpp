#include "signal.hpp"

#include <csignal>

namespace cpt::util {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void cpt_shutdown_handler(int) { g_shutdown = 1; }

}  // namespace

void install_shutdown_handlers() {
    struct sigaction sa = {};
    sa.sa_handler = cpt_shutdown_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART: blocking syscalls get EINTR
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() { return g_shutdown != 0; }

void request_shutdown() { g_shutdown = 1; }

void reset_shutdown_flag() { g_shutdown = 0; }

}  // namespace cpt::util
