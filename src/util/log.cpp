#include "log.hpp"

#include <cstdarg>
#include <cstdio>
#include <string>

namespace cpt::util {

namespace {

void emit_line(std::string_view prefix, std::string_view message) {
    std::string line;
    line.reserve(prefix.size() + message.size() + 1);
    line.append(prefix);
    line.append(message);
    line.push_back('\n');
    // One fwrite so concurrent warnings from pool workers do not interleave
    // mid-line.
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace

void warnf(const char* fmt, ...) {
    char buf[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    emit_line(kWarnPrefix, buf);
}

void warn(std::string_view message) { emit_line(kWarnPrefix, message); }

void info(std::string_view message) { emit_line(kInfoPrefix, message); }

}  // namespace cpt::util
