#include "log.hpp"

#include <cstdarg>
#include <cstdio>
#include <string>

#include "sync.hpp"

namespace cpt::util {

namespace {

// Serializes every emitted line. A single fwrite is atomic for lines shorter
// than the stdio buffer, but stderr is unbuffered by default, so two serve
// workers warning at once could still shear their lines char-by-char; the
// annotated mutex makes the whole line a critical section.
Mutex g_log_mu;

void emit_line(std::string_view prefix, std::string_view message) {
    std::string line;
    line.reserve(prefix.size() + message.size() + 1);
    line.append(prefix);
    line.append(message);
    line.push_back('\n');
    const LockGuard lock(g_log_mu);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace

void warnf(const char* fmt, ...) {
    char buf[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    emit_line(kWarnPrefix, buf);
}

void warn(std::string_view message) { emit_line(kWarnPrefix, message); }

void info(std::string_view message) { emit_line(kInfoPrefix, message); }

}  // namespace cpt::util
