#include "csv.hpp"

#include <charconv>
#include <stdexcept>

namespace cpt::util {

std::vector<std::string> split(std::string_view line, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = line.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(line.substr(start));
            return out;
        }
        out.emplace_back(line.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string join(const std::vector<std::string>& parts, char sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out.push_back(sep);
        out += parts[i];
    }
    return out;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r' || s.front() == '\n')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r' || s.back() == '\n')) {
        s.remove_suffix(1);
    }
    return s;
}

double parse_double(std::string_view s) {
    s = trim(s);
    double value = 0.0;
    const auto* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::invalid_argument("parse_double: malformed value '" + std::string(s) + "'");
    }
    return value;
}

long long parse_int(std::string_view s) {
    s = trim(s);
    long long value = 0;
    const auto* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::invalid_argument("parse_int: malformed value '" + std::string(s) + "'");
    }
    return value;
}

}  // namespace cpt::util
