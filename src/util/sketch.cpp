#include "sketch.hpp"

#include <algorithm>
#include <cmath>

#include "check.hpp"

namespace cpt::util {

QuantileSketch::QuantileSketch(std::size_t k) : k_(k < 8 ? 8 : k) {
    levels_.emplace_back();
    levels_.front().reserve(k_ + 1);
    compactions_.push_back(0);
}

void QuantileSketch::add(double x) {
    levels_[0].push_back(x);
    ++count_;
    if (levels_[0].size() > k_) compact_level(0);
}

void QuantileSketch::compact_level(std::size_t h) {
    while (h < levels_.size() && levels_[h].size() > k_) {
        // Grow levels_ before taking references into it: emplace_back may
        // reallocate and would dangle them otherwise.
        if (levels_.size() == h + 1) {
            levels_.emplace_back();
            compactions_.push_back(0);
        }
        auto& buf = levels_[h];
        std::sort(buf.begin(), buf.end());
        // Odd-sized buffers keep their largest item at this level so the sum
        // of item weights stays exactly count_.
        double leftover = 0.0;
        bool has_leftover = false;
        std::size_t n = buf.size();
        if (n % 2 != 0) {
            leftover = buf.back();
            has_leftover = true;
            --n;
        }
        // Alternate the surviving parity per compaction: consecutive
        // compactions at a level push ranks in opposite directions, cancelling
        // most of the deterministic drift.
        const std::size_t start = compactions_[h] % 2;
        auto& up = levels_[h + 1];
        for (std::size_t i = start; i < n; i += 2) up.push_back(buf[i]);
        ++compactions_[h];
        buf.clear();
        if (has_leftover) buf.push_back(leftover);
        ++h;  // the promoted items may overflow the next level
    }
}

void QuantileSketch::merge(const QuantileSketch& other) {
    CPT_CHECK_EQ(k_, other.k_, " QuantileSketch::merge: mismatched capacities");
    if (other.levels_.size() > levels_.size()) {
        levels_.resize(other.levels_.size());
        compactions_.resize(other.levels_.size(), 0);
    }
    for (std::size_t h = 0; h < other.levels_.size(); ++h) {
        levels_[h].insert(levels_[h].end(), other.levels_[h].begin(), other.levels_[h].end());
        compactions_[h] += other.compactions_[h];
    }
    count_ += other.count_;
    for (std::size_t h = 0; h < levels_.size(); ++h) {
        if (levels_[h].size() > k_) compact_level(h);
    }
}

QuantileSketch::Cdf QuantileSketch::cdf() const {
    // Gather (value, weight) pairs, sort by value, accumulate.
    std::vector<std::pair<double, double>> items;
    std::size_t total_items = 0;
    for (const auto& lvl : levels_) total_items += lvl.size();
    items.reserve(total_items);
    double w = 1.0;
    for (const auto& lvl : levels_) {
        for (double v : lvl) items.emplace_back(v, w);
        w *= 2.0;
    }
    std::sort(items.begin(), items.end());
    Cdf out;
    out.values.reserve(items.size());
    out.cum.reserve(items.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        acc += items[i].second;
        // Collapse duplicate values into one support point.
        if (!out.values.empty() && out.values.back() == items[i].first) {
            out.cum.back() = acc;
        } else {
            out.values.push_back(items[i].first);
            out.cum.push_back(acc);
        }
    }
    out.total = acc;
    return out;
}

double QuantileSketch::quantile(double q) const {
    CPT_CHECK(!empty(), "QuantileSketch::quantile on an empty sketch");
    q = std::clamp(q, 0.0, 1.0);
    const Cdf c = cdf();
    const double target = q * c.total;
    for (std::size_t i = 0; i < c.values.size(); ++i) {
        if (c.cum[i] >= target) return c.values[i];
    }
    return c.values.back();
}

double QuantileSketch::rank_error_bound() const {
    if (count_ == 0) return 0.0;
    double err = 0.0;
    double w = 1.0;
    for (std::size_t h = 0; h < compactions_.size(); ++h) {
        err += static_cast<double>(compactions_[h]) * w;
        w *= 2.0;
    }
    return err / static_cast<double>(count_);
}

bool QuantileSketch::operator==(const QuantileSketch& other) const {
    return k_ == other.k_ && count_ == other.count_ && levels_ == other.levels_ &&
           compactions_ == other.compactions_;
}

double max_cdf_y_distance(const QuantileSketch& a, const QuantileSketch& b) {
    if (a.empty() && b.empty()) return 0.0;
    if (a.empty() || b.empty()) return 1.0;
    const auto ca = a.cdf();
    const auto cb = b.cdf();
    // Two-pointer sweep over the merged support, mirroring the exact-sample
    // overload in stats.cpp but with weighted steps.
    std::size_t i = 0;
    std::size_t j = 0;
    double d = 0.0;
    while (i < ca.values.size() || j < cb.values.size()) {
        double x;
        if (j >= cb.values.size()) {
            x = ca.values[i];
        } else if (i >= ca.values.size()) {
            x = cb.values[j];
        } else {
            x = std::min(ca.values[i], cb.values[j]);
        }
        while (i < ca.values.size() && ca.values[i] <= x) ++i;
        while (j < cb.values.size() && cb.values[j] <= x) ++j;
        const double fa = i == 0 ? 0.0 : ca.cum[i - 1] / ca.total;
        const double fb = j == 0 ? 0.0 : cb.cum[j - 1] / cb.total;
        d = std::max(d, std::abs(fa - fb));
    }
    return d;
}

void CountTable::bump(std::size_t i, std::uint64_t by) {
    if (i >= counts_.size()) counts_.resize(i + 1, 0);
    counts_[i] += by;
}

void CountTable::merge(const CountTable& other) {
    if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
}

std::uint64_t CountTable::total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : counts_) t += c;
    return t;
}

std::vector<double> CountTable::normalized(std::size_t size) const {
    std::vector<double> out(size, 0.0);
    const std::uint64_t t = total();
    if (t == 0) return out;
    for (std::size_t i = 0; i < counts_.size() && i < size; ++i) {
        out[i] = static_cast<double>(counts_[i]) / static_cast<double>(t);
    }
    return out;
}

}  // namespace cpt::util
