#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "thread_pool.hpp"

namespace cpt::util {

Summary summarize(std::span<const double> xs) {
    Summary s;
    s.count = xs.size();
    if (xs.empty()) return s;
    double sum = 0.0;
    s.min = xs[0];
    s.max = xs[0];
    for (double x : xs) {
        sum += x;
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.mean = sum / static_cast<double>(xs.size());
    double sq = 0.0;
    for (double x : xs) sq += (x - s.mean) * (x - s.mean);
    s.stddev = xs.size() > 1 ? std::sqrt(sq / static_cast<double>(xs.size() - 1)) : 0.0;
    return s;
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
    if (sorted_.empty()) throw std::logic_error("Ecdf::quantile on empty ECDF");
    q = std::clamp(q, 0.0, 1.0);
    const auto n = sorted_.size();
    // Smallest index i with (i+1)/n >= q.
    auto idx = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) - 1;
    if (q <= 0.0) idx = 0;
    idx = std::min(idx, n - 1);
    return sorted_[idx];
}

double max_cdf_y_distance(const Ecdf& a, const Ecdf& b) {
    if (a.empty() && b.empty()) return 0.0;
    if (a.empty() || b.empty()) return 1.0;
    const auto& xs = a.sorted_samples();
    const auto& ys = b.sorted_samples();
    // Classic two-pointer sweep over the merged sample points.
    std::size_t i = 0;
    std::size_t j = 0;
    double d = 0.0;
    const double na = static_cast<double>(xs.size());
    const double nb = static_cast<double>(ys.size());
    while (i < xs.size() && j < ys.size()) {
        const double x = std::min(xs[i], ys[j]);
        while (i < xs.size() && xs[i] <= x) ++i;
        while (j < ys.size() && ys[j] <= x) ++j;
        d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
    }
    // After one side is exhausted the difference only shrinks toward 0.
    return d;
}

double max_cdf_y_distance(std::span<const double> a, std::span<const double> b) {
    // ECDF construction sorts each sample; the two sorts are independent, so
    // build them on separate pool lanes.
    Ecdf ea;
    Ecdf eb;
    global_pool().parallel_for(2, 1, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            if (i == 0) {
                ea = Ecdf(std::vector<double>(a.begin(), a.end()));
            } else {
                eb = Ecdf(std::vector<double>(b.begin(), b.end()));
            }
        }
    });
    return max_cdf_y_distance(ea, eb);
}

double quantile(std::span<const double> xs, double q) {
    return Ecdf(std::vector<double>(xs.begin(), xs.end())).quantile(q);
}

Histogram make_histogram(std::span<const double> xs, std::size_t bins, bool log_scale) {
    if (bins == 0) throw std::invalid_argument("make_histogram: bins must be > 0");
    Histogram h;
    h.log_scale = log_scale;
    h.counts.assign(bins, 0);
    if (xs.empty()) {
        h.edges.assign(bins + 1, 0.0);
        return h;
    }
    auto transform = [log_scale](double x) { return log_scale ? std::log10(x + 1.0) : x; };
    double lo = transform(xs[0]);
    double hi = lo;
    for (double x : xs) {
        const double t = transform(x);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    if (hi <= lo) hi = lo + 1.0;
    h.edges.resize(bins + 1);
    for (std::size_t i = 0; i <= bins; ++i) {
        h.edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
    }
    for (double x : xs) {
        const double t = transform(x);
        auto idx = static_cast<std::size_t>((t - lo) / (hi - lo) * static_cast<double>(bins));
        idx = std::min(idx, bins - 1);
        ++h.counts[idx];
    }
    return h;
}

std::vector<double> normalize(std::span<const double> counts) {
    double total = 0.0;
    for (double c : counts) total += c;
    std::vector<double> p(counts.size(), 0.0);
    if (total <= 0.0) return p;
    for (std::size_t i = 0; i < counts.size(); ++i) p[i] = counts[i] / total;
    return p;
}

double total_variation(std::span<const double> p, std::span<const double> q) {
    if (p.size() != q.size()) throw std::invalid_argument("total_variation: size mismatch");
    double d = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) d += std::abs(p[i] - q[i]);
    return d / 2.0;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size() || xs.empty()) return 0.0;
    const Summary sx = summarize(xs);
    const Summary sy = summarize(ys);
    if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
    double cov = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
    cov /= static_cast<double>(xs.size() - 1);
    return cov / (sx.stddev * sy.stddev);
}

LatencyHistogram::LatencyHistogram(double min_value, double growth, std::size_t buckets)
    : min_value_(min_value),
      inv_log_growth_(1.0 / std::log(growth)),
      growth_(growth),
      counts_(buckets, 0) {
    if (!(min_value > 0.0) || !(growth > 1.0) || buckets < 2) {
        throw std::invalid_argument("LatencyHistogram: need min_value > 0, growth > 1, "
                                    "buckets >= 2");
    }
}

void LatencyHistogram::record(double x) {
    if (!(x >= 0.0)) x = 0.0;  // negative or NaN clock skew -> underflow bucket
    std::size_t idx = 0;
    if (x >= min_value_) {
        idx = 1 + static_cast<std::size_t>(std::log(x / min_value_) * inv_log_growth_);
        idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++count_;
    total_ += x;
    max_ = std::max(max_, x);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
    if (other.counts_.size() != counts_.size() || other.min_value_ != min_value_ ||
        other.growth_ != growth_) {
        throw std::invalid_argument("LatencyHistogram::merge: geometry mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    total_ += other.total_;
    max_ = std::max(max_, other.max_);
}

double LatencyHistogram::quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::size_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank && counts_[i] > 0) {
            if (i == 0) return min_value_;
            if (i == counts_.size() - 1) return max_;  // overflow bucket: exact max
            return min_value_ * std::pow(growth_, static_cast<double>(i));
        }
    }
    return max_;
}

LatencyHistogram::Percentiles LatencyHistogram::percentiles() const {
    return {quantile(0.50), quantile(0.95), quantile(0.99)};
}

}  // namespace cpt::util
