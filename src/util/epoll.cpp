#include "epoll.hpp"

#include <fcntl.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace cpt::util {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string("epoll: ") + what + ": " + std::strerror(errno));
}

}  // namespace

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) throw_errno("fcntl(F_GETFL)");
    if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl(F_SETFL)");
}

Epoll::Epoll() {
    fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd_ < 0) throw_errno("epoll_create1");
}

Epoll::~Epoll() {
    if (fd_ >= 0) ::close(fd_);
}

void Epoll::add(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) < 0) throw_errno("epoll_ctl(ADD)");
}

void Epoll::mod(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) < 0) throw_errno("epoll_ctl(MOD)");
}

void Epoll::del(int fd) {
    if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr) < 0 && errno != EBADF &&
        errno != ENOENT) {
        throw_errno("epoll_ctl(DEL)");
    }
}

int Epoll::wait(epoll_event* out, int capacity, int timeout_ms) {
    const int n = ::epoll_wait(fd_, out, capacity, timeout_ms);
    if (n < 0) {
        if (errno == EINTR) return 0;
        throw_errno("epoll_wait");
    }
    return n;
}

WakeFd::WakeFd() {
    fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (fd_ < 0) throw_errno("eventfd");
}

WakeFd::~WakeFd() {
    if (fd_ >= 0) ::close(fd_);
}

void WakeFd::notify() {
    const std::uint64_t one = 1;
    // A full counter (EAGAIN) already guarantees the loop will wake.
    [[maybe_unused]] const ssize_t r = ::write(fd_, &one, sizeof(one));
}

void WakeFd::drain() {
    std::uint64_t value = 0;
    while (::read(fd_, &value, sizeof(value)) > 0) {
    }
}

}  // namespace cpt::util
