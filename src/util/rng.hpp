// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (trace synthesis, model initialization, SGD
// shuffling, samplers) takes an explicit Rng so experiments are reproducible
// from a single seed. The engine is xoshiro256++, which is fast, has a 256-bit
// state, and passes BigCrush; we deliberately avoid std::mt19937 so that the
// bit streams are stable across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace cpt::util {

// xoshiro256++ engine (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256pp {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    // SplitMix64-expands `seed` into the 256-bit state, so nearby seeds give
    // unrelated streams.
    void reseed(std::uint64_t seed);

    result_type operator()();

    // Jump function: advances the state by 2^128 steps. Used to derive
    // independent sub-streams for parallel components.
    void jump();

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

private:
    std::array<std::uint64_t, 4> s_{};
};

// High-level sampling facade used throughout the project.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

    // Derives an independent generator; `salt` distinguishes children created
    // from the same parent state.
    Rng fork(std::uint64_t salt);

    std::uint64_t next_u64() { return engine_(); }

    // Uniform in [0, 1).
    double uniform();
    // Uniform in [lo, hi).
    double uniform(double lo, double hi);
    // Uniform integer in [0, n). Requires n > 0.
    std::size_t uniform_index(std::size_t n);
    // Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    bool bernoulli(double p);

    // Standard normal via Box-Muller (cached spare).
    double normal();
    double normal(double mean, double stddev);
    double lognormal(double mu, double sigma);
    double exponential(double rate);
    // Bounded Pareto-ish heavy tail used by the synthetic world generator.
    double pareto(double scale, double shape);

    // Samples an index from unnormalized non-negative weights. Requires at
    // least one strictly positive weight.
    std::size_t categorical(std::span<const double> weights);
    std::size_t categorical(std::span<const float> weights);

    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[uniform_index(i)]);
        }
    }

private:
    Xoshiro256pp engine_;
    bool has_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

}  // namespace cpt::util
