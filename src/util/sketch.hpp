// Mergeable streaming statistics for the scale substrate (DESIGN.md §14).
//
// QuantileSketch is a KLL-style quantile/ECDF summary with *deterministic*
// compaction: items live in per-level buffers where level h carries weight
// 2^h; when a buffer exceeds its capacity it is sorted and every second item
// is promoted one level (the parity alternates per compaction, which cancels
// most of the systematic rank drift). There is no randomness anywhere, so a
// sketch's state is a pure function of the insertion sequence, and merging a
// fixed sequence of sketches left-to-right is bit-reproducible — across runs
// and across CPT_THREADS, because the streaming metrics pipeline always folds
// per-chunk sketches in ascending chunk order regardless of which pool worker
// built them. (Merge is deliberately NOT order-invariant: compaction is
// lossy, so re-grouping merges can change which items survive. The canonical
// fold order is part of the contract; see DESIGN.md §14.)
//
// Rank-error contract: every compaction at level h moves any fixed rank by at
// most 2^h, so the worst-case rank error after n inserts is
//     sum_h compactions(h) * 2^h  <=  levels * n / k     (k = level capacity)
// i.e. a relative rank error of about log2(n/k)/k — under 2% for a billion
// samples at the default k = 1024, and far smaller in practice thanks to the
// alternating parity. rank_error_bound() reports the exact accumulated bound
// for *this* sketch so callers (tests, the fidelity suite) can assert against
// it instead of a hand-waved constant.
//
// CountTable is the exact half of the streaming metrics: a growable vector of
// u64 counters whose merge is elementwise addition — a commutative monoid, so
// event-type breakdowns and violation tallies are exact no matter how the
// work was sharded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cpt::util {

class QuantileSketch {
public:
    // `k` is the per-level buffer capacity; memory is O(k * log(n/k)).
    explicit QuantileSketch(std::size_t k = 1024);

    void add(double x);

    // Canonical merge: appends `other`'s levels into this sketch and
    // re-normalizes. Deterministic given (this, other); fold shards in a
    // fixed (chunk) order for reproducible results.
    void merge(const QuantileSketch& other);

    // Number of add() calls represented (sum of item weights, exact).
    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    std::size_t capacity_k() const { return k_; }

    // Smallest retained value whose cumulative weight fraction reaches q
    // (q clamped to [0, 1]). Requires a non-empty sketch.
    double quantile(double q) const;

    // The sketch's ECDF as weighted support points: values ascending,
    // cum[i] = total weight of items <= values[i]. Empty when the sketch is.
    struct Cdf {
        std::vector<double> values;
        std::vector<double> cum;
        double total = 0.0;
    };
    Cdf cdf() const;

    // Accumulated worst-case rank error as a fraction of count(): the sum of
    // 2^h over every compaction performed at level h, divided by count().
    // 0 while nothing has been compacted (the sketch is then exact).
    double rank_error_bound() const;

    // Bitwise state equality (levels, compaction parities, count) — the
    // determinism tests' notion of "same sketch".
    bool operator==(const QuantileSketch& other) const;

private:
    void compact_level(std::size_t h);

    std::size_t k_;
    std::vector<std::vector<double>> levels_;       // level h items, weight 2^h
    std::vector<std::uint64_t> compactions_;        // per-level compaction count
    std::uint64_t count_ = 0;
};

// Two-sample Kolmogorov-Smirnov statistic between two sketch ECDFs — the
// paper's "max CDF y-distance" computed in O(retained items). Matches the
// exact-sample overloads' edge semantics: 0 when both are empty, 1 when
// exactly one is. The estimate differs from the exact statistic by at most
// a.rank_error_bound() + b.rank_error_bound().
double max_cdf_y_distance(const QuantileSketch& a, const QuantileSketch& b);

// Exact mergeable counters (event-type breakdowns, violation tallies).
class CountTable {
public:
    CountTable() = default;
    explicit CountTable(std::size_t size) : counts_(size, 0) {}

    // Adds `by` to counter `i`, growing the table as needed.
    void bump(std::size_t i, std::uint64_t by = 1);

    // Elementwise addition; grows to the larger size. Order-invariant.
    void merge(const CountTable& other);

    std::size_t size() const { return counts_.size(); }
    std::uint64_t at(std::size_t i) const { return i < counts_.size() ? counts_[i] : 0; }
    std::span<const std::uint64_t> counts() const { return counts_; }
    std::uint64_t total() const;

    // Counts as fractions of total() (zeros when empty), sized `size`.
    std::vector<double> normalized(std::size_t size) const;

    bool operator==(const CountTable& other) const = default;

private:
    std::vector<std::uint64_t> counts_;
};

}  // namespace cpt::util
