#include "ascii.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cpt::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("TextTable::add_row: column count mismatch");
    }
    rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size()) out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::string fmt(double value, int precision) {
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(precision);
    out << value;
    return out.str();
}

std::string fmt_pct(double fraction, int precision) { return fmt(fraction * 100.0, precision) + "%"; }

std::string fmt_permille(double fraction, int precision) {
    return fmt(fraction * 1000.0, precision) + "permil";
}

std::string render_cdf_plot(const std::vector<std::pair<std::string, Ecdf>>& curves,
                            std::size_t width, std::size_t height, bool log_x) {
    if (curves.empty() || width < 8 || height < 4) return "(empty plot)\n";
    double lo = 0.0;
    double hi = 1.0;
    bool have_range = false;
    for (const auto& [name, cdf] : curves) {
        if (cdf.empty()) continue;
        const auto& xs = cdf.sorted_samples();
        if (!have_range) {
            lo = xs.front();
            hi = xs.back();
            have_range = true;
        } else {
            lo = std::min(lo, xs.front());
            hi = std::max(hi, xs.back());
        }
    }
    if (!have_range) return "(all curves empty)\n";
    auto tx = [&](double x) { return log_x ? std::log10(x + 1.0) : x; };
    const double tlo = tx(lo);
    double thi = tx(hi);
    if (thi <= tlo) thi = tlo + 1.0;

    std::vector<std::string> grid(height, std::string(width, ' '));
    const std::string marks = "*o+x#@%&";
    for (std::size_t k = 0; k < curves.size(); ++k) {
        const auto& cdf = curves[k].second;
        if (cdf.empty()) continue;
        const char mark = marks[k % marks.size()];
        for (std::size_t col = 0; col < width; ++col) {
            const double t = tlo + (thi - tlo) * static_cast<double>(col) / static_cast<double>(width - 1);
            const double x = log_x ? std::pow(10.0, t) - 1.0 : t;
            const double y = cdf(x);
            auto row = static_cast<std::size_t>(std::round((1.0 - y) * static_cast<double>(height - 1)));
            row = std::min(row, height - 1);
            grid[row][col] = mark;
        }
    }
    std::ostringstream out;
    out << "CDF (y: 0..1 bottom..top, x: " << fmt(lo, 2) << ".." << fmt(hi, 2)
        << (log_x ? ", log-x" : "") << ")\n";
    for (const auto& line : grid) out << "|" << line << "|\n";
    out << "legend:";
    for (std::size_t k = 0; k < curves.size(); ++k) {
        out << "  " << marks[k % marks.size()] << "=" << curves[k].first;
    }
    out << '\n';
    return out.str();
}

std::string render_histogram(const Histogram& h, std::size_t width) {
    if (h.counts.empty()) return "(empty histogram)\n";
    std::size_t max_count = 1;
    for (std::size_t c : h.counts) max_count = std::max(max_count, c);
    std::ostringstream out;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        const double lo = h.edges[i];
        const double hi = h.edges[i + 1];
        const auto bar = static_cast<std::size_t>(
            std::llround(static_cast<double>(h.counts[i]) / static_cast<double>(max_count) *
                         static_cast<double>(width)));
        out << "[" << fmt(lo, 2) << ", " << fmt(hi, 2) << ") "
            << std::string(bar, '#') << " " << h.counts[i] << '\n';
    }
    if (h.log_scale) out << "(bin edges in log10(x+1) units)\n";
    return out.str();
}

}  // namespace cpt::util
