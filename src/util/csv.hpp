// Minimal CSV and string utilities for trace (de)serialization. The trace
// format uses no quoting or embedded separators, so this is a strict,
// fast splitter rather than a general RFC-4180 parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cpt::util {

std::vector<std::string> split(std::string_view line, char sep);
std::string join(const std::vector<std::string>& parts, char sep);

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

// Strict numeric parsing; throws std::invalid_argument with context on
// malformed input (partial parses are rejected).
double parse_double(std::string_view s);
long long parse_int(std::string_view s);

}  // namespace cpt::util
