// Deterministic bounded exponential backoff for reconnect/retry loops (the
// serve router's failover path and TcpClient reconnect helpers).
//
// Delays are a pure function of the attempt index — base * multiplier^attempt
// capped at cap_ms — with no jitter, so retry schedules are reproducible in
// tests and the failover determinism contract (DESIGN.md §15) does not pick
// up a hidden entropy source.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

namespace cpt::util {

class Backoff {
public:
    struct Policy {
        double base_ms = 10.0;    // delay before the first retry
        double cap_ms = 1000.0;   // upper bound on any single delay
        double multiplier = 2.0;  // growth per attempt
        int max_attempts = 3;     // retries after the initial try
    };

    // (Two constructors rather than one defaulted argument: GCC cannot use a
    // nested class's member initializers in a default argument of the
    // enclosing class.)
    Backoff() = default;
    explicit Backoff(const Policy& policy) : policy_(policy) {}

    const Policy& policy() const { return policy_; }

    // Delay before retry `attempt` (0-based: attempt 0 is the first retry).
    double delay_ms(int attempt) const {
        double d = policy_.base_ms;
        for (int i = 0; i < attempt; ++i) {
            d *= policy_.multiplier;
            if (d >= policy_.cap_ms) return policy_.cap_ms;
        }
        return std::min(d, policy_.cap_ms);
    }

    bool should_retry(int attempt) const { return attempt < policy_.max_attempts; }

    // Blocking sleep for delay_ms(attempt).
    void sleep(int attempt) const {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms(attempt)));
    }

private:
    Policy policy_;
};

}  // namespace cpt::util
