// Runtime CPU feature detection for the SIMD kernel tiers in src/nn. The
// active tier is resolved once per process — best tier both the CPU and this
// binary support, overridable with CPT_SIMD=scalar|sse2|avx2 — and logged on
// first use so a generation run records which kernels produced it.
//
// Determinism contract (see DESIGN.md "SIMD dispatch"): within a fixed tier,
// every kernel performs identical per-element arithmetic regardless of thread
// count, so generation output is byte-stable across CPT_THREADS. Changing the
// tier may change low-order bits (AVX2 uses FMA and wider reductions).
#pragma once

namespace cpt::util {

// Ordered: higher enumerators are strict supersets in instruction capability.
enum class SimdTier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// Lower-case tier name as accepted by CPT_SIMD ("scalar", "sse2", "avx2").
const char* simd_tier_name(SimdTier tier);

// Best tier supported by both the host CPU and the compiled binary
// (AVX2 kernels exist only when the compiler accepted -mavx2 -mfma).
SimdTier detect_simd_tier();

// True when `tier` does not exceed detect_simd_tier().
bool simd_tier_available(SimdTier tier);

// The tier all nn kernels dispatch on. Resolved once: CPT_SIMD override if
// set (unknown values warn and fall back; unavailable tiers warn and clamp),
// otherwise detect_simd_tier(). The chosen tier is logged via util::info on
// first resolution.
SimdTier active_simd_tier();

// Forces the active tier (tests / benchmarks compare tiers in-process) and
// returns the previous one. Requesting an unavailable tier throws CheckError.
SimdTier set_simd_tier(SimdTier tier);

}  // namespace cpt::util
