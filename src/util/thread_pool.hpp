// Shared parallel compute substrate (see DESIGN.md "Parallel substrate").
//
// A ThreadPool owns `threads - 1` persistent workers; the calling thread is
// always the remaining lane, so a pool of size 1 never spawns a thread and
// parallel_for degrades to a plain loop. Work is split by *static chunking*:
// [0, n) is cut into at most `threads` contiguous ranges of at least `grain`
// items each, and every range is executed exactly once. There is no work
// stealing and no dynamic re-splitting, so which items run together — and
// therefore the arithmetic performed per item — is a pure function of
// (n, grain, threads), never of scheduling. Callers that keep per-item
// outputs disjoint get bit-identical results for every thread count.
//
// Nested parallel_for calls from inside a worker run inline on that worker
// (no thread explosion, no deadlock), so outer-level sharding (e.g. the
// sampler splitting a generation round across decoders) transparently
// serializes the inner nn-kernel parallelism.
//
// The global pool is sized by the CPT_THREADS environment variable (default:
// hardware concurrency) and is created lazily on first use.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace cpt::util {

class ThreadPool {
public:
    // `threads` is the total parallel width including the calling thread;
    // 0 is treated as 1. A pool of size 1 spawns no workers.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t threads() const { return threads_; }

    // Number of chunks parallel_for / parallel_chunks will use for (n, grain).
    std::size_t num_chunks(std::size_t n, std::size_t grain) const;

    // Runs fn(begin, end) over a static chunking of [0, n). Blocks until all
    // chunks finish; the calling thread executes chunk 0. Exceptions thrown
    // by fn are rethrown (first one wins). Runs inline when the pool has one
    // thread, when only one chunk results, or when called from a worker.
    void parallel_for(std::size_t n, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    // Same, but fn also receives the chunk index — for deterministic
    // per-chunk partial reductions merged in chunk order afterwards.
    void parallel_chunks(std::size_t n, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

    // True while the current thread is executing a pool task (used to run
    // nested parallel regions inline).
    static bool in_worker();

private:
    struct Impl;
    Impl* impl_ = nullptr;  // null for single-thread pools
    std::size_t threads_ = 1;
};

// The process-wide pool, sized by CPT_THREADS (default: hardware
// concurrency). Thread-safe lazy construction.
ThreadPool& global_pool();

// Thread count the global pool would be (or was) created with.
std::size_t configured_threads();

// Recreates the global pool with `threads` lanes. Intended for tests and
// benchmarks that compare thread counts; not safe while parallel work from
// another thread is in flight.
void set_global_threads(std::size_t threads);

// Grain size putting at least `min_items_cost` units of work in each chunk,
// given an estimated `cost_per_item` (both in arbitrary comparable units).
// Keeps small workloads on one thread so parallelism never costs more than
// the work it spreads.
inline std::size_t grain_for(std::size_t cost_per_item, std::size_t min_chunk_cost = 16384) {
    if (cost_per_item == 0) cost_per_item = 1;
    const std::size_t g = min_chunk_cost / cost_per_item;
    return g > 0 ? g : 1;
}

}  // namespace cpt::util
