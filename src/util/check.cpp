#include "check.hpp"

#include <cmath>

namespace cpt::util::check_detail {

void check_failed(const char* file, int line, const char* expr, std::string detail) {
    std::string msg(file);
    msg.push_back(':');
    msg.append(std::to_string(line));
    msg.append(": CHECK failed: ");
    msg.append(expr);
    if (!detail.empty()) {
        // Comparison macros pass " (lhs vs rhs)..."; plain CHECKs pass the
        // caller's message, which reads better after a separator.
        if (detail.front() != ' ') msg.append(": ");
        msg.append(detail);
    }
    throw CheckError(msg);
}

namespace {

template <typename T>
void check_finite_impl(const T* data, std::size_t size, const char* what, const char* file,
                       int line) {
    for (std::size_t i = 0; i < size; ++i) {
        if (!std::isfinite(data[i])) [[unlikely]] {
            check_failed(file, line, "isfinite",
                         std::string(what) + "[" + std::to_string(i) +
                             "] = " + std::to_string(data[i]) + " (of " + std::to_string(size) +
                             " values)");
        }
    }
}

}  // namespace

void check_finite_span(const float* data, std::size_t size, const char* what, const char* file,
                       int line) {
    check_finite_impl(data, size, what, file, line);
}

void check_finite_span(const double* data, std::size_t size, const char* what, const char* file,
                       int line) {
    check_finite_impl(data, size, what, file, line);
}

}  // namespace cpt::util::check_detail
