// Statistical primitives used by the fidelity metrics and the synthetic world
// generator: empirical CDFs, the max-CDF-y-distance ("max y-distance" in the
// paper, i.e. the two-sample Kolmogorov-Smirnov statistic), quantiles,
// histograms, and running summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cpt::util {

// Basic moments of a sample.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

Summary summarize(std::span<const double> xs);

// Empirical cumulative distribution function over a sample. Immutable after
// construction; evaluation is O(log n).
class Ecdf {
public:
    Ecdf() = default;
    explicit Ecdf(std::vector<double> samples);

    // P(X <= x); 0 for an empty ECDF.
    double operator()(double x) const;

    // q in [0, 1] -> smallest sample value v with ECDF(v) >= q.
    double quantile(double q) const;

    std::size_t size() const { return sorted_.size(); }
    bool empty() const { return sorted_.empty(); }
    const std::vector<double>& sorted_samples() const { return sorted_; }

private:
    std::vector<double> sorted_;
};

// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|. This is
// exactly the "maximum y-distance between the CDFs" metric used throughout
// the paper's evaluation (Tables 6, 8, 10). Returns 1.0 when exactly one side
// is empty and 0.0 when both are empty.
double max_cdf_y_distance(const Ecdf& a, const Ecdf& b);
double max_cdf_y_distance(std::span<const double> a, std::span<const double> b);

// Quantile of an unsorted sample (copies + sorts; q in [0,1]).
double quantile(std::span<const double> xs, double q);

// Fixed-bin histogram. `log_scale` buckets on log10(x + 1), reproducing the
// paper's Figure 7 view of interarrival times.
struct Histogram {
    std::vector<double> edges;   // size = bins + 1
    std::vector<std::size_t> counts;  // size = bins
    bool log_scale = false;
};

Histogram make_histogram(std::span<const double> xs, std::size_t bins, bool log_scale);

// Discrete distribution helpers -----------------------------------------------

// Normalizes non-negative counts into a probability vector. Returns a zero
// vector when the total is zero.
std::vector<double> normalize(std::span<const double> counts);

// Total variation distance between two probability vectors of equal length.
double total_variation(std::span<const double> p, std::span<const double> q);

// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

// Streaming latency/percentile histogram -------------------------------------
//
// Geometric-bucket histogram for long-running latency accounting (the serve
// stats surface): O(1) record, O(buckets) quantile, fixed memory, no sample
// retention. Bucket 0 is [0, min_value); bucket i >= 1 is
// [min_value*growth^(i-1), min_value*growth^i); the last bucket absorbs
// overflow. quantile() returns the upper edge of the bucket holding the
// requested rank, so its relative error is bounded by `growth - 1`
// (5% by default) — the standard HdrHistogram-style trade-off.
class LatencyHistogram {
public:
    explicit LatencyHistogram(double min_value = 1e-6, double growth = 1.05,
                              std::size_t buckets = 400);

    void record(double x);
    void merge(const LatencyHistogram& other);  // requires identical geometry

    std::size_t count() const { return count_; }
    double total() const { return total_; }
    double mean() const { return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_); }
    double max() const { return max_; }

    // q in [0, 1] -> upper edge of the bucket containing the q-quantile
    // recorded value (the exact maximum for the overflow bucket). 0 when
    // empty.
    double quantile(double q) const;

    struct Percentiles {
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };
    Percentiles percentiles() const;

private:
    double min_value_;
    double inv_log_growth_;
    double growth_;
    std::vector<std::size_t> counts_;
    std::size_t count_ = 0;
    double total_ = 0.0;
    double max_ = 0.0;
};

}  // namespace cpt::util
