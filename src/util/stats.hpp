// Statistical primitives used by the fidelity metrics and the synthetic world
// generator: empirical CDFs, the max-CDF-y-distance ("max y-distance" in the
// paper, i.e. the two-sample Kolmogorov-Smirnov statistic), quantiles,
// histograms, and running summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cpt::util {

// Basic moments of a sample.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

Summary summarize(std::span<const double> xs);

// Empirical cumulative distribution function over a sample. Immutable after
// construction; evaluation is O(log n).
class Ecdf {
public:
    Ecdf() = default;
    explicit Ecdf(std::vector<double> samples);

    // P(X <= x); 0 for an empty ECDF.
    double operator()(double x) const;

    // q in [0, 1] -> smallest sample value v with ECDF(v) >= q.
    double quantile(double q) const;

    std::size_t size() const { return sorted_.size(); }
    bool empty() const { return sorted_.empty(); }
    const std::vector<double>& sorted_samples() const { return sorted_; }

private:
    std::vector<double> sorted_;
};

// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|. This is
// exactly the "maximum y-distance between the CDFs" metric used throughout
// the paper's evaluation (Tables 6, 8, 10). Returns 1.0 when exactly one side
// is empty and 0.0 when both are empty.
double max_cdf_y_distance(const Ecdf& a, const Ecdf& b);
double max_cdf_y_distance(std::span<const double> a, std::span<const double> b);

// Quantile of an unsorted sample (copies + sorts; q in [0,1]).
double quantile(std::span<const double> xs, double q);

// Fixed-bin histogram. `log_scale` buckets on log10(x + 1), reproducing the
// paper's Figure 7 view of interarrival times.
struct Histogram {
    std::vector<double> edges;   // size = bins + 1
    std::vector<std::size_t> counts;  // size = bins
    bool log_scale = false;
};

Histogram make_histogram(std::span<const double> xs, std::size_t bins, bool log_scale);

// Discrete distribution helpers -----------------------------------------------

// Normalizes non-negative counts into a probability vector. Returns a zero
// vector when the total is zero.
std::vector<double> normalize(std::span<const double> counts);

// Total variation distance between two probability vectors of equal length.
double total_variation(std::span<const double> p, std::span<const double> q);

// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace cpt::util
