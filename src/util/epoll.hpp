// Thin RAII wrappers over Linux epoll(7) and eventfd(2) for the serving
// event loops (DESIGN.md §15).
//
// Epoll owns one epoll instance. It carries no lock: the project convention
// is that an epoll set is owned by exactly one event-loop thread — the only
// cross-thread signal into a loop is a WakeFd registered in the set, and the
// data the wake-up points at lives behind a util::Mutex-guarded mailbox on
// the loop object. add/mod/del/wait from the owning thread need no
// synchronization; epoll_wait itself is kernel-side thread-safe against the
// WakeFd writes.
#pragma once

#include <sys/epoll.h>

#include <cstdint>

namespace cpt::util {

// Switches a descriptor to O_NONBLOCK; throws std::runtime_error on failure.
void set_nonblocking(int fd);

// One epoll instance (EPOLL_CLOEXEC). Registered fds carry themselves in
// event.data.fd.
class Epoll {
public:
    Epoll();  // throws std::runtime_error if epoll_create1 fails
    ~Epoll();

    Epoll(const Epoll&) = delete;
    Epoll& operator=(const Epoll&) = delete;

    void add(int fd, std::uint32_t events);
    void mod(int fd, std::uint32_t events);
    // Deregisters; ignores EBADF/ENOENT so callers may close first.
    void del(int fd);

    // Blocks up to timeout_ms (-1 = forever). Returns the number of ready
    // events written to `out`; 0 on timeout *or* EINTR (callers poll their
    // stop conditions each iteration anyway). Throws on other errors.
    int wait(epoll_event* out, int capacity, int timeout_ms);

    int fd() const { return fd_; }

private:
    int fd_ = -1;
};

// Cross-thread wake-up for an epoll loop: an eventfd registered EPOLLIN in
// the loop's set. notify() is cheap and may be called from any thread; the
// loop calls drain() once woken so the level-triggered fd goes quiet again.
class WakeFd {
public:
    WakeFd();  // throws std::runtime_error if eventfd fails
    ~WakeFd();

    WakeFd(const WakeFd&) = delete;
    WakeFd& operator=(const WakeFd&) = delete;

    void notify();
    void drain();
    int fd() const { return fd_; }

private:
    int fd_ = -1;
};

}  // namespace cpt::util
