// Signal-safe shutdown flag for long-running daemons (the cpt_serve binary).
//
// install_shutdown_handlers() registers SIGINT/SIGTERM handlers that do
// nothing but set a sig_atomic_t flag — the only thing that is async-signal-
// safe — so the daemon's main loop can poll shutdown_requested() and drain
// gracefully. Handlers are installed without SA_RESTART so a blocking
// accept()/read() returns EINTR and the loop observes the flag promptly.
#pragma once

namespace cpt::util {

// Registers SIGINT and SIGTERM handlers that set the shutdown flag.
void install_shutdown_handlers();

// True once a handled signal arrived or request_shutdown() was called.
bool shutdown_requested();

// Sets the flag from regular code (in-process drain, tests).
void request_shutdown();

// Clears the flag (tests that exercise the drain path repeatedly).
void reset_shutdown_flag();

}  // namespace cpt::util
