#include "cli.hpp"

#include <cctype>
#include <cstdlib>
#include <string_view>

#include "csv.hpp"

namespace cpt::util {

Options::Options(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view raw = argv[i];
        if (raw.rfind("--", 0) != 0) continue;
        const std::string_view arg = raw.substr(2);
        // Mapped strings are constructed with explicit lengths (never from a
        // bare const char*): GCC 12's -Wrestrict false-fires on the inlined
        // strlen-based assign/construct paths at -O2 and above.
        const auto eq = arg.find('=');
        if (eq == std::string_view::npos) {
            args_.insert_or_assign(std::string(arg), std::string(1, '1'));  // bare flag
        } else {
            args_.insert_or_assign(std::string(arg.substr(0, eq)),
                                   std::string(arg.substr(eq + 1)));
        }
    }
}

std::optional<std::string> Options::lookup(const std::string& name) const {
    if (const auto it = args_.find(name); it != args_.end()) return it->second;
    std::string env = "CPT_";
    for (char c : name) env.push_back(c == '-' ? '_' : static_cast<char>(std::toupper(c)));
    if (const char* v = std::getenv(env.c_str())) return std::string(v);
    return std::nullopt;
}

bool Options::has(const std::string& name) const { return lookup(name).has_value(); }

std::string Options::get(const std::string& name, const std::string& fallback) const {
    return lookup(name).value_or(fallback);
}

long long Options::get_int(const std::string& name, long long fallback) const {
    const auto v = lookup(name);
    return v ? parse_int(*v) : fallback;
}

double Options::get_double(const std::string& name, double fallback) const {
    const auto v = lookup(name);
    return v ? parse_double(*v) : fallback;
}

bool Options::get_flag(const std::string& name, bool fallback) const {
    const auto v = lookup(name);
    if (!v) return fallback;
    return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

}  // namespace cpt::util
