#include "cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "check.hpp"
#include "log.hpp"
#include "sync.hpp"

namespace cpt::util {

namespace {

SimdTier best_supported_tier() {
#if defined(CPT_HAVE_AVX2_KERNELS) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return SimdTier::kAvx2;
#endif
#if defined(__SSE2__)
    return SimdTier::kSse2;
#else
    return SimdTier::kScalar;
#endif
}

// -1 = unresolved; otherwise holds a SimdTier enumerator. The atomic is the
// published value; g_resolve_mutex only serializes the one-time resolution
// (env parsing + the single "simd tier" log line).
std::atomic<int> g_active{-1};
Mutex g_resolve_mutex;

bool parse_tier(const std::string& name, SimdTier& out) {
    if (name == "scalar") {
        out = SimdTier::kScalar;
    } else if (name == "sse2") {
        out = SimdTier::kSse2;
    } else if (name == "avx2") {
        out = SimdTier::kAvx2;
    } else {
        return false;
    }
    return true;
}

SimdTier resolve_active_tier() {
    const SimdTier best = detect_simd_tier();
    SimdTier chosen = best;
    const char* env = std::getenv("CPT_SIMD");
    if (env != nullptr && *env != '\0') {
        SimdTier requested = best;
        if (!parse_tier(env, requested)) {
            warnf("CPT_SIMD=%s not recognized (expected scalar|sse2|avx2); using %s", env,
                  simd_tier_name(best));
        } else if (!simd_tier_available(requested)) {
            warnf("CPT_SIMD=%s not supported on this host/binary; clamping to %s", env,
                  simd_tier_name(best));
        } else {
            chosen = requested;
        }
    }
    info(std::string("simd tier: ") + simd_tier_name(chosen) + " (detected " +
         simd_tier_name(best) + (env != nullptr && *env != '\0'
                                     ? std::string(", CPT_SIMD=") + env + ")"
                                     : std::string(")")));
    return chosen;
}

}  // namespace

const char* simd_tier_name(SimdTier tier) {
    switch (tier) {
        case SimdTier::kScalar: return "scalar";
        case SimdTier::kSse2: return "sse2";
        case SimdTier::kAvx2: return "avx2";
    }
    return "unknown";
}

SimdTier detect_simd_tier() {
    static const SimdTier tier = best_supported_tier();
    return tier;
}

bool simd_tier_available(SimdTier tier) {
    return static_cast<int>(tier) <= static_cast<int>(detect_simd_tier());
}

SimdTier active_simd_tier() {
    int cur = g_active.load(std::memory_order_acquire);
    if (cur >= 0) return static_cast<SimdTier>(cur);
    const LockGuard lock(g_resolve_mutex);
    cur = g_active.load(std::memory_order_acquire);
    if (cur >= 0) return static_cast<SimdTier>(cur);
    const SimdTier tier = resolve_active_tier();
    g_active.store(static_cast<int>(tier), std::memory_order_release);
    return tier;
}

SimdTier set_simd_tier(SimdTier tier) {
    CPT_CHECK(simd_tier_available(tier), "set_simd_tier: tier '", simd_tier_name(tier),
              "' not available (detected '", simd_tier_name(detect_simd_tier()), "')");
    const SimdTier prev = active_simd_tier();  // forces resolution + one-time log
    g_active.store(static_cast<int>(tier), std::memory_order_release);
    return prev;
}

}  // namespace cpt::util
