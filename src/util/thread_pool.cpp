#include "thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "sync.hpp"

namespace cpt::util {

namespace {

thread_local bool tls_in_worker = false;

struct ChunkPlan {
    std::size_t chunks = 0;
    std::size_t base = 0;  // items per chunk; first `extra` chunks get one more
    std::size_t extra = 0;

    // [begin, end) of chunk c under balanced static chunking.
    std::pair<std::size_t, std::size_t> range(std::size_t c) const {
        const std::size_t begin = c * base + std::min(c, extra);
        const std::size_t len = base + (c < extra ? 1 : 0);
        return {begin, begin + len};
    }
};

ChunkPlan plan_chunks(std::size_t n, std::size_t grain, std::size_t threads) {
    ChunkPlan p;
    if (n == 0) return p;
    if (grain == 0) grain = 1;
    const std::size_t by_grain = (n + grain - 1) / grain;
    p.chunks = std::min(threads, by_grain);
    if (p.chunks == 0) p.chunks = 1;
    p.base = n / p.chunks;
    p.extra = n % p.chunks;
    return p;
}

}  // namespace

// One outstanding parallel region at a time; workers park on a condition
// variable between regions. Chunk c (c >= 1) is executed by worker c - 1 and
// chunk 0 by the caller, so assignment is static and deterministic.
struct ThreadPool::Impl {
    std::vector<std::thread> workers;
    Mutex mu;
    CondVar start_cv;
    CondVar done_cv;

    // Region state, guarded by mu.
    std::uint64_t generation CPT_GUARDED_BY(mu) = 0;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn CPT_GUARDED_BY(mu) =
        nullptr;
    ChunkPlan plan CPT_GUARDED_BY(mu);
    std::size_t pending CPT_GUARDED_BY(mu) = 0;
    std::exception_ptr error CPT_GUARDED_BY(mu);
    bool shutdown CPT_GUARDED_BY(mu) = false;

    void worker_loop(std::size_t worker_id) {
        tls_in_worker = true;
        std::uint64_t seen = 0;
        mu.lock();
        for (;;) {
            while (!shutdown && generation == seen) start_cv.wait(mu);
            if (shutdown) break;
            seen = generation;
            const std::size_t chunk = worker_id + 1;
            if (chunk < plan.chunks) {
                const auto* f = fn;
                const auto [b, e] = plan.range(chunk);
                mu.unlock();
                std::exception_ptr err;
                try {
                    (*f)(chunk, b, e);
                } catch (...) {
                    err = std::current_exception();
                }
                mu.lock();
                if (err && !error) error = err;
                if (--pending == 0) done_cv.notify_one();
            }
        }
        mu.unlock();
    }
};

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads == 0 ? 1 : threads) {
    if (threads_ == 1) return;
    impl_ = new Impl;
    impl_->workers.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i) {
        impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    if (!impl_) return;
    {
        LockGuard lock(impl_->mu);
        impl_->shutdown = true;
    }
    impl_->start_cv.notify_all();
    for (auto& w : impl_->workers) w.join();
    delete impl_;
}

std::size_t ThreadPool::num_chunks(std::size_t n, std::size_t grain) const {
    const std::size_t effective = (impl_ && !tls_in_worker) ? threads_ : 1;
    return plan_chunks(n, grain, effective).chunks;
}

bool ThreadPool::in_worker() { return tls_in_worker; }

void ThreadPool::parallel_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    // Single-thread pool, nested call, or too little work: run inline.
    const ChunkPlan plan = plan_chunks(n, grain, (impl_ && !tls_in_worker) ? threads_ : 1);
    if (plan.chunks <= 1 || !impl_ || tls_in_worker) {
        for (std::size_t c = 0; c < plan.chunks; ++c) {
            const auto [b, e] = plan.range(c);
            fn(c, b, e);
        }
        return;
    }

    {
        LockGuard lock(impl_->mu);
        impl_->fn = &fn;
        impl_->plan = plan;
        impl_->pending = plan.chunks - 1;
        impl_->error = nullptr;
        ++impl_->generation;
    }
    impl_->start_cv.notify_all();

    // The caller is lane 0.
    std::exception_ptr my_error;
    const bool was_in_worker = tls_in_worker;
    tls_in_worker = true;
    try {
        const auto [b, e] = plan.range(0);
        fn(0, b, e);
    } catch (...) {
        my_error = std::current_exception();
    }
    tls_in_worker = was_in_worker;

    std::exception_ptr err;
    {
        LockGuard lock(impl_->mu);
        while (impl_->pending != 0) impl_->done_cv.wait(impl_->mu);
        impl_->fn = nullptr;
        err = my_error ? my_error : impl_->error;
    }
    if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_chunks(n, grain,
                    [&fn](std::size_t, std::size_t begin, std::size_t end) { fn(begin, end); });
}

namespace {

std::size_t env_threads() {
    if (const char* v = std::getenv("CPT_THREADS")) {
        char* end = nullptr;
        const long n = std::strtol(v, &end, 10);
        if (end != v && n > 0) return static_cast<std::size_t>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

Mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool CPT_GUARDED_BY(g_pool_mu);
std::size_t g_pool_threads CPT_GUARDED_BY(g_pool_mu) = 0;

}  // namespace

ThreadPool& global_pool() {
    LockGuard lock(g_pool_mu);
    if (!g_pool) {
        g_pool_threads = env_threads();
        g_pool = std::make_unique<ThreadPool>(g_pool_threads);
    }
    return *g_pool;
}

std::size_t configured_threads() {
    LockGuard lock(g_pool_mu);
    return g_pool ? g_pool_threads : env_threads();
}

void set_global_threads(std::size_t threads) {
    if (threads == 0) threads = 1;
    LockGuard lock(g_pool_mu);
    g_pool.reset();  // join old workers before replacing
    g_pool_threads = threads;
    g_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace cpt::util
