// Plain-text rendering helpers used by bench binaries and examples to print
// paper-style tables and figures (CDF plots, histograms) on a terminal.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats.hpp"

namespace cpt::util {

// A simple column-aligned table with a header row.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    // Renders with column padding and a separator under the header.
    std::string render() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (no trailing-zero games; predictable
// widths for tables).
std::string fmt(double value, int precision = 2);
// Percentage with a trailing '%'.
std::string fmt_pct(double fraction, int precision = 2);
// Per-mille with a trailing char sequence "permil".
std::string fmt_permille(double fraction, int precision = 2);

// Renders one or more named CDFs as an ASCII line plot. `width`/`height` are
// character-cell dimensions; x is sampled over the pooled data range
// (log-scaled when `log_x`).
std::string render_cdf_plot(const std::vector<std::pair<std::string, Ecdf>>& curves,
                            std::size_t width = 72, std::size_t height = 16,
                            bool log_x = true);

// Renders a histogram as horizontal bars.
std::string render_histogram(const Histogram& h, std::size_t width = 60);

}  // namespace cpt::util
