// Tiny command-line / environment option reader used by examples and bench
// binaries. Options come from `--key=value` arguments, with environment
// variables (upper-cased, prefixed CPT_) as fallback, then the default.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

namespace cpt::util {

class Options {
public:
    Options(int argc, const char* const* argv);

    // `name` is the option key, e.g. "ues" for --ues=100 / env CPT_UES.
    std::string get(const std::string& name, const std::string& fallback) const;
    long long get_int(const std::string& name, long long fallback) const;
    double get_double(const std::string& name, double fallback) const;
    bool get_flag(const std::string& name, bool fallback = false) const;

    bool has(const std::string& name) const;

private:
    std::optional<std::string> lookup(const std::string& name) const;

    std::unordered_map<std::string, std::string> args_;
};

}  // namespace cpt::util
