// Minimal logging helper so every runtime diagnostic — degenerate-sampler
// warnings, trainer fallbacks, lint findings printed outside a report — shares
// one greppable "[cpt] <severity>:" prefix on stderr instead of ad-hoc
// std::cerr / fprintf calls scattered across modules.
#pragma once

#include <string_view>

namespace cpt::util {

// printf-style warning to stderr: "[cpt] warning: <message>\n".
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void warnf(const char* fmt, ...);

// Pre-formatted single-line variants (no printf parsing).
void warn(std::string_view message);
void info(std::string_view message);

// The prefix warnings are emitted with, exposed so tools that capture stderr
// (tests, the check.sh gate) can match it exactly.
inline constexpr std::string_view kWarnPrefix = "[cpt] warning: ";
inline constexpr std::string_view kInfoPrefix = "[cpt] info: ";

}  // namespace cpt::util
