#include "client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net.hpp"

namespace cpt::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string("serve: ") + what + ": " + std::strerror(errno));
}

}  // namespace

// ---- ThreadedTcpServer -----------------------------------------------------

ThreadedTcpServer::ThreadedTcpServer(Service& service, const std::string& host,
                                     std::uint16_t port, std::size_t max_connections)
    : service_(service), max_connections_(max_connections) {
    listen_fd_ = net::listen_socket(host, port, /*backlog=*/64, &port_);
}

ThreadedTcpServer::~ThreadedTcpServer() {
    stop();
    // serve_forever joins connection threads; if it was never run (or exited
    // early), join whatever is left here.
    std::vector<std::thread> threads;
    {
        util::LockGuard lk(mu_);
        threads.swap(conn_threads_);
    }
    for (auto& t : threads) {
        if (t.joinable()) t.join();
    }
}

void ThreadedTcpServer::serve_forever(const std::function<bool()>& interrupt) {
    for (;;) {
        int lfd = -1;
        {
            util::LockGuard lk(mu_);
            if (stopping_) break;
            lfd = listen_fd_;
        }
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                if (interrupt && interrupt()) break;
                continue;
            }
            // stop() closed the listening socket under us.
            util::LockGuard lk(mu_);
            if (stopping_) break;
            throw_errno("accept");
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        util::LockGuard lk(mu_);
        if (stopping_) {
            ::close(fd);
            break;
        }
        if (conn_fds_.size() >= max_connections_) {
            // Every connection costs a full thread stack; past the budget the
            // kindest failure is an immediate close so the client sees EOF
            // rather than an unbounded accept queue. (The epoll server exists
            // precisely to lift this cap.)
            ::close(fd);
            continue;
        }
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
    }
    // Unblock connection threads stuck in recv before joining them — an idle
    // client must not be able to hold up shutdown.
    stop();
    std::vector<std::thread> threads;
    {
        util::LockGuard lk(mu_);
        threads.swap(conn_threads_);
    }
    for (auto& t : threads) {
        if (t.joinable()) t.join();
    }
}

void ThreadedTcpServer::stop() {
    util::LockGuard lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void ThreadedTcpServer::handle_connection(int fd) {
    std::vector<std::uint8_t> payload;
    try {
        while (read_frame(fd, payload)) {
            std::vector<std::uint8_t> reply;
            switch (peek_type(payload)) {
                case MsgType::kGenerateRequest: {
                    const GenerateRequest req = decode_generate_request(payload);
                    reply = encode_generate_response(service_.generate(req));
                    break;
                }
                case MsgType::kStatsRequest:
                    reply = encode_stats_response(service_.stats_json());
                    break;
                case MsgType::kHealthRequest:
                    reply = encode_health_response(service_.health());
                    break;
                default:
                    throw std::runtime_error("serve: client sent a response-typed frame");
            }
            write_frame(fd, reply);
        }
    } catch (const std::exception&) {
        // Malformed frame or peer reset: drop the connection. The daemon
        // must outlive misbehaving clients.
    }
    ::close(fd);
    util::LockGuard lk(mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
        if (*it == fd) {
            conn_fds_.erase(it);
            break;
        }
    }
}

// ---- TcpClient -------------------------------------------------------------

TcpClient::TcpClient(const std::string& host, std::uint16_t port)
    : peer_(host + ":" + std::to_string(port)) {
    // Parse before creating the socket: if the host is not an IPv4 literal
    // the constructor exits by exception and the destructor never runs, so
    // an fd created first would leak. Callers are also promised a
    // TransportError, not the parser's runtime_error.
    sockaddr_in addr{};
    try {
        addr = net::make_addr(host, port);
    } catch (const std::exception& e) {
        throw TransportError(TransportError::Kind::kConnectFailed, peer_, 0,
                             /*response_started=*/false, e.what());
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    int rc;
    do {
        rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        const auto kind = err == ECONNREFUSED ? TransportError::Kind::kConnectRefused
                                              : TransportError::Kind::kConnectFailed;
        throw TransportError(kind, peer_, err, /*response_started=*/false,
                             "serve: connect to " + peer_ + " failed: " + std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
}

void TcpClient::set_io_timeout(std::chrono::milliseconds timeout) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0 ||
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
        throw_errno("setsockopt(SO_RCVTIMEO)");
    }
}

// Maps a framing failure onto the typed client error. `response_started` is
// true only for failures on the read side after the first response byte
// arrived — exactly the failures the router must not retry.
const std::vector<std::uint8_t>& TcpClient::roundtrip(
    const std::vector<std::uint8_t>& request) {
    bool reading = false;
    try {
        write_frame(fd_, request);
        reading = true;
        if (!read_frame(fd_, frame_)) {
            throw TransportError(TransportError::Kind::kClosed, peer_, 0,
                                 /*response_started=*/false,
                                 "serve: " + peer_ + " closed connection before replying");
        }
        return frame_;
    } catch (const FrameError& e) {
        const bool response_started = reading && e.midstream();
        TransportError::Kind kind;
        switch (e.kind()) {
            case FrameError::Kind::kClosed:
                kind = TransportError::Kind::kClosed;
                break;
            case FrameError::Kind::kTimeout:
                kind = TransportError::Kind::kTimeout;
                break;
            case FrameError::Kind::kBadLength:
                kind = TransportError::Kind::kProtocol;
                break;
            case FrameError::Kind::kRecv:
            case FrameError::Kind::kSend:
            default:
                kind = (e.errno_code() == ECONNRESET || e.errno_code() == EPIPE)
                           ? TransportError::Kind::kReset
                           : TransportError::Kind::kProtocol;
                break;
        }
        throw TransportError(kind, peer_, e.errno_code(), response_started,
                             std::string(e.what()) + " (peer " + peer_ + ")");
    }
}

namespace {

// A decode failure after a complete frame arrived means the peer spoke the
// framing but not the payload schema: a protocol-level TransportError with
// response_started=true, so the router never retries it elsewhere.
template <typename DecodeFn>
auto decode_response(const std::string& peer, DecodeFn&& decode)
    -> decltype(decode()) {
    try {
        return decode();
    } catch (const std::exception& e) {
        throw TransportError(TransportError::Kind::kProtocol, peer, 0,
                             /*response_started=*/true,
                             std::string(e.what()) + " (peer " + peer + ")");
    }
}

}  // namespace

GenerateResponse TcpClient::generate(const GenerateRequest& request) {
    const auto& frame = roundtrip(encode_generate_request(request));
    return decode_response(peer_, [&] { return decode_generate_response(frame); });
}

std::string TcpClient::stats_json() {
    const auto& frame = roundtrip(encode_stats_request());
    return decode_response(peer_, [&] { return decode_stats_response(frame); });
}

HealthInfo TcpClient::health() {
    const auto& frame = roundtrip(encode_health_request());
    return decode_response(peer_, [&] { return decode_health_response(frame); });
}

// ---- connect_with_backoff --------------------------------------------------

std::unique_ptr<TcpClient> connect_with_backoff(const std::string& host, std::uint16_t port,
                                                const util::Backoff& backoff) {
    for (int attempt = 0;; ++attempt) {
        try {
            return std::make_unique<TcpClient>(host, port);
        } catch (const TransportError&) {
            if (!backoff.should_retry(attempt)) throw;
            backoff.sleep(attempt);
        }
    }
}

}  // namespace cpt::serve
