#include "client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace cpt::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string("serve: ") + what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error("serve: bad IPv4 address '" + host + "'");
    }
    return addr;
}

}  // namespace

// ---- TcpServer -------------------------------------------------------------

TcpServer::TcpServer(Server& server, const std::string& host, std::uint16_t port)
    : server_(server) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(host, port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = err;
        throw_errno("bind");
    }
    if (::listen(listen_fd_, 64) < 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = err;
        throw_errno("listen");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
}

TcpServer::~TcpServer() {
    stop();
    // serve_forever joins connection threads; if it was never run (or exited
    // early), join whatever is left here.
    std::vector<std::thread> threads;
    {
        util::LockGuard lk(mu_);
        threads.swap(conn_threads_);
    }
    for (auto& t : threads) {
        if (t.joinable()) t.join();
    }
}

void TcpServer::serve_forever(const std::function<bool()>& interrupt) {
    for (;;) {
        int lfd = -1;
        {
            util::LockGuard lk(mu_);
            if (stopping_) break;
            lfd = listen_fd_;
        }
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                if (interrupt && interrupt()) break;
                continue;
            }
            // stop() closed the listening socket under us.
            util::LockGuard lk(mu_);
            if (stopping_) break;
            throw_errno("accept");
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        util::LockGuard lk(mu_);
        if (stopping_) {
            ::close(fd);
            break;
        }
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
    }
    // Unblock connection threads stuck in recv before joining them — an idle
    // client must not be able to hold up shutdown.
    stop();
    std::vector<std::thread> threads;
    {
        util::LockGuard lk(mu_);
        threads.swap(conn_threads_);
    }
    for (auto& t : threads) {
        if (t.joinable()) t.join();
    }
}

void TcpServer::stop() {
    util::LockGuard lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::handle_connection(int fd) {
    std::vector<std::uint8_t> payload;
    try {
        while (read_frame(fd, payload)) {
            std::vector<std::uint8_t> reply;
            switch (peek_type(payload)) {
                case MsgType::kGenerateRequest: {
                    const GenerateRequest req = decode_generate_request(payload);
                    reply = encode_generate_response(server_.generate(req));
                    break;
                }
                case MsgType::kStatsRequest:
                    reply = encode_stats_response(server_.stats_json());
                    break;
                default:
                    throw std::runtime_error("serve: client sent a response-typed frame");
            }
            write_frame(fd, reply);
        }
    } catch (const std::exception&) {
        // Malformed frame or peer reset: drop the connection. The daemon
        // must outlive misbehaving clients.
    }
    ::close(fd);
    util::LockGuard lk(mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
        if (*it == fd) {
            conn_fds_.erase(it);
            break;
        }
    }
}

// ---- TcpClient -------------------------------------------------------------

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    sockaddr_in addr = make_addr(host, port);
    int rc;
    do {
        rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        throw_errno("connect");
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
}

GenerateResponse TcpClient::generate(const GenerateRequest& request) {
    write_frame(fd_, encode_generate_request(request));
    if (!read_frame(fd_, frame_)) {
        throw std::runtime_error("serve: server closed connection before replying");
    }
    return decode_generate_response(frame_);
}

std::string TcpClient::stats_json() {
    write_frame(fd_, encode_stats_request());
    if (!read_frame(fd_, frame_)) {
        throw std::runtime_error("serve: server closed connection before replying");
    }
    return decode_stats_response(frame_);
}

}  // namespace cpt::serve
