#include "service.hpp"

#include <future>
#include <utility>

namespace cpt::serve {

GenerateResponse Service::generate(const GenerateRequest& request) {
    // The shared_ptr keeps the promise alive even if the implementation runs
    // the callback after this frame unwinds on an exception path.
    auto promise = std::make_shared<std::promise<GenerateResponse>>();
    std::future<GenerateResponse> fut = promise->get_future();
    generate_async(request,
                   [promise](GenerateResponse&& resp) { promise->set_value(std::move(resp)); });
    return fut.get();
}

}  // namespace cpt::serve
