// Blocking TCP transport pieces for cpt-serve: the compat thread-per-
// connection server (ThreadedTcpServer), the client (TcpClient) with typed
// transport errors, and a bounded reconnect helper (connect_with_backoff) the
// router's failover path reuses.
//
// The production listener is the epoll TcpServer in event_loop.hpp (included
// below so existing `serve/client.hpp` users keep compiling); the threaded
// server is retained as the baseline for bench_serve's transport comparison
// and as the simplest-possible reference implementation of the protocol.
//
// ThreadedTcpServer: one OS thread per connection; each connection processes
// its frames in order (a generate frame blocks that connection until the
// engine answers), so pipelined load needs multiple connections. Connection
// count is capped at `max_connections` — each costs a full thread stack, so
// the cap is the thread budget; excess accepts are closed immediately.
//
// Shutdown: stop() closes the listening socket and shuts down every live
// connection, so serve_forever() returns after joining the connection
// threads. serve_forever() also returns when `interrupt` (checked whenever
// accept(2) is interrupted by a signal — util::install_shutdown_handlers
// installs handlers without SA_RESTART precisely so this works) reports true.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service.hpp"
#include "util/backoff.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

// Typed client-side transport failure. Carries the peer address, the errno
// that caused it, and — the bit the router's failover logic keys on —
// whether any byte of the response had already arrived. A refused connect or
// a request that died before the first response byte is safe to retry
// against another backend (generation is idempotent for deterministic
// requests); a partially-streamed response is not.
class TransportError : public std::runtime_error {
public:
    enum class Kind {
        kConnectRefused,  // ECONNREFUSED: nothing is listening on the peer
        kConnectFailed,   // any other connect(2) failure
        kClosed,          // peer closed the connection (EOF)
        kReset,           // ECONNRESET / EPIPE mid-conversation
        kTimeout,         // configured I/O timeout expired
        kProtocol,        // malformed frame or payload from the peer
    };

    TransportError(Kind kind, std::string peer, int errno_code, bool response_started,
                   const std::string& what)
        : std::runtime_error(what),
          kind_(kind),
          peer_(std::move(peer)),
          errno_(errno_code),
          response_started_(response_started) {}

    Kind kind() const { return kind_; }
    const std::string& peer() const { return peer_; }  // "host:port"
    int errno_code() const { return errno_; }
    bool response_started() const { return response_started_; }

private:
    Kind kind_;
    std::string peer_;
    int errno_;
    bool response_started_;
};

class TcpClient {
public:
    // Connects to host:port; throws TransportError on failure
    // (kConnectRefused when nothing is listening).
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    // Peer address as "host:port" (for error messages and logs).
    const std::string& peer() const { return peer_; }

    // Bounds every subsequent send/recv (SO_SNDTIMEO/SO_RCVTIMEO); an
    // expired timeout surfaces as TransportError::Kind::kTimeout. Zero
    // restores blocking I/O.
    void set_io_timeout(std::chrono::milliseconds timeout);

    // Round-trips one request frame. Throws TransportError on transport or
    // protocol errors; service-level failures come back in the response
    // status instead.
    GenerateResponse generate(const GenerateRequest& request);
    std::string stats_json();
    HealthInfo health();

private:
    const std::vector<std::uint8_t>& roundtrip(const std::vector<std::uint8_t>& request);

    int fd_ = -1;
    std::string peer_;
    std::vector<std::uint8_t> frame_;  // reused receive buffer
};

// Connects with bounded, deterministic backoff: retries refused/unreachable
// connects per `policy`, rethrowing the last TransportError when attempts
// are exhausted. Protocol-level errors are never retried here.
std::unique_ptr<TcpClient> connect_with_backoff(const std::string& host, std::uint16_t port,
                                                const util::Backoff& backoff);

class ThreadedTcpServer {
public:
    // Binds and listens on host:port; port 0 picks an ephemeral port (read it
    // back with port()). Throws std::runtime_error on socket errors.
    ThreadedTcpServer(Service& service, const std::string& host = "127.0.0.1",
                      std::uint16_t port = 0, std::size_t max_connections = 256);
    ~ThreadedTcpServer();

    ThreadedTcpServer(const ThreadedTcpServer&) = delete;
    ThreadedTcpServer& operator=(const ThreadedTcpServer&) = delete;

    std::uint16_t port() const { return port_; }

    // Accepts connections until stop() is called or `interrupt` returns true
    // after a signal interrupts accept(2). Joins connection threads before
    // returning. Call from the thread that should own the accept loop.
    void serve_forever(const std::function<bool()>& interrupt = nullptr);

    // Closes the listening socket and all live connections; safe to call
    // from another thread or more than once.
    void stop();

private:
    void handle_connection(int fd) CPT_EXCLUDES(mu_);

    Service& service_;
    std::size_t max_connections_;
    std::uint16_t port_ = 0;
    util::Mutex mu_;
    // Closed and set to -1 by stop(); the accept loop re-reads it under mu_
    // each iteration so a concurrent stop() cannot race the accept(2) fd.
    int listen_fd_ CPT_GUARDED_BY(mu_) = -1;
    bool stopping_ CPT_GUARDED_BY(mu_) = false;
    std::vector<int> conn_fds_ CPT_GUARDED_BY(mu_);
    std::vector<std::thread> conn_threads_ CPT_GUARDED_BY(mu_);
};

}  // namespace cpt::serve

// The epoll event-loop TcpServer — the default listener — lives in its own
// header but is pulled in here so `serve/client.hpp` users see the complete
// transport surface.
#include "event_loop.hpp"  // IWYU pragma: keep
