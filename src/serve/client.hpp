// TCP transport for cpt-serve: a blocking accept-loop server that exposes a
// serve::Server over the length-prefixed protocol (protocol.hpp), and a
// matching client. One OS thread per connection; each connection processes
// its frames in order (a generate frame blocks that connection until the
// engine answers), so pipelined load needs multiple connections — which is
// what serve_loadtest does.
//
// Shutdown: stop() closes the listening socket and shuts down every live
// connection, so serve_forever() returns after joining the connection
// threads. serve_forever() also returns when `interrupt` (checked whenever
// accept(2) is interrupted by a signal — util::install_shutdown_handlers
// installs handlers without SA_RESTART precisely so this works) reports true.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "server.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

class TcpServer {
public:
    // Binds and listens on host:port; port 0 picks an ephemeral port (read it
    // back with port()). Throws std::runtime_error on socket errors.
    TcpServer(Server& server, const std::string& host = "127.0.0.1",
              std::uint16_t port = 0);
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    std::uint16_t port() const { return port_; }

    // Accepts connections until stop() is called or `interrupt` returns true
    // after a signal interrupts accept(2). Joins connection threads before
    // returning. Call from the thread that should own the accept loop.
    void serve_forever(const std::function<bool()>& interrupt = nullptr);

    // Closes the listening socket and all live connections; safe to call
    // from another thread or more than once.
    void stop();

private:
    void handle_connection(int fd) CPT_EXCLUDES(mu_);

    Server& server_;
    std::uint16_t port_ = 0;
    util::Mutex mu_;
    // Closed and set to -1 by stop(); the accept loop re-reads it under mu_
    // each iteration so a concurrent stop() cannot race the accept(2) fd.
    int listen_fd_ CPT_GUARDED_BY(mu_) = -1;
    bool stopping_ CPT_GUARDED_BY(mu_) = false;
    std::vector<int> conn_fds_ CPT_GUARDED_BY(mu_);
    std::vector<std::thread> conn_threads_ CPT_GUARDED_BY(mu_);
};

class TcpClient {
public:
    // Connects to host:port; throws std::runtime_error on failure.
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    // Round-trips one request frame. Throws std::runtime_error on transport
    // or protocol errors; service-level failures come back in the response
    // status instead.
    GenerateResponse generate(const GenerateRequest& request);
    std::string stats_json();

private:
    int fd_ = -1;
    std::vector<std::uint8_t> frame_;  // reused receive buffer
};

}  // namespace cpt::serve
