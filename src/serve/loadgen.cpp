#include "loadgen.hpp"

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "client.hpp"
#include "util/backoff.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

std::vector<double> poisson_schedule(double rate, std::size_t n, std::uint64_t seed) {
    CPT_CHECK_GT(rate, 0.0, " serve::poisson_schedule: rate");
    util::Rng rng(seed);
    std::vector<double> offsets;
    offsets.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += rng.exponential(rate);
        offsets.push_back(t);
    }
    return offsets;
}

LoadgenResult run_loadtest(const LoadgenConfig& cfg) {
    CPT_CHECK_GT(cfg.connections, std::size_t{0}, " serve::run_loadtest: connections");
    const std::vector<double> schedule =
        cfg.rate > 0.0 ? poisson_schedule(cfg.rate, cfg.requests, cfg.seed)
                       : std::vector<double>();

    struct Shared {
        util::Mutex mu;
        std::size_t next CPT_GUARDED_BY(mu) = 0;
        std::size_t ok CPT_GUARDED_BY(mu) = 0;
        std::size_t failed CPT_GUARDED_BY(mu) = 0;
        std::uint64_t streams CPT_GUARDED_BY(mu) = 0;
        util::LatencyHistogram latency CPT_GUARDED_BY(mu);
        std::string first_error CPT_GUARDED_BY(mu);
    } shared;

    const auto start = Clock::now();
    auto worker = [&cfg, &schedule, &shared, start] {
        std::unique_ptr<TcpClient> client;
        const util::Backoff reconnect({5.0, 200.0, 2.0, 3});
        for (;;) {
            std::size_t i = 0;
            {
                util::LockGuard lk(shared.mu);
                if (shared.next >= cfg.requests) return;
                i = shared.next++;
            }
            // In open-loop mode the request "arrives" at its scheduled time
            // regardless of how the previous ones fared; latency accrues
            // from that instant.
            Clock::time_point arrival = Clock::now();
            if (!schedule.empty()) {
                arrival = start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(schedule[i]));
                std::this_thread::sleep_until(arrival);
            }
            GenerateRequest req;
            req.device = cfg.device;
            req.hour_of_day = cfg.hour_of_day;
            req.count = cfg.count;
            req.seed = cfg.seed + i;
            req.deterministic = cfg.deterministic;
            req.max_stream_len = cfg.max_stream_len;
            req.deadline_ms = cfg.deadline_ms;
            char prefix[64];
            std::snprintf(prefix, sizeof(prefix), "%s-%06zu", cfg.ue_prefix.c_str(), i);
            req.ue_prefix = prefix;
            try {
                if (!client) client = connect_with_backoff(cfg.host, cfg.port, reconnect);
                GenerateResponse resp = client->generate(req);
                const double lat =
                    std::chrono::duration<double>(Clock::now() - arrival).count();
                util::LockGuard lk(shared.mu);
                if (resp.status == Status::kOk) {
                    ++shared.ok;
                    shared.streams += resp.streams.size();
                    shared.latency.record(lat);
                } else {
                    ++shared.failed;
                    if (shared.first_error.empty()) {
                        shared.first_error =
                            std::string(status_name(resp.status)) + ": " + resp.error;
                    }
                }
            } catch (const std::exception& e) {
                // Transport failure: drop the cached connection so the next
                // request reconnects (with backoff) instead of reusing a
                // dead socket.
                client.reset();
                util::LockGuard lk(shared.mu);
                ++shared.failed;
                if (shared.first_error.empty()) shared.first_error = e.what();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(cfg.connections);
    for (std::size_t c = 0; c < cfg.connections; ++c) threads.emplace_back(worker);
    for (auto& t : threads) t.join();

    LoadgenResult result;
    result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    {
        util::LockGuard lk(shared.mu);
        result.ok = shared.ok;
        result.failed = shared.failed;
        result.streams = shared.streams;
        result.latency = shared.latency;
        result.first_error = shared.first_error;
    }
    result.achieved_rps = result.wall_seconds > 0.0
                              ? static_cast<double>(result.ok) / result.wall_seconds
                              : 0.0;
    return result;
}

}  // namespace cpt::serve
