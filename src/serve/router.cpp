#include "router.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "net.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cpt::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string slice_key(trace::DeviceType device, int hour) {
    return std::string(trace::to_string(device)) + "/h" + std::to_string(hour);
}

}  // namespace

// ---- hashing & routing (pure) ----------------------------------------------

std::uint64_t fnv1a64(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& node) {
    if (contains(node)) return;
    for (std::size_t i = 0; i < vnodes_; ++i) {
        points_.emplace(fnv1a64(node + "#" + std::to_string(i)), node);
    }
    ++node_count_;
}

void HashRing::remove(const std::string& node) {
    if (!contains(node)) return;
    for (auto it = points_.begin(); it != points_.end();) {
        if (it->second == node) {
            it = points_.erase(it);
        } else {
            ++it;
        }
    }
    --node_count_;
}

bool HashRing::contains(const std::string& node) const {
    for (const auto& [point, n] : points_) {
        if (n == node) return true;
    }
    return false;
}

std::string HashRing::owner(std::string_view key) const {
    const auto v = owners(key, 1);
    return v.empty() ? std::string() : v.front();
}

std::vector<std::string> HashRing::owners(std::string_view key, std::size_t n) const {
    std::vector<std::string> out;
    if (points_.empty() || n == 0) return out;
    const std::uint64_t h = fnv1a64(key);
    auto it = points_.lower_bound(h);
    // Walk clockwise (wrapping) collecting distinct nodes.
    for (std::size_t steps = 0; steps < points_.size() && out.size() < n; ++steps) {
        if (it == points_.end()) it = points_.begin();
        if (std::find(out.begin(), out.end(), it->second) == out.end()) {
            out.push_back(it->second);
        }
        ++it;
    }
    return out;
}

std::size_t plan_route(const std::vector<RouteCandidate>& candidates,
                       std::size_t spill_threshold) {
    std::size_t first_available = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].available) {
            first_available = i;
            break;
        }
    }
    if (first_available == candidates.size()) return first_available;
    if (first_available != 0 || candidates[0].slice_inflight < spill_threshold) {
        return first_available;
    }
    // Primary is hot: spill to the least-loaded later candidate if one is
    // strictly better; otherwise the primary still wins (a uniformly hot
    // slice should not ping-pong).
    std::size_t best = first_available;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].available &&
            candidates[i].slice_inflight < candidates[best].slice_inflight) {
            best = i;
        }
    }
    return best;
}

// ---- Router ----------------------------------------------------------------

Router::Router(RouterConfig config) : config_(std::move(config)), ring_(config_.vnodes) {
    CPT_CHECK(!config_.backends.empty(), "serve::Router: no backends configured");
    if (config_.forwarders == 0) config_.forwarders = 1;
    if (config_.replicas == 0) config_.replicas = 1;
    start_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
            .count());
    {
        util::LockGuard lk(mu_);
        for (const auto& name : config_.backends) {
            const auto colon = name.rfind(':');
            if (colon == std::string::npos || colon == 0 || colon + 1 == name.size()) {
                throw std::runtime_error("serve::Router: backend '" + name +
                                         "' is not host:port");
            }
            Backend b;
            b.name = name;
            b.host = name.substr(0, colon);
            int port = 0;
            try {
                port = std::stoi(name.substr(colon + 1));
            } catch (const std::exception&) {
                port = -1;
            }
            if (port <= 0 || port > 65535) {
                throw std::runtime_error("serve::Router: backend '" + name +
                                         "' has a bad port");
            }
            b.port = static_cast<std::uint16_t>(port);
            // Reject hostnames/bad literals now rather than at forward time:
            // TcpClient only connects to IPv4 literals, and a config error
            // should fail fast instead of surfacing per-request.
            try {
                (void)net::make_addr(b.host, b.port);
            } catch (const std::exception& e) {
                throw std::runtime_error("serve::Router: backend '" + name +
                                         "': " + e.what() +
                                         " (IPv4 literals only)");
            }
            // Optimistically up: the first probe pass (below) corrects this,
            // and a down backend in the ring just fails over to the next
            // candidate until the probe removes it.
            b.up = true;
            ring_.add(name);
            backends_.emplace(name, std::move(b));
        }
    }
    check_backends_now();
    forwarders_.reserve(config_.forwarders);
    for (std::size_t i = 0; i < config_.forwarders; ++i) {
        forwarders_.emplace_back([this] { forwarder_loop(); });
    }
    health_thread_ = std::thread([this] { health_loop(); });
}

Router::~Router() { drain(); }

void Router::generate_async(const GenerateRequest& request, Done done) {
    GenerateResponse reject;
    bool rejected = false;
    {
        util::LockGuard lk(mu_);
        if (stopping_) {
            reject = {Status::kShuttingDown, "router is draining", {}};
            rejected = true;
        } else if (queue_.size() >= config_.queue_capacity) {
            reject = {Status::kQueueFull,
                      "router queue at capacity (" + std::to_string(config_.queue_capacity) +
                          ")",
                      {}};
            rejected = true;
        } else {
            queue_.push_back(Job{request, std::move(done)});
        }
    }
    if (rejected) {
        done(std::move(reject));
        return;
    }
    work_cv_.notify_all();
}

void Router::forwarder_loop() {
    for (;;) {
        Job job;
        {
            util::LockGuard lk(mu_);
            while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
            if (queue_.empty()) return;  // stopping with nothing left
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_forwards_;
        }
        forward(std::move(job));
        {
            util::LockGuard lk(mu_);
            --active_forwards_;
        }
        idle_cv_.notify_all();
    }
}

GenerateResponse Router::roundtrip(const std::string& name, const std::string& host,
                                   std::uint16_t port, const GenerateRequest& req) {
    TcpClient client(host, port);
    if (config_.io_timeout_ms > 0) {
        client.set_io_timeout(std::chrono::milliseconds(config_.io_timeout_ms));
    }
    (void)name;
    return client.generate(req);
}

void Router::forward(Job&& job) {
    const std::string slice = slice_key(job.req.device, job.req.hour_of_day);
    const util::Backoff backoff(config_.retry);
    std::set<std::string> tried;
    std::string last_error = "no backend available";
    bool failed_over = false;
    for (int attempt = 0;; ++attempt) {
        std::string name;
        std::string host;
        std::uint16_t port = 0;
        {
            util::LockGuard lk(mu_);
            const std::vector<std::string> cands = ring_.owners(slice, config_.replicas);
            std::vector<RouteCandidate> rcs;
            rcs.reserve(cands.size());
            for (const auto& c : cands) {
                const Backend& b = backends_.at(c);
                const auto sit = b.slice_inflight.find(slice);
                rcs.push_back(RouteCandidate{
                    b.up && !b.draining && tried.count(c) == 0,
                    sit == b.slice_inflight.end() ? 0 : sit->second});
            }
            const std::size_t pick = plan_route(rcs, config_.spill_threshold);
            if (pick < cands.size()) {
                if (pick != 0 && rcs[0].available) ++spills_;
                name = cands[pick];
                Backend& b = backends_.at(name);
                host = b.host;
                port = b.port;
                ++b.inflight;
                ++b.slice_inflight[slice];
            }
        }
        if (name.empty()) {
            // Every candidate is down, draining, or already tried. One last
            // hope: if nothing was tried yet the whole ring is down — fail
            // fast; otherwise we exhausted failover.
            util::LockGuard lk(mu_);
            ++upstream_errors_;
            break;
        }
        bool retriable = false;
        GenerateResponse resp;
        bool have_resp = false;
        try {
            resp = roundtrip(name, host, port, job.req);
            have_resp = true;
        } catch (const TransportError& e) {
            last_error = e.what();
            util::LockGuard lk(mu_);
            Backend& b = backends_.at(name);
            if (e.kind() == TransportError::Kind::kConnectRefused) {
                // Unambiguous: nothing is listening. Take it out of the ring
                // immediately instead of waiting for the probe threshold.
                if (b.up) {
                    b.up = false;
                    b.consecutive_failures = config_.down_after_failures;
                    ring_.remove(name);
                    util::warnf("router: backend %s down (connection refused)",
                                name.c_str());
                }
            } else {
                ++b.consecutive_failures;
            }
            // Safe to retry only when zero response bytes arrived.
            retriable = !e.response_started();
        } catch (const std::exception& e) {
            // Anything non-transport (a decoder bug, an allocation failure)
            // must not unwind through the forwarder thread — that would
            // std::terminate the whole router and leak the backend's
            // inflight counters. Record it as a non-retriable upstream
            // failure instead.
            last_error = "backend " + name + ": " + e.what();
            retriable = false;
            util::LockGuard lk(mu_);
            ++backends_.at(name).consecutive_failures;
        }
        {
            util::LockGuard lk(mu_);
            Backend& b = backends_.at(name);
            --b.inflight;
            const auto sit = b.slice_inflight.find(slice);
            if (sit != b.slice_inflight.end() && --sit->second == 0) {
                b.slice_inflight.erase(sit);
            }
            if (have_resp) {
                // A backend that says it is draining or full is healthy at
                // the transport level but can't take this request — fail
                // over to the next candidate without marking it down.
                if (resp.status == Status::kShuttingDown ||
                    resp.status == Status::kQueueFull) {
                    if (resp.status == Status::kShuttingDown) b.draining = true;
                    last_error = "backend " + name + ": " + status_name(resp.status);
                    retriable = true;
                    have_resp = false;
                } else {
                    ++b.forwarded;
                    b.consecutive_failures = 0;
                    ++requests_done_;
                    if (failed_over) ++failovers_;
                }
            }
        }
        if (have_resp) {
            job.done(std::move(resp));
            return;
        }
        if (!retriable) {
            util::LockGuard lk(mu_);
            ++upstream_errors_;
            last_error = "backend " + name + " failed mid-response: " + last_error;
            break;
        }
        tried.insert(name);
        failed_over = true;
        if (!backoff.should_retry(attempt)) {
            util::LockGuard lk(mu_);
            ++upstream_errors_;
            break;
        }
        backoff.sleep(attempt);
    }
    job.done({Status::kUpstream, last_error, {}});
}

void Router::probe(const std::string& name) {
    std::string host;
    std::uint16_t port = 0;
    {
        util::LockGuard lk(mu_);
        const Backend& b = backends_.at(name);
        host = b.host;
        port = b.port;
    }
    bool ok = false;
    HealthInfo info;
    try {
        TcpClient client(host, port);
        client.set_io_timeout(std::chrono::milliseconds(config_.health_timeout_ms));
        info = client.health();
        ok = info.ok || info.draining;  // draining is alive, just not admitting
    } catch (const std::exception&) {
        ok = false;
    }
    util::LockGuard lk(mu_);
    Backend& b = backends_.at(name);
    if (ok) {
        b.consecutive_failures = 0;
        b.last_health = info;
        b.draining = info.draining;
        if (!b.up) {
            b.up = true;
            ring_.add(name);
            util::info("router: backend " + name + " up");
        }
    } else {
        ++b.probe_failures;
        ++b.consecutive_failures;
        if (b.up && b.consecutive_failures >= config_.down_after_failures) {
            b.up = false;
            ring_.remove(name);
            util::warnf("router: backend %s down after %d failed probes", name.c_str(),
                        b.consecutive_failures);
        }
    }
}

void Router::check_backends_now() {
    std::vector<std::string> names;
    {
        util::LockGuard lk(mu_);
        names.reserve(backends_.size());
        for (const auto& [name, b] : backends_) names.push_back(name);
    }
    for (const auto& name : names) probe(name);
}

void Router::health_loop() {
    for (;;) {
        {
            util::LockGuard lk(mu_);
            if (!stopping_) {
                health_cv_.wait_for(mu_, std::chrono::milliseconds(config_.health_interval_ms));
            }
            if (stopping_) return;
        }
        check_backends_now();
    }
}

void Router::drain() {
    {
        util::LockGuard lk(mu_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    health_cv_.notify_all();
    {
        util::LockGuard lk(mu_);
        while (!queue_.empty() || active_forwards_ > 0) idle_cv_.wait(mu_);
    }
    for (auto& t : forwarders_) {
        if (t.joinable()) t.join();
    }
    if (health_thread_.joinable()) health_thread_.join();
}

std::string Router::owner_of(trace::DeviceType device, int hour) const {
    util::LockGuard lk(mu_);
    return ring_.owner(slice_key(device, hour));
}

HealthInfo Router::health() const {
    HealthInfo h;
    {
        util::LockGuard lk(mu_);
        std::uint32_t up = 0;
        for (const auto& [name, b] : backends_) {
            if (b.up) ++up;
            h.streams_done += b.last_health.streams_done;
        }
        h.engines = up;
        h.draining = stopping_;
        h.ok = up > 0 && !stopping_;
        h.active_requests =
            static_cast<std::uint32_t>(queue_.size() + active_forwards_);
    }
    const auto now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
            .count());
    h.uptime_seconds = static_cast<double>(now_ns - start_ns_) * 1e-9;
    return h;
}

std::string Router::stats_json() const {
    util::LockGuard lk(mu_);
    char buf[256];
    std::string json = "{\n  \"backends\": [";
    bool first = true;
    for (const auto& [name, b] : backends_) {
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"name\": \"%s\", \"up\": %s, \"draining\": %s, "
                      "\"inflight\": %zu, \"forwarded\": %llu, \"probe_failures\": %llu}",
                      first ? "" : ",", name.c_str(), b.up ? "true" : "false",
                      b.draining ? "true" : "false", b.inflight,
                      static_cast<unsigned long long>(b.forwarded),
                      static_cast<unsigned long long>(b.probe_failures));
        json += buf;
        first = false;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n  ],\n  \"queue_depth\": %zu,\n"
                  "  \"requests\": {\"completed\": %llu, \"failovers\": %llu, "
                  "\"spills\": %llu, \"upstream_errors\": %llu}\n}",
                  queue_.size(), static_cast<unsigned long long>(requests_done_),
                  static_cast<unsigned long long>(failovers_),
                  static_cast<unsigned long long>(spills_),
                  static_cast<unsigned long long>(upstream_errors_));
    json += buf;
    return json;
}

}  // namespace cpt::serve
