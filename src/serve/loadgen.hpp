// Load generation against a cpt-serve/cpt-router endpoint, shared by the
// serve_loadtest CLI and bench_serve.
//
// Two modes:
//
//   * closed loop (rate == 0): `connections` workers each keep exactly one
//     request outstanding — throughput measures capacity, but latency hides
//     queueing (the classic coordinated-omission trap: a slow server slows
//     the arrival rate down with it);
//   * open loop (rate > 0): arrivals follow a deterministic seeded Poisson
//     schedule fixed before the run. Latency is measured from the scheduled
//     arrival time, not the actual send, so a server that falls behind pays
//     for the queueing delay it caused. The schedule is a pure function of
//     (rate, n, seed) — two runs at the same operating point see identical
//     offered load.
//
// Workers reconnect with bounded backoff on transport errors, so a backend
// restart or router failover mid-run costs failed requests only while the
// endpoint is actually unreachable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "protocol.hpp"
#include "util/stats.hpp"

namespace cpt::serve {

// Cumulative arrival offsets (seconds from run start) for `n` Poisson
// arrivals at `rate` per second: gaps are i.i.d. Exponential(rate) drawn
// from Rng(seed). Deterministic and platform-stable.
std::vector<double> poisson_schedule(double rate, std::size_t n, std::uint64_t seed);

struct LoadgenConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t connections = 8;  // concurrent client connections (workers)
    std::size_t requests = 64;    // total requests across all workers
    double rate = 0.0;            // open-loop arrivals/sec; 0 = closed loop
    std::uint64_t seed = 1;       // schedule + per-request seeds

    // Per-request generate parameters.
    trace::DeviceType device = trace::DeviceType::kPhone;
    int hour_of_day = 0;
    std::uint32_t count = 4;  // streams per request
    bool deterministic = true;
    std::uint32_t max_stream_len = 0;
    std::uint32_t deadline_ms = 0;
    std::string ue_prefix = "load";
};

struct LoadgenResult {
    std::size_t ok = 0;
    std::size_t failed = 0;  // transport errors + non-kOk statuses
    std::uint64_t streams = 0;
    double wall_seconds = 0.0;
    double achieved_rps = 0.0;            // ok / wall
    util::LatencyHistogram latency;       // seconds; open loop: from scheduled arrival
    std::string first_error;              // first failure detail, for diagnostics
};

LoadgenResult run_loadtest(const LoadgenConfig& cfg);

}  // namespace cpt::serve
