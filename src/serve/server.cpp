#include "server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <thread>

#include "core/sampler.hpp"
#include "core/spec_drafter.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Ticket layout: request serial in the high bits, stream index in the low 20
// (max_request_streams is clamped to this in the Server constructor).
constexpr std::uint64_t kStreamIndexBits = 20;
constexpr std::uint64_t kStreamIndexMask = (1ULL << kStreamIndexBits) - 1;

// Streams a speculating slice generates from its own model at spin-up to fit
// the n-gram drafter (DESIGN.md §16). Enough for stable bigram statistics on
// the released vocabularies; one-time cost of a few batched decodes.
constexpr std::size_t kDrafterBootstrapStreams = 128;

std::string slice_name(trace::DeviceType device, int hour) {
    return std::string(trace::to_string(device)) + "/h" + std::to_string(hour);
}

}  // namespace

// ---- Engine: one slice's continuous-batching worker ------------------------

class Server::Engine {
public:
    Engine(const ServeConfig& cfg, core::CptGpt::Package pkg, trace::DeviceType device,
           int hour, nn::Precision precision, std::size_t spec_k)
        : cfg_(&cfg),
          device_(device),
          hour_(hour),
          precision_(pkg.quantized ? nn::Precision::kInt8W8A32 : precision),
          pkg_(std::move(pkg)),
          drafter_(make_drafter(cfg, pkg_, device, hour, precision_, spec_k)),
          spec_k_(drafter_ != nullptr ? spec_k : 1),
          sampler_(prepare_model(*pkg_.model, precision_), pkg_.tokenizer,
                   pkg_.initial_event_dist,
                   make_sampler_config(cfg, device, hour, precision_, spec_k_,
                                       drafter_.get())),
          server_rng_(cfg.server_seed ^ (static_cast<std::uint64_t>(device) * 24 + hour)),
          worker_([this] { run(); }) {}

    ~Engine() { stop_and_join(); }

    // Non-blocking submit: `done` fires from the engine worker when the
    // request completes or expires, or synchronously here when it is rejected
    // before admission. The callback never runs under mu_.
    void submit_async(const GenerateRequest& req, Service::Done done) CPT_EXCLUDES(mu_) {
        GenerateResponse reject;
        bool rejected = false;
        {
            util::LockGuard lk(mu_);
            if (stop_) {
                reject = {Status::kShuttingDown, "server is draining", {}};
                rejected = true;
            } else if (queue_.size() + inflight_.size() >= cfg_->queue_capacity) {
                ++requests_rejected_;
                reject = {Status::kQueueFull,
                          "admission queue at capacity (" +
                              std::to_string(cfg_->queue_capacity) + ")",
                          {}};
                rejected = true;
            } else {
                auto rq = std::make_shared<Request>();
                rq->req = req;
                rq->serial = next_serial_++;
                rq->submitted = Clock::now();
                const std::uint32_t deadline_ms =
                    req.deadline_ms != 0 ? req.deadline_ms : cfg_->default_deadline_ms;
                rq->deadline = rq->submitted + std::chrono::milliseconds(deadline_ms);
                rq->deterministic = cfg_->deterministic || req.deterministic;
                rq->base_rng = util::Rng(req.seed);
                rq->callback = std::move(done);
                queue_.push_back(std::move(rq));
            }
        }
        if (rejected) {
            done(std::move(reject));
            return;
        }
        cv_.notify_one();
    }

    GenerateResponse submit(const GenerateRequest& req) CPT_EXCLUDES(mu_) {
        auto promise = std::make_shared<std::promise<GenerateResponse>>();
        std::future<GenerateResponse> fut = promise->get_future();
        submit_async(req, [promise](GenerateResponse&& resp) {
            promise->set_value(std::move(resp));
        });
        return fut.get();
    }

    void stop_and_join() CPT_EXCLUDES(mu_) {
        {
            util::LockGuard lk(mu_);
            if (stop_ && !worker_.joinable()) return;
            stop_ = true;
        }
        cv_.notify_one();
        if (worker_.joinable()) worker_.join();
    }

    using StatsSnapshot = Server::SliceStats;

    StatsSnapshot stats() const CPT_EXCLUDES(mu_) {
        util::LockGuard lk(mu_);
        StatsSnapshot s;
        s.device = device_;
        s.hour = hour_;
        s.precision = precision_;
        s.decode_seconds = times_.decode;
        s.steps = times_.steps;
        s.spec_k = spec_k_;
        s.spec_proposed = times_.spec_proposed;
        s.spec_accepted = times_.spec_accepted;
        s.verify_seconds = times_.verify;
        s.verify_steps = times_.verify_steps;
        s.streams = streams_done_;
        s.tokens = tokens_done_;
        s.requests_done = requests_done_;
        s.requests_timeout = requests_timeout_;
        s.requests_rejected = requests_rejected_;
        s.queue_depth = queue_.size() + inflight_.size();
        s.latency = latency_;
        return s;
    }

private:
    struct Request {
        GenerateRequest req;
        std::uint64_t serial = 0;
        Clock::time_point submitted;
        Clock::time_point deadline;
        bool deterministic = false;
        util::Rng base_rng{1};
        std::size_t admitted = 0;     // streams admitted into slots so far
        std::size_t outstanding = 0;  // admitted but neither finished nor evicted
        std::vector<std::pair<std::size_t, trace::Stream>> done;  // (index, stream)
        Service::Done callback;
    };
    using RequestPtr = std::shared_ptr<Request>;

    // A completion staged under mu_ and fired after the lock is released (a
    // callback may re-enter the service or block; neither is safe under mu_).
    struct Fire {
        Service::Done callback;
        GenerateResponse resp;
    };

    static core::SamplerConfig make_sampler_config(const ServeConfig& cfg,
                                                   trace::DeviceType device, int hour,
                                                   nn::Precision precision,
                                                   std::size_t spec_k,
                                                   const core::SpecDrafter* drafter) {
        core::SamplerConfig sc;
        sc.batch = cfg.slot_capacity;
        sc.device = device;
        sc.hour_of_day = hour;
        sc.max_stream_len = std::min<std::size_t>(500, cfg.model.max_seq_len);
        sc.precision = precision;
        sc.spec_k = drafter != nullptr ? spec_k : 1;
        sc.drafter = drafter;
        return sc;
    }

    // Self-bootstrapped drafter (DESIGN.md §16): the consume side has no
    // training traces, so a slice with spec_k > 1 generates a small sample
    // of its own streams at spin-up and fits the n-gram drafter on those —
    // the proposal then tracks the model's own conditionals, which is what
    // maximizes acceptance. The seed derives from the slice alone, so the
    // drafter (and thus every deterministic response) is independent of
    // request arrival order.
    static std::unique_ptr<core::SpecDrafter> make_drafter(const ServeConfig& cfg,
                                                           core::CptGpt::Package& pkg,
                                                           trace::DeviceType device, int hour,
                                                           nn::Precision precision,
                                                           std::size_t spec_k) {
        if (spec_k <= 1) return nullptr;
        if (!cfg.model.distribution_head) {
            util::warnf("cpt-serve: slice %s requested spec_k=%zu but the model has no "
                        "distribution head; speculation disabled",
                        slice_name(device, hour).c_str(), spec_k);
            return nullptr;
        }
        core::Sampler boot(prepare_model(*pkg.model, precision), pkg.tokenizer,
                           pkg.initial_event_dist,
                           make_sampler_config(cfg, device, hour, precision, 1, nullptr));
        util::Rng rng(cfg.server_seed ^ 0x9e3779b97f4a7c15ULL ^
                      (static_cast<std::uint64_t>(device) * 24 +
                       static_cast<std::uint64_t>(hour)));
        const trace::Dataset ds = boot.generate(kDrafterBootstrapStreams, rng, "spec-boot");
        if (ds.streams.empty()) return nullptr;
        return std::make_unique<core::SpecDrafter>(core::SpecDrafter::fit(ds, pkg.tokenizer));
    }

    // Ensures the quantized mirror exists before the Sampler (which asserts
    // it for int8 mode) is constructed. A model loaded from a quantized
    // checkpoint already carries the exact released payload; a fp32 release
    // opted into int8 via config is quantized here at slice spin-up.
    static core::CptGpt& prepare_model(core::CptGpt& model, nn::Precision precision) {
        if (precision == nn::Precision::kInt8W8A32 && !model.has_quantized_weights()) {
            model.quantize_weights();
        }
        return model;
    }

    // Completes a request: sorts its streams back into submission order and
    // stages the callback on fire_ (invoked by run() after mu_ is released).
    // Caller holds mu_ and has already detached the request from
    // queue_/inflight_.
    void complete_locked(const RequestPtr& rq, Status status, const std::string& error)
        CPT_REQUIRES(mu_) {
        std::sort(rq->done.begin(), rq->done.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        GenerateResponse resp;
        resp.status = status;
        resp.error = error;
        resp.streams.reserve(rq->done.size());
        for (auto& [idx, stream] : rq->done) resp.streams.push_back(std::move(stream));
        if (status == Status::kOk) {
            ++requests_done_;
            latency_.record(std::chrono::duration<double>(Clock::now() - rq->submitted).count());
        } else {
            ++requests_timeout_;
        }
        fire_.push_back(Fire{std::move(rq->callback), std::move(resp)});
    }

    // Evicts expired requests (queued and in-flight) at a step boundary.
    void expire_locked(core::Sampler::SlotBatch& batch, const Clock::time_point& now,
                       std::vector<core::Sampler::SlotBatch::Finished>& scratch)
        CPT_REQUIRES(mu_) {
        // Collect expired serials first so the eviction predicate is a set
        // lookup, then drop their queue entries and live slots.
        expired_.clear();
        for (const auto& rq : queue_) {
            if (now >= rq->deadline) expired_.push_back(rq);
        }
        for (const auto& [serial, rq] : inflight_) {
            if (now >= rq->deadline &&
                std::find(expired_.begin(), expired_.end(), rq) == expired_.end()) {
                expired_.push_back(rq);
            }
        }
        if (expired_.empty()) return;
        scratch.clear();
        batch.evict(
            [&](std::uint64_t ticket) {
                const std::uint64_t serial = ticket >> kStreamIndexBits;
                return std::any_of(expired_.begin(), expired_.end(),
                                   [&](const RequestPtr& rq) { return rq->serial == serial; });
            },
            scratch);
        // Evicted partials are dropped: the response only carries streams the
        // model finished before the deadline.
        for (const auto& rq : expired_) {
            queue_.erase(std::remove(queue_.begin(), queue_.end(), rq), queue_.end());
            inflight_.erase(rq->serial);
            complete_locked(rq, Status::kDeadline,
                            "deadline exceeded with " + std::to_string(rq->done.size()) +
                                "/" + std::to_string(rq->req.count) + " streams done");
        }
    }

    // Fills free slots from the head request (FIFO; stream order within a
    // request is preserved, and a single-request run admits exactly the
    // serial RNG-fork order generate_batch uses).
    void admit_locked(core::Sampler::SlotBatch& batch) CPT_REQUIRES(mu_) {
        while (batch.free_slots() > 0 && !queue_.empty()) {
            const RequestPtr& rq = queue_.front();
            core::Sampler::SlotBatch::AdmitParams params;
            if (rq->req.max_stream_len != 0) params.max_len = rq->req.max_stream_len;
            params.temperature = rq->req.temperature;
            params.top_p = rq->req.top_p;
            // Per-row KV contexts make admissible_len() an invariant equal to
            // the config cap, so a clamped max_len always fits — no need to
            // wait for the batch to drain before admitting the head stream.
            const std::size_t idx = rq->admitted;
            util::Rng rng = rq->deterministic ? rq->base_rng.fork(idx)
                                              : server_rng_.fork(stream_salt_++);
            char id[80];
            std::snprintf(id, sizeof(id), "%s-%06zu", rq->req.ue_prefix.c_str(), idx);
            batch.admit(std::move(rng), id, (rq->serial << kStreamIndexBits) | idx, params);
            ++rq->admitted;
            ++rq->outstanding;
            inflight_[rq->serial] = rq;
            if (rq->admitted == rq->req.count) queue_.pop_front();
        }
    }

    void deliver_locked(core::Sampler::SlotBatch::Finished&& f) CPT_REQUIRES(mu_) {
        const std::uint64_t serial = f.ticket >> kStreamIndexBits;
        const auto it = inflight_.find(serial);
        CPT_CHECK(it != inflight_.end(), "serve::Engine: finished stream for unknown request ",
                  serial);
        const RequestPtr rq = it->second;
        --rq->outstanding;
        ++streams_done_;
        tokens_done_ += f.stream.events.size();
        rq->done.emplace_back(f.ticket & kStreamIndexMask, std::move(f.stream));
        if (rq->admitted == rq->req.count && rq->outstanding == 0) {
            inflight_.erase(it);
            complete_locked(rq, Status::kOk, "");
        }
    }

    void run() CPT_EXCLUDES(mu_) {
        core::Sampler::SlotBatch batch = sampler_.make_slot_batch(cfg_->slot_capacity);
        std::vector<core::Sampler::SlotBatch::Finished> finished;
        std::vector<core::Sampler::SlotBatch::Finished> evict_scratch;
        std::vector<Fire> fire;  // completions drained from fire_, run unlocked
        for (;;) {
            bool exit_loop = false;
            bool do_step = false;
            {
                util::LockGuard lk(mu_);
                while (!stop_ && queue_.empty() && inflight_.empty()) cv_.wait(mu_);
                // Fold the batch's decode-stage clock into the stats surface
                // while the lock is held (stats() reads times_ under mu_).
                times_ = batch.stage_times();
                if (queue_.empty() && inflight_.empty()) {
                    exit_loop = stop_;
                } else {
                    expire_locked(batch, Clock::now(), evict_scratch);
                    admit_locked(batch);
                    do_step = batch.live() > 0;  // else everything expired or queue blocked
                }
                fire.swap(fire_);
            }
            for (auto& f : fire) f.callback(std::move(f.resp));
            fire.clear();
            if (exit_loop) return;
            if (!do_step) continue;
            // The decode step — the expensive part — runs without the lock;
            // the batch is touched only by this thread.
            finished.clear();
            batch.step(finished);
            if (!finished.empty()) {
                {
                    util::LockGuard lk(mu_);
                    for (auto& f : finished) deliver_locked(std::move(f));
                    fire.swap(fire_);
                }
                for (auto& f : fire) f.callback(std::move(f.resp));
                fire.clear();
            }
        }
    }

    const ServeConfig* cfg_;
    trace::DeviceType device_;
    int hour_;
    nn::Precision precision_;
    core::CptGpt::Package pkg_;
    // Slice-local n-gram drafter (DESIGN.md §16); null when not speculating.
    // Declared before sampler_, which borrows it via SamplerConfig::drafter.
    std::unique_ptr<core::SpecDrafter> drafter_;
    std::size_t spec_k_;
    core::Sampler sampler_;
    // Snapshot of the batch's stage clock (folded in run(), read by stats()).
    core::Sampler::StageTimes times_ CPT_GUARDED_BY(mu_);

    mutable util::Mutex mu_;
    util::CondVar cv_;
    // head is being admitted
    std::deque<RequestPtr> queue_ CPT_GUARDED_BY(mu_);
    // serial -> partially decoded
    std::map<std::uint64_t, RequestPtr> inflight_ CPT_GUARDED_BY(mu_);
    // expire_locked scratch
    std::vector<RequestPtr> expired_ CPT_GUARDED_BY(mu_);
    // completions staged by complete_locked, fired by run() outside mu_
    std::vector<Fire> fire_ CPT_GUARDED_BY(mu_);
    bool stop_ CPT_GUARDED_BY(mu_) = false;
    std::uint64_t next_serial_ CPT_GUARDED_BY(mu_) = 0;
    util::Rng server_rng_ CPT_GUARDED_BY(mu_);
    std::uint64_t stream_salt_ CPT_GUARDED_BY(mu_) = 0;

    std::uint64_t streams_done_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t tokens_done_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t requests_done_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t requests_timeout_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t requests_rejected_ CPT_GUARDED_BY(mu_) = 0;
    util::LatencyHistogram latency_ CPT_GUARDED_BY(mu_);

    std::thread worker_;  // last member: starts after every field it reads
};

// ---- Server ----------------------------------------------------------------

Server::Server(ServeConfig config) : config_(std::move(config)), hub_(config_.hub_dir) {
    config_.max_request_streams =
        std::min<std::size_t>(config_.max_request_streams, kStreamIndexMask + 1);
    CPT_CHECK_GT(config_.slot_capacity, std::size_t{0}, " serve::Server: slot_capacity");
    CPT_CHECK_GT(config_.queue_capacity, std::size_t{0}, " serve::Server: queue_capacity");
    start_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
            .count());
}

Server::~Server() { drain(); }

Server::Engine* Server::engine_for(trace::DeviceType device, int hour, std::string* error) {
    util::LockGuard lk(engines_mutex_);
    if (draining_) {
        *error = "server is draining";
        return nullptr;
    }
    // Resolve the slice, applying the nearest-published-hour fallback the hub
    // offers (an operator that only retrained peak hours still serves 3am).
    int serve_hour = hour;
    if (!hub_.has(device, hour)) {
        int best = -1;
        int best_dist = 25;
        if (config_.nearest_hour_fallback) {
            for (const auto& e : hub_.entries()) {
                if (e.device != device) continue;
                const int raw = std::abs(e.hour_of_day - hour);
                const int dist = std::min(raw, 24 - raw);
                if (dist < best_dist) {
                    best_dist = dist;
                    best = e.hour_of_day;
                }
            }
        }
        if (best < 0) {
            *error = "no release for slice " + slice_name(device, hour) + " in hub '" +
                     hub_.directory() + "'";
            return nullptr;
        }
        serve_hour = best;
    }
    const int key = static_cast<int>(device) * 24 + serve_hour;
    auto it = engines_.find(key);
    if (it == engines_.end()) {
        auto pkg = hub_.load(device, serve_hour, config_.model);
        nn::Precision precision = config_.precision;
        const auto pit = config_.slice_precision.find(slice_name(device, serve_hour));
        if (pit != config_.slice_precision.end()) precision = pit->second;
        std::size_t spec_k = config_.spec_k;
        const auto kit = config_.slice_spec_k.find(slice_name(device, serve_hour));
        if (kit != config_.slice_spec_k.end()) spec_k = kit->second;
        it = engines_
                 .emplace(key, std::make_unique<Engine>(config_, std::move(pkg), device,
                                                        serve_hour, precision, spec_k))
                 .first;
    }
    return it->second.get();
}

// Validates the request and resolves its slice engine. On failure fills
// `reject` and returns nullptr.
Server::Engine* Server::route(const GenerateRequest& request, GenerateResponse* reject) {
    if (request.count == 0 || request.count > config_.max_request_streams) {
        *reject = {Status::kBadRequest,
                   "count must be in [1, " + std::to_string(config_.max_request_streams) + "]",
                   {}};
        return nullptr;
    }
    if (request.hour_of_day < 0 || request.hour_of_day > 23) {
        *reject = {Status::kBadRequest, "hour_of_day must be in [0, 23]", {}};
        return nullptr;
    }
    if (request.top_p > 1.0f) {
        *reject = {Status::kBadRequest, "top_p must be in (0, 1]", {}};
        return nullptr;
    }
    std::string error;
    Engine* engine = engine_for(request.device, request.hour_of_day, &error);
    if (engine == nullptr) {
        const Status s = error == "server is draining" ? Status::kShuttingDown
                                                       : Status::kNoModel;
        *reject = {s, error, {}};
        return nullptr;
    }
    return engine;
}

void Server::generate_async(const GenerateRequest& request, Done done) {
    GenerateResponse reject;
    Engine* engine = route(request, &reject);
    if (engine == nullptr) {
        done(std::move(reject));
        return;
    }
    engine->submit_async(request, std::move(done));
}

GenerateResponse Server::generate(const GenerateRequest& request) {
    GenerateResponse reject;
    Engine* engine = route(request, &reject);
    if (engine == nullptr) return reject;
    return engine->submit(request);
}

HealthInfo Server::health() const {
    HealthInfo h;
    {
        util::LockGuard lk(engines_mutex_);
        h.draining = draining_;
        h.ok = !draining_;
        h.engines = static_cast<std::uint32_t>(engines_.size());
        for (const auto& [key, engine] : engines_) {
            const auto s = engine->stats();
            h.active_requests += static_cast<std::uint32_t>(s.queue_depth);
            h.streams_done += s.streams;
        }
        for (const auto& s : drained_stats_) h.streams_done += s.streams;
    }
    const auto now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
            .count());
    h.uptime_seconds = static_cast<double>(now_ns - start_ns_) * 1e-9;
    return h;
}

void Server::drain() {
    std::map<int, std::unique_ptr<Engine>> engines;
    {
        util::LockGuard lk(engines_mutex_);
        if (draining_ && engines_.empty()) return;
        draining_ = true;
        engines.swap(engines_);
    }
    for (auto& [key, engine] : engines) engine->stop_and_join();
    // Keep the final per-slice counters so the stats surface survives the
    // drain (the daemon prints stats_json() after SIGTERM).
    util::LockGuard lk(engines_mutex_);
    for (auto& [key, engine] : engines) drained_stats_.push_back(engine->stats());
}

std::string Server::stats_json() const {
    std::vector<Engine::StatsSnapshot> slices;
    {
        util::LockGuard lk(engines_mutex_);
        slices.reserve(engines_.size() + drained_stats_.size());
        slices = drained_stats_;
        for (const auto& [key, engine] : engines_) slices.push_back(engine->stats());
    }
    const auto now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
            .count());
    const double uptime = static_cast<double>(now_ns - start_ns_) * 1e-9;
    const double rate_div = uptime > 0.0 ? uptime : 1.0;

    util::LatencyHistogram latency;
    std::uint64_t requests_done = 0, requests_timeout = 0, requests_rejected = 0;
    std::size_t queue_depth = 0;
    char buf[512];
    std::string json = "{\n";
    std::snprintf(buf, sizeof(buf), "  \"uptime_seconds\": %.3f,\n  \"slices\": [", uptime);
    json += buf;
    for (std::size_t i = 0; i < slices.size(); ++i) {
        const auto& s = slices[i];
        latency.merge(s.latency);
        requests_done += s.requests_done;
        requests_timeout += s.requests_timeout;
        requests_rejected += s.requests_rejected;
        queue_depth += s.queue_depth;
        const double decode_ms_per_step =
            s.steps > 0 ? s.decode_seconds * 1e3 / static_cast<double>(s.steps) : 0.0;
        const double verify_ms_per_step =
            s.verify_steps > 0 ? s.verify_seconds * 1e3 / static_cast<double>(s.verify_steps)
                               : 0.0;
        const double acceptance =
            s.spec_proposed > 0
                ? static_cast<double>(s.spec_accepted) / static_cast<double>(s.spec_proposed)
                : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"device\": \"%.*s\", \"hour\": %d, \"precision\": \"%s\", "
                      "\"streams\": %llu, "
                      "\"tokens\": %llu, \"streams_per_sec\": %.2f, \"tokens_per_sec\": %.2f, "
                      "\"decode_ms_per_step\": %.3f, \"steps\": %llu, "
                      "\"spec_k\": %zu, \"spec_proposed\": %llu, \"spec_accepted\": %llu, "
                      "\"spec_acceptance\": %.3f, \"verify_ms_per_step\": %.3f, "
                      "\"queue_depth\": %zu}",
                      i == 0 ? "" : ",",
                      static_cast<int>(trace::to_string(s.device).size()),
                      trace::to_string(s.device).data(), s.hour,
                      nn::precision_name(s.precision),
                      static_cast<unsigned long long>(s.streams),
                      static_cast<unsigned long long>(s.tokens),
                      static_cast<double>(s.streams) / rate_div,
                      static_cast<double>(s.tokens) / rate_div, decode_ms_per_step,
                      static_cast<unsigned long long>(s.steps), s.spec_k,
                      static_cast<unsigned long long>(s.spec_proposed),
                      static_cast<unsigned long long>(s.spec_accepted), acceptance,
                      verify_ms_per_step, s.queue_depth);
        json += buf;
    }
    json += slices.empty() ? "],\n" : "\n  ],\n";
    const auto pct = latency.percentiles();
    std::snprintf(buf, sizeof(buf),
                  "  \"queue_depth\": %zu,\n"
                  "  \"requests\": {\"completed\": %llu, \"timed_out\": %llu, "
                  "\"rejected\": %llu},\n"
                  "  \"latency_seconds\": {\"count\": %zu, \"mean\": %.6f, \"p50\": %.6f, "
                  "\"p95\": %.6f, \"p99\": %.6f, \"max\": %.6f}\n}",
                  queue_depth, static_cast<unsigned long long>(requests_done),
                  static_cast<unsigned long long>(requests_timeout),
                  static_cast<unsigned long long>(requests_rejected), latency.count(),
                  latency.mean(), pct.p50, pct.p95, pct.p99, latency.max());
    json += buf;
    return json;
}

}  // namespace cpt::serve
