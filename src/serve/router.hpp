// cpt-router: shards the (device, hour) slice space across cpt-serve
// backends (DESIGN.md §15).
//
// A single backend keeps every requested slice's model resident — at
// production slice counts (3 devices × 24 hours × precision variants) that
// exceeds one box. The router partitions slices with a consistent hash ring
// (virtual nodes), so each backend only ever loads its share, and:
//
//   * health-checks every backend on a fixed cadence; a backend that fails
//     `down_after_failures` consecutive probes (or reports draining) leaves
//     the ring, and rejoins when probes succeed again. Ring changes move
//     only the slices owned by the changed node — everything else keeps its
//     backend-resident engine warm (pinned by tests/router_test.cpp);
//   * replicates hot slices under load: when the primary owner's in-flight
//     count for a slice crosses `spill_threshold`, requests spill to the
//     next distinct ring owner (which spins up its own engine for the slice);
//   * fails over without dropping in-flight requests: a connect failure or a
//     death before the first response byte is retried (bounded, deterministic
//     backoff) against the next candidate; a death mid-response is NEVER
//     retried — the client gets Status::kUpstream and decides (the response
//     may have had effects client-side).
//
// Determinism is unaffected: the router only picks *which* backend runs a
// request; a deterministic request returns byte-identical streams from any
// backend because stream content is a pure function of (seed, slice model)
// — see DESIGN.md §15.
//
// Router implements Service, so the same TcpServer event loop fronts it and
// clients cannot tell a router from a backend.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "client.hpp"
#include "service.hpp"
#include "util/backoff.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

// FNV-1a 64-bit — stable, dependency-free key hash for the ring.
std::uint64_t fnv1a64(std::string_view s);

// Consistent hash ring with virtual nodes. Each node is hashed to `vnodes`
// points on a u64 circle; a key belongs to the first node point at or after
// its own hash. Adding a node steals only the key ranges that land on its
// points (≈K/n of the keyspace); removing one releases only its own ranges —
// no other key moves (the stability property tests pin).
class HashRing {
public:
    explicit HashRing(std::size_t vnodes = 64);

    void add(const std::string& node);
    void remove(const std::string& node);
    bool contains(const std::string& node) const;
    bool empty() const { return points_.empty(); }
    std::size_t nodes() const { return node_count_; }

    // Owning node for `key`; empty string when the ring is empty.
    std::string owner(std::string_view key) const;

    // Up to `n` distinct nodes clockwise from the key's position, owner
    // first — the failover/spill candidate order.
    std::vector<std::string> owners(std::string_view key, std::size_t n) const;

private:
    std::size_t vnodes_;
    std::size_t node_count_ = 0;
    std::map<std::uint64_t, std::string> points_;  // hash point -> node
};

// One failover/spill candidate as seen at routing time.
struct RouteCandidate {
    bool available = false;          // up, not draining
    std::size_t slice_inflight = 0;  // this node's in-flight count for the slice
};

// Pure routing decision (unit-testable without sockets): returns the index
// of the candidate to try first. The primary (index 0) wins unless its
// slice in-flight count has reached `spill_threshold` and a later available
// candidate is strictly less loaded on the slice. Unavailable candidates are
// skipped; returns candidates.size() when none is available.
std::size_t plan_route(const std::vector<RouteCandidate>& candidates,
                       std::size_t spill_threshold);

struct RouterConfig {
    std::vector<std::string> backends;  // "host:port" (IPv4)
    std::size_t vnodes = 64;
    std::size_t forwarders = 8;         // forwarding threads (max concurrent upstreams)
    std::size_t queue_capacity = 256;   // pending requests before kQueueFull
    int health_interval_ms = 500;       // probe cadence
    int health_timeout_ms = 2000;       // probe I/O bound
    int io_timeout_ms = 0;              // generate round-trip bound (0 = none)
    int down_after_failures = 2;        // consecutive probe failures -> out of ring
    std::size_t replicas = 2;           // candidates per slice (primary + spill/failover)
    std::size_t spill_threshold = 8;    // slice in-flight on primary before spilling
    util::Backoff::Policy retry;        // between failover attempts
};

class Router : public Service {
public:
    explicit Router(RouterConfig config);
    ~Router() override;  // drains if the caller has not

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    void generate_async(const GenerateRequest& request, Done done) override;
    std::string stats_json() const override;
    // ok when at least one backend is up; `engines` carries the healthy
    // backend count.
    HealthInfo health() const override;

    // Stops admission, finishes queued and in-flight forwards, joins the
    // forwarder and health threads. Idempotent.
    void drain();

    // Current ring owner of a slice ("host:port"; empty when every backend
    // is down). For tests and cpt_router --print-owner.
    std::string owner_of(trace::DeviceType device, int hour) const;

    // Runs one synchronous health pass over all backends (tests and startup).
    void check_backends_now();

    const RouterConfig& config() const { return config_; }

private:
    struct Backend {
        std::string name;  // "host:port"
        std::string host;
        std::uint16_t port = 0;
        bool up = false;
        bool draining = false;
        int consecutive_failures = 0;
        std::size_t inflight = 0;
        std::map<std::string, std::size_t> slice_inflight;  // slice -> live forwards
        std::uint64_t forwarded = 0;
        std::uint64_t probe_failures = 0;
        HealthInfo last_health;
    };

    struct Job {
        GenerateRequest req;
        Done done;
    };

    // Probes one backend (no lock held) and folds the verdict into its
    // state; logs up/down transitions.
    void probe(const std::string& name);
    void forwarder_loop();
    void health_loop();
    void forward(Job&& job) CPT_EXCLUDES(mu_);
    GenerateResponse roundtrip(const std::string& name, const std::string& host,
                               std::uint16_t port, const GenerateRequest& req);

    RouterConfig config_;

    mutable util::Mutex mu_;
    util::CondVar work_cv_;    // queue_ gained a job / stopping
    util::CondVar idle_cv_;    // a forward finished (drain waits on this)
    util::CondVar health_cv_;  // early wake for the probe cadence on drain
    HashRing ring_ CPT_GUARDED_BY(mu_);
    std::map<std::string, Backend> backends_ CPT_GUARDED_BY(mu_);
    std::deque<Job> queue_ CPT_GUARDED_BY(mu_);
    std::size_t active_forwards_ CPT_GUARDED_BY(mu_) = 0;
    bool stopping_ CPT_GUARDED_BY(mu_) = false;
    std::uint64_t failovers_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t spills_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t upstream_errors_ CPT_GUARDED_BY(mu_) = 0;
    std::uint64_t requests_done_ CPT_GUARDED_BY(mu_) = 0;

    std::uint64_t start_ns_ = 0;
    std::vector<std::thread> forwarders_;
    std::thread health_thread_;
};

}  // namespace cpt::serve
