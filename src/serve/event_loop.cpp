#include "event_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "net.hpp"
#include "util/epoll.hpp"
#include "util/log.hpp"

namespace cpt::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

// Read-side backpressure caps. A client that pipelines faster than the
// engine answers must be throttled at the socket (TCP flow control), not
// buffered without bound in userspace: reading pauses — EPOLLIN dropped —
// while a generate is in flight or these caps are exceeded, and resumes
// once dispatch drains the queue.
constexpr std::size_t kMaxQueuedFrames = 64;                  // parsed frames awaiting dispatch
constexpr std::size_t kMaxBufferedReadBytes = 1 * 1024 * 1024;  // unparsed inbound bytes
// One hot connection also must not monopolize its worker: after this many
// full chunks per wake-up the loop moves on (level-triggered EPOLLIN
// re-fires while bytes remain).
constexpr int kMaxReadsPerEvent = 4;

}  // namespace

// ---- Worker: one event loop owning a set of connections --------------------
//
// Thread confinement: every field of Worker and Conn except the Mailbox is
// touched only by the worker thread (the constructor runs before the thread
// starts; join() happens-after everything the thread did), so none of it
// needs a lock. Cross-thread traffic — new sockets from the acceptor,
// completions from engine threads, the stop signal — goes through the
// Mailbox under its mutex, paired with an eventfd so a sleeping epoll_wait
// learns about it immediately.
class TcpServer::Worker {
public:
    Worker(Service& service, const Options& opts)
        : service_(service), opts_(opts), mail_(std::make_shared<Mailbox>()) {
        thread_ = std::thread([this] { run(); });
    }

    ~Worker() { join(); }

    // Acceptor handoff: the worker owns `fd` from here on. A socket handed
    // over after the worker began stopping is closed right here — the
    // worker's run() may already be past its final mailbox sweep, and an fd
    // parked in a dead mailbox would leak.
    void adopt(int fd) {
        {
            util::LockGuard lk(mail_->mu);
            if (mail_->stopping) {
                ::close(fd);
                return;
            }
            mail_->incoming.push_back(fd);
        }
        mail_->wake.notify();
    }

    void begin_stop() {
        {
            util::LockGuard lk(mail_->mu);
            mail_->stopping = true;
        }
        mail_->wake.notify();
    }

    void join() {
        if (thread_.joinable()) thread_.join();
    }

    std::size_t connections() const {
        util::LockGuard lk(mail_->mu);
        return mail_->conn_count;
    }

private:
    // Cross-thread inbox. Kept in a shared_ptr because generate_async
    // completion callbacks capture it: a completion that fires after the
    // worker exited (e.g. for a connection that died mid-generate during
    // shutdown) posts into orphaned-but-alive memory instead of a dangling
    // reference.
    struct Mailbox {
        mutable util::Mutex mu;
        std::vector<int> incoming CPT_GUARDED_BY(mu);  // sockets from the acceptor
        // (connection serial, finished response) from engine threads
        std::vector<std::pair<std::uint64_t, GenerateResponse>> done CPT_GUARDED_BY(mu);
        bool stopping CPT_GUARDED_BY(mu) = false;
        std::size_t conn_count CPT_GUARDED_BY(mu) = 0;  // mirror for connections()
        util::WakeFd wake;
    };

    struct Conn {
        std::uint64_t serial = 0;  // completion routing key (fds get reused; serials don't)
        std::vector<std::uint8_t> rbuf;  // unparsed inbound bytes
        std::size_t rpos = 0;            // parse offset into rbuf
        std::deque<std::vector<std::uint8_t>> frames;  // complete frames awaiting dispatch
        std::vector<std::uint8_t> wbuf;  // outbound bytes not yet accepted by the kernel
        std::size_t wpos = 0;
        bool busy = false;         // a generate_async is in flight
        bool want_write = false;   // EPOLLOUT armed
        bool paused = false;       // EPOLLIN dropped (backpressure; see interest())
        bool peer_closed = false;  // EOF seen; reap once in-flight work resolves
        std::uint32_t armed = 0;   // events mask currently registered with epoll
        Clock::time_point last_active;
    };

    std::uint32_t interest(const Conn& c) const {
        std::uint32_t ev = 0;
        // Backpressure: while paused, bytes park in the kernel socket buffer
        // and TCP flow control pushes back on the peer. Once EOF was seen
        // there is nothing left to read either — dropping the read-side mask
        // also stops a level-triggered EOF from re-waking a busy connection
        // every tick.
        if (!c.paused && !c.peer_closed) ev |= EPOLLIN | EPOLLRDHUP;
        if (c.want_write) ev |= EPOLLOUT;
        return ev;
    }

    // Recomputes the pause state from the backpressure caps and re-arms the
    // epoll mask when it changed. Level-triggered epoll re-fires on re-arm,
    // so readable bytes that arrived while paused are not lost.
    void update_interest(int fd, Conn& c) {
        c.paused = c.busy || c.frames.size() >= kMaxQueuedFrames ||
                   c.rbuf.size() - c.rpos >= kMaxBufferedReadBytes;
        const std::uint32_t ev = interest(c);
        if (ev != c.armed) {
            c.armed = ev;
            epoll_.mod(fd, ev);
        }
    }

    void add_conn(int fd) {
        util::set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Conn& c = conns_[fd];
        c.serial = next_serial_++;
        c.last_active = Clock::now();
        serial_to_fd_[c.serial] = fd;
        c.armed = interest(c);
        epoll_.add(fd, c.armed);
        util::LockGuard lk(mail_->mu);
        ++mail_->conn_count;
    }

    void close_conn(int fd) {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) return;
        serial_to_fd_.erase(it->second.serial);
        if (it->second.busy) --busy_count_;  // its completion will be discarded on arrival
        epoll_.del(fd);
        ::close(fd);
        conns_.erase(it);
        util::LockGuard lk(mail_->mu);
        --mail_->conn_count;
    }

    // Appends `bytes` to the connection's write buffer and pushes as much as
    // the kernel will take; arms EPOLLOUT for the rest. Returns false when
    // the connection died on the way out (already closed).
    bool queue_write(int fd, Conn& c, const std::vector<std::uint8_t>& payload) {
        // Frame header + payload land in wbuf as one contiguous write stream,
        // so a partial send resumes mid-frame transparently.
        std::uint8_t hdr[4];
        for (int i = 0; i < 4; ++i) {
            hdr[i] = static_cast<std::uint8_t>(payload.size() >> (8 * i));
        }
        c.wbuf.insert(c.wbuf.end(), hdr, hdr + 4);
        c.wbuf.insert(c.wbuf.end(), payload.begin(), payload.end());
        return flush_writes(fd, c);
    }

    bool flush_writes(int fd, Conn& c) {
        while (c.wpos < c.wbuf.size()) {
            const ssize_t n = ::send(fd, c.wbuf.data() + c.wpos, c.wbuf.size() - c.wpos,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                c.wpos += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                if (!c.want_write) {
                    c.want_write = true;
                    update_interest(fd, c);
                }
                return true;  // kernel buffer full; resume on EPOLLOUT
            }
            close_conn(fd);  // EPIPE/ECONNRESET: peer is gone
            return false;
        }
        c.wbuf.clear();
        c.wpos = 0;
        if (c.want_write) {
            c.want_write = false;
            update_interest(fd, c);
        }
        return true;
    }

    // Slices complete frames out of rbuf into c.frames. Returns false on a
    // malformed length (connection must be dropped).
    bool parse_frames(Conn& c) {
        for (;;) {
            const std::size_t avail = c.rbuf.size() - c.rpos;
            if (avail < 4) break;
            std::uint32_t len = 0;
            for (int i = 0; i < 4; ++i) {
                len |= static_cast<std::uint32_t>(c.rbuf[c.rpos + i]) << (8 * i);
            }
            if (len == 0 || len > kMaxFrameBytes) return false;
            if (avail < 4u + len) break;  // partial frame: resume on the next EPOLLIN
            const auto* base = c.rbuf.data() + c.rpos + 4;
            c.frames.emplace_back(base, base + len);
            c.rpos += 4u + len;
        }
        if (c.rpos > 0) {
            c.rbuf.erase(c.rbuf.begin(), c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.rpos));
            c.rpos = 0;
        }
        return true;
    }

    // Runs queued frames in order until one goes async (generate) or the
    // queue empties. Returns false when the connection was closed.
    bool dispatch(int fd, Conn& c) {
        // Drain contract: once the worker is stopping, in-flight generates
        // finish and flush but queued or newly read frames never start.
        if (draining_) return true;
        while (!c.busy && !c.frames.empty()) {
            std::vector<std::uint8_t> frame = std::move(c.frames.front());
            c.frames.pop_front();
            try {
                switch (peek_type(frame)) {
                    case MsgType::kStatsRequest: {
                        if (!queue_write(fd, c, encode_stats_response(service_.stats_json())))
                            return false;
                        break;
                    }
                    case MsgType::kHealthRequest: {
                        if (!queue_write(fd, c, encode_health_response(service_.health())))
                            return false;
                        break;
                    }
                    case MsgType::kGenerateRequest: {
                        const GenerateRequest req = decode_generate_request(frame);
                        c.busy = true;
                        ++busy_count_;
                        // The callback may run on an engine thread or
                        // synchronously right here; either way it only
                        // touches the mailbox, never Conn state.
                        auto mail = mail_;
                        const std::uint64_t serial = c.serial;
                        service_.generate_async(req, [mail, serial](GenerateResponse&& resp) {
                            {
                                util::LockGuard lk(mail->mu);
                                mail->done.emplace_back(serial, std::move(resp));
                            }
                            mail->wake.notify();
                        });
                        break;
                    }
                    default:
                        // Response-typed frame from a client: protocol abuse.
                        close_conn(fd);
                        return false;
                }
            } catch (const std::exception&) {
                // Malformed payload: drop the connection, like the threaded
                // transport. The daemon must outlive misbehaving clients.
                close_conn(fd);
                return false;
            }
        }
        return true;
    }

    void handle_readable(int fd, Conn& c) {
        std::uint8_t chunk[kReadChunk];
        for (int reads = 0; reads < kMaxReadsPerEvent;) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
                c.rbuf.insert(c.rbuf.end(), chunk, chunk + n);
                if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
                ++reads;  // full chunk: more may be waiting, but bounded per event
                continue;
            }
            if (n == 0) {
                c.peer_closed = true;
                break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            close_conn(fd);  // hard receive error
            return;
        }
        c.last_active = Clock::now();
        if (!parse_frames(c)) {
            close_conn(fd);
            return;
        }
        if (!dispatch(fd, c)) return;
        // EOF with nothing left to do: reap now. A busy connection stays
        // until its completion arrives (response is then discarded).
        if (c.peer_closed && !c.busy && c.wpos >= c.wbuf.size()) {
            close_conn(fd);
            return;
        }
        update_interest(fd, c);
    }

    void handle_event(int fd, std::uint32_t events) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) return;  // closed earlier this batch
        Conn& c = it->second;
        if (events & (EPOLLERR | EPOLLHUP)) {
            // Error/hangup with no readable data left: the peer is gone.
            if (!(events & EPOLLIN)) {
                close_conn(fd);
                return;
            }
        }
        if (events & EPOLLOUT) {
            if (!flush_writes(fd, c)) return;
            // A response just drained; the next queued frame can go.
            if (!dispatch(fd, c)) return;
            if (c.peer_closed && !c.busy && c.wpos >= c.wbuf.size()) {
                close_conn(fd);
                return;
            }
            update_interest(fd, c);
        }
        if (events & (EPOLLIN | EPOLLRDHUP)) handle_readable(fd, c);
    }

    void deliver(std::uint64_t serial, GenerateResponse&& resp) {
        const auto sit = serial_to_fd_.find(serial);
        if (sit == serial_to_fd_.end()) return;  // connection died mid-generate
        const int fd = sit->second;
        Conn& c = conns_.at(fd);
        c.busy = false;
        --busy_count_;
        c.last_active = Clock::now();
        if (c.peer_closed) {
            // Nobody is waiting for these bytes.
            close_conn(fd);
            return;
        }
        if (!queue_write(fd, c, encode_generate_response(resp))) return;
        if (!dispatch(fd, c)) return;
        // The generate that paused reading is done: resume (unless dispatch
        // immediately started the next one).
        update_interest(fd, c);
    }

    void sweep_idle(const Clock::time_point& now) {
        if (opts_.idle_timeout_ms <= 0) return;
        const auto limit = std::chrono::milliseconds(opts_.idle_timeout_ms);
        std::vector<int> victims;
        for (const auto& [fd, c] : conns_) {
            if (!c.busy && c.wpos >= c.wbuf.size() && now - c.last_active > limit) {
                victims.push_back(fd);
            }
        }
        for (const int fd : victims) close_conn(fd);
    }

    void run() {
        epoll_.add(mail_->wake.fd(), EPOLLIN);
        std::vector<epoll_event> events(128);
        bool stopping = false;
        Clock::time_point drain_deadline{};
        for (;;) {
            const int n =
                epoll_.wait(events.data(), static_cast<int>(events.size()), opts_.tick_ms);
            for (int i = 0; i < n; ++i) {
                const int fd = events[i].data.fd;
                if (fd == mail_->wake.fd()) {
                    mail_->wake.drain();
                    continue;
                }
                handle_event(fd, events[i].events);
            }
            // Drain the mailbox: adopt new sockets, deliver completions.
            std::vector<int> incoming;
            std::vector<std::pair<std::uint64_t, GenerateResponse>> done;
            {
                util::LockGuard lk(mail_->mu);
                incoming.swap(mail_->incoming);
                done.swap(mail_->done);
                if (mail_->stopping && !stopping) {
                    stopping = true;
                    draining_ = true;  // gates dispatch(): no new frames start
                    drain_deadline = Clock::now() + std::chrono::milliseconds(
                                                        opts_.drain_timeout_ms);
                }
            }
            for (auto& [serial, resp] : done) deliver(serial, std::move(resp));
            const auto now = Clock::now();
            if (!stopping) {
                for (const int fd : incoming) add_conn(fd);
                sweep_idle(now);
                continue;
            }
            // Draining: no new sockets, and dispatch() is gated on
            // draining_, so queued or newly read frames never start — only
            // the generates already in flight finish and flush. Queued
            // frames that never started are dropped with the connection,
            // same as the threaded transport at shutdown.
            for (const int fd : incoming) ::close(fd);
            bool flushed = true;
            for (const auto& [fd, c] : conns_) {
                if (c.busy || c.wpos < c.wbuf.size()) {
                    flushed = false;
                    break;
                }
            }
            if ((busy_count_ == 0 && flushed) || now >= drain_deadline) {
                if (!flushed || busy_count_ != 0) {
                    util::warnf("serve: epoll worker drain deadline hit with %zu busy conns",
                                busy_count_);
                }
                std::vector<int> fds;
                fds.reserve(conns_.size());
                for (const auto& [fd, c] : conns_) fds.push_back(fd);
                for (const int fd : fds) close_conn(fd);
                // Sockets the acceptor handed over after this iteration's
                // mailbox swap are closed by adopt() itself (it sees
                // stopping); sweep anything that raced in regardless.
                util::LockGuard lk(mail_->mu);
                for (const int ifd : mail_->incoming) ::close(ifd);
                mail_->incoming.clear();
                return;
            }
        }
    }

    Service& service_;
    Options opts_;
    std::shared_ptr<Mailbox> mail_;

    // Worker-thread-only state (see the confinement note above the class).
    util::Epoll epoll_;
    std::map<int, Conn> conns_;
    std::map<std::uint64_t, int> serial_to_fd_;
    std::uint64_t next_serial_ = 1;
    std::size_t busy_count_ = 0;
    bool draining_ = false;  // set once stopping is observed; gates dispatch()

    std::thread thread_;  // last member: starts after every field it reads
};

// ---- TcpServer -------------------------------------------------------------

TcpServer::TcpServer(Service& service, const std::string& host, std::uint16_t port)
    : TcpServer(service, host, port, Options()) {}

TcpServer::TcpServer(Service& service, const std::string& host, std::uint16_t port,
                     Options opts)
    : service_(service), opts_(opts) {
    if (opts_.workers == 0) opts_.workers = 1;
    if (opts_.tick_ms <= 0) opts_.tick_ms = 200;
    {
        util::LockGuard lk(mu_);
        listen_fd_ = net::listen_socket(host, port, /*backlog=*/512, &port_);
    }
    workers_.reserve(opts_.workers);
    for (std::size_t i = 0; i < opts_.workers; ++i) {
        workers_.push_back(std::make_unique<Worker>(service_, opts_));
    }
}

TcpServer::~TcpServer() {
    stop();
    join_workers();
    util::LockGuard lk(mu_);
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void TcpServer::serve_forever(const std::function<bool()>& interrupt) {
    int lfd = -1;
    {
        util::LockGuard lk(mu_);
        lfd = listen_fd_;
    }
    // Nonblocking so the accept-everything loop below stops at EAGAIN rather
    // than parking this thread past the next stop/interrupt check.
    util::set_nonblocking(lfd);
    util::Epoll accept_epoll;
    accept_epoll.add(lfd, EPOLLIN);
    epoll_event ev{};
    std::size_t next_worker = 0;
    Clock::time_point last_accept_warn{};
    for (;;) {
        {
            util::LockGuard lk(mu_);
            if (stopping_) break;
        }
        const int n = accept_epoll.wait(&ev, 1, opts_.tick_ms);
        if (interrupt && interrupt()) break;
        if (n == 0) continue;
        for (;;) {  // accept everything that is ready
            const int fd = ::accept4(lfd, nullptr, nullptr, SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) break;
                // Transient resource exhaustion (EMFILE and friends): drop
                // this readiness batch rather than killing the daemon. The
                // level-triggered listen fd would re-wake us instantly and
                // re-fail, so back off for a tick and rate-limit the log
                // line instead of busy-spinning until fds free up.
                const auto now = Clock::now();
                if (now - last_accept_warn >= std::chrono::seconds(1)) {
                    util::warnf("serve: accept failed: %s (backing off %d ms)",
                                std::strerror(errno), opts_.tick_ms);
                    last_accept_warn = now;
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(opts_.tick_ms));
                break;
            }
            workers_[next_worker]->adopt(fd);
            next_worker = (next_worker + 1) % workers_.size();
        }
    }
    stop();
    join_workers();
}

void TcpServer::stop() {
    {
        util::LockGuard lk(mu_);
        if (stopping_) return;
        stopping_ = true;
    }
    for (auto& w : workers_) w->begin_stop();
}

std::size_t TcpServer::connections() const {
    std::size_t total = 0;
    for (const auto& w : workers_) total += w->connections();
    return total;
}

void TcpServer::join_workers() {
    {
        util::LockGuard lk(mu_);
        if (workers_joined_) return;
        workers_joined_ = true;
    }
    for (auto& w : workers_) w->join();
}

}  // namespace cpt::serve
