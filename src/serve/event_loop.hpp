// Epoll-based non-blocking TCP listener for cpt-serve (DESIGN.md §15).
//
// The thread-per-connection transport spends an OS thread (stack, scheduler
// slot) per client even when the client is idle, which caps a backend at a
// few hundred connections. This server holds thousands of mostly-idle
// connections on a small fixed thread set instead:
//
//   * one acceptor (the serve_forever caller) accepts and hands each socket
//     to a worker round-robin;
//   * N worker event loops, each owning an epoll set and the full state of
//     its connections — read buffer with partial-frame resume, queued
//     complete frames, write buffer with EPOLLOUT backpressure, idle clock.
//     Connection state is confined to its worker thread; the only shared
//     structure is a small mailbox (new sockets in, generation completions
//     in) locked for microseconds and paired with an eventfd wakeup.
//
// Requests dispatch through Service::generate_async, so a slow generate
// never blocks the loop: the worker parks the connection as busy, keeps
// serving its other connections, and resumes when the engine's completion
// callback posts to the mailbox. Frames on one connection are still
// processed strictly in order (same contract as the threaded transport).
//
// Byte-identical semantics: this layer only moves frames; request decoding,
// engine scheduling, and stream synthesis are untouched, so a deterministic
// request returns the same bytes through either transport (pinned by
// tests/epoll_server_test.cpp).
//
// Shutdown: stop() (or the interrupt callback) stops admission; workers
// finish every dispatched request, flush response buffers, then close —
// bounded by Options::drain_timeout_ms, after which stragglers are closed
// forcibly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

class TcpServer {
public:
    struct Options {
        std::size_t workers = 2;       // event-loop threads (clamped to >= 1)
        int idle_timeout_ms = 60000;   // close connections idle this long (0 = never)
        int tick_ms = 200;             // epoll wait granularity (interrupt/idle checks)
        int drain_timeout_ms = 5000;   // shutdown deadline for in-flight + flush
    };

    // Binds and listens on host:port; port 0 picks an ephemeral port (read it
    // back with port()). Worker event loops start immediately; sockets are
    // only handed to them by serve_forever. Throws std::runtime_error on
    // socket errors. (Two overloads rather than a defaulted Options argument:
    // GCC cannot use a nested class's member initializers in a default
    // argument of the enclosing class.)
    explicit TcpServer(Service& service, const std::string& host = "127.0.0.1",
                       std::uint16_t port = 0);
    TcpServer(Service& service, const std::string& host, std::uint16_t port, Options opts);
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    std::uint16_t port() const { return port_; }

    // Accepts connections until stop() is called or `interrupt` returns true
    // (checked every Options::tick_ms). Drains and joins the worker loops
    // before returning. Call from the thread that should own the accept loop.
    void serve_forever(const std::function<bool()>& interrupt = nullptr);

    // Stops admission and begins the drain; safe to call from another thread
    // or more than once. serve_forever unblocks within one tick.
    void stop();

    // Live connection count across workers (tests and bench).
    std::size_t connections() const;

private:
    class Worker;

    void join_workers();

    Service& service_;
    Options opts_;
    std::uint16_t port_ = 0;
    std::vector<std::unique_ptr<Worker>> workers_;

    mutable util::Mutex mu_;
    int listen_fd_ CPT_GUARDED_BY(mu_) = -1;
    bool stopping_ CPT_GUARDED_BY(mu_) = false;
    bool workers_joined_ CPT_GUARDED_BY(mu_) = false;
};

}  // namespace cpt::serve
