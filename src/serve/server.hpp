// cpt-serve: a continuous-batching generation service over the ModelHub.
//
// The paper's operational architecture (§4.5, Fig. 4) is release-and-consume:
// operators publish per-(device, hour) model packages; downstream users
// synthesize traffic on demand. This server is the consume side as a
// long-running service. Each requested slice gets an Engine — a worker thread
// driving a Sampler::SlotBatch — and requests are decomposed into per-stream
// jobs that are admitted into decoder slots as earlier streams finish
// (continuous batching: the [B, T, d_token] forward stays full under mixed
// stream lengths instead of draining to a tail of stragglers).
//
// Service machinery around the scheduler core:
//   * bounded admission queue per slice — a full queue rejects with
//     Status::kQueueFull (backpressure instead of unbounded memory);
//   * per-request deadlines — expired requests are evicted at the next
//     compaction and answered with Status::kDeadline plus whatever streams
//     completed in time;
//   * graceful drain — drain() stops admission, finishes queued and in-flight
//     work, and joins the engine threads (wired to SIGTERM by cpt_serve);
//   * stats surface — per-slice streams/s and tokens/s, queue depth, and
//     p50/p95/p99 request latency, exported as JSON.
//
// Determinism: a request with deterministic = true uses Rng(seed).fork(i) for
// stream i and labels it "<ue_prefix>-%06zu" % i, which reproduces
// Sampler::generate_batch byte-for-byte for a single-slice, single-client run
// (pinned by tests/serve_test.cpp) — admission timing cannot perturb stream
// content (see Sampler::SlotBatch).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model_hub.hpp"
#include "protocol.hpp"
#include "service.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace cpt::serve {

struct ServeConfig {
    std::string hub_dir;            // ModelHub release directory
    core::CptGptConfig model;       // architecture of the published checkpoints
    std::size_t slot_capacity = 32;     // decoder rows per slice engine
    std::size_t queue_capacity = 64;    // pending requests per slice (backpressure)
    std::uint32_t default_deadline_ms = 30000;
    std::size_t max_request_streams = 1u << 20;  // ticket packing bound
    bool nearest_hour_fallback = false;  // serve the nearest published hour
    bool deterministic = false;          // force deterministic mode on every request
    std::uint64_t server_seed = 0x5eedULL;  // base RNG for non-deterministic requests
    // Decode precision (DESIGN.md §12): `precision` is the default for every
    // slice; `slice_precision` overrides individual slices by name
    // ("<device>/h<hour>", e.g. "phone/h13"), so an operator can opt hot
    // slices into int8 while the rest stay fp32. Quantized checkpoints always
    // serve int8 regardless of these knobs (their fp32 weights never existed).
    nn::Precision precision = nn::Precision::kFp32;
    std::map<std::string, nn::Precision> slice_precision;
    // Speculative multi-token decode (DESIGN.md §16): `spec_k` is the
    // default tokens-per-round target for every slice; `slice_spec_k`
    // overrides individual slices by name ("<device>/h<hour>"). A slice
    // with spec_k > 1 self-bootstraps an n-gram drafter at spin-up from a
    // fixed-seed sample of its own output. The rejection rule is exact, so
    // speculation never changes the output *distribution*; the per-seed
    // byte stream of deterministic requests does differ from spec_k = 1,
    // so replicas sharing deterministic traffic must agree on spec_k.
    // Ignored (with a warning) when the model has no distribution head.
    std::size_t spec_k = 1;
    std::map<std::string, std::size_t> slice_spec_k;
};

class Server : public Service {
public:
    explicit Server(ServeConfig config);
    ~Server() override;  // drains if the caller has not

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    // Non-blocking in-process entry point (the epoll transport lands here):
    // enqueues the request on its slice engine; `done` fires from the engine
    // worker on completion, deadline, or rejection (or synchronously for
    // requests rejected before admission).
    void generate_async(const GenerateRequest& request, Done done) override;

    // Blocking wrapper (the in-process client and threaded transport):
    // enqueues and waits for completion, deadline, or rejection.
    GenerateResponse generate(const GenerateRequest& request) override;

    // Current service stats as a JSON object (see DESIGN.md §10 for schema).
    std::string stats_json() const override;

    // Liveness snapshot: drain flag, live engine count, queued + in-flight
    // requests, lifetime completed streams.
    HealthInfo health() const override;

    // Stops admission (subsequent generate() calls get kShuttingDown),
    // completes all queued and in-flight requests, and joins engine threads.
    // Idempotent.
    void drain();

    const ServeConfig& config() const { return config_; }

private:
    class Engine;

    // Per-slice counters an engine reports; retained across drain() so the
    // final stats_json() (printed by the daemon on SIGTERM) keeps its totals.
    struct SliceStats {
        trace::DeviceType device = trace::DeviceType::kPhone;
        int hour = 0;
        nn::Precision precision = nn::Precision::kFp32;  // active decode mode
        std::uint64_t streams = 0;
        std::uint64_t tokens = 0;
        std::uint64_t requests_done = 0;
        std::uint64_t requests_timeout = 0;
        std::uint64_t requests_rejected = 0;
        std::size_t queue_depth = 0;
        // Decode-stage attribution folded from Sampler::StageTimes: seconds
        // spent in the KV-cached decode across `steps` step() calls.
        double decode_seconds = 0.0;
        std::uint64_t steps = 0;
        // Speculative decode (DESIGN.md §16): the slice's active spec_k,
        // drafted tokens proposed vs committed verbatim, and seconds spent
        // in the batched verify forwards across `verify_steps` of them.
        std::size_t spec_k = 1;
        std::uint64_t spec_proposed = 0;
        std::uint64_t spec_accepted = 0;
        double verify_seconds = 0.0;
        std::uint64_t verify_steps = 0;
        util::LatencyHistogram latency;
    };

    Engine* engine_for(trace::DeviceType device, int hour, std::string* error)
        CPT_EXCLUDES(engines_mutex_);
    Engine* route(const GenerateRequest& request, GenerateResponse* reject)
        CPT_EXCLUDES(engines_mutex_);

    ServeConfig config_;
    core::ModelHub hub_;
    mutable util::Mutex engines_mutex_;
    // key: device * 24 + hour
    std::map<int, std::unique_ptr<Engine>> engines_ CPT_GUARDED_BY(engines_mutex_);
    // engines retired by drain()
    std::vector<SliceStats> drained_stats_ CPT_GUARDED_BY(engines_mutex_);
    bool draining_ CPT_GUARDED_BY(engines_mutex_) = false;
    std::uint64_t start_ns_ = 0;  // steady-clock epoch for rate accounting
};

}  // namespace cpt::serve
