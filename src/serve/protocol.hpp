// Wire protocol for the cpt-serve generation service (paper §4.5: downstream
// users synthesize traffic on demand from released model packages).
//
// Framing is length-prefixed binary over a connected stream socket: every
// message is a little-endian u32 payload length followed by the payload. The
// payload starts with a one-byte message type; all integers are little-endian
// and all strings are u16/u32 length-prefixed bytes (no NUL terminators).
// The same encode/decode functions back the TCP transport and the in-process
// client, so the two are interchangeable in tests.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/stream.hpp"

namespace cpt::serve {

enum class MsgType : std::uint8_t {
    kGenerateRequest = 1,
    kStatsRequest = 2,
    kHealthRequest = 3,
    kGenerateResponse = 16,
    kStatsResponse = 17,
    kHealthResponse = 18,
};

enum class Status : std::uint8_t {
    kOk = 0,
    kQueueFull = 1,     // admission queue at capacity — back off and retry
    kDeadline = 2,      // request evicted at a compaction after its deadline
    kNoModel = 3,       // hub has no release for the requested slice
    kShuttingDown = 4,  // server is draining
    kBadRequest = 5,    // malformed or out-of-range request fields
    kUpstream = 6,      // router: every candidate backend failed (or one died
                        // mid-response, which is never retried)
};

const char* status_name(Status s);

// A per-UE stream-synthesis request for one (device, hour) hub slice.
struct GenerateRequest {
    trace::DeviceType device = trace::DeviceType::kPhone;
    int hour_of_day = 0;
    std::uint32_t count = 1;      // streams to synthesize
    std::uint64_t seed = 1;       // deterministic mode: stream i uses Rng(seed).fork(i)
    bool deterministic = false;   // false: the server forks from its own RNG
    float temperature = -1.0f;    // sampler overrides; negative = slice default
    float top_p = -1.0f;
    std::uint32_t max_stream_len = 0;  // 0 = slice default
    std::uint32_t deadline_ms = 0;     // 0 = server default
    std::string ue_prefix = "serve";   // streams are labelled "<prefix>-%06zu"
};

struct GenerateResponse {
    Status status = Status::kOk;
    std::string error;  // human-readable detail when status != kOk
    std::vector<trace::Stream> streams;
};

// Liveness + open-loop load signal for the router's health checker. A backend
// answers with its drain state and queue pressure; the router answers for
// itself with its healthy-backend count in `engines`.
struct HealthInfo {
    bool ok = true;                     // accepting requests
    bool draining = false;              // shutting down: finish in-flight only
    std::uint32_t engines = 0;          // live slice engines (router: healthy backends)
    std::uint32_t active_requests = 0;  // queued + in-flight requests
    std::uint64_t streams_done = 0;     // lifetime completed streams
    double uptime_seconds = 0.0;
};

// ---- payload encode/decode (excludes the u32 frame length) ----
std::vector<std::uint8_t> encode_generate_request(const GenerateRequest& req);
std::vector<std::uint8_t> encode_generate_response(const GenerateResponse& resp);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats_response(const std::string& json);
std::vector<std::uint8_t> encode_health_request();
std::vector<std::uint8_t> encode_health_response(const HealthInfo& info);

// First payload byte; throws std::runtime_error on an empty or unknown-typed
// payload.
MsgType peek_type(std::span<const std::uint8_t> payload);

// Decoders throw std::runtime_error on truncated or malformed payloads.
GenerateRequest decode_generate_request(std::span<const std::uint8_t> payload);
GenerateResponse decode_generate_response(std::span<const std::uint8_t> payload);
std::string decode_stats_response(std::span<const std::uint8_t> payload);
HealthInfo decode_health_response(std::span<const std::uint8_t> payload);

// Transport failure raised by read_frame/write_frame, typed so callers
// (TcpClient, the router's failover path) can attach the peer address and
// decide whether a retry is safe. `midstream` is the load-bearing bit: true
// once any byte of the current frame moved, i.e. a response partially
// streamed — a failure the router must NOT retry.
class FrameError : public std::runtime_error {
public:
    enum class Kind {
        kClosed,     // peer closed inside a frame (EOF mid-frame)
        kRecv,       // recv(2) failed; errno_code says why
        kSend,       // send(2) failed; errno_code says why
        kTimeout,    // SO_RCVTIMEO/SO_SNDTIMEO expired (EAGAIN on a blocking fd)
        kBadLength,  // frame length 0 or above kMaxFrameBytes
    };

    FrameError(Kind kind, int errno_code, bool midstream, const std::string& what)
        : std::runtime_error(what), kind_(kind), errno_(errno_code), midstream_(midstream) {}

    Kind kind() const { return kind_; }
    int errno_code() const { return errno_; }
    bool midstream() const { return midstream_; }

private:
    Kind kind_;
    int errno_;
    bool midstream_;
};

// ---- framing over a connected socket fd ----
// Reads one frame; returns false on clean EOF at a frame boundary, throws
// FrameError on I/O errors, truncation mid-frame, or frames above
// kMaxFrameBytes.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);
void write_frame(int fd, std::span<const std::uint8_t> payload);

inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // defensive cap

}  // namespace cpt::serve
