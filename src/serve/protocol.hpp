// Wire protocol for the cpt-serve generation service (paper §4.5: downstream
// users synthesize traffic on demand from released model packages).
//
// Framing is length-prefixed binary over a connected stream socket: every
// message is a little-endian u32 payload length followed by the payload. The
// payload starts with a one-byte message type; all integers are little-endian
// and all strings are u16/u32 length-prefixed bytes (no NUL terminators).
// The same encode/decode functions back the TCP transport and the in-process
// client, so the two are interchangeable in tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/stream.hpp"

namespace cpt::serve {

enum class MsgType : std::uint8_t {
    kGenerateRequest = 1,
    kStatsRequest = 2,
    kGenerateResponse = 16,
    kStatsResponse = 17,
};

enum class Status : std::uint8_t {
    kOk = 0,
    kQueueFull = 1,     // admission queue at capacity — back off and retry
    kDeadline = 2,      // request evicted at a compaction after its deadline
    kNoModel = 3,       // hub has no release for the requested slice
    kShuttingDown = 4,  // server is draining
    kBadRequest = 5,    // malformed or out-of-range request fields
};

const char* status_name(Status s);

// A per-UE stream-synthesis request for one (device, hour) hub slice.
struct GenerateRequest {
    trace::DeviceType device = trace::DeviceType::kPhone;
    int hour_of_day = 0;
    std::uint32_t count = 1;      // streams to synthesize
    std::uint64_t seed = 1;       // deterministic mode: stream i uses Rng(seed).fork(i)
    bool deterministic = false;   // false: the server forks from its own RNG
    float temperature = -1.0f;    // sampler overrides; negative = slice default
    float top_p = -1.0f;
    std::uint32_t max_stream_len = 0;  // 0 = slice default
    std::uint32_t deadline_ms = 0;     // 0 = server default
    std::string ue_prefix = "serve";   // streams are labelled "<prefix>-%06zu"
};

struct GenerateResponse {
    Status status = Status::kOk;
    std::string error;  // human-readable detail when status != kOk
    std::vector<trace::Stream> streams;
};

// ---- payload encode/decode (excludes the u32 frame length) ----
std::vector<std::uint8_t> encode_generate_request(const GenerateRequest& req);
std::vector<std::uint8_t> encode_generate_response(const GenerateResponse& resp);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats_response(const std::string& json);

// First payload byte; throws std::runtime_error on an empty or unknown-typed
// payload.
MsgType peek_type(std::span<const std::uint8_t> payload);

// Decoders throw std::runtime_error on truncated or malformed payloads.
GenerateRequest decode_generate_request(std::span<const std::uint8_t> payload);
GenerateResponse decode_generate_response(std::span<const std::uint8_t> payload);
std::string decode_stats_response(std::span<const std::uint8_t> payload);

// ---- framing over a connected socket fd ----
// Reads one frame; returns false on clean EOF at a frame boundary, throws on
// I/O errors, truncation mid-frame, or frames above kMaxFrameBytes.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);
void write_frame(int fd, std::span<const std::uint8_t> payload);

inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // defensive cap

}  // namespace cpt::serve
