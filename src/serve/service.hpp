// Abstract generation service: the seam between transports and request
// processing. Both transports (the epoll TcpServer and the compat
// ThreadedTcpServer) front a Service&, and both request processors implement
// it — Server (local slice engines over a ModelHub) and Router (forwards to
// sharded backends) — so the router stack composes from the same parts as a
// single backend and tests can swap one for the other.
#pragma once

#include <functional>
#include <string>

#include "protocol.hpp"

namespace cpt::serve {

class Service {
public:
    // Completion callback: invoked exactly once per generate_async call, with
    // the final response. May run synchronously inside generate_async (early
    // rejections) or later on an internal worker thread — callers must not
    // hold locks the callback also takes.
    using Done = std::function<void(GenerateResponse&&)>;

    virtual ~Service() = default;

    // Non-blocking submit. The implementation owns the request after this
    // returns; the callback delivers the response.
    virtual void generate_async(const GenerateRequest& request, Done done) = 0;

    // Blocking convenience wrapper over generate_async (overridable when an
    // implementation has a cheaper synchronous path).
    virtual GenerateResponse generate(const GenerateRequest& request);

    // Current service stats as a JSON object (see DESIGN.md §10 for schema).
    virtual std::string stats_json() const = 0;

    // Liveness + load snapshot for health checks (kHealthRequest).
    virtual HealthInfo health() const = 0;
};

}  // namespace cpt::serve
