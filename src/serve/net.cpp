#include "net.hpp"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace cpt::serve::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string("serve: ") + what + ": " + std::strerror(errno));
}

}  // namespace

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error("serve: bad IPv4 address '" + host + "'");
    }
    return addr;
}

int listen_socket(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* actual_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(host, port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throw_errno("bind");
    }
    if (::listen(fd, backlog) < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throw_errno("listen");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throw_errno("getsockname");
    }
    *actual_port = ntohs(addr.sin_port);
    return fd;
}

}  // namespace cpt::serve::net
