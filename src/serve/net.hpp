// Small shared socket helpers for the serve transports (internal to
// src/serve; both the threaded and epoll servers bind sockets the same way).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>

namespace cpt::serve::net {

// Parses an IPv4 host:port into a sockaddr_in; throws std::runtime_error on
// a bad address literal.
sockaddr_in make_addr(const std::string& host, std::uint16_t port);

// Creates, binds, and listens a TCP socket on host:port (port 0 picks an
// ephemeral port). Returns the fd and writes the bound port to *actual_port.
// Throws std::runtime_error on socket errors; never leaks the fd on failure.
int listen_socket(const std::string& host, std::uint16_t port, int backlog,
                  std::uint16_t* actual_port);

}  // namespace cpt::serve::net
