#include "protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace cpt::serve {

const char* status_name(Status s) {
    switch (s) {
        case Status::kOk: return "ok";
        case Status::kQueueFull: return "queue_full";
        case Status::kDeadline: return "deadline_exceeded";
        case Status::kNoModel: return "no_model";
        case Status::kShuttingDown: return "shutting_down";
        case Status::kBadRequest: return "bad_request";
        case Status::kUpstream: return "upstream_error";
    }
    return "unknown";
}

namespace {

// Little-endian byte-level writer/reader. Explicit byte shuffling (rather
// than memcpy of host-order structs) keeps the wire format stable across
// compilers and padding rules.
struct Writer {
    std::vector<std::uint8_t> buf;

    void u8(std::uint8_t v) { buf.push_back(v); }
    void u16(std::uint16_t v) {
        buf.push_back(static_cast<std::uint8_t>(v));
        buf.push_back(static_cast<std::uint8_t>(v >> 8));
    }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void f32(float v) {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        u32(bits);
    }
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }
    void str16(const std::string& s) {
        if (s.size() > 0xffff) throw std::runtime_error("protocol: string too long");
        u16(static_cast<std::uint16_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }
};

struct Reader {
    std::span<const std::uint8_t> buf;
    std::size_t pos = 0;

    void need(std::size_t n) const {
        if (pos + n > buf.size()) throw std::runtime_error("protocol: truncated message");
    }
    std::uint8_t u8() {
        need(1);
        return buf[pos++];
    }
    std::uint16_t u16() {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(buf[pos]) |
                          static_cast<std::uint16_t>(buf[pos + 1]) << 8;
        pos += 2;
        return v;
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }
    float f32() {
        const std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, 4);
        return v;
    }
    double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }
    std::string str16() {
        const std::uint16_t n = u16();
        need(n);
        std::string s(reinterpret_cast<const char*>(buf.data() + pos), n);
        pos += n;
        return s;
    }
    void expect_end() const {
        if (pos != buf.size()) throw std::runtime_error("protocol: trailing bytes");
    }
};

void expect_type(Reader& r, MsgType want) {
    const auto got = static_cast<MsgType>(r.u8());
    if (got != want) throw std::runtime_error("protocol: unexpected message type");
}

void write_stream(Writer& w, const trace::Stream& s) {
    w.str16(s.ue_id);
    w.u8(static_cast<std::uint8_t>(s.device));
    w.u8(static_cast<std::uint8_t>(s.hour_of_day));
    w.u32(static_cast<std::uint32_t>(s.events.size()));
    for (const auto& e : s.events) {
        w.f64(e.timestamp);
        w.u8(e.type);
    }
}

trace::Stream read_stream(Reader& r) {
    trace::Stream s;
    s.ue_id = r.str16();
    s.device = static_cast<trace::DeviceType>(r.u8());
    s.hour_of_day = r.u8();
    const std::uint32_t n = r.u32();
    s.events.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const double t = r.f64();
        const auto type = static_cast<cellular::EventId>(r.u8());
        s.events.push_back({t, type});
    }
    return s;
}

}  // namespace

std::vector<std::uint8_t> encode_generate_request(const GenerateRequest& req) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::kGenerateRequest));
    w.u8(static_cast<std::uint8_t>(req.device));
    w.u8(static_cast<std::uint8_t>(req.hour_of_day));
    w.u8(req.deterministic ? 1 : 0);
    w.u32(req.count);
    w.u64(req.seed);
    w.f32(req.temperature);
    w.f32(req.top_p);
    w.u32(req.max_stream_len);
    w.u32(req.deadline_ms);
    w.str16(req.ue_prefix);
    return std::move(w.buf);
}

GenerateRequest decode_generate_request(std::span<const std::uint8_t> payload) {
    Reader r{payload};
    expect_type(r, MsgType::kGenerateRequest);
    GenerateRequest req;
    req.device = static_cast<trace::DeviceType>(r.u8());
    req.hour_of_day = r.u8();
    req.deterministic = r.u8() != 0;
    req.count = r.u32();
    req.seed = r.u64();
    req.temperature = r.f32();
    req.top_p = r.f32();
    req.max_stream_len = r.u32();
    req.deadline_ms = r.u32();
    req.ue_prefix = r.str16();
    r.expect_end();
    return req;
}

std::vector<std::uint8_t> encode_generate_response(const GenerateResponse& resp) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::kGenerateResponse));
    w.u8(static_cast<std::uint8_t>(resp.status));
    w.str16(resp.error);
    w.u32(static_cast<std::uint32_t>(resp.streams.size()));
    for (const auto& s : resp.streams) write_stream(w, s);
    return std::move(w.buf);
}

GenerateResponse decode_generate_response(std::span<const std::uint8_t> payload) {
    Reader r{payload};
    expect_type(r, MsgType::kGenerateResponse);
    GenerateResponse resp;
    resp.status = static_cast<Status>(r.u8());
    resp.error = r.str16();
    const std::uint32_t n = r.u32();
    resp.streams.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) resp.streams.push_back(read_stream(r));
    r.expect_end();
    return resp;
}

std::vector<std::uint8_t> encode_stats_request() {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
    return std::move(w.buf);
}

std::vector<std::uint8_t> encode_stats_response(const std::string& json) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::kStatsResponse));
    w.u32(static_cast<std::uint32_t>(json.size()));
    w.buf.insert(w.buf.end(), json.begin(), json.end());
    return std::move(w.buf);
}

std::string decode_stats_response(std::span<const std::uint8_t> payload) {
    Reader r{payload};
    expect_type(r, MsgType::kStatsResponse);
    const std::uint32_t n = r.u32();
    r.need(n);
    std::string json(reinterpret_cast<const char*>(r.buf.data() + r.pos), n);
    r.pos += n;
    r.expect_end();
    return json;
}

std::vector<std::uint8_t> encode_health_request() {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::kHealthRequest));
    return std::move(w.buf);
}

std::vector<std::uint8_t> encode_health_response(const HealthInfo& info) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(MsgType::kHealthResponse));
    w.u8(info.ok ? 1 : 0);
    w.u8(info.draining ? 1 : 0);
    w.u32(info.engines);
    w.u32(info.active_requests);
    w.u64(info.streams_done);
    w.f64(info.uptime_seconds);
    return std::move(w.buf);
}

HealthInfo decode_health_response(std::span<const std::uint8_t> payload) {
    Reader r{payload};
    expect_type(r, MsgType::kHealthResponse);
    HealthInfo info;
    info.ok = r.u8() != 0;
    info.draining = r.u8() != 0;
    info.engines = r.u32();
    info.active_requests = r.u32();
    info.streams_done = r.u64();
    info.uptime_seconds = r.f64();
    r.expect_end();
    return info;
}

MsgType peek_type(std::span<const std::uint8_t> payload) {
    if (payload.empty()) throw std::runtime_error("protocol: empty payload");
    const auto t = payload[0];
    if (t != static_cast<std::uint8_t>(MsgType::kGenerateRequest) &&
        t != static_cast<std::uint8_t>(MsgType::kStatsRequest) &&
        t != static_cast<std::uint8_t>(MsgType::kHealthRequest) &&
        t != static_cast<std::uint8_t>(MsgType::kGenerateResponse) &&
        t != static_cast<std::uint8_t>(MsgType::kStatsResponse) &&
        t != static_cast<std::uint8_t>(MsgType::kHealthResponse)) {
        throw std::runtime_error("protocol: unknown message type " + std::to_string(t));
    }
    return static_cast<MsgType>(t);
}

namespace {

// Full reads/writes over a possibly-interrupted socket. `frame_started` is
// true once any byte of the current frame has already moved — it propagates
// into FrameError::midstream() so the router can tell a safe-to-retry
// connection failure from a partially-streamed response.
bool read_exact(int fd, std::uint8_t* dst, std::size_t n, bool eof_ok,
                bool frame_started) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, dst + got, n - got, 0);
        if (r == 0) {
            if (got == 0 && !frame_started && eof_ok) return false;
            throw FrameError(FrameError::Kind::kClosed, 0,
                             frame_started || got > 0,
                             "protocol: connection closed mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR) continue;
            const int err = errno;
            const bool mid = frame_started || got > 0;
            if (err == EAGAIN || err == EWOULDBLOCK) {
                throw FrameError(FrameError::Kind::kTimeout, err, mid,
                                 "protocol: recv timed out");
            }
            throw FrameError(FrameError::Kind::kRecv, err, mid,
                             std::string("protocol: recv failed: ") + std::strerror(err));
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

void write_all(int fd, const std::uint8_t* src, std::size_t n, bool frame_started) {
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t r = ::send(fd, src + sent, n - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR) continue;
            const int err = errno;
            const bool mid = frame_started || sent > 0;
            if (err == EAGAIN || err == EWOULDBLOCK) {
                throw FrameError(FrameError::Kind::kTimeout, err, mid,
                                 "protocol: send timed out");
            }
            throw FrameError(FrameError::Kind::kSend, err, mid,
                             std::string("protocol: send failed: ") + std::strerror(err));
        }
        sent += static_cast<std::size_t>(r);
    }
}

}  // namespace

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
    std::uint8_t hdr[4];
    if (!read_exact(fd, hdr, 4, /*eof_ok=*/true, /*frame_started=*/false)) return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
    if (len == 0 || len > kMaxFrameBytes) {
        throw FrameError(FrameError::Kind::kBadLength, 0, /*midstream=*/true,
                         "protocol: bad frame length " + std::to_string(len));
    }
    payload.resize(len);
    read_exact(fd, payload.data(), len, /*eof_ok=*/false, /*frame_started=*/true);
    return true;
}

void write_frame(int fd, std::span<const std::uint8_t> payload) {
    if (payload.empty() || payload.size() > kMaxFrameBytes) {
        throw FrameError(FrameError::Kind::kBadLength, 0, /*midstream=*/false,
                         "protocol: bad frame length " + std::to_string(payload.size()));
    }
    std::uint8_t hdr[4];
    for (int i = 0; i < 4; ++i) {
        hdr[i] = static_cast<std::uint8_t>(payload.size() >> (8 * i));
    }
    write_all(fd, hdr, 4, /*frame_started=*/false);
    write_all(fd, payload.data(), payload.size(), /*frame_started=*/true);
}

}  // namespace cpt::serve
