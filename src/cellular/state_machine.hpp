// Two-level hierarchical UE state machines for 4G and 5G (paper Fig. 1,
// originally derived in the SMM paper [Meng et al., IMC'23]).
//
// The top level merges the EMM/ECM (4G) or RM/CM (5G) machines into three UE
// states: DEREGISTERED, CONNECTED, IDLE. The bottom level refines CONNECTED
// and IDLE with sub-states that capture event dependences the top level
// cannot express. Fig. 1 is only available as an image in the paper; the
// machines below are reconstructed from the paper's explicit textual
// constraints, which pin down every rule the evaluation relies on:
//   * the top-3 violation categories of Table 3 — (S1_REL_S, S1_CONN_REL),
//     (S1_REL_S, HO), (CONNECTED, SRV_REQ) — imply that S1_REL_S is the IDLE
//     sub-state entered via S1_CONN_REL, from which neither another release
//     nor a handover is legal, and that SRV_REQ is illegal while CONNECTED;
//   * "HO is always followed by TAU in the CONNECTED state" (§5.6) motivates
//     the CONN_AFTER_HO sub-state;
//   * the bootstrap heuristic (§5.2.1) requires ATCH, DTCH, SRV_REQ and HO to
//     have source-independent destination states.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "events.hpp"

namespace cpt::cellular {

// Top-level UE states shared by 4G and 5G.
enum class TopState : std::uint8_t {
    kDeregistered,
    kConnected,
    kIdle,
};

std::string_view to_string(TopState s);

// Bottom-level (full) states. Not every generation uses every value.
enum class SubState : std::uint8_t {
    kDeregistered,    // top: DEREGISTERED
    kConnActive,      // top: CONNECTED, normal operation
    kConnAfterHo,     // top: CONNECTED, handover just completed (4G only)
    kIdleS1RelS,      // top: IDLE, entered via S1_CONN_REL / AN_REL
    kIdleTauS,        // top: IDLE, entered via TAU-from-idle (4G only)
    kNumSubStates,
};

std::string_view to_string(SubState s);
TopState top_state_of(SubState s);

// A deterministic finite transition structure over (SubState, EventId).
class StateMachine {
public:
    // Builds the machine of Fig. 1a (4G) or Fig. 1b (5G).
    static const StateMachine& for_generation(Generation gen);

    Generation generation() const { return gen_; }
    std::size_t num_events() const { return num_events_; }

    // Destination state for `event` taken from `from`; nullopt when the event
    // violates the machine (the replayer then stays in `from`, per §5.2.1).
    std::optional<SubState> step(SubState from, EventId event) const;

    // Bootstrap heuristic (§5.2.1): returns the deterministic destination
    // state for events whose destination does not depend on the source state
    // (ATCH/REGISTER, DTCH/DEREGISTER, SRV_REQ, HO), nullopt otherwise.
    std::optional<SubState> bootstrap_state(EventId event) const;

    // True when `event` can legally occur in at least one state.
    bool event_ever_legal(EventId event) const;

    // All (state, event, next) transitions, for enumeration by the SMM fitter.
    struct Transition {
        SubState from;
        EventId event;
        SubState to;
    };
    const std::vector<Transition>& transitions() const { return transitions_; }

private:
    StateMachine(Generation gen, std::size_t num_events);
    void add(SubState from, EventId event, SubState to);
    void set_bootstrap(EventId event, SubState to);

    Generation gen_;
    std::size_t num_events_;
    // Dense table: index = state * num_events + event; -1 = violation.
    std::vector<std::int8_t> table_;
    std::vector<std::int8_t> bootstrap_;
    std::vector<Transition> transitions_;
};

// Result of replaying one stream through a state machine.
struct ReplayResult {
    // Events before the bootstrap heuristic fires (excluded from violation
    // accounting, per §5.2.1).
    std::size_t pre_bootstrap_events = 0;
    std::size_t counted_events = 0;
    std::size_t violations = 0;

    // Per-(sub-state, event) violation counts, keyed as
    // state * num_events + event. Used for the Table 3 top-3 breakdown.
    std::vector<std::size_t> violation_by_state_event;

    // Completed sojourn intervals per *top-level* state, in seconds. A sojourn
    // completes when the top-level state changes; the trailing open interval
    // is not recorded (its true duration is unknown).
    std::vector<double> sojourn_connected;
    std::vector<double> sojourn_idle;
    std::vector<double> sojourn_deregistered;

    bool bootstrapped = false;
    SubState final_state = SubState::kDeregistered;

    bool has_violation() const { return violations > 0; }
};

// Replays streams against a machine, producing violation and sojourn
// statistics. Stateless; safe to share.
class StateMachineReplayer {
public:
    explicit StateMachineReplayer(const StateMachine& machine) : machine_(&machine) {}

    ReplayResult replay(std::span<const ControlEvent> events) const;

    // Replays many streams, sharded over the global thread pool. Result i is
    // exactly replay(streams[i]); order is preserved, so aggregation by the
    // caller is thread-count independent.
    std::vector<ReplayResult> replay_all(std::span<const std::span<const ControlEvent>> streams) const;

private:
    const StateMachine* machine_;
};

}  // namespace cpt::cellular
