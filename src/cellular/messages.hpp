// Control-event → control-plane-message expansion.
//
// The paper's traffic model stops at control events because "mapping from a
// control-plane event to messages is fixed as dictated by the 3GPP protocol"
// (§2.1, note 2). This module is that fixed mapping: each event type expands
// into the NAS/S1AP message sequence exchanged among UE, RAN (eNodeB) and the
// MCN entities (MME, S-GW, HSS), so downstream consumers (e.g. the MCN
// simulator, message-level sizing studies) can work at message granularity.
//
// The sequences follow TS 23.401's procedure flows, reduced to the messages
// that traverse the MCN (RAN-internal RRC signalling is out of scope, as in
// the paper).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "events.hpp"

namespace cpt::cellular {

// Network elements that originate/receive control messages.
enum class Entity : std::uint8_t {
    kUe,
    kRan,   // eNodeB / gNB
    kMme,   // MME (4G) / AMF (5G)
    kSgw,   // S-GW (4G) / SMF+UPF control (5G)
    kHss,   // HSS (4G) / UDM (5G)
};

std::string_view to_string(Entity e);

// One control-plane message of a procedure.
struct Message {
    std::string_view name;  // 3GPP message name
    Entity from;
    Entity to;
    // Approximate encoded size in bytes (NAS+S1AP), for link-load studies.
    std::uint32_t bytes;
};

// The fixed message sequence for one control event. Sequences are defined
// per generation; ids index into the generation's vocabulary.
std::span<const Message> messages_for(Generation gen, EventId event);

// Number of messages that transit the MCN (i.e. from or to MME/S-GW/HSS) for
// one event — the per-event signalling load unit.
std::size_t mcn_message_count(Generation gen, EventId event);

// Total bytes across the event's message sequence.
std::size_t total_bytes(Generation gen, EventId event);

// Expands a stream of events into a timestamped message trace. Messages of
// one event share the event's timestamp plus `per_message_gap_s` increments
// (serialized procedure steps).
struct TimedMessage {
    double timestamp;
    Message message;
};
std::vector<TimedMessage> expand(Generation gen, std::span<const ControlEvent> events,
                                 double per_message_gap_s = 0.005);

}  // namespace cpt::cellular
