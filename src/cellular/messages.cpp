#include "messages.hpp"

#include <stdexcept>

namespace cpt::cellular {

std::string_view to_string(Entity e) {
    switch (e) {
        case Entity::kUe: return "UE";
        case Entity::kRan: return "RAN";
        case Entity::kMme: return "MME";
        case Entity::kSgw: return "SGW";
        case Entity::kHss: return "HSS";
    }
    return "?";
}

namespace {

using enum Entity;

// TS 23.401 §5.3.2 (E-UTRAN initial attach), reduced to MCN-visible messages.
constexpr Message kAttach[] = {
    {"Attach Request", kUe, kMme, 140},
    {"Authentication Information Request", kMme, kHss, 110},
    {"Authentication Information Answer", kHss, kMme, 180},
    {"Authentication Request", kMme, kUe, 90},
    {"Authentication Response", kUe, kMme, 60},
    {"Security Mode Command", kMme, kUe, 70},
    {"Security Mode Complete", kUe, kMme, 50},
    {"Update Location Request", kMme, kHss, 120},
    {"Update Location Answer", kHss, kMme, 200},
    {"Create Session Request", kMme, kSgw, 250},
    {"Create Session Response", kSgw, kMme, 220},
    {"Initial Context Setup Request / Attach Accept", kMme, kRan, 300},
    {"Initial Context Setup Response", kRan, kMme, 90},
    {"Attach Complete", kUe, kMme, 50},
    {"Modify Bearer Request", kMme, kSgw, 130},
    {"Modify Bearer Response", kSgw, kMme, 110},
};

// TS 23.401 §5.3.8 (UE-initiated detach).
constexpr Message kDetach[] = {
    {"Detach Request", kUe, kMme, 80},
    {"Delete Session Request", kMme, kSgw, 110},
    {"Delete Session Response", kSgw, kMme, 90},
    {"Detach Accept", kMme, kUe, 50},
    {"UE Context Release Command", kMme, kRan, 70},
    {"UE Context Release Complete", kRan, kMme, 60},
};

// TS 23.401 §5.3.4.1 (UE-triggered service request).
constexpr Message kServiceRequest[] = {
    {"Service Request", kUe, kMme, 70},
    {"Initial Context Setup Request", kMme, kRan, 220},
    {"Initial Context Setup Response", kRan, kMme, 90},
    {"Modify Bearer Request", kMme, kSgw, 130},
    {"Modify Bearer Response", kSgw, kMme, 110},
};

// TS 23.401 §5.3.5 (S1 release).
constexpr Message kS1Release[] = {
    {"UE Context Release Request", kRan, kMme, 70},
    {"Release Access Bearers Request", kMme, kSgw, 90},
    {"Release Access Bearers Response", kSgw, kMme, 80},
    {"UE Context Release Command", kMme, kRan, 70},
    {"UE Context Release Complete", kRan, kMme, 60},
};

// TS 23.401 §5.5.1.1 (X2-based handover with S-GW path switch).
constexpr Message kHandover[] = {
    {"Path Switch Request", kRan, kMme, 150},
    {"Modify Bearer Request", kMme, kSgw, 130},
    {"Modify Bearer Response", kSgw, kMme, 110},
    {"Path Switch Request Acknowledge", kMme, kRan, 120},
};

// TS 23.401 §5.3.3 (tracking area update, no S-GW change).
constexpr Message kTau[] = {
    {"TAU Request", kUe, kMme, 110},
    {"TAU Accept", kMme, kUe, 90},
    {"TAU Complete", kUe, kMme, 40},
};

// 5G equivalents (TS 23.502): structurally the same procedures with renamed
// messages; HO has no TAU follow-up.
constexpr Message kRegister5g[] = {
    {"Registration Request", kUe, kMme, 150},
    {"Nudm Authentication Get", kMme, kHss, 120},
    {"Nudm Authentication Response", kHss, kMme, 190},
    {"Authentication Request", kMme, kUe, 90},
    {"Authentication Response", kUe, kMme, 60},
    {"Security Mode Command", kMme, kUe, 70},
    {"Security Mode Complete", kUe, kMme, 50},
    {"Nudm Registration", kMme, kHss, 130},
    {"Nsmf PDU Session Create", kMme, kSgw, 260},
    {"Nsmf PDU Session Create Response", kSgw, kMme, 230},
    {"Initial Context Setup / Registration Accept", kMme, kRan, 310},
    {"Registration Complete", kUe, kMme, 50},
};

constexpr Message kDeregister5g[] = {
    {"Deregistration Request", kUe, kMme, 80},
    {"Nsmf PDU Session Release", kMme, kSgw, 110},
    {"Nsmf PDU Session Release Response", kSgw, kMme, 90},
    {"Deregistration Accept", kMme, kUe, 50},
    {"UE Context Release Command", kMme, kRan, 70},
    {"UE Context Release Complete", kRan, kMme, 60},
};

constexpr Message kServiceRequest5g[] = {
    {"Service Request", kUe, kMme, 80},
    {"Initial Context Setup Request", kMme, kRan, 230},
    {"Initial Context Setup Response", kRan, kMme, 90},
    {"Nsmf PDU Session Update", kMme, kSgw, 140},
    {"Nsmf PDU Session Update Response", kSgw, kMme, 120},
};

constexpr Message kAnRelease5g[] = {
    {"AN Release Request", kRan, kMme, 70},
    {"Nsmf PDU Session Deactivate", kMme, kSgw, 100},
    {"Nsmf PDU Session Deactivate Response", kSgw, kMme, 80},
    {"UE Context Release Command", kMme, kRan, 70},
    {"UE Context Release Complete", kRan, kMme, 60},
};

constexpr Message kHandover5g[] = {
    {"Path Switch Request", kRan, kMme, 160},
    {"Nsmf PDU Session Update", kMme, kSgw, 140},
    {"Nsmf PDU Session Update Response", kSgw, kMme, 120},
    {"Path Switch Request Acknowledge", kMme, kRan, 120},
};

}  // namespace

std::span<const Message> messages_for(Generation gen, EventId event) {
    if (gen == Generation::kLte4G) {
        switch (event) {
            case lte::kAtch: return kAttach;
            case lte::kDtch: return kDetach;
            case lte::kSrvReq: return kServiceRequest;
            case lte::kS1ConnRel: return kS1Release;
            case lte::kHo: return kHandover;
            case lte::kTau: return kTau;
            default: break;
        }
    } else {
        switch (event) {
            case nr::kRegister: return kRegister5g;
            case nr::kDeregister: return kDeregister5g;
            case nr::kSrvReq: return kServiceRequest5g;
            case nr::kAnRel: return kAnRelease5g;
            case nr::kHo: return kHandover5g;
            default: break;
        }
    }
    throw std::invalid_argument("messages_for: unknown event id");
}

std::size_t mcn_message_count(Generation gen, EventId event) {
    std::size_t n = 0;
    for (const auto& m : messages_for(gen, event)) {
        const bool mcn_side = m.from == Entity::kMme || m.to == Entity::kMme ||
                              m.from == Entity::kSgw || m.to == Entity::kSgw ||
                              m.from == Entity::kHss || m.to == Entity::kHss;
        if (mcn_side) ++n;
    }
    return n;
}

std::size_t total_bytes(Generation gen, EventId event) {
    std::size_t n = 0;
    for (const auto& m : messages_for(gen, event)) n += m.bytes;
    return n;
}

std::vector<TimedMessage> expand(Generation gen, std::span<const ControlEvent> events,
                                 double per_message_gap_s) {
    std::vector<TimedMessage> out;
    for (const auto& ev : events) {
        double t = ev.timestamp;
        for (const auto& m : messages_for(gen, ev.type)) {
            out.push_back({t, m});
            t += per_message_gap_s;
        }
    }
    return out;
}

}  // namespace cpt::cellular
