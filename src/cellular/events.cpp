#include "events.hpp"

#include <stdexcept>

namespace cpt::cellular {

Vocabulary::Vocabulary(Generation gen, std::vector<std::string> names)
    : gen_(gen), names_(std::move(names)) {}

const std::string& Vocabulary::name(EventId id) const {
    if (id >= names_.size()) throw std::out_of_range("Vocabulary::name: bad event id");
    return names_[id];
}

std::optional<EventId> Vocabulary::id(std::string_view name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return static_cast<EventId>(i);
    }
    return std::nullopt;
}

const Vocabulary& vocabulary(Generation gen) {
    static const Vocabulary lte_vocab(Generation::kLte4G,
                                      {"ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL", "HO", "TAU"});
    static const Vocabulary nr_vocab(Generation::kNr5G,
                                     {"REGISTER", "DEREGISTER", "SRV_REQ", "AN_REL", "HO"});
    switch (gen) {
        case Generation::kLte4G:
            return lte_vocab;
        case Generation::kNr5G:
            return nr_vocab;
    }
    throw std::invalid_argument("vocabulary: unknown generation");
}

}  // namespace cpt::cellular
