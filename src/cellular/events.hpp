// Control-plane event vocabularies for 4G (LTE) and 5G (NR), following
// Table 1 of the paper. Events are identified by small integer ids that index
// into a per-generation Vocabulary; all higher layers (tokenizer, SMM, GAN)
// work on these ids and therefore carry zero 3GPP-specific logic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cpt::cellular {

// Cellular technology generation. The paper evaluates on LTE; the 5G machine
// is implemented as well (Fig. 1b) to demonstrate that only this module — the
// "domain knowledge" — changes between generations.
enum class Generation : std::uint8_t {
    kLte4G,
    kNr5G,
};

using EventId = std::uint8_t;

// 4G event ids (stable, also used as token one-hot positions).
namespace lte {
inline constexpr EventId kAtch = 0;        // ATCH: register UE with the MCN
inline constexpr EventId kDtch = 1;        // DTCH: de-register UE
inline constexpr EventId kSrvReq = 2;      // SRV_REQ: create signaling connection
inline constexpr EventId kS1ConnRel = 3;   // S1_CONN_REL: release signaling connection
inline constexpr EventId kHo = 4;          // HO: handover to another cell
inline constexpr EventId kTau = 5;         // TAU: tracking area update
inline constexpr std::size_t kNumEvents = 6;
}  // namespace lte

// 5G event ids. TAU does not exist in 5G (paper §2.1).
namespace nr {
inline constexpr EventId kRegister = 0;
inline constexpr EventId kDeregister = 1;
inline constexpr EventId kSrvReq = 2;
inline constexpr EventId kAnRel = 3;
inline constexpr EventId kHo = 4;
inline constexpr std::size_t kNumEvents = 5;
}  // namespace nr

// Name table for a generation's event set.
class Vocabulary {
public:
    Vocabulary(Generation gen, std::vector<std::string> names);

    Generation generation() const { return gen_; }
    std::size_t size() const { return names_.size(); }
    const std::string& name(EventId id) const;
    std::optional<EventId> id(std::string_view name) const;

private:
    Generation gen_;
    std::vector<std::string> names_;
};

// Singleton vocabularies.
const Vocabulary& vocabulary(Generation gen);

// A single timestamped control-plane event within a stream. Timestamps are
// seconds relative to the containing stream's start.
struct ControlEvent {
    double timestamp = 0.0;
    EventId type = 0;

    bool operator==(const ControlEvent&) const = default;
};

}  // namespace cpt::cellular
