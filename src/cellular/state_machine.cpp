#include "state_machine.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace cpt::cellular {

std::string_view to_string(TopState s) {
    switch (s) {
        case TopState::kDeregistered: return "DEREGISTERED";
        case TopState::kConnected: return "CONNECTED";
        case TopState::kIdle: return "IDLE";
    }
    return "?";
}

std::string_view to_string(SubState s) {
    switch (s) {
        case SubState::kDeregistered: return "DEREGISTERED";
        case SubState::kConnActive: return "CONNECTED";
        case SubState::kConnAfterHo: return "CONN_HO_S";
        case SubState::kIdleS1RelS: return "S1_REL_S";
        case SubState::kIdleTauS: return "TAU_IDLE_S";
        case SubState::kNumSubStates: break;
    }
    return "?";
}

TopState top_state_of(SubState s) {
    switch (s) {
        case SubState::kDeregistered: return TopState::kDeregistered;
        case SubState::kConnActive:
        case SubState::kConnAfterHo: return TopState::kConnected;
        case SubState::kIdleS1RelS:
        case SubState::kIdleTauS: return TopState::kIdle;
        case SubState::kNumSubStates: break;
    }
    throw std::invalid_argument("top_state_of: bad sub-state");
}

StateMachine::StateMachine(Generation gen, std::size_t num_events)
    : gen_(gen),
      num_events_(num_events),
      table_(static_cast<std::size_t>(SubState::kNumSubStates) * num_events, -1),
      bootstrap_(num_events, -1) {}

void StateMachine::add(SubState from, EventId event, SubState to) {
    table_[static_cast<std::size_t>(from) * num_events_ + event] = static_cast<std::int8_t>(to);
    transitions_.push_back({from, event, to});
}

void StateMachine::set_bootstrap(EventId event, SubState to) {
    bootstrap_[event] = static_cast<std::int8_t>(to);
}

std::optional<SubState> StateMachine::step(SubState from, EventId event) const {
    if (event >= num_events_) return std::nullopt;
    const std::int8_t to = table_[static_cast<std::size_t>(from) * num_events_ + event];
    if (to < 0) return std::nullopt;
    return static_cast<SubState>(to);
}

std::optional<SubState> StateMachine::bootstrap_state(EventId event) const {
    if (event >= num_events_) return std::nullopt;
    const std::int8_t to = bootstrap_[event];
    if (to < 0) return std::nullopt;
    return static_cast<SubState>(to);
}

bool StateMachine::event_ever_legal(EventId event) const {
    for (const auto& t : transitions_) {
        if (t.event == event) return true;
    }
    return false;
}

const StateMachine& StateMachine::for_generation(Generation gen) {
    static const StateMachine lte = [] {
        StateMachine m(Generation::kLte4G, lte::kNumEvents);
        using enum SubState;
        // DEREGISTERED: only an attach is legal.
        m.add(kDeregistered, lte::kAtch, kConnActive);
        // CONNECTED (active).
        m.add(kConnActive, lte::kS1ConnRel, kIdleS1RelS);
        m.add(kConnActive, lte::kHo, kConnAfterHo);
        m.add(kConnActive, lte::kTau, kConnActive);
        m.add(kConnActive, lte::kDtch, kDeregistered);
        // CONNECTED (handover just completed): TAU completes the handover into
        // the new tracking area; a further HO chains; release/detach are legal.
        m.add(kConnAfterHo, lte::kTau, kConnActive);
        m.add(kConnAfterHo, lte::kHo, kConnAfterHo);
        m.add(kConnAfterHo, lte::kS1ConnRel, kIdleS1RelS);
        m.add(kConnAfterHo, lte::kDtch, kDeregistered);
        // IDLE after S1 release (S1_REL_S): re-release and HO are violations.
        m.add(kIdleS1RelS, lte::kSrvReq, kConnActive);
        m.add(kIdleS1RelS, lte::kTau, kIdleTauS);
        m.add(kIdleS1RelS, lte::kDtch, kDeregistered);
        // IDLE after a TAU-from-idle.
        m.add(kIdleTauS, lte::kSrvReq, kConnActive);
        m.add(kIdleTauS, lte::kTau, kIdleTauS);
        m.add(kIdleTauS, lte::kDtch, kDeregistered);
        // Bootstrap (§5.2.1): ATCH, DTCH, SRV_REQ, HO have deterministic
        // destinations regardless of source state.
        m.set_bootstrap(lte::kAtch, kConnActive);
        m.set_bootstrap(lte::kDtch, kDeregistered);
        m.set_bootstrap(lte::kSrvReq, kConnActive);
        m.set_bootstrap(lte::kHo, kConnAfterHo);
        return m;
    }();
    static const StateMachine nr = [] {
        StateMachine m(Generation::kNr5G, nr::kNumEvents);
        using enum SubState;
        m.add(kDeregistered, nr::kRegister, kConnActive);
        m.add(kConnActive, nr::kAnRel, kIdleS1RelS);
        m.add(kConnActive, nr::kHo, kConnActive);  // no TAU in 5G -> no AFTER_HO
        m.add(kConnActive, nr::kDeregister, kDeregistered);
        m.add(kIdleS1RelS, nr::kSrvReq, kConnActive);
        m.add(kIdleS1RelS, nr::kDeregister, kDeregistered);
        m.set_bootstrap(nr::kRegister, kConnActive);
        m.set_bootstrap(nr::kDeregister, kDeregistered);
        m.set_bootstrap(nr::kSrvReq, kConnActive);
        m.set_bootstrap(nr::kHo, kConnActive);
        return m;
    }();
    switch (gen) {
        case Generation::kLte4G: return lte;
        case Generation::kNr5G: return nr;
    }
    throw std::invalid_argument("StateMachine::for_generation: unknown generation");
}

ReplayResult StateMachineReplayer::replay(std::span<const ControlEvent> events) const {
    const auto& m = *machine_;
    ReplayResult r;
    r.violation_by_state_event.assign(
        static_cast<std::size_t>(SubState::kNumSubStates) * m.num_events(), 0);

    SubState state = SubState::kDeregistered;
    bool bootstrapped = false;
    double top_state_entered_at = 0.0;
    TopState top = TopState::kDeregistered;

    auto record_sojourn = [&](TopState s, double duration) {
        switch (s) {
            case TopState::kConnected: r.sojourn_connected.push_back(duration); break;
            case TopState::kIdle: r.sojourn_idle.push_back(duration); break;
            case TopState::kDeregistered: r.sojourn_deregistered.push_back(duration); break;
        }
    };

    for (const ControlEvent& ev : events) {
        if (!bootstrapped) {
            const auto boot = m.bootstrap_state(ev.type);
            if (!boot) {
                ++r.pre_bootstrap_events;
                continue;
            }
            bootstrapped = true;
            state = *boot;
            top = top_state_of(state);
            top_state_entered_at = ev.timestamp;
            // The bootstrap event itself is excluded from violation counting —
            // it defines the initial state rather than being checked against
            // one (§5.2.1 counts events "preceding the state machine
            // bootstrapping" as excluded; the bootstrap event produces the
            // initial state).
            continue;
        }
        ++r.counted_events;
        const auto next = m.step(state, ev.type);
        if (!next) {
            ++r.violations;
            ++r.violation_by_state_event[static_cast<std::size_t>(state) * m.num_events() + ev.type];
            continue;  // violation: stay in the same state (§5.2.1)
        }
        const TopState next_top = top_state_of(*next);
        if (next_top != top) {
            record_sojourn(top, ev.timestamp - top_state_entered_at);
            top = next_top;
            top_state_entered_at = ev.timestamp;
        }
        state = *next;
    }
    r.bootstrapped = bootstrapped;
    r.final_state = state;
    return r;
}

std::vector<ReplayResult> StateMachineReplayer::replay_all(
    std::span<const std::span<const ControlEvent>> streams) const {
    std::vector<ReplayResult> results(streams.size());
    // ~16 table lookups + a few pushes per event; assume ~100 events/stream.
    util::global_pool().parallel_for(streams.size(), util::grain_for(1600),
                                     [&](std::size_t i0, std::size_t i1) {
                                         for (std::size_t i = i0; i < i1; ++i) {
                                             results[i] = replay(streams[i]);
                                         }
                                     });
    return results;
}

}  // namespace cpt::cellular
