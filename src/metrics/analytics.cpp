#include "analytics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace cpt::metrics {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
    if (lag == 0) return 1.0;
    if (xs.size() < lag + 2) return 0.0;
    const auto s = util::summarize(xs);
    if (s.stddev <= 0.0) return 0.0;
    double acc = 0.0;
    const std::size_t n = xs.size() - lag;
    for (std::size_t i = 0; i < n; ++i) acc += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
    const double var = s.stddev * s.stddev * static_cast<double>(xs.size() - 1);
    return var > 0.0 ? acc / var : 0.0;
}

double mean_interarrival_autocorrelation(const trace::Dataset& ds, std::size_t lag) {
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& s : ds.streams) {
        const auto ia = s.interarrivals();
        if (ia.size() < lag + 3) continue;
        // Skip the defined-zero first interarrival.
        total += autocorrelation(std::span<const double>(ia).subspan(1), lag);
        ++count;
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

double index_of_dispersion(const trace::Dataset& ds, double bin_seconds) {
    if (bin_seconds <= 0.0) throw std::invalid_argument("index_of_dispersion: bad bin size");
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& s : ds.streams) {
        if (s.events.size() < 4) continue;
        const double span = s.events.back().timestamp - s.events.front().timestamp;
        const auto bins = static_cast<std::size_t>(span / bin_seconds) + 1;
        if (bins < 3) continue;
        std::vector<double> counts(bins, 0.0);
        for (const auto& e : s.events) {
            auto idx = static_cast<std::size_t>((e.timestamp - s.events.front().timestamp) /
                                                bin_seconds);
            idx = std::min(idx, bins - 1);
            counts[idx] += 1.0;
        }
        const auto cs = util::summarize(counts);
        if (cs.mean > 0.0) {
            total += cs.stddev * cs.stddev / cs.mean;
            ++counted;
        }
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

double jensen_shannon(std::span<const double> p, std::span<const double> q) {
    if (p.size() != q.size()) throw std::invalid_argument("jensen_shannon: size mismatch");
    auto kl = [](std::span<const double> a, const std::vector<double>& m) {
        double d = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i] > 0.0 && m[i] > 0.0) d += a[i] * std::log(a[i] / m[i]);
        }
        return d;
    };
    std::vector<double> mid(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) mid[i] = 0.5 * (p[i] + q[i]);
    return 0.5 * kl(p, mid) + 0.5 * kl(q, mid);
}

std::vector<double> hourly_volume(const std::vector<trace::Dataset>& hours) {
    std::vector<double> volume(24, 0.0);
    for (const auto& ds : hours) {
        for (const auto& s : ds.streams) {
            const int h = ((s.hour_of_day % 24) + 24) % 24;
            volume[static_cast<std::size_t>(h)] += static_cast<double>(s.events.size());
        }
    }
    return volume;
}

double interarrival_cv(const trace::Dataset& ds) {
    const auto ia = ds.all_interarrivals();
    const auto s = util::summarize(ia);
    return s.mean > 0.0 ? s.stddev / s.mean : 0.0;
}

}  // namespace cpt::metrics
