// Secondary trace analytics beyond the paper's Table 2 metrics: temporal
// structure (autocorrelation, burstiness), distributional divergences, and
// volume profiles. Used by examples and by tests that sanity-check the
// synthetic world against known traffic phenomenology.
#pragma once

#include <span>
#include <vector>

#include "trace/stream.hpp"

namespace cpt::metrics {

// Lag-k autocorrelation of a scalar series; 0 when undefined (short series or
// zero variance).
double autocorrelation(std::span<const double> xs, std::size_t lag);

// Mean lag-k autocorrelation of per-stream interarrival series across a
// dataset (streams shorter than lag + 2 are skipped).
double mean_interarrival_autocorrelation(const trace::Dataset& ds, std::size_t lag);

// Index of dispersion of counts (IDC): Var(N) / E(N) for event counts in
// fixed bins of `bin_seconds` over each stream's span, averaged over streams.
// 1 for Poisson arrivals; > 1 indicates burstiness.
double index_of_dispersion(const trace::Dataset& ds, double bin_seconds);

// Jensen-Shannon divergence (natural log) between two probability vectors of
// equal length. Symmetric, bounded by ln 2.
double jensen_shannon(std::span<const double> p, std::span<const double> q);

// Events per hour-of-day across a collection of hourly datasets (index =
// hour), for visualizing diurnal profiles.
std::vector<double> hourly_volume(const std::vector<trace::Dataset>& hours);

// Coefficient of variation of the interarrival times pooled over a dataset
// (sigma/mean); > 1 indicates heavier-than-exponential variability.
double interarrival_cv(const trace::Dataset& ds);

}  // namespace cpt::metrics
