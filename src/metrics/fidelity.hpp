// The paper's fidelity metric suite (Table 2): semantic violations, sojourn
// time distributions, event-type breakdown, flow-length distributions, and
// report aggregation used by every evaluation bench.
#pragma once

#include <string>
#include <vector>

#include "cellular/state_machine.hpp"
#include "trace/stream.hpp"
#include "util/stats.hpp"

namespace cpt::metrics {

// ---- Semantic violations (evaluates C2) ---------------------------------------

struct ViolationCategory {
    std::string state;   // sub-state name at the point of violation
    std::string event;   // violating event name
    double event_fraction = 0.0;  // share of counted events
};

struct ViolationStats {
    std::size_t counted_events = 0;
    std::size_t violating_events = 0;
    std::size_t total_streams = 0;
    std::size_t violating_streams = 0;
    std::vector<ViolationCategory> top_categories;  // descending

    double event_fraction() const {
        return counted_events ? static_cast<double>(violating_events) / counted_events : 0.0;
    }
    double stream_fraction() const {
        return total_streams ? static_cast<double>(violating_streams) / total_streams : 0.0;
    }
};

// Replays every stream against the generation's state machine (§5.2.1) and
// aggregates violation statistics. `top_k` bounds top_categories.
ViolationStats semantic_violations(const trace::Dataset& ds, std::size_t top_k = 3);

// ---- Sojourn times (evaluates C3) ----------------------------------------------

struct SojournSamples {
    // Completed sojourn intervals pooled over all streams.
    std::vector<double> connected;
    std::vector<double> idle;
    // Per-UE mean sojourn per state (the paper's Fig. 2 metric: "average
    // sojourn time ... of each UE"); one entry per stream that completed at
    // least one interval in the state.
    std::vector<double> per_ue_mean_connected;
    std::vector<double> per_ue_mean_idle;
};

SojournSamples collect_sojourns(const trace::Dataset& ds);

// ---- Aggregated report ----------------------------------------------------------

// Max CDF y-distances and breakdown differences between a synthesized dataset
// and a reference ("real") dataset. All distances use the per-UE mean sojourn
// CDFs (Fig. 2 / Table 6) and per-stream flow-length CDFs.
struct FidelityReport {
    double event_violation_fraction = 0.0;
    double stream_violation_fraction = 0.0;
    double maxy_sojourn_connected = 0.0;
    double maxy_sojourn_idle = 0.0;
    double maxy_flow_length_all = 0.0;
    double maxy_flow_length_srv_req = 0.0;
    double maxy_flow_length_s1_rel = 0.0;
    // synthesized breakdown minus real breakdown, per event type.
    std::vector<double> breakdown_diff;

    // Mean over the two sojourn distances (the paper's summary statistic).
    double mean_sojourn_maxy() const {
        return (maxy_sojourn_connected + maxy_sojourn_idle) / 2.0;
    }
    // Largest absolute breakdown difference.
    double max_breakdown_diff() const;
};

FidelityReport evaluate_fidelity(const trace::Dataset& synthesized, const trace::Dataset& real);

// Renders a report as an aligned text block (used by benches/examples).
std::string render_report(const FidelityReport& report, const trace::Dataset& reference);

}  // namespace cpt::metrics
