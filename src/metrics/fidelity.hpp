// The paper's fidelity metric suite (Table 2): semantic violations, sojourn
// time distributions, event-type breakdown, flow-length distributions, and
// report aggregation used by every evaluation bench.
#pragma once

#include <string>
#include <vector>

#include "cellular/state_machine.hpp"
#include "trace/columnar.hpp"
#include "trace/stream.hpp"
#include "util/sketch.hpp"
#include "util/stats.hpp"

namespace cpt::metrics {

// ---- Semantic violations (evaluates C2) ---------------------------------------

struct ViolationCategory {
    std::string state;   // sub-state name at the point of violation
    std::string event;   // violating event name
    double event_fraction = 0.0;  // share of counted events
};

struct ViolationStats {
    std::size_t counted_events = 0;
    std::size_t violating_events = 0;
    std::size_t total_streams = 0;
    std::size_t violating_streams = 0;
    std::vector<ViolationCategory> top_categories;  // descending

    double event_fraction() const {
        return counted_events ? static_cast<double>(violating_events) / counted_events : 0.0;
    }
    double stream_fraction() const {
        return total_streams ? static_cast<double>(violating_streams) / total_streams : 0.0;
    }
};

// Replays every stream against the generation's state machine (§5.2.1) and
// aggregates violation statistics. `top_k` bounds top_categories.
ViolationStats semantic_violations(const trace::Dataset& ds, std::size_t top_k = 3);

// ---- Sojourn times (evaluates C3) ----------------------------------------------

struct SojournSamples {
    // Completed sojourn intervals pooled over all streams.
    std::vector<double> connected;
    std::vector<double> idle;
    // Per-UE mean sojourn per state (the paper's Fig. 2 metric: "average
    // sojourn time ... of each UE"); one entry per stream that completed at
    // least one interval in the state.
    std::vector<double> per_ue_mean_connected;
    std::vector<double> per_ue_mean_idle;
};

SojournSamples collect_sojourns(const trace::Dataset& ds);

// ---- Aggregated report ----------------------------------------------------------

// Max CDF y-distances and breakdown differences between a synthesized dataset
// and a reference ("real") dataset. All distances use the per-UE mean sojourn
// CDFs (Fig. 2 / Table 6) and per-stream flow-length CDFs.
struct FidelityReport {
    double event_violation_fraction = 0.0;
    double stream_violation_fraction = 0.0;
    double maxy_sojourn_connected = 0.0;
    double maxy_sojourn_idle = 0.0;
    double maxy_flow_length_all = 0.0;
    double maxy_flow_length_srv_req = 0.0;
    double maxy_flow_length_s1_rel = 0.0;
    // synthesized breakdown minus real breakdown, per event type.
    std::vector<double> breakdown_diff;

    // Mean over the two sojourn distances (the paper's summary statistic).
    double mean_sojourn_maxy() const {
        return (maxy_sojourn_connected + maxy_sojourn_idle) / 2.0;
    }
    // Largest absolute breakdown difference.
    double max_breakdown_diff() const;
};

FidelityReport evaluate_fidelity(const trace::Dataset& synthesized, const trace::Dataset& real);

// ---- Streaming fidelity (DESIGN.md §14) -----------------------------------------
//
// FidelityAccumulator builds the Table-2 statistics incrementally: exact
// counters (event-type breakdown, violation tallies) plus deterministic
// quantile sketches (per-UE mean sojourns, flow lengths). Chunks can be
// accumulated on pool workers into per-chunk accumulators and merge()d in
// ascending chunk order — counters are exact under any grouping, sketches are
// reproducible under the canonical fold order (see util/sketch.hpp). Memory
// is O(sketches), independent of the trace size.
class FidelityAccumulator {
public:
    explicit FidelityAccumulator(cellular::Generation gen, std::size_t sketch_k = 1024);

    // Replays one decoded chunk (sharded over the thread pool) and folds its
    // statistics in.
    void add(const trace::StreamBatch& batch);
    // In-RAM bridge: folds a whole dataset (via Dataset::for_each_stream).
    void add(const trace::Dataset& ds);

    // Canonical merge; both sides must share the generation and sketch k.
    void merge(const FidelityAccumulator& other);

    cellular::Generation generation() const { return gen_; }
    std::uint64_t total_streams() const { return total_streams_; }
    std::uint64_t total_events() const { return event_counts_.total(); }

    // Worst-case rank error (fraction of count) across this accumulator's
    // sketches — the documented ε for the quantile-based distances below.
    double sketch_rank_error() const;

    bool operator==(const FidelityAccumulator& other) const = default;

    // The evaluator needs the raw pieces.
    friend FidelityReport evaluate_fidelity(const FidelityAccumulator& synthesized,
                                            const FidelityAccumulator& real);

private:
    void add_streams(std::span<const std::span<const cellular::ControlEvent>> streams);

    cellular::Generation gen_;
    util::CountTable event_counts_;  // per event type (exact)
    std::uint64_t total_streams_ = 0;
    std::uint64_t counted_events_ = 0;
    std::uint64_t violating_events_ = 0;
    std::uint64_t violating_streams_ = 0;
    util::QuantileSketch per_ue_mean_connected_;
    util::QuantileSketch per_ue_mean_idle_;
    util::QuantileSketch flow_all_;
    util::QuantileSketch flow_srv_req_;
    util::QuantileSketch flow_s1_rel_;
};

// The streaming counterpart of evaluate_fidelity(Dataset, Dataset): exact for
// violation fractions and breakdown_diff, within sketch_rank_error() of the
// exact statistic for the five max-y distances.
FidelityReport evaluate_fidelity(const FidelityAccumulator& synthesized,
                                 const FidelityAccumulator& real);

// Accumulates a whole columnar trace chunk-at-a-time (rewinding first).
FidelityAccumulator accumulate_fidelity(trace::ColumnarReader& reader,
                                        std::size_t sketch_k = 1024);

// End-to-end streaming evaluation of two columnar traces in O(chunk) memory.
FidelityReport evaluate_fidelity_streaming(trace::ColumnarReader& synthesized,
                                           trace::ColumnarReader& real);

// Renders a report as an aligned text block (used by benches/examples).
std::string render_report(const FidelityReport& report, const trace::Dataset& reference);
std::string render_report(const FidelityReport& report, cellular::Generation generation);

}  // namespace cpt::metrics
