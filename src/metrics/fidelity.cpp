#include "fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lint/trace_lint.hpp"
#include "util/ascii.hpp"

namespace cpt::metrics {

using cellular::StateMachine;
using cellular::StateMachineReplayer;

ViolationStats semantic_violations(const trace::Dataset& ds, std::size_t top_k) {
    // The trace linter owns violation accounting; this wrapper only re-labels
    // its category ids with names for the report structs.
    const auto report = lint::TraceLinter(ds.generation).lint(ds);
    const auto& vocab = cellular::vocabulary(ds.generation);

    ViolationStats stats;
    stats.total_streams = report.total_streams;
    stats.counted_events = report.counted_events;
    stats.violating_events = report.violating_events;
    stats.violating_streams = report.violating_streams;
    for (const auto& cat : report.top_categories(top_k)) {
        stats.top_categories.push_back(
            {std::string(to_string(cat.state)), vocab.name(cat.event), cat.event_fraction});
    }
    return stats;
}

SojournSamples collect_sojourns(const trace::Dataset& ds) {
    const auto& machine = StateMachine::for_generation(ds.generation);
    const StateMachineReplayer replayer(machine);
    SojournSamples out;
    std::vector<std::span<const cellular::ControlEvent>> streams;
    streams.reserve(ds.streams.size());
    for (const auto& s : ds.streams) streams.emplace_back(s.events);
    for (const auto& r : replayer.replay_all(streams)) {
        out.connected.insert(out.connected.end(), r.sojourn_connected.begin(),
                             r.sojourn_connected.end());
        out.idle.insert(out.idle.end(), r.sojourn_idle.begin(), r.sojourn_idle.end());
        if (!r.sojourn_connected.empty()) {
            out.per_ue_mean_connected.push_back(util::summarize(r.sojourn_connected).mean);
        }
        if (!r.sojourn_idle.empty()) {
            out.per_ue_mean_idle.push_back(util::summarize(r.sojourn_idle).mean);
        }
    }
    return out;
}

double FidelityReport::max_breakdown_diff() const {
    double mx = 0.0;
    for (double d : breakdown_diff) mx = std::max(mx, std::abs(d));
    return mx;
}

FidelityReport evaluate_fidelity(const trace::Dataset& synthesized, const trace::Dataset& real) {
    FidelityReport r;
    const ViolationStats v = semantic_violations(synthesized);
    r.event_violation_fraction = v.event_fraction();
    r.stream_violation_fraction = v.stream_fraction();

    const SojournSamples ss = collect_sojourns(synthesized);
    const SojournSamples sr = collect_sojourns(real);
    r.maxy_sojourn_connected =
        util::max_cdf_y_distance(ss.per_ue_mean_connected, sr.per_ue_mean_connected);
    r.maxy_sojourn_idle = util::max_cdf_y_distance(ss.per_ue_mean_idle, sr.per_ue_mean_idle);

    r.maxy_flow_length_all = util::max_cdf_y_distance(synthesized.flow_lengths(), real.flow_lengths());
    r.maxy_flow_length_srv_req = util::max_cdf_y_distance(
        synthesized.flow_lengths(cellular::lte::kSrvReq), real.flow_lengths(cellular::lte::kSrvReq));
    r.maxy_flow_length_s1_rel =
        util::max_cdf_y_distance(synthesized.flow_lengths(cellular::lte::kS1ConnRel),
                                 real.flow_lengths(cellular::lte::kS1ConnRel));

    const auto ps = synthesized.event_type_breakdown();
    const auto pr = real.event_type_breakdown();
    r.breakdown_diff.resize(ps.size(), 0.0);
    for (std::size_t i = 0; i < ps.size(); ++i) r.breakdown_diff[i] = ps[i] - pr[i];
    return r;
}

std::string render_report(const FidelityReport& report, const trace::Dataset& reference) {
    const auto& vocab = cellular::vocabulary(reference.generation);
    util::TextTable t({"metric", "value"});
    t.add_row({"event violations", util::fmt_pct(report.event_violation_fraction, 3)});
    t.add_row({"stream violations", util::fmt_pct(report.stream_violation_fraction, 2)});
    t.add_row({"max-y sojourn CONNECTED", util::fmt_pct(report.maxy_sojourn_connected, 1)});
    t.add_row({"max-y sojourn IDLE", util::fmt_pct(report.maxy_sojourn_idle, 1)});
    t.add_row({"max-y flow length (all)", util::fmt_pct(report.maxy_flow_length_all, 1)});
    // Event ids 2 and 3 are SRV_REQ and S1_CONN_REL in 4G, SRV_REQ and AN_REL
    // in 5G — the two dominant event types in either generation.
    t.add_row({"max-y flow length (" + vocab.name(cellular::lte::kSrvReq) + ")",
               util::fmt_pct(report.maxy_flow_length_srv_req, 1)});
    t.add_row({"max-y flow length (" + vocab.name(cellular::lte::kS1ConnRel) + ")",
               util::fmt_pct(report.maxy_flow_length_s1_rel, 1)});
    for (std::size_t i = 0; i < report.breakdown_diff.size(); ++i) {
        t.add_row({"breakdown diff " + vocab.name(static_cast<cellular::EventId>(i)),
                   util::fmt_pct(report.breakdown_diff[i], 2)});
    }
    return t.render();
}

}  // namespace cpt::metrics
