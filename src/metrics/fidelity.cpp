#include "fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lint/trace_lint.hpp"
#include "util/ascii.hpp"
#include "util/check.hpp"

namespace cpt::metrics {

using cellular::StateMachine;
using cellular::StateMachineReplayer;

ViolationStats semantic_violations(const trace::Dataset& ds, std::size_t top_k) {
    // The trace linter owns violation accounting; this wrapper only re-labels
    // its category ids with names for the report structs.
    const auto report = lint::TraceLinter(ds.generation).lint(ds);
    const auto& vocab = cellular::vocabulary(ds.generation);

    ViolationStats stats;
    stats.total_streams = report.total_streams;
    stats.counted_events = report.counted_events;
    stats.violating_events = report.violating_events;
    stats.violating_streams = report.violating_streams;
    for (const auto& cat : report.top_categories(top_k)) {
        stats.top_categories.push_back(
            {std::string(to_string(cat.state)), vocab.name(cat.event), cat.event_fraction});
    }
    return stats;
}

SojournSamples collect_sojourns(const trace::Dataset& ds) {
    const auto& machine = StateMachine::for_generation(ds.generation);
    const StateMachineReplayer replayer(machine);
    SojournSamples out;
    std::vector<std::span<const cellular::ControlEvent>> streams;
    streams.reserve(ds.streams.size());
    for (const auto& s : ds.streams) streams.emplace_back(s.events);
    for (const auto& r : replayer.replay_all(streams)) {
        out.connected.insert(out.connected.end(), r.sojourn_connected.begin(),
                             r.sojourn_connected.end());
        out.idle.insert(out.idle.end(), r.sojourn_idle.begin(), r.sojourn_idle.end());
        if (!r.sojourn_connected.empty()) {
            out.per_ue_mean_connected.push_back(util::summarize(r.sojourn_connected).mean);
        }
        if (!r.sojourn_idle.empty()) {
            out.per_ue_mean_idle.push_back(util::summarize(r.sojourn_idle).mean);
        }
    }
    return out;
}

double FidelityReport::max_breakdown_diff() const {
    double mx = 0.0;
    for (double d : breakdown_diff) mx = std::max(mx, std::abs(d));
    return mx;
}

FidelityReport evaluate_fidelity(const trace::Dataset& synthesized, const trace::Dataset& real) {
    FidelityReport r;
    const ViolationStats v = semantic_violations(synthesized);
    r.event_violation_fraction = v.event_fraction();
    r.stream_violation_fraction = v.stream_fraction();

    const SojournSamples ss = collect_sojourns(synthesized);
    const SojournSamples sr = collect_sojourns(real);
    r.maxy_sojourn_connected =
        util::max_cdf_y_distance(ss.per_ue_mean_connected, sr.per_ue_mean_connected);
    r.maxy_sojourn_idle = util::max_cdf_y_distance(ss.per_ue_mean_idle, sr.per_ue_mean_idle);

    r.maxy_flow_length_all = util::max_cdf_y_distance(synthesized.flow_lengths(), real.flow_lengths());
    r.maxy_flow_length_srv_req = util::max_cdf_y_distance(
        synthesized.flow_lengths(cellular::lte::kSrvReq), real.flow_lengths(cellular::lte::kSrvReq));
    r.maxy_flow_length_s1_rel =
        util::max_cdf_y_distance(synthesized.flow_lengths(cellular::lte::kS1ConnRel),
                                 real.flow_lengths(cellular::lte::kS1ConnRel));

    const auto ps = synthesized.event_type_breakdown();
    const auto pr = real.event_type_breakdown();
    r.breakdown_diff.resize(ps.size(), 0.0);
    for (std::size_t i = 0; i < ps.size(); ++i) r.breakdown_diff[i] = ps[i] - pr[i];
    return r;
}

FidelityAccumulator::FidelityAccumulator(cellular::Generation gen, std::size_t sketch_k)
    : gen_(gen),
      event_counts_(cellular::vocabulary(gen).size()),
      per_ue_mean_connected_(sketch_k),
      per_ue_mean_idle_(sketch_k),
      flow_all_(sketch_k),
      flow_srv_req_(sketch_k),
      flow_s1_rel_(sketch_k) {}

void FidelityAccumulator::add_streams(
    std::span<const std::span<const cellular::ControlEvent>> streams) {
    const auto& machine = StateMachine::for_generation(gen_);
    const auto results = StateMachineReplayer(machine).replay_all(streams);
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const auto& events = streams[i];
        const auto& r = results[i];
        ++total_streams_;
        counted_events_ += r.counted_events;
        violating_events_ += r.violations;
        if (r.has_violation()) ++violating_streams_;
        std::uint64_t srv_req = 0;
        std::uint64_t s1_rel = 0;
        for (const auto& e : events) {
            event_counts_.bump(e.type);
            if (e.type == cellular::lte::kSrvReq) ++srv_req;
            if (e.type == cellular::lte::kS1ConnRel) ++s1_rel;
        }
        flow_all_.add(static_cast<double>(events.size()));
        flow_srv_req_.add(static_cast<double>(srv_req));
        flow_s1_rel_.add(static_cast<double>(s1_rel));
        if (!r.sojourn_connected.empty()) {
            per_ue_mean_connected_.add(util::summarize(r.sojourn_connected).mean);
        }
        if (!r.sojourn_idle.empty()) {
            per_ue_mean_idle_.add(util::summarize(r.sojourn_idle).mean);
        }
    }
}

void FidelityAccumulator::add(const trace::StreamBatch& batch) {
    CPT_CHECK(batch.generation == gen_,
              "FidelityAccumulator::add: chunk generation does not match the accumulator's");
    std::vector<std::span<const cellular::ControlEvent>> streams;
    streams.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) streams.push_back(batch.events_of(i));
    add_streams(streams);
}

void FidelityAccumulator::add(const trace::Dataset& ds) {
    CPT_CHECK(ds.generation == gen_,
              "FidelityAccumulator::add: dataset generation does not match the accumulator's");
    std::vector<std::span<const cellular::ControlEvent>> streams;
    streams.reserve(ds.streams.size());
    ds.for_each_stream(std::nullopt, std::nullopt,
                       [&](const trace::Stream& s) { streams.emplace_back(s.events); });
    add_streams(streams);
}

void FidelityAccumulator::merge(const FidelityAccumulator& other) {
    CPT_CHECK(other.gen_ == gen_, "FidelityAccumulator::merge: mismatched generations");
    event_counts_.merge(other.event_counts_);
    total_streams_ += other.total_streams_;
    counted_events_ += other.counted_events_;
    violating_events_ += other.violating_events_;
    violating_streams_ += other.violating_streams_;
    per_ue_mean_connected_.merge(other.per_ue_mean_connected_);
    per_ue_mean_idle_.merge(other.per_ue_mean_idle_);
    flow_all_.merge(other.flow_all_);
    flow_srv_req_.merge(other.flow_srv_req_);
    flow_s1_rel_.merge(other.flow_s1_rel_);
}

double FidelityAccumulator::sketch_rank_error() const {
    double e = 0.0;
    for (const auto* s : {&per_ue_mean_connected_, &per_ue_mean_idle_, &flow_all_, &flow_srv_req_,
                          &flow_s1_rel_}) {
        e = std::max(e, s->rank_error_bound());
    }
    return e;
}

FidelityReport evaluate_fidelity(const FidelityAccumulator& synthesized,
                                 const FidelityAccumulator& real) {
    CPT_CHECK(synthesized.gen_ == real.gen_,
              "evaluate_fidelity: mismatched generations between accumulators");
    FidelityReport r;
    r.event_violation_fraction =
        synthesized.counted_events_
            ? static_cast<double>(synthesized.violating_events_) /
                  static_cast<double>(synthesized.counted_events_)
            : 0.0;
    r.stream_violation_fraction =
        synthesized.total_streams_
            ? static_cast<double>(synthesized.violating_streams_) /
                  static_cast<double>(synthesized.total_streams_)
            : 0.0;
    r.maxy_sojourn_connected = util::max_cdf_y_distance(synthesized.per_ue_mean_connected_,
                                                        real.per_ue_mean_connected_);
    r.maxy_sojourn_idle =
        util::max_cdf_y_distance(synthesized.per_ue_mean_idle_, real.per_ue_mean_idle_);
    r.maxy_flow_length_all = util::max_cdf_y_distance(synthesized.flow_all_, real.flow_all_);
    r.maxy_flow_length_srv_req =
        util::max_cdf_y_distance(synthesized.flow_srv_req_, real.flow_srv_req_);
    r.maxy_flow_length_s1_rel =
        util::max_cdf_y_distance(synthesized.flow_s1_rel_, real.flow_s1_rel_);

    const std::size_t vocab_size = cellular::vocabulary(synthesized.gen_).size();
    const auto ps = synthesized.event_counts_.normalized(vocab_size);
    const auto pr = real.event_counts_.normalized(vocab_size);
    r.breakdown_diff.resize(vocab_size, 0.0);
    for (std::size_t i = 0; i < vocab_size; ++i) r.breakdown_diff[i] = ps[i] - pr[i];
    return r;
}

FidelityAccumulator accumulate_fidelity(trace::ColumnarReader& reader, std::size_t sketch_k) {
    FidelityAccumulator acc(reader.generation(), sketch_k);
    reader.rewind();
    trace::StreamBatch batch;
    while (reader.next(batch)) acc.add(batch);
    return acc;
}

FidelityReport evaluate_fidelity_streaming(trace::ColumnarReader& synthesized,
                                           trace::ColumnarReader& real) {
    const auto acc_synth = accumulate_fidelity(synthesized);
    const auto acc_real = accumulate_fidelity(real);
    return evaluate_fidelity(acc_synth, acc_real);
}

std::string render_report(const FidelityReport& report, const trace::Dataset& reference) {
    return render_report(report, reference.generation);
}

std::string render_report(const FidelityReport& report, cellular::Generation generation) {
    const auto& vocab = cellular::vocabulary(generation);
    util::TextTable t({"metric", "value"});
    t.add_row({"event violations", util::fmt_pct(report.event_violation_fraction, 3)});
    t.add_row({"stream violations", util::fmt_pct(report.stream_violation_fraction, 2)});
    t.add_row({"max-y sojourn CONNECTED", util::fmt_pct(report.maxy_sojourn_connected, 1)});
    t.add_row({"max-y sojourn IDLE", util::fmt_pct(report.maxy_sojourn_idle, 1)});
    t.add_row({"max-y flow length (all)", util::fmt_pct(report.maxy_flow_length_all, 1)});
    // Event ids 2 and 3 are SRV_REQ and S1_CONN_REL in 4G, SRV_REQ and AN_REL
    // in 5G — the two dominant event types in either generation.
    t.add_row({"max-y flow length (" + vocab.name(cellular::lte::kSrvReq) + ")",
               util::fmt_pct(report.maxy_flow_length_srv_req, 1)});
    t.add_row({"max-y flow length (" + vocab.name(cellular::lte::kS1ConnRel) + ")",
               util::fmt_pct(report.maxy_flow_length_s1_rel, 1)});
    for (std::size_t i = 0; i < report.breakdown_diff.size(); ++i) {
        t.add_row({"breakdown diff " + vocab.name(static_cast<cellular::EventId>(i)),
                   util::fmt_pct(report.breakdown_diff[i], 2)});
    }
    return t.render();
}

}  // namespace cpt::metrics
