// SyntheticWorldGenerator — the stand-in for the proprietary operator trace
// used in the paper (73M events from 430K UEs of a major US carrier; see
// DESIGN.md §2 for the substitution rationale).
//
// The generator drives the exact two-level 3GPP state machine of Fig. 1 with
// heterogeneous per-UE behaviour, producing "ground truth" traces that have
// the structural properties the paper's fidelity metrics probe:
//   * perfectly stateful event sequences (zero semantic violations);
//   * multi-modal samples: categorical event type + heavy-tailed continuous
//     interarrival time drawn from per-(state, event) log-normal mixtures;
//   * wide flow-length diversity through per-UE activity/mobility scaling;
//   * hour-of-day drift through a diurnal activity modulation.
//
// Behaviour profiles are calibrated so the per-device event-type breakdowns,
// sojourn-time ranges and flow-length ranges land near the paper's reported
// "Real" columns (Table 7, Fig. 2, Fig. 5).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cellular/state_machine.hpp"
#include "stream.hpp"
#include "util/rng.hpp"

namespace cpt::trace {

class ColumnarWriter;

// A log-normal mixture over positive delays.
struct DelayModel {
    struct Component {
        double weight = 1.0;
        double mu = 0.0;     // mean of log(x)
        double sigma = 1.0;  // stddev of log(x)
    };
    std::vector<Component> components;

    // Samples a delay, multiplied by `scale`. Result is clamped to
    // [min_delay, inf).
    double sample(util::Rng& rng, double scale) const;

    static constexpr double kMinDelay = 0.05;  // seconds; below trace resolution
};

// Per-device-type behavioural parameters.
struct DeviceProfile {
    // Unnormalized next-event weights per sub-state. Only events that are
    // legal from the sub-state (per the StateMachine) may carry weight > 0;
    // the generator validates this at construction.
    std::array<std::vector<double>, static_cast<std::size_t>(cellular::SubState::kNumSubStates)>
        event_weights;

    // Delay (interarrival) model per (sub-state, event).
    std::array<std::vector<DelayModel>, static_cast<std::size_t>(cellular::SubState::kNumSubStates)>
        delays;

    // Per-UE heterogeneity: activity multiplier ~ LogNormal(0, activity_sigma)
    // scales idle-state delays (lower = chattier UE); mobility multiplier
    // ~ LogNormal(0, mobility_sigma) scales HO weights.
    double activity_sigma = 0.5;
    double mobility_sigma = 0.5;

    // Initial top-level state distribution: {DEREGISTERED, CONNECTED, IDLE}.
    std::array<double, 3> initial_state_probs{0.02, 0.08, 0.90};

    // Diurnal modulation amplitude in [0, 1): idle delays are divided by
    // 1 + amplitude * cos(2*pi*(hour - peak_hour)/24).
    double diurnal_amplitude = 0.35;
    double diurnal_peak_hour = 14.0;
};

// Built-in profiles replicating the paper's three device types. The 4G
// profiles are calibrated against the paper's Table 7 / Fig. 2 statistics;
// the 5G profiles mirror them over the 5G event vocabulary and state machine
// (Fig. 1b) — the paper's §7 future-work scenario, which the generator
// supports because only this domain layer changes between generations.
const DeviceProfile& device_profile(DeviceType d,
                                    cellular::Generation gen = cellular::Generation::kLte4G);

struct SyntheticWorldConfig {
    // kLte4G matches the paper's dataset; kNr5G generates 5G control traffic
    // over the Fig. 1b machine.
    cellular::Generation generation = cellular::Generation::kLte4G;
    // Population per device type; the defaults keep the paper's ratio
    // (phones : cars : tablets ~ 278K : 113K : 39K).
    std::array<std::size_t, kNumDeviceTypes> population{700, 280, 100};
    int hour_of_day = 10;            // which hourly slice to synthesize
    double window_seconds = 3600.0;  // slice duration
    std::size_t max_events_per_stream = 600;
    std::uint64_t seed = 42;
};

class SyntheticWorldGenerator {
public:
    explicit SyntheticWorldGenerator(SyntheticWorldConfig config);

    // Generates one hourly slice for the configured population.
    Dataset generate() const;

    // Streaming variant: generates the same world in fixed-size UE chunks
    // (`chunk_ues` at a time) straight into `writer`, holding only one chunk
    // of streams in memory. RNGs are forked serially per chunk with the UE's
    // absolute index as salt — the same global fork order as generate() — and
    // kept streams are appended in serial UE order, so the resulting file is
    // byte-identical to write_columnar_file(path, generate(), ...) at equal
    // seeds for every CPT_THREADS and every chunk_ues (pinned by test). Does
    // not finish() the writer. Returns the number of streams appended.
    std::size_t generate_to(ColumnarWriter& writer, std::size_t chunk_ues = 8192) const;

    // Generates a single stream for a UE of type `d`. Exposed for tests and
    // for the MCN example, which builds populations incrementally.
    Stream generate_stream(DeviceType d, const std::string& ue_id, util::Rng& rng) const;

    // Convenience: generates `hours` consecutive hourly slices starting at
    // config.hour_of_day (wrapping mod 24), with fresh UEs per hour — the
    // paper treats the same UE on different days/hours as distinct UEs (§5.1).
    std::vector<Dataset> generate_hours(int hours) const;

    const SyntheticWorldConfig& config() const { return config_; }

private:
    SyntheticWorldConfig config_;
};

// The diurnal activity factor used by the generator; exposed for the drift
// tests and the transfer-learning benches.
double diurnal_factor(const DeviceProfile& profile, double hour);

}  // namespace cpt::trace
