// CSV (de)serialization of trace datasets. Format (one row per event, events
// of a stream contiguous and time-ordered):
//
//   generation,ue_id,device,hour,timestamp,event
//   4g,ue-000001,phone,9,0.000,SRV_REQ
//
// Event names are the generation's vocabulary strings, keeping files
// self-describing and diffable.
#pragma once

#include <iosfwd>
#include <string>

#include "stream.hpp"

namespace cpt::trace {

void write_csv(std::ostream& out, const Dataset& ds);
void write_csv_file(const std::string& path, const Dataset& ds);

// Throws std::invalid_argument on malformed input (bad header, unknown event
// or device names, decreasing timestamps within a stream).
Dataset read_csv(std::istream& in);
Dataset read_csv_file(const std::string& path);

}  // namespace cpt::trace
