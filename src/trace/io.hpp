// CSV (de)serialization of trace datasets. Format (one row per event, events
// of a stream contiguous and time-ordered):
//
//   generation,ue_id,device,hour,timestamp,event
//   4g,ue-000001,phone,9,0.000,SRV_REQ
//
// Event names are the generation's vocabulary strings, keeping files
// self-describing and diffable.
//
// Two read paths share one parser: read_csv materializes a whole Dataset;
// CsvStreamReader yields one Stream at a time so conversions and scale tools
// never hold more than a single stream of the CSV side in memory. Malformed
// input is rejected with the 1-based line number and the offending field.
#pragma once

#include <iosfwd>
#include <string>

#include "stream.hpp"

namespace cpt::trace {

void write_csv(std::ostream& out, const Dataset& ds);
void write_csv_file(const std::string& path, const Dataset& ds);

// Building blocks for streaming writers (columnar_to_csv): the header row and
// one stream's rows. `out` must have been configured by write_csv_header
// (fixed 6-decimal timestamps) before write_csv_stream.
void write_csv_header(std::ostream& out);
void write_csv_stream(std::ostream& out, const Stream& s, cellular::Generation generation);

// Incremental CSV reader: validates the header up front and yields streams in
// file order. Reads one row ahead, so generation() is correct immediately
// after construction (it defaults to 4G for a data-less file). Throws
// cpt::CheckError naming the 1-based line number and the offending field on
// malformed input.
class CsvStreamReader {
public:
    explicit CsvStreamReader(std::istream& in);

    cellular::Generation generation() const { return generation_; }

    // Fills `out` with the next stream (replacing its contents). Returns
    // false at end of input.
    bool next(Stream& out);

    // Rows consumed so far, header included (== current 1-based line number
    // of the last row read).
    std::size_t line_no() const { return line_no_; }

private:
    struct Row {
        std::string ue_id;
        DeviceType device = DeviceType::kPhone;
        int hour = 0;
        cellular::ControlEvent event;
    };
    bool read_row(Row& row);

    std::istream& in_;
    cellular::Generation generation_ = cellular::Generation::kLte4G;
    bool generation_set_ = false;
    bool has_pending_ = false;
    Row pending_;
    std::size_t line_no_ = 1;
};

// Throws cpt::CheckError (an std::invalid_argument) on malformed input; every
// message names the 1-based line and the field at fault.
Dataset read_csv(std::istream& in);
Dataset read_csv_file(const std::string& path);

}  // namespace cpt::trace
