// N-gram extraction and tolerance matching for the data-memorization analysis
// (paper §5.6, Table 11).
//
// An n-gram is a continuous subsequence of n samples from a stream. Two
// n-grams "repeat" when their event-type sequences are identical and every
// corresponding pair of interarrival times matches within relative tolerance
// epsilon: (1 - eps) < t_gen / t_real < (1 + eps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream.hpp"

namespace cpt::trace {

// One n-gram: n event ids plus the n interarrival times.
struct Ngram {
    std::vector<cellular::EventId> events;
    std::vector<double> interarrivals;
};

// Index over all n-grams of a training dataset, bucketed by the event-type
// signature so tolerance matching only scans candidates with identical event
// sequences.
class NgramIndex {
public:
    NgramIndex(const Dataset& training, std::size_t n);

    std::size_t n() const { return n_; }
    std::size_t size() const { return total_; }

    // True when the training set contains an n-gram with the same event
    // sequence and all interarrivals within relative tolerance `epsilon`.
    bool has_match(const Ngram& g, double epsilon) const;

    // One more than the largest event id seen by the index (0 for an empty
    // training set); the length next_event_distribution fills.
    std::size_t num_event_types() const { return num_events_; }

    // Conditional next-event distribution: counts of every indexed n-gram
    // whose leading n-1 events equal the trailing n-1 events of `context`,
    // normalized to probabilities over event ids [0, num_event_types()).
    // `probs` is resized to num_event_types(). The output is indexed by
    // event id, so any downstream argmax resolves ties to the lowest id —
    // the deterministic ordering the speculative drafter and cpt_lint rely
    // on. Returns false (probs zeroed) when the context has fewer than n-1
    // events or was never seen in training.
    bool next_event_distribution(std::span<const cellular::EventId> context,
                                 std::vector<double>& probs) const;

private:
    std::size_t n_;
    std::size_t total_ = 0;
    std::size_t num_events_ = 0;
    // signature -> list of interarrival vectors.
    std::unordered_map<std::string, std::vector<std::vector<double>>> buckets_;
    // (n-1)-event prefix signature -> next-event counts indexed by event id.
    std::unordered_map<std::string, std::vector<std::uint32_t>> next_counts_;
};

// All n-grams of a dataset (streams shorter than n contribute none).
std::vector<Ngram> extract_ngrams(const Dataset& ds, std::size_t n);

// Fraction of `generated`'s n-grams that repeat from `index` under tolerance
// `epsilon`. Returns 0 when `generated` has no n-grams.
double repeated_ngram_fraction(const Dataset& generated, const NgramIndex& index, double epsilon);

// True when a == 0 and b == 0, or both nonzero with ratio within tolerance.
// Exposed for tests.
bool interarrival_matches(double generated, double real, double epsilon);

}  // namespace cpt::trace
