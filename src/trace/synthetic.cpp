#include "synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "columnar.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::trace {

using cellular::EventId;
using cellular::Generation;
using cellular::StateMachine;
using cellular::SubState;
using cellular::TopState;
namespace lte = cellular::lte;

double DelayModel::sample(util::Rng& rng, double scale) const {
    CPT_CHECK(!components.empty(), "DelayModel::sample: no components");
    // Hot path (once per generated event): mixtures are tiny, so stage the
    // weights on the stack instead of a per-call heap vector. The categorical
    // draw happens either way, keeping the RNG stream unchanged.
    std::size_t pick;
    if (components.size() <= 8) {
        double ws[8];
        for (std::size_t i = 0; i < components.size(); ++i) ws[i] = components[i].weight;
        pick = rng.categorical(std::span<const double>(ws, components.size()));
    } else {
        std::vector<double> ws;
        ws.reserve(components.size());
        for (const auto& c : components) ws.push_back(c.weight);
        pick = rng.categorical(std::span<const double>(ws));
    }
    const auto& c = components[pick];
    return std::max(kMinDelay, rng.lognormal(c.mu, c.sigma) * scale);
}

double diurnal_factor(const DeviceProfile& profile, double hour) {
    const double phase = 2.0 * std::numbers::pi * (hour - profile.diurnal_peak_hour) / 24.0;
    return 1.0 + profile.diurnal_amplitude * std::cos(phase);
}

namespace {

constexpr std::size_t kNumSubStates = static_cast<std::size_t>(SubState::kNumSubStates);

double ln(double x) { return std::log(x); }

// Helper to assemble a profile over a generation's vocabulary.
struct ProfileBuilder {
    DeviceProfile p;

    explicit ProfileBuilder(std::size_t num_events = lte::kNumEvents) {
        for (auto& w : p.event_weights) w.assign(num_events, 0.0);
        for (auto& d : p.delays) d.assign(num_events, DelayModel{});
    }

    void weight(SubState s, EventId e, double w) {
        p.event_weights[static_cast<std::size_t>(s)][e] = w;
    }
    void delay(SubState s, EventId e, DelayModel m) {
        p.delays[static_cast<std::size_t>(s)][e] = std::move(m);
    }
};

DelayModel single(double median_seconds, double sigma) {
    return DelayModel{{{1.0, ln(median_seconds), sigma}}};
}

DelayModel mixture(double w1, double med1, double s1, double w2, double med2, double s2) {
    return DelayModel{{{w1, ln(med1), s1}, {w2, ln(med2), s2}}};
}

DeviceProfile make_phone_profile() {
    ProfileBuilder b;
    using enum SubState;
    // CONNECTED (active): release dominates; occasional handover / TAU.
    b.weight(kConnActive, lte::kS1ConnRel, 0.905);
    b.weight(kConnActive, lte::kHo, 0.060);
    b.weight(kConnActive, lte::kTau, 0.016);
    b.weight(kConnActive, lte::kDtch, 0.0022);
    // CONNECTED (after handover): a TAU usually completes the handover.
    b.weight(kConnAfterHo, lte::kTau, 0.36);
    b.weight(kConnAfterHo, lte::kHo, 0.07);
    b.weight(kConnAfterHo, lte::kS1ConnRel, 0.55);
    b.weight(kConnAfterHo, lte::kDtch, 0.01);
    // IDLE: service requests dominate.
    b.weight(kIdleS1RelS, lte::kSrvReq, 0.985);
    b.weight(kIdleS1RelS, lte::kTau, 0.013);
    b.weight(kIdleS1RelS, lte::kDtch, 0.002);
    b.weight(kIdleTauS, lte::kSrvReq, 0.985);
    b.weight(kIdleTauS, lte::kTau, 0.013);
    b.weight(kIdleTauS, lte::kDtch, 0.002);
    b.weight(kDeregistered, lte::kAtch, 1.0);

    // Delays. Paper Fig. 2: bulk of phone CONNECTED sojourns in 5-50 s.
    const DelayModel conn_rel = single(13.0, 0.70);
    const DelayModel conn_evt = single(6.0, 0.80);
    const DelayModel idle_srv = mixture(0.65, 40.0, 0.90, 0.35, 280.0, 1.00);
    const DelayModel idle_tau = single(420.0, 0.80);
    const DelayModel dereg_atch = single(500.0, 1.00);
    b.delay(kConnActive, lte::kS1ConnRel, conn_rel);
    b.delay(kConnActive, lte::kHo, conn_evt);
    b.delay(kConnActive, lte::kTau, conn_evt);
    b.delay(kConnActive, lte::kDtch, conn_rel);
    b.delay(kConnAfterHo, lte::kTau, single(2.5, 0.60));
    b.delay(kConnAfterHo, lte::kHo, conn_evt);
    b.delay(kConnAfterHo, lte::kS1ConnRel, conn_rel);
    b.delay(kConnAfterHo, lte::kDtch, conn_rel);
    b.delay(kIdleS1RelS, lte::kSrvReq, idle_srv);
    b.delay(kIdleS1RelS, lte::kTau, idle_tau);
    b.delay(kIdleS1RelS, lte::kDtch, idle_srv);
    b.delay(kIdleTauS, lte::kSrvReq, idle_srv);
    b.delay(kIdleTauS, lte::kTau, idle_tau);
    b.delay(kIdleTauS, lte::kDtch, idle_srv);
    b.delay(kDeregistered, lte::kAtch, dereg_atch);

    b.p.activity_sigma = 0.55;
    b.p.mobility_sigma = 0.60;
    b.p.initial_state_probs = {0.02, 0.08, 0.90};
    b.p.diurnal_amplitude = 0.35;
    b.p.diurnal_peak_hour = 14.0;
    return b.p;
}

DeviceProfile make_car_profile() {
    ProfileBuilder b;
    using enum SubState;
    // Cars are mobile: far more HO/TAU (paper Table 7: HO 8.6%, TAU 5.6%).
    b.weight(kConnActive, lte::kS1ConnRel, 0.760);
    b.weight(kConnActive, lte::kHo, 0.160);
    b.weight(kConnActive, lte::kTau, 0.048);
    b.weight(kConnActive, lte::kDtch, 0.016);
    b.weight(kConnAfterHo, lte::kTau, 0.32);
    b.weight(kConnAfterHo, lte::kHo, 0.12);
    b.weight(kConnAfterHo, lte::kS1ConnRel, 0.54);
    b.weight(kConnAfterHo, lte::kDtch, 0.02);
    b.weight(kIdleS1RelS, lte::kSrvReq, 0.925);
    b.weight(kIdleS1RelS, lte::kTau, 0.055);
    b.weight(kIdleS1RelS, lte::kDtch, 0.020);
    b.weight(kIdleTauS, lte::kSrvReq, 0.925);
    b.weight(kIdleTauS, lte::kTau, 0.055);
    b.weight(kIdleTauS, lte::kDtch, 0.020);
    b.weight(kDeregistered, lte::kAtch, 1.0);

    // Telemetry-style short connections; idle clustered around 200-300 s
    // (paper: SMM-1 over-generates 200-300 s idles for cars — i.e. the real
    // car idle mass sits near there but with more spread).
    const DelayModel conn_rel = single(8.0, 0.60);
    const DelayModel conn_evt = single(4.0, 0.70);
    const DelayModel idle_srv = mixture(0.55, 120.0, 0.70, 0.45, 260.0, 0.55);
    const DelayModel idle_tau = single(300.0, 0.60);
    b.delay(kConnActive, lte::kS1ConnRel, conn_rel);
    b.delay(kConnActive, lte::kHo, conn_evt);
    b.delay(kConnActive, lte::kTau, conn_evt);
    b.delay(kConnActive, lte::kDtch, conn_rel);
    b.delay(kConnAfterHo, lte::kTau, single(2.0, 0.50));
    b.delay(kConnAfterHo, lte::kHo, conn_evt);
    b.delay(kConnAfterHo, lte::kS1ConnRel, conn_rel);
    b.delay(kConnAfterHo, lte::kDtch, conn_rel);
    b.delay(kIdleS1RelS, lte::kSrvReq, idle_srv);
    b.delay(kIdleS1RelS, lte::kTau, idle_tau);
    b.delay(kIdleS1RelS, lte::kDtch, idle_srv);
    b.delay(kIdleTauS, lte::kSrvReq, idle_srv);
    b.delay(kIdleTauS, lte::kTau, idle_tau);
    b.delay(kIdleTauS, lte::kDtch, idle_srv);
    b.delay(kDeregistered, lte::kAtch, single(400.0, 0.90));

    b.p.activity_sigma = 0.45;
    b.p.mobility_sigma = 0.80;
    b.p.initial_state_probs = {0.04, 0.10, 0.86};
    // Commute peaks: stronger swing, morning-shifted.
    b.p.diurnal_amplitude = 0.45;
    b.p.diurnal_peak_hour = 9.0;
    return b.p;
}

DeviceProfile make_tablet_profile() {
    ProfileBuilder b;
    using enum SubState;
    b.weight(kConnActive, lte::kS1ConnRel, 0.915);
    b.weight(kConnActive, lte::kHo, 0.047);
    b.weight(kConnActive, lte::kTau, 0.022);
    b.weight(kConnActive, lte::kDtch, 0.018);
    b.weight(kConnAfterHo, lte::kTau, 0.38);
    b.weight(kConnAfterHo, lte::kHo, 0.05);
    b.weight(kConnAfterHo, lte::kS1ConnRel, 0.55);
    b.weight(kConnAfterHo, lte::kDtch, 0.02);
    b.weight(kIdleS1RelS, lte::kSrvReq, 0.940);
    b.weight(kIdleS1RelS, lte::kTau, 0.040);
    b.weight(kIdleS1RelS, lte::kDtch, 0.020);
    b.weight(kIdleTauS, lte::kSrvReq, 0.940);
    b.weight(kIdleTauS, lte::kTau, 0.040);
    b.weight(kIdleTauS, lte::kDtch, 0.020);
    b.weight(kDeregistered, lte::kAtch, 1.0);

    // Tablets: longer sessions, long sleepy idles.
    const DelayModel conn_rel = single(18.0, 0.90);
    const DelayModel conn_evt = single(7.0, 0.80);
    const DelayModel idle_srv = mixture(0.60, 60.0, 1.00, 0.40, 480.0, 1.10);
    const DelayModel idle_tau = single(500.0, 0.90);
    b.delay(kConnActive, lte::kS1ConnRel, conn_rel);
    b.delay(kConnActive, lte::kHo, conn_evt);
    b.delay(kConnActive, lte::kTau, conn_evt);
    b.delay(kConnActive, lte::kDtch, conn_rel);
    b.delay(kConnAfterHo, lte::kTau, single(3.0, 0.60));
    b.delay(kConnAfterHo, lte::kHo, conn_evt);
    b.delay(kConnAfterHo, lte::kS1ConnRel, conn_rel);
    b.delay(kConnAfterHo, lte::kDtch, conn_rel);
    b.delay(kIdleS1RelS, lte::kSrvReq, idle_srv);
    b.delay(kIdleS1RelS, lte::kTau, idle_tau);
    b.delay(kIdleS1RelS, lte::kDtch, idle_srv);
    b.delay(kIdleTauS, lte::kSrvReq, idle_srv);
    b.delay(kIdleTauS, lte::kTau, idle_tau);
    b.delay(kIdleTauS, lte::kDtch, idle_srv);
    b.delay(kDeregistered, lte::kAtch, single(600.0, 1.00));

    b.p.activity_sigma = 0.70;
    b.p.mobility_sigma = 0.50;
    b.p.initial_state_probs = {0.03, 0.07, 0.90};
    b.p.diurnal_amplitude = 0.40;
    b.p.diurnal_peak_hour = 20.0;  // evening couch usage
    return b.p;
}

// Derives a 5G profile that mirrors a 4G one: the same temporal behaviour
// over the Fig. 1b machine (no TAU, ATCH/DTCH/S1_CONN_REL renamed to
// REGISTER/DEREGISTER/AN_REL, handovers complete without a tracking-area
// update).
DeviceProfile make_5g_profile(const DeviceProfile& lte_profile) {
    namespace nr = cellular::nr;
    ProfileBuilder b(nr::kNumEvents);
    using enum SubState;
    const auto& lw = lte_profile.event_weights;
    const auto& ld = lte_profile.delays;
    const auto w4 = [&](SubState s, cellular::EventId e) {
        return lw[static_cast<std::size_t>(s)][e];
    };
    const auto d4 = [&](SubState s, cellular::EventId e) {
        return ld[static_cast<std::size_t>(s)][e];
    };

    // DEREGISTERED -> REGISTER mirrors ATCH.
    b.weight(kDeregistered, nr::kRegister, 1.0);
    b.delay(kDeregistered, nr::kRegister, d4(kDeregistered, lte::kAtch));
    // CONNECTED: AN_REL absorbs the 4G S1_CONN_REL + TAU shares (no TAU in
    // 5G); HO keeps its share and stays CONNECTED.
    b.weight(kConnActive, nr::kAnRel,
             w4(kConnActive, lte::kS1ConnRel) + w4(kConnActive, lte::kTau));
    b.weight(kConnActive, nr::kHo, w4(kConnActive, lte::kHo));
    b.weight(kConnActive, nr::kDeregister, w4(kConnActive, lte::kDtch));
    b.delay(kConnActive, nr::kAnRel, d4(kConnActive, lte::kS1ConnRel));
    b.delay(kConnActive, nr::kHo, d4(kConnActive, lte::kHo));
    b.delay(kConnActive, nr::kDeregister, d4(kConnActive, lte::kDtch));
    // IDLE: SRV_REQ absorbs the idle TAU share.
    b.weight(kIdleS1RelS, nr::kSrvReq,
             w4(kIdleS1RelS, lte::kSrvReq) + w4(kIdleS1RelS, lte::kTau));
    b.weight(kIdleS1RelS, nr::kDeregister, w4(kIdleS1RelS, lte::kDtch));
    b.delay(kIdleS1RelS, nr::kSrvReq, d4(kIdleS1RelS, lte::kSrvReq));
    b.delay(kIdleS1RelS, nr::kDeregister, d4(kIdleS1RelS, lte::kDtch));

    b.p.activity_sigma = lte_profile.activity_sigma;
    b.p.mobility_sigma = lte_profile.mobility_sigma;
    b.p.initial_state_probs = lte_profile.initial_state_probs;
    b.p.diurnal_amplitude = lte_profile.diurnal_amplitude;
    b.p.diurnal_peak_hour = lte_profile.diurnal_peak_hour;
    return b.p;
}

void validate_profile(const DeviceProfile& p, const StateMachine& m) {
    for (std::size_t s = 0; s < kNumSubStates; ++s) {
        for (std::size_t e = 0; e < p.event_weights[s].size(); ++e) {
            CPT_CHECK(p.event_weights[s][e] <= 0.0 ||
                          m.step(static_cast<SubState>(s), static_cast<EventId>(e)).has_value(),
                      "DeviceProfile gives weight to an illegal transition: state ",
                      to_string(static_cast<SubState>(s)), " event ", e);
        }
    }
}

}  // namespace

const DeviceProfile& device_profile(DeviceType d, Generation gen) {
    static const auto validated = [](DeviceProfile p, Generation g) {
        validate_profile(p, StateMachine::for_generation(g));
        return p;
    };
    static const DeviceProfile phone = validated(make_phone_profile(), Generation::kLte4G);
    static const DeviceProfile car = validated(make_car_profile(), Generation::kLte4G);
    static const DeviceProfile tablet = validated(make_tablet_profile(), Generation::kLte4G);
    static const DeviceProfile phone5g = validated(make_5g_profile(phone), Generation::kNr5G);
    static const DeviceProfile car5g = validated(make_5g_profile(car), Generation::kNr5G);
    static const DeviceProfile tablet5g = validated(make_5g_profile(tablet), Generation::kNr5G);
    const bool lte = gen == Generation::kLte4G;
    switch (d) {
        case DeviceType::kPhone: return lte ? phone : phone5g;
        case DeviceType::kConnectedCar: return lte ? car : car5g;
        case DeviceType::kTablet: return lte ? tablet : tablet5g;
    }
    CPT_CHECK(false, "device_profile: unknown device type ", static_cast<int>(d));
}

SyntheticWorldGenerator::SyntheticWorldGenerator(SyntheticWorldConfig config)
    : config_(config) {}

Stream SyntheticWorldGenerator::generate_stream(DeviceType d, const std::string& ue_id,
                                                util::Rng& rng) const {
    const DeviceProfile& profile = device_profile(d, config_.generation);
    const StateMachine& machine = StateMachine::for_generation(config_.generation);

    Stream stream;
    stream.ue_id = ue_id;
    stream.device = d;
    stream.hour_of_day = config_.hour_of_day;

    // Per-UE heterogeneity.
    const double activity = std::clamp(rng.lognormal(0.0, profile.activity_sigma), 0.15, 6.0);
    const double mobility = std::clamp(rng.lognormal(0.0, profile.mobility_sigma), 0.2, 5.0);
    const double idle_scale =
        activity / diurnal_factor(profile, static_cast<double>(config_.hour_of_day));

    // Initial sub-state.
    SubState state;
    const std::size_t init =
        rng.categorical(std::span<const double>(profile.initial_state_probs));
    switch (init) {
        case 0: state = SubState::kDeregistered; break;
        case 1: state = SubState::kConnActive; break;
        default: state = SubState::kIdleS1RelS; break;
    }

    double t = 0.0;
    bool first = true;
    std::vector<double> weights;  // reused across events; per-iteration copy, one allocation
    while (stream.events.size() < config_.max_events_per_stream) {
        const auto& base_weights = profile.event_weights[static_cast<std::size_t>(state)];
        weights.assign(base_weights.begin(), base_weights.end());
        // Mobility scales handover propensity (HO has id 4 in both 4G and 5G
        // vocabularies by construction).
        const cellular::EventId ho_id =
            config_.generation == Generation::kLte4G ? lte::kHo : cellular::nr::kHo;
        if (ho_id < weights.size()) weights[ho_id] *= mobility;
        double total = 0.0;
        for (double w : weights) total += w;
        if (total <= 0.0) break;  // absorbing state (not reachable with built-in profiles)

        const auto event = static_cast<EventId>(rng.categorical(std::span<const double>(weights)));
        const bool idle_like =
            cellular::top_state_of(state) != TopState::kConnected;
        const double scale = idle_like ? idle_scale : std::sqrt(activity);
        const double delay =
            profile.delays[static_cast<std::size_t>(state)][event].sample(rng, scale);

        if (!first && t + delay > config_.window_seconds) break;
        t = first ? 0.0 : t + delay;  // first event anchors the stream at t=0
        first = false;

        stream.events.push_back({t, event});
        const auto next = machine.step(state, event);
        CPT_CHECK(next.has_value(),
                  "SyntheticWorldGenerator produced an illegal transition from state ",
                  to_string(state), " on event ", event);
        state = *next;
    }
    return stream;
}

Dataset SyntheticWorldGenerator::generate() const {
    Dataset ds;
    ds.generation = config_.generation;
    util::Rng rng(config_.seed ^ (0x5bd1e995ULL * static_cast<std::uint64_t>(config_.hour_of_day + 1)));

    // Fork one RNG per UE serially (fork() mutates the parent, so the fork
    // order must stay fixed), then generate streams in parallel into
    // preallocated slots and filter in serial order. This is bit-identical to
    // the sequential loop for every thread count.
    struct Job {
        DeviceType device;
        util::Rng rng;
    };
    std::size_t total = 0;
    for (std::size_t d = 0; d < kNumDeviceTypes; ++d) total += config_.population[d];
    std::vector<Job> jobs;
    jobs.reserve(total);
    for (std::size_t d = 0; d < kNumDeviceTypes; ++d) {
        const auto device = static_cast<DeviceType>(d);
        for (std::size_t i = 0; i < config_.population[d]; ++i) {
            jobs.push_back({device, rng.fork(jobs.size())});
        }
    }

    std::vector<Stream> streams(total);
    util::global_pool().parallel_for(total, 1, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            char id[32];
            std::snprintf(id, sizeof(id), "ue-%06zu", i);
            streams[i] = generate_stream(jobs[i].device, id, jobs[i].rng);
        }
    });
    for (auto& s : streams) {
        if (s.events.size() >= 2) ds.streams.push_back(std::move(s));
    }
    return ds;
}

std::size_t SyntheticWorldGenerator::generate_to(ColumnarWriter& writer,
                                                 std::size_t chunk_ues) const {
    CPT_CHECK_GE(chunk_ues, std::size_t{1}, " generate_to: chunk_ues must be >= 1");
    CPT_CHECK(writer.generation() == config_.generation,
              "generate_to: writer generation does not match the configured generation");
    util::Rng rng(config_.seed ^
                  (0x5bd1e995ULL * static_cast<std::uint64_t>(config_.hour_of_day + 1)));

    // Device of UE i: populations are laid out device-major, exactly as in
    // generate()'s jobs vector.
    std::array<std::size_t, kNumDeviceTypes + 1> cum{};
    for (std::size_t d = 0; d < kNumDeviceTypes; ++d) cum[d + 1] = cum[d] + config_.population[d];
    const std::size_t total = cum[kNumDeviceTypes];
    const auto device_of = [&](std::size_t i) {
        std::size_t d = 0;
        while (i >= cum[d + 1]) ++d;
        return static_cast<DeviceType>(d);
    };

    // Chunk-by-chunk: fork this chunk's RNGs serially (salt = absolute UE
    // index, so the parent RNG sees the same mutation sequence as generate()'s
    // single pre-fork loop), generate on the pool, append kept streams in
    // serial UE order. Peak memory is O(chunk_ues), not O(total).
    std::size_t kept = 0;
    std::vector<util::Rng> rngs;
    std::vector<Stream> streams;
    rngs.reserve(std::min(chunk_ues, total));
    for (std::size_t base = 0; base < total; base += chunk_ues) {
        const std::size_t n = std::min(chunk_ues, total - base);
        rngs.clear();
        for (std::size_t i = 0; i < n; ++i) rngs.push_back(rng.fork(base + i));
        streams.resize(n);
        util::global_pool().parallel_for(n, 1, [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                char id[32];
                std::snprintf(id, sizeof(id), "ue-%06zu", base + i);
                streams[i] = generate_stream(device_of(base + i), id, rngs[i]);
            }
        });
        for (auto& s : streams) {
            if (s.events.size() >= 2) {
                writer.append(std::move(s));
                ++kept;
            }
        }
    }
    return kept;
}

std::vector<Dataset> SyntheticWorldGenerator::generate_hours(int hours) const {
    std::vector<Dataset> out(static_cast<std::size_t>(std::max(hours, 0)));
    // Hours are seeded independently, so they can generate concurrently; each
    // slot is written by exactly one lane.
    util::global_pool().parallel_for(out.size(), 1, [&](std::size_t h0, std::size_t h1) {
        for (std::size_t h = h0; h < h1; ++h) {
            SyntheticWorldConfig cfg = config_;
            cfg.hour_of_day = (config_.hour_of_day + static_cast<int>(h)) % 24;
            cfg.seed = config_.seed + 1000003ULL * static_cast<std::uint64_t>(h + 1);
            out[h] = SyntheticWorldGenerator(cfg).generate();
        }
    });
    return out;
}

}  // namespace cpt::trace
