// Core data model for control-plane traffic traces: a Dataset is a set of
// Streams; a Stream is one UE's timestamped event sequence (paper §3.1).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cellular/events.hpp"

namespace cpt::trace {

// The three device types in the paper's dataset (§4.1).
enum class DeviceType : std::uint8_t {
    kPhone,
    kConnectedCar,
    kTablet,
};
inline constexpr std::size_t kNumDeviceTypes = 3;

std::string_view to_string(DeviceType d);
DeviceType device_type_from_string(std::string_view name);

// One UE's stream of control events within a one-hour trace slice. Event
// timestamps are seconds relative to the stream start and must be
// non-decreasing.
struct Stream {
    std::string ue_id;
    DeviceType device = DeviceType::kPhone;
    int hour_of_day = 0;  // which hourly slice this stream belongs to (0..23)
    std::vector<cellular::ControlEvent> events;

    std::size_t length() const { return events.size(); }

    // Interarrival times: first event's interarrival is defined as 0 (the
    // model trains with the first token's interarrival fixed at 0, §4.5).
    std::vector<double> interarrivals() const;

    // Number of events of a given type.
    std::size_t count_type(cellular::EventId type) const;
};

// A collection of streams from one cellular generation.
struct Dataset {
    cellular::Generation generation = cellular::Generation::kLte4G;
    std::vector<Stream> streams;

    std::size_t total_events() const;

    // Non-copying visitation: calls `fn` for every stream matching the given
    // device and/or hour filters (std::nullopt = match all), in stream order.
    // The aggregations below and the metrics/bench callers use this instead
    // of materializing filtered copies.
    void for_each_stream(std::optional<DeviceType> device, std::optional<int> hour,
                         const std::function<void(const Stream&)>& fn) const;

    // Filtered copies (streams are value types by design so slices own their
    // data); prefer for_each_stream when the copy is not needed.
    Dataset filter_device(DeviceType d) const;
    Dataset filter_hour(int hour) const;

    // Per-event-type counts over all streams; size = vocabulary size.
    std::vector<double> event_type_counts() const;
    // Normalized breakdown (fractions summing to 1; zeros if empty).
    std::vector<double> event_type_breakdown() const;

    // Flow lengths (events per stream) as doubles, optionally restricted to a
    // single event type (pass the type id; pass -1 for all events). Paper
    // Fig. 5 / Table 6 report both.
    std::vector<double> flow_lengths(int event_type = -1) const;

    // All interarrival times pooled over streams.
    std::vector<double> all_interarrivals() const;

    // Distribution of the first event's type over streams (used to bootstrap
    // CPT-GPT inference, §4.5). Size = vocabulary size; normalized.
    std::vector<double> initial_event_distribution() const;

    // Drops streams longer than `max_len` (the paper trains with max length
    // 500 and discards longer streams, §5.1) and streams of length < 2
    // (length-1 streams are excluded from training, §4.5).
    Dataset truncated(std::size_t max_len, std::size_t min_len = 2) const;
};

}  // namespace cpt::trace
