#include "ngram.hpp"

#include <cmath>

namespace cpt::trace {

namespace {

constexpr double kZeroThreshold = 1e-9;

std::string signature(const std::vector<cellular::EventId>& events) {
    return std::string(events.begin(), events.end());
}

}  // namespace

bool interarrival_matches(double generated, double real, double epsilon) {
    const bool gz = std::abs(generated) < kZeroThreshold;
    const bool rz = std::abs(real) < kZeroThreshold;
    if (gz || rz) return gz && rz;
    const double ratio = generated / real;
    return ratio > (1.0 - epsilon) && ratio < (1.0 + epsilon);
}

std::vector<Ngram> extract_ngrams(const Dataset& ds, std::size_t n) {
    std::vector<Ngram> out;
    if (n == 0) return out;
    for (const auto& s : ds.streams) {
        if (s.events.size() < n) continue;
        const auto ia = s.interarrivals();
        for (std::size_t start = 0; start + n <= s.events.size(); ++start) {
            Ngram g;
            g.events.reserve(n);
            g.interarrivals.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                g.events.push_back(s.events[start + i].type);
                g.interarrivals.push_back(ia[start + i]);
            }
            out.push_back(std::move(g));
        }
    }
    return out;
}

NgramIndex::NgramIndex(const Dataset& training, std::size_t n) : n_(n) {
    for (auto& g : extract_ngrams(training, n)) {
        const cellular::EventId next = g.events.back();
        num_events_ = std::max(num_events_, std::size_t{next} + 1);
        auto& counts = next_counts_[std::string(g.events.begin(), g.events.end() - 1)];
        if (counts.size() <= next) counts.resize(std::size_t{next} + 1, 0);
        ++counts[next];
        buckets_[signature(g.events)].push_back(std::move(g.interarrivals));
        ++total_;
    }
}

bool NgramIndex::next_event_distribution(std::span<const cellular::EventId> context,
                                         std::vector<double>& probs) const {
    probs.assign(num_events_, 0.0);
    if (n_ == 0 || context.size() + 1 < n_) return false;
    const cellular::EventId* tail = context.data() + (context.size() - (n_ - 1));
    const auto it = next_counts_.find(std::string(tail, tail + (n_ - 1)));
    if (it == next_counts_.end()) return false;
    std::uint64_t total = 0;
    for (const std::uint32_t c : it->second) total += c;
    if (total == 0) return false;
    for (std::size_t e = 0; e < it->second.size(); ++e) {
        probs[e] = static_cast<double>(it->second[e]) / static_cast<double>(total);
    }
    return true;
}

bool NgramIndex::has_match(const Ngram& g, double epsilon) const {
    const auto it = buckets_.find(signature(g.events));
    if (it == buckets_.end()) return false;
    for (const auto& candidate : it->second) {
        bool all = true;
        for (std::size_t i = 0; i < n_; ++i) {
            if (!interarrival_matches(g.interarrivals[i], candidate[i], epsilon)) {
                all = false;
                break;
            }
        }
        if (all) return true;
    }
    return false;
}

double repeated_ngram_fraction(const Dataset& generated, const NgramIndex& index, double epsilon) {
    const auto grams = extract_ngrams(generated, index.n());
    if (grams.empty()) return 0.0;
    std::size_t repeats = 0;
    for (const auto& g : grams) {
        if (index.has_match(g, epsilon)) ++repeats;
    }
    return static_cast<double>(repeats) / static_cast<double>(grams.size());
}

}  // namespace cpt::trace
