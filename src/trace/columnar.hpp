// Columnar binary trace format — the streaming substrate that carries
// million-UE worlds in bounded memory (DESIGN.md §14).
//
// A `.cpt` trace file is a header, a sequence of self-describing chunks, and
// a footer with a chunk index:
//
//   Header   magic "CPTC", format version, generation, event-id width,
//            vocabulary size.
//   Chunk    magic "CHNK" + counts, then per-column blocks for up to
//            `chunk_streams` streams: ue_id blob (varint length-prefixed),
//            device u8, hour u8, per-stream event counts u32 (the offsets
//            table), event ids (u8, or u16 for vocabularies over 256), and
//            delta-encoded timestamps (per stream: zigzag varint of the first
//            event's microsecond tick, then plain varint tick deltas —
//            non-decreasing timestamps make every delta non-negative).
//   Footer   magic "CIDX", chunk count, per-chunk file offsets, stream/event
//            totals, the footer's own offset, end magic "CPTE".
//
// Timestamps are quantized to microsecond ticks — exactly the resolution the
// CSV format already commits to (write_csv prints %.6f), so CSV -> columnar
// -> CSV is byte-stable. All integers are little-endian.
//
// ColumnarWriter buffers one chunk of streams and flushes it as a column
// block; ColumnarReader decodes one chunk at a time into a StreamBatch.
// Memory for either side is O(chunk), independent of the trace's size.
// Malformed input is rejected with errors naming the byte offset of the
// defect. The chunk structure of a file depends only on the append sequence
// and `chunk_streams`, never on thread count — the chunked generators encode
// on pool workers but append in serial order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stream.hpp"

namespace cpt::trace {

inline constexpr std::size_t kDefaultChunkStreams = 4096;

// Microsecond-tick quantization contract shared by the writer and the CSV
// bridge. Round-trips every %.6f-printed timestamp exactly.
std::int64_t timestamp_to_ticks(double seconds);
double ticks_to_timestamp(std::int64_t ticks);

// One decoded chunk: columnar stream metadata plus the concatenated events
// with a per-stream offsets table.
struct StreamBatch {
    cellular::Generation generation = cellular::Generation::kLte4G;
    std::vector<std::string> ue_ids;
    std::vector<DeviceType> devices;
    std::vector<int> hours;
    // offsets.size() == size() + 1; stream i's events are
    // events[offsets[i] .. offsets[i+1]).
    std::vector<std::uint64_t> offsets;
    std::vector<cellular::ControlEvent> events;

    std::size_t size() const { return ue_ids.size(); }
    std::size_t total_events() const { return events.size(); }
    std::span<const cellular::ControlEvent> events_of(std::size_t i) const;
    // Materializes one stream (copies its events).
    Stream stream(std::size_t i) const;
};

struct ColumnarStats {
    std::uint64_t streams = 0;
    std::uint64_t events = 0;
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;  // final file size
};

class ColumnarWriter {
public:
    ColumnarWriter(const std::string& path, cellular::Generation generation,
                   std::size_t chunk_streams = kDefaultChunkStreams);
    ~ColumnarWriter();  // finishes the file if finish() was not called

    ColumnarWriter(const ColumnarWriter&) = delete;
    ColumnarWriter& operator=(const ColumnarWriter&) = delete;

    // Buffers one stream; flushes a chunk every `chunk_streams` appends.
    void append(Stream s);

    // Forces a chunk boundary (no-op while the buffer is empty).
    void flush_chunk();

    // Writes the footer and closes the file. Idempotent; append() afterwards
    // throws. Returns the final totals.
    ColumnarStats finish();

    const std::string& path() const { return path_; }
    cellular::Generation generation() const { return generation_; }
    std::uint64_t streams_written() const { return streams_; }
    std::uint64_t events_written() const { return events_; }

private:
    void write_raw(const void* data, std::size_t size);

    std::string path_;
    cellular::Generation generation_;
    std::size_t chunk_streams_;
    std::vector<Stream> buffer_;
    std::vector<std::uint64_t> chunk_offsets_;
    std::uint64_t streams_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t pos_ = 0;
    bool finished_ = false;
    struct File;
    std::unique_ptr<File> file_;
};

class ColumnarReader {
public:
    explicit ColumnarReader(const std::string& path);
    ~ColumnarReader();

    ColumnarReader(const ColumnarReader&) = delete;
    ColumnarReader& operator=(const ColumnarReader&) = delete;

    cellular::Generation generation() const { return generation_; }
    std::uint64_t total_streams() const { return total_streams_; }
    std::uint64_t total_events() const { return total_events_; }
    std::uint64_t num_chunks() const { return num_chunks_; }
    const std::string& path() const { return path_; }

    // Decodes the next chunk into `out` (replacing its contents). Returns
    // false once every chunk has been read. Chunks arrive in file order.
    bool next(StreamBatch& out);

    // Restarts iteration at the first chunk.
    void rewind();

private:
    std::string path_;
    cellular::Generation generation_ = cellular::Generation::kLte4G;
    std::size_t event_width_ = 1;
    std::uint64_t total_streams_ = 0;
    std::uint64_t total_events_ = 0;
    std::uint64_t num_chunks_ = 0;
    std::uint64_t chunks_read_ = 0;
    std::uint64_t pos_ = 0;
    struct File;
    std::unique_ptr<File> file_;
};

// Whole-dataset bridges for existing tools (these materialize everything and
// are only meant for datasets that already fit in RAM).
void write_columnar_file(const std::string& path, const Dataset& ds,
                         std::size_t chunk_streams = kDefaultChunkStreams);
Dataset read_columnar_file(const std::string& path);

// Streaming CSV conversions: one stream (CSV side) / one chunk (columnar
// side) in memory at a time.
ColumnarStats csv_to_columnar(const std::string& csv_path, const std::string& columnar_path,
                              std::size_t chunk_streams = kDefaultChunkStreams);
void columnar_to_csv(const std::string& columnar_path, const std::string& csv_path);

}  // namespace cpt::trace
