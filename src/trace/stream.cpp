#include "stream.hpp"

#include "util/check.hpp"

namespace cpt::trace {

std::string_view to_string(DeviceType d) {
    switch (d) {
        case DeviceType::kPhone: return "phone";
        case DeviceType::kConnectedCar: return "connected_car";
        case DeviceType::kTablet: return "tablet";
    }
    return "?";
}

DeviceType device_type_from_string(std::string_view name) {
    if (name == "phone") return DeviceType::kPhone;
    if (name == "connected_car") return DeviceType::kConnectedCar;
    if (name == "tablet") return DeviceType::kTablet;
    CPT_CHECK(false, "device_type_from_string: unknown device '", name, "'");
}

std::vector<double> Stream::interarrivals() const {
    std::vector<double> out;
    out.reserve(events.size());
    double prev = events.empty() ? 0.0 : events.front().timestamp;
    for (std::size_t i = 0; i < events.size(); ++i) {
        out.push_back(i == 0 ? 0.0 : events[i].timestamp - prev);
        prev = events[i].timestamp;
    }
    return out;
}

std::size_t Stream::count_type(cellular::EventId type) const {
    std::size_t n = 0;
    for (const auto& e : events) {
        if (e.type == type) ++n;
    }
    return n;
}

std::size_t Dataset::total_events() const {
    std::size_t n = 0;
    for_each_stream(std::nullopt, std::nullopt, [&](const Stream& s) { n += s.events.size(); });
    return n;
}

void Dataset::for_each_stream(std::optional<DeviceType> device, std::optional<int> hour,
                              const std::function<void(const Stream&)>& fn) const {
    for (const auto& s : streams) {
        if (device.has_value() && s.device != *device) continue;
        if (hour.has_value() && s.hour_of_day != *hour) continue;
        fn(s);
    }
}

Dataset Dataset::filter_device(DeviceType d) const {
    Dataset out;
    out.generation = generation;
    for_each_stream(d, std::nullopt, [&](const Stream& s) { out.streams.push_back(s); });
    return out;
}

Dataset Dataset::filter_hour(int hour) const {
    Dataset out;
    out.generation = generation;
    for_each_stream(std::nullopt, hour, [&](const Stream& s) { out.streams.push_back(s); });
    return out;
}

std::vector<double> Dataset::event_type_counts() const {
    const auto& vocab = cellular::vocabulary(generation);
    std::vector<double> counts(vocab.size(), 0.0);
    for_each_stream(std::nullopt, std::nullopt, [&](const Stream& s) {
        for (const auto& e : s.events) {
            if (e.type < counts.size()) counts[e.type] += 1.0;
        }
    });
    return counts;
}

std::vector<double> Dataset::event_type_breakdown() const {
    const auto counts = event_type_counts();
    double total = 0.0;
    for (double c : counts) total += c;
    std::vector<double> p(counts.size(), 0.0);
    if (total <= 0.0) return p;
    for (std::size_t i = 0; i < counts.size(); ++i) p[i] = counts[i] / total;
    return p;
}

std::vector<double> Dataset::flow_lengths(int event_type) const {
    std::vector<double> out;
    out.reserve(streams.size());
    for_each_stream(std::nullopt, std::nullopt, [&](const Stream& s) {
        if (event_type < 0) {
            out.push_back(static_cast<double>(s.length()));
        } else {
            out.push_back(
                static_cast<double>(s.count_type(static_cast<cellular::EventId>(event_type))));
        }
    });
    return out;
}

std::vector<double> Dataset::all_interarrivals() const {
    std::vector<double> out;
    out.reserve(total_events());
    for_each_stream(std::nullopt, std::nullopt, [&](const Stream& s) {
        const auto ia = s.interarrivals();
        // Skip the defined-zero first interarrival; it is an artifact of the
        // relative-timestamp representation, not a real gap.
        for (std::size_t i = 1; i < ia.size(); ++i) out.push_back(ia[i]);
    });
    return out;
}

std::vector<double> Dataset::initial_event_distribution() const {
    const auto& vocab = cellular::vocabulary(generation);
    std::vector<double> counts(vocab.size(), 0.0);
    for_each_stream(std::nullopt, std::nullopt, [&](const Stream& s) {
        if (!s.events.empty() && s.events.front().type < counts.size()) {
            counts[s.events.front().type] += 1.0;
        }
    });
    double total = 0.0;
    for (double c : counts) total += c;
    if (total > 0.0) {
        for (double& c : counts) c /= total;
    }
    return counts;
}

Dataset Dataset::truncated(std::size_t max_len, std::size_t min_len) const {
    Dataset out;
    out.generation = generation;
    for_each_stream(std::nullopt, std::nullopt, [&](const Stream& s) {
        if (s.length() >= min_len && s.length() <= max_len) out.streams.push_back(s);
    });
    return out;
}

}  // namespace cpt::trace
