#include "columnar.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "io.hpp"
#include "util/check.hpp"

namespace cpt::trace {

namespace {

constexpr char kFileMagic[4] = {'C', 'P', 'T', 'C'};
constexpr char kChunkMagic[4] = {'C', 'H', 'N', 'K'};
constexpr char kIndexMagic[4] = {'C', 'I', 'D', 'X'};
constexpr char kEndMagic[4] = {'C', 'P', 'T', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 12;  // magic + version u32 + gen u8 + width u8 + vocab u16
constexpr std::size_t kChunkHeaderBytes = 24;  // magic + streams u32 + events u64 + payload u64
constexpr std::size_t kEndTailBytes = 12;      // footer offset u64 + end magic

// Little-endian scalar append (the build targets are little-endian, but going
// through explicit byte shifts keeps the format well-defined everywhere).
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// LEB128 unsigned varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
    return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Bounds-checked decode cursor over one chunk payload. Every failure names
// the absolute file byte offset of the defect.
struct Cursor {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos = 0;
    std::uint64_t file_base;       // file offset of data[0]
    const std::string& file_path;  // for error messages

    std::uint64_t file_offset() const { return file_base + pos; }

    void need(std::size_t n, const char* what) const {
        CPT_CHECK(pos + n <= size, "columnar trace '", file_path, "': truncated ", what,
                  " at byte offset ", file_offset(), " (need ", n, " bytes, ", size - pos,
                  " left in chunk)");
    }

    std::uint8_t u8(const char* what) {
        need(1, what);
        return data[pos++];
    }

    std::uint16_t u16(const char* what) {
        need(2, what);
        std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                          static_cast<std::uint16_t>(data[pos + 1]) << 8;
        pos += 2;
        return v;
    }

    std::uint32_t u32(const char* what) {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t varint(const char* what) {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            need(1, what);
            const std::uint8_t b = data[pos++];
            CPT_CHECK(shift < 64, "columnar trace '", file_path, "': overlong varint in ", what,
                      " at byte offset ", file_offset());
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0) return v;
            shift += 7;
        }
    }

    std::string_view bytes(std::size_t n, const char* what) {
        need(n, what);
        auto v = std::string_view(reinterpret_cast<const char*>(data + pos), n);
        pos += n;
        return v;
    }
};

std::size_t event_width_for(std::size_t vocab_size) { return vocab_size > 256 ? 2 : 1; }

}  // namespace

std::int64_t timestamp_to_ticks(double seconds) {
    return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

double ticks_to_timestamp(std::int64_t ticks) { return static_cast<double>(ticks) * 1e-6; }

std::span<const cellular::ControlEvent> StreamBatch::events_of(std::size_t i) const {
    CPT_CHECK_LT(i, size(), " StreamBatch::events_of: stream index out of range");
    return std::span<const cellular::ControlEvent>(events)
        .subspan(offsets[i], offsets[i + 1] - offsets[i]);
}

Stream StreamBatch::stream(std::size_t i) const {
    CPT_CHECK_LT(i, size(), " StreamBatch::stream: stream index out of range");
    Stream s;
    s.ue_id = ue_ids[i];
    s.device = devices[i];
    s.hour_of_day = hours[i];
    const auto evs = events_of(i);
    s.events.assign(evs.begin(), evs.end());
    return s;
}

// ---- writer --------------------------------------------------------------------

struct ColumnarWriter::File {
    std::FILE* f = nullptr;
    ~File() {
        if (f != nullptr) std::fclose(f);
    }
};

ColumnarWriter::ColumnarWriter(const std::string& path, cellular::Generation generation,
                               std::size_t chunk_streams)
    : path_(path),
      generation_(generation),
      chunk_streams_(chunk_streams),
      file_(std::make_unique<File>()) {
    CPT_CHECK_GE(chunk_streams_, std::size_t{1}, " ColumnarWriter: chunk_streams must be >= 1");
    file_->f = std::fopen(path.c_str(), "wb");
    if (file_->f == nullptr) {
        throw std::runtime_error("ColumnarWriter: cannot open '" + path + "'");
    }
    buffer_.reserve(chunk_streams_);
    const auto& vocab = cellular::vocabulary(generation_);
    std::vector<std::uint8_t> header;
    header.insert(header.end(), kFileMagic, kFileMagic + 4);
    put_u32(header, kFormatVersion);
    header.push_back(static_cast<std::uint8_t>(generation_));
    header.push_back(static_cast<std::uint8_t>(event_width_for(vocab.size())));
    put_u16(header, static_cast<std::uint16_t>(vocab.size()));
    write_raw(header.data(), header.size());
}

ColumnarWriter::~ColumnarWriter() {
    if (!finished_) {
        try {
            finish();
        } catch (...) {  // destructor must not throw; finish() explicitly to observe errors
        }
    }
}

void ColumnarWriter::write_raw(const void* data, std::size_t size) {
    if (size == 0) return;
    const std::size_t n = std::fwrite(data, 1, size, file_->f);
    if (n != size) {
        throw std::runtime_error("ColumnarWriter: short write to '" + path_ + "'");
    }
    pos_ += size;
}

void ColumnarWriter::append(Stream s) {
    CPT_CHECK(!finished_, "ColumnarWriter::append after finish() on '", path_, "'");
    CPT_CHECK(s.hour_of_day >= 0 && s.hour_of_day < 24, "ColumnarWriter: stream '", s.ue_id,
              "' has out-of-range hour_of_day ", s.hour_of_day);
    buffer_.push_back(std::move(s));
    if (buffer_.size() >= chunk_streams_) flush_chunk();
}

void ColumnarWriter::flush_chunk() {
    CPT_CHECK(!finished_, "ColumnarWriter::flush_chunk after finish() on '", path_, "'");
    if (buffer_.empty()) return;
    const auto& vocab = cellular::vocabulary(generation_);
    const std::size_t width = event_width_for(vocab.size());
    std::uint64_t chunk_events = 0;
    for (const auto& s : buffer_) chunk_events += s.events.size();

    std::vector<std::uint8_t> payload;
    payload.reserve(buffer_.size() * 16 + chunk_events * (width + 2));
    // Column 1: ue ids (varint length + bytes, per stream).
    for (const auto& s : buffer_) {
        put_varint(payload, s.ue_id.size());
        payload.insert(payload.end(), s.ue_id.begin(), s.ue_id.end());
    }
    // Columns 2+3: device and hour bytes.
    for (const auto& s : buffer_) payload.push_back(static_cast<std::uint8_t>(s.device));
    for (const auto& s : buffer_) payload.push_back(static_cast<std::uint8_t>(s.hour_of_day));
    // Column 4: per-stream event counts (the offsets table, u32).
    for (const auto& s : buffer_) {
        CPT_CHECK_LE(s.events.size(), std::uint64_t{0xffffffff},
                     " ColumnarWriter: stream too long for u32 offsets table");
        put_u32(payload, static_cast<std::uint32_t>(s.events.size()));
    }
    // Column 5: event ids against the generation vocabulary.
    for (const auto& s : buffer_) {
        for (const auto& e : s.events) {
            CPT_CHECK_LT(std::size_t{e.type}, vocab.size(), " ColumnarWriter: stream '", s.ue_id,
                         "' event id outside the ", vocab.size(), "-event vocabulary");
            if (width == 1) {
                payload.push_back(static_cast<std::uint8_t>(e.type));
            } else {
                put_u16(payload, static_cast<std::uint16_t>(e.type));
            }
        }
    }
    // Column 6: delta-encoded microsecond ticks (zigzag first, plain deltas).
    for (const auto& s : buffer_) {
        std::int64_t prev = 0;
        for (std::size_t i = 0; i < s.events.size(); ++i) {
            const std::int64_t tick = timestamp_to_ticks(s.events[i].timestamp);
            if (i == 0) {
                put_varint(payload, zigzag(tick));
            } else {
                CPT_CHECK_GE(tick, prev, " ColumnarWriter: stream '", s.ue_id,
                             "' has decreasing timestamps");
                put_varint(payload, static_cast<std::uint64_t>(tick - prev));
            }
            prev = tick;
        }
    }

    chunk_offsets_.push_back(pos_);
    std::vector<std::uint8_t> head;
    head.reserve(kChunkHeaderBytes);
    head.insert(head.end(), kChunkMagic, kChunkMagic + 4);
    put_u32(head, static_cast<std::uint32_t>(buffer_.size()));
    put_u64(head, chunk_events);
    put_u64(head, payload.size());
    write_raw(head.data(), head.size());
    write_raw(payload.data(), payload.size());
    streams_ += buffer_.size();
    events_ += chunk_events;
    buffer_.clear();
}

ColumnarStats ColumnarWriter::finish() {
    if (!finished_) {
        flush_chunk();
        std::vector<std::uint8_t> footer;
        const std::uint64_t footer_offset = pos_;
        footer.insert(footer.end(), kIndexMagic, kIndexMagic + 4);
        put_u64(footer, chunk_offsets_.size());
        for (std::uint64_t off : chunk_offsets_) put_u64(footer, off);
        put_u64(footer, streams_);
        put_u64(footer, events_);
        put_u64(footer, footer_offset);
        footer.insert(footer.end(), kEndMagic, kEndMagic + 4);
        write_raw(footer.data(), footer.size());
        finished_ = true;
        if (std::fclose(file_->f) != 0) {
            file_->f = nullptr;
            throw std::runtime_error("ColumnarWriter: close failed for '" + path_ + "'");
        }
        file_->f = nullptr;
    }
    ColumnarStats st;
    st.streams = streams_;
    st.events = events_;
    st.chunks = chunk_offsets_.size();
    st.bytes = pos_;
    return st;
}

// ---- reader --------------------------------------------------------------------

struct ColumnarReader::File {
    std::FILE* f = nullptr;
    std::vector<std::uint8_t> chunk;  // reused per-chunk decode buffer
    std::uint64_t file_size = 0;
    ~File() {
        if (f != nullptr) std::fclose(f);
    }
};

ColumnarReader::ColumnarReader(const std::string& path)
    : path_(path), file_(std::make_unique<File>()) {
    file_->f = std::fopen(path.c_str(), "rb");
    if (file_->f == nullptr) {
        throw std::runtime_error("ColumnarReader: cannot open '" + path + "'");
    }
    std::FILE* f = file_->f;
    // File size first: header, chunks, and footer reads are all bounds-checked
    // against it so truncation fails loudly with the offset.
    if (std::fseek(f, 0, SEEK_END) != 0) {
        throw std::runtime_error("ColumnarReader: seek failed on '" + path + "'");
    }
    file_->file_size = static_cast<std::uint64_t>(std::ftell(f));
    // Minimal well-formed file: header + empty footer (index magic, chunk
    // count, stream/event totals, end tail).
    CPT_CHECK_GE(file_->file_size, std::uint64_t{kHeaderBytes + 4 + 8 + 2 * 8 + kEndTailBytes},
                 " columnar trace '", path_, "': file too small to hold header and footer");

    std::uint8_t header[kHeaderBytes];
    std::fseek(f, 0, SEEK_SET);
    CPT_CHECK_EQ(std::fread(header, 1, kHeaderBytes, f), std::size_t{kHeaderBytes},
                 " columnar trace '", path_, "': truncated header at byte offset 0");
    CPT_CHECK(std::memcmp(header, kFileMagic, 4) == 0, "columnar trace '", path_,
              "': bad file magic at byte offset 0 (not a CPTC trace)");
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i) version |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
    CPT_CHECK_EQ(version, kFormatVersion, " columnar trace '", path_,
                 "': unsupported format version at byte offset 4");
    CPT_CHECK_LE(header[8], std::uint8_t{1}, " columnar trace '", path_,
                 "': unknown generation tag at byte offset 8");
    generation_ = static_cast<cellular::Generation>(header[8]);
    event_width_ = header[9];
    CPT_CHECK(event_width_ == 1 || event_width_ == 2, "columnar trace '", path_,
              "': bad event width at byte offset 9");
    const std::uint16_t vocab_size = static_cast<std::uint16_t>(header[10]) |
                                     static_cast<std::uint16_t>(header[11]) << 8;
    CPT_CHECK_EQ(std::size_t{vocab_size}, cellular::vocabulary(generation_).size(),
                 " columnar trace '", path_, "': vocabulary size at byte offset 10 does not match ",
                 "this build's generation vocabulary");

    // End tail: footer offset + end magic.
    std::uint8_t tail[kEndTailBytes];
    std::fseek(f, -static_cast<long>(kEndTailBytes), SEEK_END);
    CPT_CHECK_EQ(std::fread(tail, 1, kEndTailBytes, f), std::size_t{kEndTailBytes},
                 " columnar trace '", path_, "': truncated end tail");
    CPT_CHECK(std::memcmp(tail + 8, kEndMagic, 4) == 0, "columnar trace '", path_,
              "': bad end magic at byte offset ", file_->file_size - 4,
              " (file truncated or not finish()ed)");
    std::uint64_t footer_offset = 0;
    for (int i = 0; i < 8; ++i) footer_offset |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
    CPT_CHECK(footer_offset >= kHeaderBytes && footer_offset < file_->file_size,
              "columnar trace '", path_, "': footer offset ", footer_offset,
              " at byte offset ", file_->file_size - kEndTailBytes, " is outside the file");

    // Footer proper: chunk index + totals.
    std::fseek(f, static_cast<long>(footer_offset), SEEK_SET);
    std::uint8_t idx[12];
    CPT_CHECK_EQ(std::fread(idx, 1, sizeof idx, f), sizeof idx, " columnar trace '", path_,
                 "': truncated footer at byte offset ", footer_offset);
    CPT_CHECK(std::memcmp(idx, kIndexMagic, 4) == 0, "columnar trace '", path_,
              "': bad footer magic at byte offset ", footer_offset);
    for (int i = 0; i < 8; ++i) num_chunks_ |= static_cast<std::uint64_t>(idx[4 + i]) << (8 * i);
    const std::uint64_t expect_end = footer_offset + 4 + 8 + 8 * num_chunks_ + 3 * 8 + 4;
    CPT_CHECK_EQ(expect_end, file_->file_size, " columnar trace '", path_,
                 "': footer at byte offset ", footer_offset, " inconsistent with file size");
    std::fseek(f, static_cast<long>(8 * num_chunks_), SEEK_CUR);  // offsets table (sequential read)
    std::uint8_t totals[16];
    CPT_CHECK_EQ(std::fread(totals, 1, sizeof totals, f), sizeof totals, " columnar trace '",
                 path_, "': truncated footer totals");
    for (int i = 0; i < 8; ++i) {
        total_streams_ |= static_cast<std::uint64_t>(totals[i]) << (8 * i);
        total_events_ |= static_cast<std::uint64_t>(totals[8 + i]) << (8 * i);
    }
    rewind();
}

ColumnarReader::~ColumnarReader() = default;

void ColumnarReader::rewind() {
    std::fseek(file_->f, kHeaderBytes, SEEK_SET);
    pos_ = kHeaderBytes;
    chunks_read_ = 0;
}

bool ColumnarReader::next(StreamBatch& out) {
    if (chunks_read_ >= num_chunks_) return false;
    std::FILE* f = file_->f;
    std::uint8_t head[kChunkHeaderBytes];
    CPT_CHECK_EQ(std::fread(head, 1, kChunkHeaderBytes, f), std::size_t{kChunkHeaderBytes},
                 " columnar trace '", path_, "': truncated chunk header at byte offset ", pos_);
    CPT_CHECK(std::memcmp(head, kChunkMagic, 4) == 0, "columnar trace '", path_,
              "': bad chunk magic at byte offset ", pos_);
    std::uint32_t num_streams = 0;
    for (int i = 0; i < 4; ++i) num_streams |= static_cast<std::uint32_t>(head[4 + i]) << (8 * i);
    std::uint64_t num_events = 0;
    std::uint64_t payload_bytes = 0;
    for (int i = 0; i < 8; ++i) {
        num_events |= static_cast<std::uint64_t>(head[8 + i]) << (8 * i);
        payload_bytes |= static_cast<std::uint64_t>(head[16 + i]) << (8 * i);
    }
    const std::uint64_t payload_base = pos_ + kChunkHeaderBytes;
    CPT_CHECK_LE(payload_base + payload_bytes, file_->file_size, " columnar trace '", path_,
                 "': chunk at byte offset ", pos_, " extends past end of file");
    file_->chunk.resize(payload_bytes);
    CPT_CHECK_EQ(std::fread(file_->chunk.data(), 1, payload_bytes, f), std::size_t{payload_bytes},
                 " columnar trace '", path_, "': truncated chunk payload at byte offset ",
                 payload_base);

    Cursor c{file_->chunk.data(), payload_bytes, 0, payload_base, path_};
    out.generation = generation_;
    out.ue_ids.clear();
    out.devices.clear();
    out.hours.clear();
    out.offsets.clear();
    out.events.clear();
    out.ue_ids.reserve(num_streams);
    out.devices.reserve(num_streams);
    out.hours.reserve(num_streams);
    out.offsets.reserve(num_streams + 1);
    out.events.resize(num_events);
    for (std::uint32_t i = 0; i < num_streams; ++i) {
        const std::uint64_t len = c.varint("ue_id length");
        out.ue_ids.emplace_back(c.bytes(len, "ue_id bytes"));
    }
    for (std::uint32_t i = 0; i < num_streams; ++i) {
        const std::uint8_t d = c.u8("device column");
        CPT_CHECK_LT(std::size_t{d}, kNumDeviceTypes, " columnar trace '", path_,
                     "': bad device id at byte offset ", c.file_offset() - 1);
        out.devices.push_back(static_cast<DeviceType>(d));
    }
    for (std::uint32_t i = 0; i < num_streams; ++i) {
        const std::uint8_t h = c.u8("hour column");
        CPT_CHECK_LT(h, std::uint8_t{24}, " columnar trace '", path_,
                     "': bad hour at byte offset ", c.file_offset() - 1);
        out.hours.push_back(h);
    }
    out.offsets.push_back(0);
    for (std::uint32_t i = 0; i < num_streams; ++i) {
        const std::uint32_t count = c.u32("offsets table");
        out.offsets.push_back(out.offsets.back() + count);
    }
    CPT_CHECK_EQ(out.offsets.back(), num_events, " columnar trace '", path_,
                 "': offsets table of chunk at byte offset ", pos_,
                 " does not sum to the chunk event count");
    const std::size_t vocab_size = cellular::vocabulary(generation_).size();
    for (std::uint64_t i = 0; i < num_events; ++i) {
        const std::uint16_t id = event_width_ == 1 ? c.u8("event column") : c.u16("event column");
        CPT_CHECK_LT(std::size_t{id}, vocab_size, " columnar trace '", path_,
                     "': event id outside vocabulary at byte offset ",
                     c.file_offset() - event_width_);
        out.events[i].type = static_cast<cellular::EventId>(id);
    }
    std::uint64_t e = 0;
    for (std::uint32_t i = 0; i < num_streams; ++i) {
        const std::uint64_t count = out.offsets[i + 1] - out.offsets[i];
        std::int64_t tick = 0;
        for (std::uint64_t j = 0; j < count; ++j, ++e) {
            if (j == 0) {
                tick = unzigzag(c.varint("timestamp column"));
            } else {
                tick += static_cast<std::int64_t>(c.varint("timestamp column"));
            }
            out.events[e].timestamp = ticks_to_timestamp(tick);
        }
    }
    CPT_CHECK_EQ(c.pos, c.size, " columnar trace '", path_, "': ", c.size - c.pos,
                 " trailing bytes in chunk payload at byte offset ", c.file_offset());
    pos_ = payload_base + payload_bytes;
    ++chunks_read_;
    return true;
}

// ---- bridges -------------------------------------------------------------------

void write_columnar_file(const std::string& path, const Dataset& ds, std::size_t chunk_streams) {
    ColumnarWriter w(path, ds.generation, chunk_streams);
    for (const auto& s : ds.streams) w.append(s);
    w.finish();
}

Dataset read_columnar_file(const std::string& path) {
    ColumnarReader r(path);
    Dataset ds;
    ds.generation = r.generation();
    ds.streams.reserve(r.total_streams());
    StreamBatch batch;
    while (r.next(batch)) {
        for (std::size_t i = 0; i < batch.size(); ++i) ds.streams.push_back(batch.stream(i));
    }
    return ds;
}

ColumnarStats csv_to_columnar(const std::string& csv_path, const std::string& columnar_path,
                              std::size_t chunk_streams) {
    std::ifstream in(csv_path);
    if (!in) throw std::runtime_error("csv_to_columnar: cannot open '" + csv_path + "'");
    CsvStreamReader reader(in);
    ColumnarWriter writer(columnar_path, reader.generation(), chunk_streams);
    Stream s;
    while (reader.next(s)) writer.append(std::move(s));
    return writer.finish();
}

void columnar_to_csv(const std::string& columnar_path, const std::string& csv_path) {
    ColumnarReader reader(columnar_path);
    std::ofstream out(csv_path);
    if (!out) throw std::runtime_error("columnar_to_csv: cannot open '" + csv_path + "'");
    write_csv_header(out);
    StreamBatch batch;
    Stream s;
    while (reader.next(batch)) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            s.ue_id = batch.ue_ids[i];
            s.device = batch.devices[i];
            s.hour_of_day = batch.hours[i];
            const auto evs = batch.events_of(i);
            s.events.assign(evs.begin(), evs.end());
            write_csv_stream(out, s, batch.generation);
        }
    }
}

}  // namespace cpt::trace
