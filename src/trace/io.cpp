#include "io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace cpt::trace {

namespace {

std::string_view generation_tag(cellular::Generation g) {
    return g == cellular::Generation::kLte4G ? "4g" : "5g";
}

cellular::Generation generation_from_tag(std::string_view tag) {
    if (tag == "4g") return cellular::Generation::kLte4G;
    if (tag == "5g") return cellular::Generation::kNr5G;
    CPT_CHECK(false, "trace csv: unknown generation tag '", tag, "'");
}

}  // namespace

void write_csv(std::ostream& out, const Dataset& ds) {
    const auto& vocab = cellular::vocabulary(ds.generation);
    // Microsecond-resolution timestamps survive the round trip.
    out.setf(std::ios::fixed);
    out.precision(6);
    out << "generation,ue_id,device,hour,timestamp,event\n";
    for (const auto& s : ds.streams) {
        for (const auto& e : s.events) {
            out << generation_tag(ds.generation) << ',' << s.ue_id << ',' << to_string(s.device)
                << ',' << s.hour_of_day << ',' << e.timestamp << ',' << vocab.name(e.type) << '\n';
        }
    }
}

void write_csv_file(const std::string& path, const Dataset& ds) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_csv_file: cannot open '" + path + "'");
    write_csv(out, ds);
}

Dataset read_csv(std::istream& in) {
    std::string line;
    CPT_CHECK(static_cast<bool>(std::getline(in, line)), "trace csv: empty input");
    CPT_CHECK(util::trim(line) == "generation,ue_id,device,hour,timestamp,event",
              "trace csv: unexpected header '", line, "'");
    Dataset ds;
    bool generation_set = false;
    Stream* current = nullptr;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (util::trim(line).empty()) continue;
        const auto cols = util::split(line, ',');
        CPT_CHECK_EQ(cols.size(), std::size_t{6}, " trace csv: line ", line_no,
                     ": expected 6 columns");
        const auto gen = generation_from_tag(util::trim(cols[0]));
        if (!generation_set) {
            ds.generation = gen;
            generation_set = true;
        } else {
            CPT_CHECK(gen == ds.generation, "trace csv: line ", line_no,
                      ": mixed generations in one file");
        }
        const std::string ue_id(util::trim(cols[1]));
        if (current == nullptr || current->ue_id != ue_id) {
            ds.streams.emplace_back();
            current = &ds.streams.back();
            current->ue_id = ue_id;
            current->device = device_type_from_string(util::trim(cols[2]));
            current->hour_of_day = static_cast<int>(util::parse_int(cols[3]));
        }
        cellular::ControlEvent ev;
        ev.timestamp = util::parse_double(cols[4]);
        const auto& vocab = cellular::vocabulary(ds.generation);
        const auto id = vocab.id(util::trim(cols[5]));
        CPT_CHECK(id.has_value(), "trace csv: line ", line_no, ": unknown event '", cols[5], "'");
        ev.type = *id;
        CPT_CHECK(current->events.empty() || ev.timestamp >= current->events.back().timestamp,
                  "trace csv: line ", line_no, ": decreasing timestamp within stream ", ue_id);
        current->events.push_back(ev);
    }
    return ds;
}

Dataset read_csv_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_csv_file: cannot open '" + path + "'");
    return read_csv(in);
}

}  // namespace cpt::trace
