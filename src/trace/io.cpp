#include "io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace cpt::trace {

namespace {

std::string_view generation_tag(cellular::Generation g) {
    return g == cellular::Generation::kLte4G ? "4g" : "5g";
}

// Parsers below rethrow with line/field context, so raw failures here carry
// just the value.
cellular::Generation generation_from_tag(std::string_view tag) {
    if (tag == "4g") return cellular::Generation::kLte4G;
    if (tag == "5g") return cellular::Generation::kNr5G;
    CPT_CHECK(false, "unknown generation tag '", tag, "'");
}

// Runs `parse` and, on failure, rethrows with the row's 1-based line number
// and the field name/value — satellite contract: every malformed-input branch
// says *where*, not just *what*.
template <typename Fn>
auto parse_field(std::size_t line_no, std::string_view field, std::string_view raw, Fn&& parse) {
    try {
        return parse();
    } catch (const std::invalid_argument& e) {
        throw CheckError(util::check_detail::msg_cat("trace csv: line ", line_no, ": bad ", field,
                                                     " field '", util::trim(raw), "': ", e.what()));
    }
}

}  // namespace

void write_csv_header(std::ostream& out) {
    // Microsecond-resolution timestamps survive the round trip.
    out.setf(std::ios::fixed);
    out.precision(6);
    out << "generation,ue_id,device,hour,timestamp,event\n";
}

void write_csv_stream(std::ostream& out, const Stream& s, cellular::Generation generation) {
    const auto& vocab = cellular::vocabulary(generation);
    for (const auto& e : s.events) {
        out << generation_tag(generation) << ',' << s.ue_id << ',' << to_string(s.device) << ','
            << s.hour_of_day << ',' << e.timestamp << ',' << vocab.name(e.type) << '\n';
    }
}

void write_csv(std::ostream& out, const Dataset& ds) {
    write_csv_header(out);
    for (const auto& s : ds.streams) write_csv_stream(out, s, ds.generation);
}

void write_csv_file(const std::string& path, const Dataset& ds) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_csv_file: cannot open '" + path + "'");
    write_csv(out, ds);
}

CsvStreamReader::CsvStreamReader(std::istream& in) : in_(in) {
    std::string line;
    CPT_CHECK(static_cast<bool>(std::getline(in_, line)), "trace csv: empty input");
    CPT_CHECK(util::trim(line) == "generation,ue_id,device,hour,timestamp,event",
              "trace csv: line 1: unexpected header '", line, "'");
    has_pending_ = read_row(pending_);
}

bool CsvStreamReader::read_row(Row& row) {
    std::string line;
    while (std::getline(in_, line)) {
        ++line_no_;
        if (util::trim(line).empty()) continue;
        const auto cols = util::split(line, ',');
        CPT_CHECK_EQ(cols.size(), std::size_t{6}, " trace csv: line ", line_no_,
                     ": expected 6 columns");
        const auto gen = parse_field(line_no_, "generation", cols[0],
                                     [&] { return generation_from_tag(util::trim(cols[0])); });
        if (!generation_set_) {
            generation_ = gen;
            generation_set_ = true;
        } else {
            CPT_CHECK(gen == generation_, "trace csv: line ", line_no_,
                      ": mixed generations in one file");
        }
        row.ue_id = util::trim(cols[1]);
        CPT_CHECK(!row.ue_id.empty(), "trace csv: line ", line_no_, ": empty ue_id field");
        row.device = parse_field(line_no_, "device", cols[2],
                                 [&] { return device_type_from_string(util::trim(cols[2])); });
        row.hour = static_cast<int>(
            parse_field(line_no_, "hour", cols[3], [&] { return util::parse_int(cols[3]); }));
        row.event.timestamp = parse_field(line_no_, "timestamp", cols[4],
                                          [&] { return util::parse_double(cols[4]); });
        const auto& vocab = cellular::vocabulary(generation_);
        const auto id = vocab.id(util::trim(cols[5]));
        CPT_CHECK(id.has_value(), "trace csv: line ", line_no_, ": unknown event '",
                  util::trim(cols[5]), "'");
        row.event.type = *id;
        return true;
    }
    return false;
}

bool CsvStreamReader::next(Stream& out) {
    if (!has_pending_) return false;
    out.ue_id = std::move(pending_.ue_id);
    out.device = pending_.device;
    out.hour_of_day = pending_.hour;
    out.events.clear();
    out.events.push_back(pending_.event);
    Row row;
    while ((has_pending_ = read_row(row))) {
        if (row.ue_id != out.ue_id) {
            pending_ = std::move(row);
            break;
        }
        CPT_CHECK(row.event.timestamp >= out.events.back().timestamp, "trace csv: line ", line_no_,
                  ": decreasing timestamp within stream ", out.ue_id);
        out.events.push_back(row.event);
    }
    return true;
}

Dataset read_csv(std::istream& in) {
    CsvStreamReader reader(in);
    Dataset ds;
    ds.generation = reader.generation();
    Stream s;
    while (reader.next(s)) ds.streams.push_back(std::move(s));
    return ds;
}

Dataset read_csv_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_csv_file: cannot open '" + path + "'");
    return read_csv(in);
}

}  // namespace cpt::trace
