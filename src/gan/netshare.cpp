#include "netshare.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/stats.hpp"

namespace cpt::gan {

using nn::Var;

namespace {

// Per-stream log-space interarrival normalization (NetShare's L5 trick).
struct StreamNorm {
    double log_min = 0.0;
    double log_max = 1.0;
};

StreamNorm stream_norm(const trace::Stream& s) {
    StreamNorm n;
    const auto ia = s.interarrivals();
    bool first = true;
    for (std::size_t i = 1; i < ia.size(); ++i) {
        const double l = std::log(ia[i] + 1.0);
        if (first) {
            n.log_min = l;
            n.log_max = l;
            first = false;
        } else {
            n.log_min = std::min(n.log_min, l);
            n.log_max = std::max(n.log_max, l);
        }
    }
    if (n.log_max <= n.log_min) n.log_max = n.log_min + 1e-6;
    return n;
}

}  // namespace

NetShareGenerator::NetShareGenerator(const core::Tokenizer& tokenizer,
                                     const NetShareConfig& config, util::Rng& rng)
    : tokenizer_(tokenizer),
      config_(config),
      num_events_(tokenizer.num_event_types()),
      sample_dim_(num_events_ + 2),
      meta_net_(config.noise_dim, 32, 2, rng),
      // Step input: per-step noise + metadata + previous step's S samples.
      lstm_(config.noise_dim + 2 + config.batch_generation * (num_events_ + 2),
            config.lstm_hidden, config.lstm_layers, rng),
      step_head_(config.lstm_hidden, config.batch_generation * (num_events_ + 2), rng),
      disc_(0, 0, 0, rng)  // replaced below once dimensions are known
{
    // Round the sequence length up to a whole number of batch-generation steps.
    const std::size_t s = config_.batch_generation;
    config_.max_seq_len = ((config_.max_seq_len + s - 1) / s) * s;
    const std::size_t disc_in = config_.max_seq_len * sample_dim_ + 2;
    disc_ = nn::Mlp(disc_in, config_.disc_hidden, 1, rng);
}

void NetShareGenerator::collect(const std::string& prefix,
                                std::vector<nn::NamedParam>& out) const {
    meta_net_.collect(prefix + "meta.", out);
    lstm_.collect(prefix + "lstm.", out);
    step_head_.collect(prefix + "step_head.", out);
    disc_.collect(prefix + "disc.", out);
}

NetShareGenerator::GeneratedBatch NetShareGenerator::generate_batch(std::size_t batch,
                                                                    util::Rng& rng) const {
    // RNG is advanced deterministically; graphs are rebuilt per call.
    auto noise = [&](std::size_t dim) {
        return nn::make_var(nn::Tensor::randn(rng, {batch, dim}, 1.0f));
    };

    GeneratedBatch out;
    out.metadata = nn::sigmoid(meta_net_.forward(noise(config_.noise_dim)));  // [B, 2]

    const std::size_t steps = config_.max_seq_len / config_.batch_generation;
    const std::size_t step_floats = config_.batch_generation * sample_dim_;
    auto state = lstm_.zero_state(batch);
    std::vector<Var> samples;  // each [B, sample_dim]
    samples.reserve(config_.max_seq_len);
    out.hard_samples = nn::Tensor({batch, config_.max_seq_len, sample_dim_});
    nn::Tensor prev({batch, step_floats});  // previous step's HARD samples, detached
    for (std::size_t step = 0; step < steps; ++step) {
        // Per-step noise conditioned on the metadata and the previous step's
        // sampled output (detached: no backprop across steps; hard samples so
        // the sequence the LSTM conditions on is the sequence being emitted —
        // the same teacher-forcing interface used in pretraining).
        Var input =
            nn::concat_lastdim({noise(config_.noise_dim), out.metadata, nn::make_var(prev)});
        auto [h, next] = lstm_.step(input, state);
        state = std::move(next);
        Var raw = step_head_.forward(h);  // [B, S * sample_dim]
        prev = nn::Tensor({batch, step_floats});
        for (std::size_t s = 0; s < config_.batch_generation; ++s) {
            const std::size_t base = s * sample_dim_;
            Var event_probs =
                nn::softmax_lastdim(nn::slice_lastdim(raw, base, num_events_));
            Var ia = nn::sigmoid(nn::slice_lastdim(raw, base + num_events_, 1));
            Var stop = nn::sigmoid(nn::slice_lastdim(raw, base + num_events_ + 1, 1));
            Var sample = nn::concat_lastdim({event_probs, ia, stop});
            // Draw the concrete sample: categorical event, Bernoulli stop.
            // Within a step the S samples are drawn independently — batch
            // generation's intra-batch independence (the paper's L4).
            const auto soft = sample->value.data();
            auto hard = out.hard_samples.data();
            auto fb = prev.data();
            const std::size_t pos = step * config_.batch_generation + s;
            for (std::size_t r = 0; r < batch; ++r) {
                const float* srow = soft.data() + r * sample_dim_;
                const std::size_t ev =
                    rng.categorical(std::span<const float>(srow, num_events_));
                float* hrow = hard.data() + (r * config_.max_seq_len + pos) * sample_dim_;
                for (std::size_t j = 0; j < sample_dim_; ++j) hrow[j] = 0.0f;
                hrow[ev] = 1.0f;
                hrow[num_events_] = srow[num_events_];
                hrow[num_events_ + 1] =
                    rng.bernoulli(static_cast<double>(srow[num_events_ + 1])) ? 1.0f : 0.0f;
                float* frow = fb.data() + r * step_floats + base;
                for (std::size_t j = 0; j < sample_dim_; ++j) frow[j] = hrow[j];
            }
            samples.push_back(std::move(sample));
        }
    }
    Var flat = nn::concat_lastdim(samples);  // [B, T * sample_dim]
    out.sequence = nn::reshape(flat, {batch, config_.max_seq_len, sample_dim_});
    return out;
}

void NetShareGenerator::encode_real(const trace::Stream& s, std::span<float> seq_dst,
                                    std::span<float> meta_dst) const {
    std::fill(seq_dst.begin(), seq_dst.end(), 0.0f);
    const StreamNorm norm = stream_norm(s);
    // Metadata: the per-stream min/max expressed on the tokenizer's global
    // [0, 1] log scale. NetShare proper also *normalizes* each stream's
    // interarrivals by these (its L5 mode-collapse mitigation) and decodes
    // against the generated metadata; at CPU scale that decode is fragile —
    // a slightly-collapsed metadata generator zeroes every interarrival — so
    // the interarrival field is coded on the global log scale (as in
    // CPT-GPT's tokenizer) and the per-stream min/max remain as
    // metadata features for the discriminator.
    meta_dst[0] = tokenizer_.scale_interarrival(std::exp(norm.log_min) - 1.0);
    meta_dst[1] = tokenizer_.scale_interarrival(std::exp(norm.log_max) - 1.0);

    const auto ia = s.interarrivals();
    const std::size_t len = std::min(s.length(), config_.max_seq_len);
    for (std::size_t k = 0; k < len; ++k) {
        float* row = seq_dst.data() + k * sample_dim_;
        row[s.events[k].type] = 1.0f;
        row[num_events_] = tokenizer_.scale_interarrival(ia[k]);
        // Stop flag only if the real stream actually ends inside the window.
        row[num_events_ + 1] = (k + 1 == s.length()) ? 1.0f : 0.0f;
    }
}

GanTrainResult NetShareGenerator::train(const trace::Dataset& data,
                                        const GanTrainConfig& config) {
    const auto t0 = std::chrono::steady_clock::now();
    util::Rng rng(config.seed);

    // Encode usable real streams once.
    std::vector<const trace::Stream*> usable;
    for (const auto& s : data.streams) {
        if (s.length() >= 2) usable.push_back(&s);
    }
    if (usable.empty()) throw std::invalid_argument("NetShareGenerator::train: no usable streams");
    const std::size_t seq_floats = config_.max_seq_len * sample_dim_;
    std::vector<float> real_seq(usable.size() * seq_floats);
    std::vector<float> real_meta(usable.size() * 2);
    for (std::size_t i = 0; i < usable.size(); ++i) {
        encode_real(*usable[i], {real_seq.data() + i * seq_floats, seq_floats},
                    {real_meta.data() + i * 2, 2});
    }

    // Moment-matching targets: per-column first AND second moments of the
    // encoded real data. Matching only the mean is satisfied by mode collapse
    // (every stream equal to the mean); the second moment penalizes variance
    // collapse, which is where the metadata generator otherwise degenerates.
    std::vector<float> seq_mean(seq_floats, 0.0f);
    std::vector<float> seq_sq(seq_floats, 0.0f);
    std::vector<float> meta_mean(2, 0.0f);
    std::vector<float> meta_sq(2, 0.0f);
    {
        for (std::size_t i = 0; i < usable.size(); ++i) {
            for (std::size_t j = 0; j < seq_floats; ++j) {
                const float v = real_seq[i * seq_floats + j];
                seq_mean[j] += v;
                seq_sq[j] += v * v;
            }
            for (std::size_t j = 0; j < 2; ++j) {
                const float v = real_meta[i * 2 + j];
                meta_mean[j] += v;
                meta_sq[j] += v * v;
            }
        }
        const auto n = static_cast<float>(usable.size());
        for (float& v : seq_mean) v /= n;
        for (float& v : seq_sq) v /= n;
        for (float& v : meta_mean) v /= n;
        for (float& v : meta_sq) v /= n;
    }
    const nn::Tensor seq_mean_t = nn::Tensor::from(seq_mean, {seq_floats});
    const nn::Tensor seq_sq_t = nn::Tensor::from(seq_sq, {seq_floats});
    const nn::Tensor meta_mean_t = nn::Tensor::from(meta_mean, {2});
    const nn::Tensor meta_sq_t = nn::Tensor::from(meta_sq, {2});
    const std::vector<float> seq_mask(seq_floats, 1.0f);
    const std::vector<float> meta_mask(2, 1.0f);

    // Split generator/discriminator parameters for alternating updates.
    std::vector<nn::NamedParam> named;
    meta_net_.collect("meta.", named);
    lstm_.collect("lstm.", named);
    step_head_.collect("step_head.", named);
    std::vector<Var> gen_params;
    for (auto& [n, p] : named) gen_params.push_back(p);
    std::vector<Var> disc_params = disc_.parameters();
    nn::Adam gen_opt(gen_params, config_.lr_generator, 0.5f);
    nn::Adam disc_opt(disc_params, config_.lr_discriminator, 0.5f);
    std::vector<Var> all_params = gen_params;
    all_params.insert(all_params.end(), disc_params.begin(), disc_params.end());

    auto discriminate = [&](const Var& seq, const Var& meta) {
        Var flat = nn::reshape(seq, {seq->value.dim(0), seq_floats});
        Var input = nn::concat_lastdim({flat, meta});
        return nn::reshape(disc_.forward(input), {seq->value.dim(0)});
    };

    auto real_batch = [&](std::size_t b) {
        nn::Tensor seq({b, config_.max_seq_len, sample_dim_});
        nn::Tensor meta({b, 2});
        auto sd = seq.data();
        auto md = meta.data();
        for (std::size_t row = 0; row < b; ++row) {
            const std::size_t pick = rng.uniform_index(usable.size());
            std::copy_n(real_seq.data() + pick * seq_floats, seq_floats,
                        sd.data() + row * seq_floats);
            std::copy_n(real_meta.data() + pick * 2, 2, md.data() + row * 2);
        }
        return std::pair{nn::make_var(seq), nn::make_var(meta)};
    };

    GanTrainResult result;
    double best_score = std::numeric_limits<double>::max();
    int evals_since_best = 0;
    // Snapshot of the best-scoring checkpoint (the paper's §5.5 heuristic
    // selects a checkpoint by fidelity rank; we keep the best and restore it
    // at the end — GAN quality is not monotone in the epoch count).
    std::vector<nn::Tensor> best_weights;
    auto snapshot = [&] {
        best_weights.clear();
        for (const auto& p : all_params) best_weights.push_back(p->value.clone());
    };
    auto restore = [&] {
        if (best_weights.empty()) return;
        for (std::size_t i = 0; i < all_params.size(); ++i) {
            auto dst = all_params[i]->value.data();
            auto src = best_weights[i].data();
            std::copy(src.begin(), src.end(), dst.begin());
        }
    };
    const std::size_t batches_per_epoch =
        std::max<std::size_t>(1, usable.size() / config_.batch_size);

    // ---- Phase 1: supervised (teacher-forced) generator pretraining ----
    // The LSTM is driven with the REAL previous-step samples and regressed
    // onto the real current-step samples; this seeds the sequential event
    // structure that adversarial training then sharpens (SeqGAN-style).
    // Supervised convergence wants standard Adam moments, unlike the
    // GAN-tuned beta1 = 0.5 used in phase 2.
    nn::Adam pretrain_opt(gen_params, 3e-3f, 0.9f);
    const std::size_t steps = config_.max_seq_len / config_.batch_generation;
    const std::size_t step_floats = config_.batch_generation * sample_dim_;
    for (int epoch = 0; epoch < config.pretrain_epochs; ++epoch) {
        for (std::size_t it = 0; it < batches_per_epoch; ++it) {
            const std::size_t b = config_.batch_size;
            // Assemble a teacher-forcing batch.
            nn::Tensor seq({b, config_.max_seq_len, sample_dim_});
            nn::Tensor meta({b, 2});
            {
                auto sd = seq.data();
                auto md = meta.data();
                for (std::size_t row = 0; row < b; ++row) {
                    const std::size_t pick = rng.uniform_index(usable.size());
                    std::copy_n(real_seq.data() + pick * seq_floats, seq_floats,
                                sd.data() + row * seq_floats);
                    std::copy_n(real_meta.data() + pick * 2, 2, md.data() + row * 2);
                }
            }
            Var meta_var = nn::make_var(meta);
            auto state = lstm_.zero_state(b);
            // Event types train with cross-entropy (calibrated categorical
            // probabilities — an MSE-regressed softmax is too diffuse to
            // sample from); interarrival and stop train with masked MSE.
            Var ce_sum;
            float ce_count = 0.0f;
            std::vector<Var> numeric_outputs;  // per step: [B, S*2] (ia, stop)
            numeric_outputs.reserve(steps);
            for (std::size_t s = 0; s < steps; ++s) {
                // Previous step's REAL samples as feedback (zeros for s = 0).
                nn::Tensor prev({b, step_floats});
                if (s > 0) {
                    auto dst = prev.data();
                    const auto src = seq.data();
                    for (std::size_t row = 0; row < b; ++row) {
                        std::copy_n(src.data() + row * seq_floats + (s - 1) * step_floats,
                                    step_floats, dst.data() + row * step_floats);
                    }
                }
                Var input = nn::concat_lastdim(
                    {nn::make_var(nn::Tensor::randn(rng, {b, config_.noise_dim}, 1.0f)), meta_var,
                     nn::make_var(prev)});
                auto [h, next] = lstm_.step(input, state);
                state = std::move(next);
                Var raw = step_head_.forward(h);
                std::vector<Var> numeric;
                for (std::size_t k = 0; k < config_.batch_generation; ++k) {
                    const std::size_t base = k * sample_dim_;
                    Var probs = nn::softmax_lastdim(nn::slice_lastdim(raw, base, num_events_));
                    // The real one-hot rows double as the CE mask: padded
                    // positions are all-zero and contribute nothing.
                    nn::Tensor onehot({b, num_events_});
                    {
                        auto dst = onehot.data();
                        const auto src = seq.data();
                        const std::size_t pos = s * config_.batch_generation + k;
                        for (std::size_t row = 0; row < b; ++row) {
                            for (std::size_t e = 0; e < num_events_; ++e) {
                                const float v = src[row * seq_floats + pos * sample_dim_ + e];
                                dst[row * num_events_ + e] = v;
                                ce_count += v;
                            }
                        }
                    }
                    Var term = nn::sum_all(nn::mul(nn::log_op(probs), nn::make_var(onehot)));
                    ce_sum = ce_sum ? nn::add(ce_sum, term) : term;
                    numeric.push_back(nn::sigmoid(nn::slice_lastdim(raw, base + num_events_, 2)));
                }
                numeric_outputs.push_back(nn::concat_lastdim(numeric));
            }
            // Numeric targets: the (ia, stop) columns of the real windows,
            // masked to positions that exist in the real stream — regressing
            // against padding zeros otherwise drags every interarrival to 0
            // once padding dominates the window.
            const std::size_t numeric_floats = config_.max_seq_len * 2;
            nn::Tensor numeric_target({b * numeric_floats});
            std::vector<float> mask(b * numeric_floats, 0.0f);
            {
                auto dst = numeric_target.data();
                const auto src = seq.data();
                for (std::size_t row = 0; row < b; ++row) {
                    for (std::size_t pos = 0; pos < config_.max_seq_len; ++pos) {
                        const float* sample = src.data() + row * seq_floats + pos * sample_dim_;
                        bool active = false;
                        for (std::size_t e = 0; e < num_events_; ++e) {
                            if (sample[e] != 0.0f) active = true;
                        }
                        dst[row * numeric_floats + pos * 2] = sample[num_events_];
                        dst[row * numeric_floats + pos * 2 + 1] = sample[num_events_ + 1];
                        if (active) {
                            mask[row * numeric_floats + pos * 2] = 1.0f;
                            mask[row * numeric_floats + pos * 2 + 1] = 1.0f;
                        }
                    }
                }
            }
            Var numeric_flat =
                nn::reshape(nn::concat_lastdim(numeric_outputs), {b * numeric_floats});
            // The numeric fields carry the sojourn-time fidelity; weight them
            // up against the (easier) event cross-entropy.
            Var loss = nn::scale(nn::mse_masked(numeric_flat, numeric_target, mask), 4.0f);
            if (ce_sum) {
                loss = nn::add(loss, nn::scale(ce_sum, -1.0f / std::max(ce_count, 1.0f)));
            }
            nn::zero_grad(gen_params);
            nn::backward(loss);
            nn::clip_grad_norm(gen_params, 5.0);
            pretrain_opt.step();
        }
    }

    // Fidelity proxy used for checkpoint selection (paper §5.5): flow-length
    // mean, event-type TV distance, and interarrival KS distance against the
    // training data.
    auto fidelity_score = [&](std::uint64_t eval_seed) -> double {
        util::Rng eval_rng(eval_seed);
        const trace::Dataset sample =
            generate(config.eval_streams, eval_rng, data.streams.front().device, "eval");
        if (sample.streams.empty()) return 1e6;
        const double real_len = util::summarize(data.flow_lengths()).mean;
        const double fake_len = util::summarize(sample.flow_lengths()).mean;
        const double len_term = std::abs(fake_len - real_len) / std::max(real_len, 1.0);
        const double tv = util::total_variation(sample.event_type_breakdown(),
                                                data.event_type_breakdown());
        const auto real_ia = data.all_interarrivals();
        const auto fake_ia = sample.all_interarrivals();
        const double ia_term = (real_ia.empty() || fake_ia.empty())
                                   ? 1.0
                                   : util::max_cdf_y_distance(real_ia, fake_ia);
        return len_term + tv + ia_term;
    };

    // The pretrained generator is itself a candidate checkpoint: adversarial
    // training does not monotonically improve it.
    if (config.pretrain_epochs > 0 && config.max_epochs > 0) {
        best_score = fidelity_score(config.seed + 6999);
        snapshot();
    }

    // ---- Phase 2: adversarial training ----

    for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
        double dsum = 0.0;
        double gsum = 0.0;
        for (std::size_t it = 0; it < batches_per_epoch; ++it) {
            // ---- discriminator step(s) ----
            for (int k = 0; k < config_.disc_steps_per_gen_step; ++k) {
                auto [rseq, rmeta] = real_batch(config_.batch_size);
                const auto fake = generate_batch(config_.batch_size, rng);
                // Detach the generator graph: the D step must not update G.
                Var fseq = nn::make_var(fake.sequence->value);
                Var fmeta = nn::make_var(fake.metadata->value);
                Var d_real = discriminate(rseq, rmeta);
                Var d_fake = discriminate(fseq, fmeta);
                Var loss = nn::add(
                    bce_with_logits(d_real, std::vector<float>(config_.batch_size, 1.0f)),
                    bce_with_logits(d_fake, std::vector<float>(config_.batch_size, 0.0f)));
                nn::zero_grad(all_params);
                nn::backward(loss);
                nn::clip_grad_norm(disc_params, 5.0);
                disc_opt.step();
                dsum += loss->value[0];
            }
            // ---- generator step (non-saturating loss + moment matching) ----
            const auto fake = generate_batch(config_.batch_size, rng);
            Var d_fake = discriminate(fake.sequence, fake.metadata);
            Var gloss = bce_with_logits(d_fake, std::vector<float>(config_.batch_size, 1.0f));
            if (config_.moment_match_weight > 0.0f) {
                // Batch first and second moments of the generated features,
                // pulled toward the real data's column moments.
                const std::size_t b = config_.batch_size;
                Var averager = nn::make_var(
                    nn::Tensor::full({1, b}, 1.0f / static_cast<float>(b)));
                Var flat = nn::reshape(fake.sequence, {b, seq_floats});
                Var fake_seq_mean = nn::reshape(nn::matmul(averager, flat), {seq_floats});
                Var fake_seq_sq =
                    nn::reshape(nn::matmul(averager, nn::mul(flat, flat)), {seq_floats});
                Var fake_meta_mean = nn::reshape(nn::matmul(averager, fake.metadata), {2});
                Var fake_meta_sq = nn::reshape(
                    nn::matmul(averager, nn::mul(fake.metadata, fake.metadata)), {2});
                Var mm = nn::add(nn::mse_masked(fake_seq_mean, seq_mean_t, seq_mask),
                                 nn::mse_masked(fake_meta_mean, meta_mean_t, meta_mask));
                mm = nn::add(mm, nn::mse_masked(fake_seq_sq, seq_sq_t, seq_mask));
                mm = nn::add(mm, nn::mse_masked(fake_meta_sq, meta_sq_t, meta_mask));
                gloss = nn::add(gloss, nn::scale(mm, config_.moment_match_weight));
            }
            nn::zero_grad(all_params);
            nn::backward(gloss);
            nn::clip_grad_norm(gen_params, 5.0);
            gen_opt.step();
            gsum += gloss->value[0];
        }
        result.disc_loss.push_back(dsum / static_cast<double>(batches_per_epoch));
        result.gen_loss.push_back(gsum / static_cast<double>(batches_per_epoch));
        ++result.epochs_run;

        // ---- checkpoint evaluation heuristic (paper §5.5) ----
        if ((epoch + 1) % config.eval_every == 0) {
            const double score =
                fidelity_score(config.seed + 7000 + static_cast<std::uint64_t>(epoch));
            result.eval_score.push_back(score);
            if (config.verbose) {
                std::printf("gan epoch %d  d %.3f  g %.3f  eval %.3f\n", epoch,
                            result.disc_loss.back(), result.gen_loss.back(), score);
            }
            if (score < best_score - 1e-3) {
                best_score = score;
                evals_since_best = 0;
                snapshot();
            } else if (++evals_since_best >= config.patience) {
                break;
            }
        }
    }
    restore();
    result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

trace::Dataset NetShareGenerator::generate(std::size_t n, util::Rng& rng,
                                           trace::DeviceType device,
                                           const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = tokenizer_.generation();
    std::size_t produced = 0;
    while (produced < n) {
        const std::size_t b = std::min<std::size_t>(64, n - produced);
        const auto batch = generate_batch(b, rng);
        const auto seq = batch.hard_samples.data();
        for (std::size_t row = 0; row < b; ++row) {
            trace::Stream s;
            char id[64];
            std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), produced);
            s.ue_id = id;
            s.device = device;
            double t = 0.0;
            for (std::size_t k = 0; k < config_.max_seq_len; ++k) {
                // The hard samples already carry the sampled event one-hot,
                // the ia value, and the sampled stop bit — the same concrete
                // sequence the generator's feedback loop conditioned on.
                const float* rowp = seq.data() + (row * config_.max_seq_len + k) * sample_dim_;
                std::size_t ev = 0;
                for (std::size_t e = 1; e < num_events_; ++e) {
                    if (rowp[e] > rowp[ev]) ev = e;
                }
                if (k > 0) {
                    t += tokenizer_.unscale_interarrival(rowp[num_events_]);
                }
                s.events.push_back({t, static_cast<cellular::EventId>(ev)});
                if (rowp[num_events_ + 1] > 0.5f) break;  // sampled stop bit
            }
            ++produced;
            if (s.length() >= 2) ds.streams.push_back(std::move(s));
        }
    }
    return ds;
}

}  // namespace cpt::gan
