// NetShare-style GAN baseline, adapted to control-plane traffic exactly as
// the paper does in §4.2.1:
//   * the metadata generator (an MLP on noise) produces the per-stream
//     interarrival min/max used for NetShare's per-stream normalization —
//     the specialized mode-collapse mitigation the paper calls out as L5;
//   * the time-series generator is an LSTM with *batch generation* (S samples
//     emitted per step, the DoppelGANger/NetShare workaround for LSTM
//     forgetting, L4), each sample carrying softmax event-type probabilities,
//     a normalized interarrival, and a stop flag; each step is additionally
//     conditioned on the previous step's (detached) output so the LSTM can
//     express sequential event dependence across steps — within a step the
//     S samples remain jointly generated, preserving the intra-batch
//     independence weakness the paper attributes to batch generation (L4);
//   * a UE id would be NetShare's 5-tuple metadata; since it is a hashed
//     string, it is produced by a plain counter-based string generator;
//   * the discriminator is an MLP over the flattened padded sequence plus the
//     metadata, trained with the non-saturating GAN loss.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tokenizer.hpp"
#include "nn/modules.hpp"
#include "nn/optim.hpp"
#include "trace/stream.hpp"

namespace cpt::gan {

struct NetShareConfig {
    std::size_t max_seq_len = 48;  // fixed padded sequence length
    std::size_t batch_generation = 4;  // samples emitted per LSTM step (L4)
    std::size_t noise_dim = 16;
    std::size_t lstm_hidden = 48;
    std::size_t lstm_layers = 1;
    std::size_t disc_hidden = 128;
    float lr_generator = 1e-3f;
    float lr_discriminator = 1e-3f;
    std::size_t batch_size = 32;
    int disc_steps_per_gen_step = 1;
    // Weight of the moment-matching auxiliary on the generator: the batch
    // mean of each generated feature column is pulled toward the real data's
    // column means. NetShare proper stabilizes its GAN with WGAN-GP, which
    // needs second-order autodiff; first-order moment matching is the
    // equivalent stabilizer expressible on this substrate, and it anchors
    // only marginals — temporal/state structure still comes from the GAN.
    float moment_match_weight = 8.0f;
};

struct GanTrainConfig {
    int max_epochs = 60;
    // Supervised (teacher-forced) pretraining epochs for the generator before
    // adversarial training begins, SeqGAN-style. Pure adversarial training of
    // the LSTM does not reach NetShare's reported fidelity band at CPU scale;
    // MLE pretraining is the standard remedy and only strengthens the
    // baseline (keeping the headline comparison conservative).
    int pretrain_epochs = 60;
    // Early stopping uses the paper's §5.5 heuristic: checkpoints are scored
    // by cheap fidelity proxies against a validation slice, and training
    // stops when the score plateaus for `patience` evaluations.
    int eval_every = 10;  // epochs between checkpoint evaluations
    int patience = 3;
    std::size_t eval_streams = 64;  // streams generated per evaluation
    std::uint64_t seed = 1;
    bool verbose = false;
};

struct GanTrainResult {
    int epochs_run = 0;
    double seconds = 0.0;
    std::vector<double> gen_loss;   // per epoch
    std::vector<double> disc_loss;  // per epoch
    std::vector<double> eval_score; // per evaluation (lower is better)
};

class NetShareGenerator : public nn::Module {
public:
    // The tokenizer provides the event vocabulary and the global log-ia
    // scaling used to express per-stream min/max metadata in [0, 1].
    NetShareGenerator(const core::Tokenizer& tokenizer, const NetShareConfig& config,
                      util::Rng& rng);

    struct GeneratedBatch {
        nn::Var sequence;  // [B, max_seq_len, E + 2] (event probs, ia, stop)
        nn::Var metadata;  // [B, 2] scaled (ia_min, ia_max)
        // Concrete samples: one-hot of the event sampled from each softmax
        // (these are what the step-to-step feedback sees, and what decoding
        // materializes), plus the ia value and the sampled stop bit.
        nn::Tensor hard_samples;  // [B, max_seq_len, E + 2]
    };
    // Runs the generator on fresh noise for a batch of B streams (builds an
    // autograd graph so the result can be pushed through the discriminator).
    GeneratedBatch generate_batch(std::size_t batch, util::Rng& rng) const;

    // Trains the GAN from the current weights (so a second call on new data
    // is transfer learning). Returns per-epoch losses and wall time.
    GanTrainResult train(const trace::Dataset& data, const GanTrainConfig& config);

    // Decodes `n` streams from the trained generator.
    trace::Dataset generate(std::size_t n, util::Rng& rng, trace::DeviceType device,
                            const std::string& ue_prefix = "netshare") const;

    void collect(const std::string& prefix, std::vector<nn::NamedParam>& out) const override;

    const NetShareConfig& config() const { return config_; }

private:
    // Encodes a real stream into the discriminator's representation.
    void encode_real(const trace::Stream& s, std::span<float> seq_dst,
                     std::span<float> meta_dst) const;

    // Owned by value: the generator outlives the tokenizer its creator fit.
    core::Tokenizer tokenizer_;
    NetShareConfig config_;
    std::size_t num_events_;
    std::size_t sample_dim_;  // E + 2

    // Metadata generator (MLP on noise).
    nn::Mlp meta_net_;
    // Time-series generator: LSTM + per-step output head emitting S samples.
    nn::LstmStack lstm_;
    nn::Linear step_head_;  // hidden -> S * sample_dim_

    // Discriminator.
    nn::Mlp disc_;
};

}  // namespace cpt::gan
