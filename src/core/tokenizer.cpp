#include "tokenizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cpt::core {

Tokenizer::Tokenizer(cellular::Generation generation, double min_log_ia, double max_log_ia)
    : generation_(generation),
      num_events_(cellular::vocabulary(generation).size()),
      min_log_ia_(min_log_ia),
      max_log_ia_(std::max(max_log_ia, min_log_ia + 1e-9)) {}

Tokenizer Tokenizer::fit(const trace::Dataset& ds) {
    CPT_CHECK(!ds.streams.empty(), "Tokenizer::fit: empty dataset");
    double lo = 0.0;  // first-token interarrival is defined 0 -> log(1) = 0
    double hi = 0.0;
    for (const auto& s : ds.streams) {
        for (double ia : s.interarrivals()) {
            const double l = std::log(ia + 1.0);
            lo = std::min(lo, l);
            hi = std::max(hi, l);
        }
    }
    return Tokenizer(ds.generation, lo, hi);
}

float Tokenizer::scale_interarrival(double seconds) const {
    const double l = std::log(std::max(seconds, 0.0) + 1.0);
    const double x = (l - min_log_ia_) / (max_log_ia_ - min_log_ia_);
    return static_cast<float>(std::clamp(x, 0.0, 1.0));
}

double Tokenizer::unscale_interarrival(double scaled) const {
    const double x = std::clamp(scaled, 0.0, 1.0);
    const double l = min_log_ia_ + x * (max_log_ia_ - min_log_ia_);
    return std::max(0.0, std::exp(l) - 1.0);
}

void Tokenizer::encode_token(cellular::EventId event, double interarrival_seconds, bool stop,
                             std::span<float> dst) const {
    CPT_CHECK_EQ(dst.size(), d_token(), " Tokenizer::encode_token: destination vs d_token");
    CPT_CHECK_LT(std::size_t{event}, num_events_,
                 " Tokenizer::encode_token: event id outside vocabulary");
    std::fill(dst.begin(), dst.end(), 0.0f);
    dst[event_offset() + event] = 1.0f;
    dst[interarrival_offset()] = scale_interarrival(interarrival_seconds);
    dst[stop_offset() + (stop ? 1 : 0)] = 1.0f;
}

nn::Tensor Tokenizer::encode(const trace::Stream& s, std::size_t max_len) const {
    const std::size_t t = std::min(s.length(), max_len);
    nn::Tensor out({t, d_token()});
    const auto ia = s.interarrivals();
    auto data = out.data();
    for (std::size_t k = 0; k < t; ++k) {
        const bool stop = (k + 1 == s.length());
        encode_token(s.events[k].type, ia[k], stop,
                     data.subspan(k * d_token(), d_token()));
    }
    return out;
}

}  // namespace cpt::core
