#include "hub_trainer.hpp"

#include <exception>
#include <memory>
#include <optional>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {

namespace {

// Per-slice working state, filled in by the parallel phase and consumed
// serially afterwards (publication, result collection).
struct SliceWork {
    std::unique_ptr<CptGpt> model;
    std::optional<Tokenizer> tokenizer;
    TrainResult result;
    std::exception_ptr error;
};

// Deterministic per-slice seed: a pure function of the base seed and the
// slice index, so results do not depend on scheduling or thread count.
std::uint64_t slice_seed(std::uint64_t base, std::size_t index) {
    return base + static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ull;
}

}  // namespace

HubTrainer::HubTrainer(ModelHub& hub, HubTrainOptions options)
    : hub_(&hub), options_(std::move(options)) {}

std::vector<HubSliceResult> HubTrainer::train_all(std::span<const HubSlice> slices) {
    for (const auto& s : slices) {
        CPT_CHECK(s.data != nullptr, "HubTrainer::train_all: slice has null dataset");
    }
    // Serial pre-fork: every slice's init RNG is drawn from the root before
    // any parallel work starts, the same idiom the sharded generator uses.
    util::Rng root(options_.train.seed);
    std::vector<util::Rng> init_rngs;
    init_rngs.reserve(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) init_rngs.push_back(root.fork(i));

    std::vector<SliceWork> work(slices.size());
    util::global_pool().parallel_for(slices.size(), 1, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            try {
                const HubSlice& s = slices[i];
                work[i].tokenizer = Tokenizer::fit(*s.data);
                work[i].model = std::make_unique<CptGpt>(*work[i].tokenizer, options_.model,
                                                         init_rngs[i]);
                TrainConfig cfg = options_.train;
                cfg.seed = slice_seed(options_.train.seed, i);
                Trainer trainer(*work[i].model, *work[i].tokenizer, cfg);
                work[i].result = trainer.train(*s.data);
            } catch (...) {
                work[i].error = std::current_exception();
            }
        }
    });

    std::vector<HubSliceResult> out;
    out.reserve(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) {
        if (work[i].error) std::rethrow_exception(work[i].error);
        if (options_.publish) {
            hub_->publish(*work[i].model, *work[i].tokenizer,
                          slices[i].data->initial_event_distribution(), slices[i].device,
                          slices[i].hour_of_day);
        }
        out.push_back({slices[i].device, slices[i].hour_of_day, std::move(work[i].result)});
    }
    return out;
}

std::vector<HubSliceResult> HubTrainer::fine_tune_all(const CptGpt& pretrained,
                                                      const Tokenizer& tokenizer,
                                                      std::span<const HubSlice> slices) {
    for (const auto& s : slices) {
        CPT_CHECK(s.data != nullptr, "HubTrainer::fine_tune_all: slice has null dataset");
    }
    util::Rng root(options_.train.seed);
    std::vector<util::Rng> init_rngs;
    init_rngs.reserve(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) init_rngs.push_back(root.fork(i));

    std::vector<SliceWork> work(slices.size());
    util::global_pool().parallel_for(slices.size(), 1, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            try {
                const HubSlice& s = slices[i];
                // Fresh skeleton seeded with the pretrained weights; the init
                // RNG only shapes the skeleton, the copy overwrites it.
                work[i].model = std::make_unique<CptGpt>(tokenizer, options_.model, init_rngs[i]);
                copy_weights(pretrained, *work[i].model);
                TrainConfig cfg = options_.train;
                cfg.seed = slice_seed(options_.train.seed, i);
                Trainer trainer(*work[i].model, tokenizer, cfg);
                work[i].result =
                    trainer.fine_tune(*s.data, options_.ft_lr_scale, options_.ft_epoch_scale);
            } catch (...) {
                work[i].error = std::current_exception();
            }
        }
    });

    std::vector<HubSliceResult> out;
    out.reserve(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) {
        if (work[i].error) std::rethrow_exception(work[i].error);
        if (options_.publish) {
            hub_->publish(*work[i].model, tokenizer,
                          slices[i].data->initial_event_distribution(), slices[i].device,
                          slices[i].hour_of_day);
        }
        out.push_back({slices[i].device, slices[i].hour_of_day, std::move(work[i].result)});
    }
    return out;
}

}  // namespace cpt::core
